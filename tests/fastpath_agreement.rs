//! Analytic fast path vs engine: the agreement battery.
//!
//! [`FastPath::resolve`] claims that for deterministic, model-conforming
//! runs the oracle closed forms already know the engine's answer. These
//! tests pin that claim across every scheduler kind and both queue
//! backends: whenever the resolver takes a run, the engine must agree
//! within the oracle's stated tolerance; whenever it declines, the reason
//! must be the first failed eligibility condition.

use proptest::prelude::*;
use rumr::{
    FastPath, FastPathDecision, FastPathMiss, QueueBackend, RumrConfig, RunSpec, Scenario,
    SchedulerKind, SimConfig,
};

/// Every scheduler kind the service can be asked for (all 13 variants).
fn all_kinds(error: f64) -> Vec<SchedulerKind> {
    vec![
        SchedulerKind::rumr_known_error(error),
        SchedulerKind::Umr,
        SchedulerKind::Mi { installments: 2 },
        SchedulerKind::Factoring,
        SchedulerKind::Fsc { error },
        SchedulerKind::EqualStatic,
        SchedulerKind::SelfScheduling { unit: 20.0 },
        SchedulerKind::HetUmr,
        SchedulerKind::AdaptiveRumr,
        SchedulerKind::HetRumr(RumrConfig::with_known_error(error)),
        SchedulerKind::OneRound,
        SchedulerKind::Gss,
        SchedulerKind::Tss,
    ]
}

/// Random-but-sane error-free Table-1-style scenario (the fast path's
/// home turf; heterogeneous platforms get their own spot test because
/// the homogeneous-only planners reject them at build time).
fn scenario_strategy() -> impl Strategy<Value = Scenario> {
    (
        2usize..=8,       // workers
        1.1f64..=3.0,     // bandwidth ratio
        0.0f64..=0.8,     // cLat
        0.0f64..=0.8,     // nLat
        100.0f64..=400.0, // workload
    )
        .prop_map(|(n, ratio, clat, nlat, w)| {
            let mut s = Scenario::table1(n, ratio, clat, nlat, 0.0);
            s.w_total = w;
            s
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Whenever the fast path answers, the engine agrees — for all 13
    /// scheduler kinds, on both queue backends.
    #[test]
    fn analytic_answers_agree_with_the_engine(
        scenario in scenario_strategy(),
        seed in 0u64..1000,
    ) {
        for kind in all_kinds(0.0) {
            for backend in [QueueBackend::Heap, QueueBackend::Calendar] {
                let spec = RunSpec::new(kind).seed(seed).config(SimConfig {
                    queue_backend: backend,
                    ..SimConfig::default()
                });
                let decision = FastPath::resolve(&scenario, &spec)
                    .unwrap_or_else(|e| panic!("{kind}: {e}"));
                let Some(answer) = decision.analytic() else { continue };
                let engine = scenario
                    .execute(&spec)
                    .unwrap_or_else(|e| panic!("{kind}: {e}"));
                prop_assert!(
                    answer.agrees_with(engine.makespan),
                    "{} ({:?}): analytic {} vs engine {} (residual {})",
                    kind,
                    backend,
                    answer.makespan,
                    engine.makespan,
                    answer.residual(engine.makespan)
                );
                prop_assert!(
                    (answer.planned_work - engine.completed_work()).abs()
                        <= 1e-6 * scenario.w_total,
                    "{}: planned {} vs completed {}",
                    kind,
                    answer.planned_work,
                    engine.completed_work()
                );
            }
        }
    }

    /// Every noisy scenario is declined, and with the right reason: the
    /// eligibility order pins `PredictionErrors` as the first check.
    #[test]
    fn noisy_runs_always_go_to_the_engine(
        scenario in scenario_strategy(),
        error in 0.05f64..=0.6,
    ) {
        let mut noisy = scenario;
        noisy.error_model = rumr::ErrorModel::TruncatedNormal { error };
        for kind in all_kinds(error) {
            match FastPath::resolve(&noisy, &RunSpec::new(kind))
                .unwrap_or_else(|e| panic!("{kind}: {e}"))
            {
                FastPathDecision::Engine(miss) => {
                    prop_assert_eq!(miss, FastPathMiss::PredictionErrors, "{}", kind)
                }
                FastPathDecision::Analytic(_) => {
                    return Err(TestCaseError::fail(format!("{kind} took a noisy run")))
                }
            }
        }
    }

    /// The sampling decision is a pure function of the key: across random
    /// keys it respects the 0/100 endpoints and is monotone in `pct`.
    #[test]
    fn audit_sampling_is_monotone_for_random_keys(key_seed in 0u64..u64::MAX) {
        let key = format!("{{\"w_total\":{},\"seed\":{}}}", key_seed % 10_000, key_seed);
        prop_assert!(FastPath::audit_due(&key, 100));
        prop_assert!(!FastPath::audit_due(&key, 0));
        let mut prev = false;
        for pct in [1u32, 5, 20, 50, 80, 99, 100] {
            let now = FastPath::audit_due(&key, pct);
            prop_assert!(now || !prev, "sampling not monotone at {}% for {:?}", pct, key);
            prev = now;
        }
    }
}

/// The exact-oracle schedulers must actually take the fast path on the
/// paper's Table 1 platform — the resolver is useless if it always
/// declines.
#[test]
fn exact_oracles_resolve_analytically() {
    let s = Scenario::table1(10, 1.5, 0.2, 0.1, 0.0);
    for kind in [
        SchedulerKind::Umr,
        SchedulerKind::HetUmr,
        SchedulerKind::OneRound,
    ] {
        let decision = FastPath::resolve(&s, &RunSpec::new(kind)).unwrap();
        assert!(
            decision.analytic().is_some(),
            "{kind} should resolve analytically"
        );
    }
    // MI's oracle is exact only latency-free; with latencies it claims a
    // lower bound and the resolver must decline.
    let latency_free = Scenario::table1(10, 1.5, 0.0, 0.0, 0.0);
    let mi = RunSpec::new(SchedulerKind::Mi { installments: 3 });
    assert!(FastPath::resolve(&latency_free, &mi)
        .unwrap()
        .analytic()
        .is_some());
    match FastPath::resolve(&s, &mi).unwrap() {
        FastPathDecision::Engine(miss) => assert_eq!(miss, FastPathMiss::InexactOracle),
        FastPathDecision::Analytic(_) => panic!("MI with latencies is not exact"),
    }
}

/// Heterogeneous platforms: HetUmr resolves analytically and agrees with
/// the engine; the oracle-less heterogeneous schedulers decline.
#[test]
fn heterogeneous_fastpath_agrees() {
    let s = Scenario::heterogeneous_demo(12, 0.0);
    let spec = RunSpec::new(SchedulerKind::HetUmr);
    let decision = FastPath::resolve(&s, &spec).unwrap();
    let answer = decision.analytic().expect("HetUmr is exact");
    let engine = s.execute(&spec).unwrap();
    assert!(
        answer.agrees_with(engine.makespan),
        "analytic {} vs engine {} (residual {})",
        answer.makespan,
        engine.makespan,
        answer.residual(engine.makespan)
    );
    for kind in [
        SchedulerKind::Gss,
        SchedulerKind::Tss,
        SchedulerKind::HetRumr(RumrConfig::with_known_error(0.0)),
    ] {
        match FastPath::resolve(&s, &RunSpec::new(kind)).unwrap() {
            FastPathDecision::Engine(miss) => assert_eq!(miss, FastPathMiss::NoOracle, "{kind}"),
            FastPathDecision::Analytic(_) => panic!("{kind} has no oracle"),
        }
    }
}
