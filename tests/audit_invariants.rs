//! Audit-subsystem properties: the streaming invariant checker passes
//! every legitimate run and the analytic oracles bound every error-free
//! makespan — across random scenarios and all scheduler kinds — while a
//! corrupted event stream reliably trips the checker.

use proptest::prelude::*;
use rumr::sim::{InvariantChecker, InvariantKind, LostStage, TraceEvent, WorkLedger};
use rumr::{
    FaultModel, FaultPlan, Prediction, RunSpec, Scenario, SchedulerKind, SimConfig, TraceMode,
};

/// Random-but-sane Table-1-style scenario (kept small for debug builds).
fn scenario_strategy() -> impl Strategy<Value = (Scenario, f64)> {
    (
        2usize..=8,       // workers
        1.1f64..=3.0,     // bandwidth ratio
        0.0f64..=0.8,     // cLat
        0.0f64..=0.8,     // nLat
        0.0f64..=0.6,     // error
        100.0f64..=400.0, // workload
    )
        .prop_map(|(n, ratio, clat, nlat, error, w)| {
            let mut s = Scenario::table1(n, ratio, clat, nlat, error);
            s.w_total = w;
            (s, error)
        })
}

fn kinds(error: f64) -> Vec<SchedulerKind> {
    vec![
        SchedulerKind::rumr_known_error(error),
        SchedulerKind::AdaptiveRumr,
        SchedulerKind::HetRumr(rumr::RumrConfig::with_known_error(error)),
        SchedulerKind::Umr,
        SchedulerKind::HetUmr,
        SchedulerKind::Mi { installments: 2 },
        SchedulerKind::OneRound,
        SchedulerKind::Factoring,
        SchedulerKind::Fsc { error },
        SchedulerKind::Gss,
        SchedulerKind::Tss,
        SchedulerKind::EqualStatic,
        SchedulerKind::SelfScheduling { unit: 10.0 },
    ]
}

fn audited(mode: TraceMode, faults: FaultModel) -> SimConfig {
    SimConfig {
        trace_mode: mode,
        faults,
        audit: true,
        ..Default::default()
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Every scheduler kind, audited under `MetricsOnly` (no stored
    /// trace): the streaming checker must return zero findings, fault-free
    /// and under a crash/recover fault plan.
    #[test]
    fn audited_runs_have_zero_findings(
        (scenario, error) in scenario_strategy(),
        seed in 0u64..1000,
    ) {
        let n = scenario.platform.num_workers();
        let plans = [
            FaultModel::None,
            FaultModel::Plan(
                FaultPlan::new()
                    .crash_recover(10.0, n / 2, 15.0)
                    .crash(18.0, 0),
            ),
        ];
        for faults in plans {
            for kind in kinds(error) {
                let r = scenario
                    .execute(
                        &RunSpec::new(kind)
                            .seed(seed)
                            .config(audited(TraceMode::MetricsOnly, faults.clone())),
                    )
                    .unwrap_or_else(|e| panic!("{kind}: {e}"));
                prop_assert!(r.trace.is_none(), "{kind}: MetricsOnly stores no trace");
                let findings = r.audit.as_ref().expect("audit was enabled");
                prop_assert!(
                    findings.is_empty(),
                    "{kind} ({faults:?}): {findings:?}"
                );
            }
        }
    }

    /// On an error-free run every closed-form oracle must hold: the plan
    /// accounts for the whole workload, and the simulated makespan matches
    /// an exact model within its tolerance / never beats a lower bound.
    #[test]
    fn oracles_bound_error_free_runs(
        (mut scenario, _) in scenario_strategy(),
        seed in 0u64..1000,
    ) {
        scenario.error_model = rumr::ErrorModel::None;
        let w = scenario.w_total;
        for kind in kinds(0.0) {
            let oracle = match kind.oracle(&scenario.platform, w) {
                Ok(Some(o)) => o,
                Ok(None) => continue,
                Err(e) => panic!("{kind}: oracle construction failed: {e}"),
            };
            prop_assert!(
                (oracle.planned_work() - w).abs() <= 1e-6 * w,
                "{kind}: plan accounts for {} of {w}",
                oracle.planned_work()
            );
            let r = scenario
                .execute(
                    &RunSpec::new(kind)
                        .seed(seed)
                        .config(audited(TraceMode::Off, FaultModel::None)),
                )
                .unwrap_or_else(|e| panic!("{kind}: {e}"));
            let prediction = oracle.makespan();
            prop_assert!(
                prediction.within(r.makespan),
                "{kind}: simulated {} vs {:?} (residual {:?})",
                r.makespan,
                prediction,
                prediction.residual(r.makespan)
            );
            if let Prediction::Unavailable = prediction {
                // Dynamic plans: accounting was the whole check.
                continue;
            }
        }
    }
}

/// Broken-engine fixture: corrupting a legitimate event stream in
/// characteristic ways must trip the checker — this is the proof that the
/// zero-findings property above is not vacuous.
#[test]
fn corrupted_streams_trip_the_checker() {
    // A legitimate two-worker stream (mirrors the engine's serial sends).
    let good = [
        TraceEvent::SendStart {
            worker: 0,
            chunk: 5.0,
            time: 0.0,
        },
        TraceEvent::SendEnd {
            worker: 0,
            chunk: 5.0,
            time: 1.0,
        },
        TraceEvent::Arrival {
            worker: 0,
            chunk: 5.0,
            time: 1.0,
        },
        TraceEvent::SendStart {
            worker: 1,
            chunk: 5.0,
            time: 1.0,
        },
        TraceEvent::ComputeStart {
            worker: 0,
            chunk: 5.0,
            time: 1.0,
        },
        TraceEvent::SendEnd {
            worker: 1,
            chunk: 5.0,
            time: 2.0,
        },
        TraceEvent::Arrival {
            worker: 1,
            chunk: 5.0,
            time: 2.0,
        },
        TraceEvent::ComputeStart {
            worker: 1,
            chunk: 5.0,
            time: 2.0,
        },
        TraceEvent::ComputeEnd {
            worker: 0,
            chunk: 5.0,
            time: 6.0,
        },
        TraceEvent::ComputeEnd {
            worker: 1,
            chunk: 5.0,
            time: 7.0,
        },
    ];
    let ledger = WorkLedger {
        dispatched: 10.0,
        completed: 10.0,
        lost: 0.0,
        outstanding: 0.0,
    };

    // Sanity: the uncorrupted stream is clean.
    let mut checker = InvariantChecker::new(2, 1);
    for e in &good {
        checker.observe(e);
    }
    assert!(checker.finalize(ledger).is_empty());

    // Each corruption (drop one load-bearing event) must produce at least
    // one finding of the expected kind.
    let corruptions: [(usize, InvariantKind); 4] = [
        (1, InvariantKind::MasterOccupation), // SendEnd dropped → overlap
        (2, InvariantKind::Causality),        // Arrival dropped → compute w/o chunk
        (4, InvariantKind::SerialCompute),    // ComputeStart dropped → end w/o start
        (8, InvariantKind::LedgerMismatch),   // ComputeEnd dropped → stream ≠ ledger
    ];
    for (drop, expected) in corruptions {
        let mut checker = InvariantChecker::new(2, 1);
        for (i, e) in good.iter().enumerate() {
            if i != drop {
                checker.observe(e);
            }
        }
        let findings = checker.finalize(ledger);
        assert!(
            findings.iter().any(|f| f.kind == expected),
            "dropping event {drop} should produce {expected:?}, got {findings:?}"
        );
    }

    // A phantom loss (stage never reached) and an engine whose ledger
    // disagrees with its own stream are also caught.
    let mut checker = InvariantChecker::new(2, 1);
    for e in &good {
        checker.observe(e);
    }
    checker.observe(&TraceEvent::ChunkLost {
        worker: 0,
        chunk: 5.0,
        stage: LostStage::Queued,
        time: 8.0,
    });
    let findings = checker.finalize(WorkLedger {
        dispatched: 10.0,
        completed: 10.0,
        lost: 0.0,
        outstanding: 0.0,
    });
    assert!(
        findings.iter().any(|f| f.kind == InvariantKind::Causality),
        "{findings:?}"
    );
    assert!(
        findings
            .iter()
            .any(|f| f.kind == InvariantKind::LedgerMismatch),
        "lost 5.0 in the stream but ledger says 0: {findings:?}"
    );
}
