//! Cross-thread determinism of the sweep harness.
//!
//! `sweep.rs` states its contract: each cell's seeds derive from
//! (root seed, cell index, repetition, competitor), so results are
//! independent of thread count and scheduling order. This test pins that
//! contract *byte-for-byte* — every cell table is serialized with exact
//! f64 bits and compared across `threads = 1, 2, 8` and across two runs at
//! the same root seed, in both the fast and the fully traced mode.

use std::fmt::Write as _;

use dls_experiments::{run_sweep, Competitor, ErrorModelKind, SweepConfig, Table1Grid};
use rumr::{QueueBackend, TraceMode};

fn pinned_config(threads: usize, trace_mode: TraceMode) -> SweepConfig {
    SweepConfig {
        grid: Table1Grid {
            n_values: vec![10, 20],
            ratio_values: vec![1.5],
            clat_values: vec![0.2],
            nlat_values: vec![0.1, 0.4],
        },
        errors: vec![0.0, 0.2, 0.4],
        reps: 3,
        root_seed: 20030623,
        threads,
        model: ErrorModelKind::Normal,
        w_total: 1000.0,
        progress: false,
        trace_mode,
        queue_backend: QueueBackend::default(),
        speeds: rumr::SpeedModel::Declared,
        audit: false,
    }
}

fn competitors() -> Vec<Competitor> {
    vec![
        Competitor::RumrKnown,
        Competitor::Umr,
        Competitor::Mi(2),
        Competitor::Factoring,
    ]
}

/// Serialize a sweep result to an exact byte string: labels, grid points,
/// and every mean as raw f64 bits (no rounding that could mask drift).
fn serialize(result: &dls_experiments::SweepResult) -> String {
    let mut out = String::new();
    for label in &result.labels {
        let _ = writeln!(out, "label {label}");
    }
    for cell in &result.cells {
        let _ = write!(
            out,
            "cell n={} r={} clat={} nlat={} err={:016x}",
            cell.point.n,
            cell.point.ratio,
            cell.point.comp_latency,
            cell.point.net_latency,
            cell.error.to_bits()
        );
        for m in &cell.means {
            let _ = write!(out, " {:016x}", m.to_bits());
        }
        if let Some(util) = &cell.link_util {
            for u in util {
                let _ = write!(out, " u{:016x}", u.to_bits());
            }
        }
        out.push('\n');
    }
    out
}

#[test]
fn sweep_is_byte_identical_across_thread_counts() {
    let comps = competitors();
    for mode in [TraceMode::Off, TraceMode::Full] {
        let reference = serialize(&run_sweep(&pinned_config(1, mode), &comps));
        for threads in [2, 8] {
            let other = serialize(&run_sweep(&pinned_config(threads, mode), &comps));
            assert_eq!(
                reference, other,
                "threads={threads} changed {mode:?} sweep results"
            );
        }
    }
}

#[test]
fn sweep_is_byte_identical_across_runs_at_same_root_seed() {
    let comps = competitors();
    let a = serialize(&run_sweep(&pinned_config(4, TraceMode::Off), &comps));
    let b = serialize(&run_sweep(&pinned_config(4, TraceMode::Off), &comps));
    assert_eq!(a, b, "same root seed must reproduce the exact cell table");
}

#[test]
fn different_root_seed_changes_results() {
    let comps = competitors();
    let a = serialize(&run_sweep(&pinned_config(2, TraceMode::Off), &comps));
    let mut cfg = pinned_config(2, TraceMode::Off);
    cfg.root_seed = 1;
    let b = serialize(&run_sweep(&cfg, &comps));
    assert_ne!(a, b, "the root seed must actually drive the realizations");
}
