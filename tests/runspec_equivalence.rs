//! RunSpec-equivalence: the unified [`rumr::RunSpec`] entry point and the
//! legacy wrappers it replaced are the *same computation*, bit for bit.
//!
//! The API redesign rewired every legacy `Scenario::run*` /
//! `ScenarioRunner::run*` method as a thin wrapper over
//! `execute(&RunSpec)`. These properties pin the contract that made that
//! safe: for every scheduler kind, both queue backends, fresh engines and
//! reused ones, recovering and not — the wrapper and the explicit-spec
//! call return identical makespan bits, chunk counts, and traces.
//!
//! The wrappers are retired behind the default-off `legacy-api` cargo
//! feature, so this battery only compiles (and CI only runs it) with
//! `--features legacy-api`.

#![cfg(feature = "legacy-api")]

use proptest::prelude::*;
use rumr::{
    FaultModel, FaultPlan, MultiJob, MultiPolicy, MultiRunSpec, QueueBackend, RecoveryConfig,
    RumrConfig, Scenario, SchedulerKind, SimConfig, SimResult, TraceMode,
};

/// Random-but-sane Table-1-style scenario (kept small for debug builds).
fn scenario_strategy() -> impl Strategy<Value = (Scenario, f64)> {
    (
        2usize..=8,       // workers
        1.1f64..=3.0,     // bandwidth ratio
        0.0f64..=0.8,     // cLat
        0.0f64..=0.8,     // nLat
        0.0f64..=0.6,     // error
        100.0f64..=400.0, // workload
    )
        .prop_map(|(n, ratio, clat, nlat, error, w)| {
            let mut s = Scenario::table1(n, ratio, clat, nlat, error);
            s.w_total = w;
            (s, error)
        })
}

fn kinds(error: f64) -> Vec<SchedulerKind> {
    vec![
        SchedulerKind::rumr_known_error(error),
        SchedulerKind::AdaptiveRumr,
        SchedulerKind::HetRumr(RumrConfig::with_known_error(error)),
        SchedulerKind::Umr,
        SchedulerKind::HetUmr,
        SchedulerKind::Mi { installments: 2 },
        SchedulerKind::OneRound,
        SchedulerKind::Factoring,
        SchedulerKind::Fsc { error },
        SchedulerKind::Gss,
        SchedulerKind::Tss,
        SchedulerKind::EqualStatic,
        SchedulerKind::SelfScheduling { unit: 10.0 },
    ]
}

fn assert_identical(a: &SimResult, b: &SimResult, what: &str) {
    assert_eq!(
        a.makespan.to_bits(),
        b.makespan.to_bits(),
        "{what}: makespan bits differ ({} vs {})",
        a.makespan,
        b.makespan
    );
    assert_eq!(a.num_chunks, b.num_chunks, "{what}: chunk counts differ");
    assert_eq!(
        a.completed_work().to_bits(),
        b.completed_work().to_bits(),
        "{what}: completed work differs"
    );
    match (&a.trace, &b.trace) {
        (Some(ta), Some(tb)) => assert_eq!(ta.events(), tb.events(), "{what}: traces differ"),
        (None, None) => {}
        _ => panic!("{what}: one side has a trace, the other does not"),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// `Scenario::run` / `run_traced` / `run_with_config` ≡ the explicit
    /// RunSpec they document, for every kind × both queue backends.
    #[test]
    fn scenario_wrappers_match_runspec((scenario, error) in scenario_strategy(), seed in 0u64..1000) {
        for backend in [QueueBackend::Heap, QueueBackend::Calendar] {
            for kind in kinds(error) {
                let config = SimConfig {
                    trace_mode: TraceMode::Full,
                    queue_backend: backend,
                    ..Default::default()
                };
                let legacy = scenario.run_with_config(&kind, seed, config.clone()).unwrap();
                let spec = rumr::RunSpec::new(kind).seed(seed).config(config);
                let unified = scenario.execute(&spec).unwrap();
                assert_identical(&legacy, &unified, &format!("{kind:?}/{}", backend.name()));
            }
        }
    }

    /// The multi-load layer is a strict pass-through for a single job
    /// released at 0: `Scenario::execute_jobs` with a one-job set is the
    /// *same computation* as the single-load `RunSpec` path — identical
    /// makespan bits, trace bytes and metrics — for every scheduler kind,
    /// every arbitration policy, and both queue backends.
    #[test]
    fn single_job_jobset_matches_runspec((scenario, error) in scenario_strategy(), seed in 0u64..1000) {
        for backend in [QueueBackend::Heap, QueueBackend::Calendar] {
            for kind in kinds(error) {
                let config = SimConfig {
                    trace_mode: TraceMode::Full,
                    queue_backend: backend,
                    ..Default::default()
                };
                let spec = rumr::RunSpec::new(kind).seed(seed).config(config.clone());
                let single = scenario.execute(&spec).unwrap();
                for policy in MultiPolicy::ALL {
                    let mspec = MultiRunSpec::new(policy)
                        .job(MultiJob::new(0.0, scenario.w_total, kind))
                        .seed(seed)
                        .config(config.clone());
                    let multi = scenario.execute_jobs(&mspec).unwrap();
                    let what = format!("{kind:?}/{}/{}", policy.label(), backend.name());
                    assert_identical(&single, &multi.sim, &what);
                    assert_eq!(single.metrics, multi.sim.metrics, "{what}: metrics differ");
                    assert!(multi.job_audit.is_empty(), "{what}: {:?}", multi.job_audit);
                    let job = &multi.jobs[0];
                    assert_eq!(
                        job.completion.expect("single job completes").to_bits(),
                        single.makespan.to_bits(),
                        "{what}: completion is not the makespan"
                    );
                }
            }
        }
    }

    /// The repetition wrapper `mean_makespan` ≡ `execute_mean`, and the
    /// per-seed runner path it uses ≡ fresh-engine `execute` calls.
    #[test]
    fn mean_makespan_matches_execute_mean((scenario, error) in scenario_strategy(), seed in 0u64..1000) {
        for kind in kinds(error).into_iter().step_by(3) {
            let legacy = scenario.mean_makespan(&kind, seed, 3).unwrap();
            let spec = rumr::RunSpec::new(kind).seed(seed).reps(3);
            let unified = scenario.execute_mean(&spec).unwrap();
            assert_eq!(legacy.to_bits(), unified.to_bits(), "{kind:?}");

            // Reused engine ≡ fresh engine, seed by seed.
            let mut fresh_total = 0.0;
            for s in spec.seeds() {
                fresh_total += scenario.execute(&spec.clone().seed(s).reps(1)).unwrap().makespan;
            }
            assert_eq!((fresh_total / 3.0).to_bits(), unified.to_bits(), "{kind:?} reuse drift");
        }
    }

    /// Fault-injection wrappers: `run_with_faults` and `run_recovering` ≡
    /// their RunSpec equivalents under a deterministic crash plan.
    #[test]
    fn fault_wrappers_match_runspec((scenario, error) in scenario_strategy(), seed in 0u64..1000) {
        let faults = FaultModel::Plan(FaultPlan::new().crash_recover(5.0, 1, 10.0));
        for kind in kinds(error).into_iter().step_by(4) {
            let legacy = scenario.run_with_faults(&kind, seed, faults.clone()).unwrap();
            let spec = rumr::RunSpec::new(kind).seed(seed).faults(faults.clone());
            assert_identical(&legacy, &scenario.execute(&spec).unwrap(), &format!("{kind:?} faulty"));

            let config = SimConfig { faults: faults.clone(), ..Default::default() };
            let recovery = RecoveryConfig::default();
            let legacy = scenario.run_recovering(&kind, seed, config.clone(), recovery).unwrap();
            let spec = rumr::RunSpec::new(kind)
                .seed(seed)
                .config(config)
                .recovering(recovery);
            assert_identical(&legacy, &scenario.execute(&spec).unwrap(), &format!("{kind:?} recovering"));
        }
    }

    /// Runner wrappers: `ScenarioRunner::run` / `run_prototype` /
    /// `run_recovering` ≡ `ScenarioRunner::execute`, including prototype
    /// attachment (solve once, stamp clones).
    #[test]
    fn runner_wrappers_match_execute((scenario, error) in scenario_strategy(), seed in 0u64..1000) {
        for kind in kinds(error).into_iter().step_by(3) {
            let mut runner = scenario.runner(SimConfig::default());
            let legacy = runner.run(&kind, seed).unwrap();
            let spec = rumr::RunSpec::new(kind).seed(seed);
            assert_identical(&legacy, &runner.execute(&spec).unwrap(), &format!("{kind:?} runner"));

            let proto = runner.prototype(&kind).unwrap();
            let legacy = runner.run_prototype(&proto, seed).unwrap();
            let spec = rumr::RunSpec::new(kind).seed(seed).with_prototype(proto.clone());
            assert_identical(&legacy, &runner.execute(&spec).unwrap(), &format!("{kind:?} prototype"));

            let recovery = RecoveryConfig::default();
            let legacy = runner.run_recovering(&kind, seed, recovery).unwrap();
            let spec = rumr::RunSpec::new(kind).seed(seed).recovering(recovery);
            assert_identical(&legacy, &runner.execute(&spec).unwrap(), &format!("{kind:?} runner recovering"));

            let legacy = runner.run_recovering_prototype(&proto, seed, recovery).unwrap();
            let spec = rumr::RunSpec::new(kind)
                .seed(seed)
                .recovering(recovery)
                .with_prototype(proto);
            assert_identical(&legacy, &runner.execute(&spec).unwrap(), &format!("{kind:?} proto recovering"));
        }
    }
}

/// The concurrency-extension wrapper, pinned on one deterministic case
/// (the extension is slow under proptest).
#[test]
fn run_concurrent_matches_runspec() {
    let scenario = Scenario::table1(6, 1.5, 0.2, 0.1, 0.3);
    for (max_sends, uplink) in [(1, None), (2, Some(12.0)), (4, Some(20.0))] {
        let kind = SchedulerKind::rumr_known_error(0.3);
        let legacy = scenario
            .run_concurrent(&kind, 9, max_sends, uplink)
            .unwrap();
        let mut spec = rumr::RunSpec::new(kind).seed(9);
        spec.config.max_concurrent_sends = max_sends;
        spec.config.uplink_capacity = uplink;
        let unified = scenario.execute(&spec).unwrap();
        assert_identical(&legacy, &unified, &format!("concurrent x{max_sends}"));
    }
}
