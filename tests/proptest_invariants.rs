//! Property-based invariants over random platforms, workloads, and error
//! magnitudes: conservation, trace validity, schedule structure.

use proptest::prelude::*;
use rumr::{RunSpec, Scenario, SchedulerKind, TraceMode};

/// Random-but-sane Table-1-style scenario. Kept small so the full property
/// suite runs quickly in debug builds.
fn scenario_strategy() -> impl Strategy<Value = (Scenario, f64)> {
    (
        2usize..=8,      // workers
        1.1f64..=3.0,    // bandwidth ratio
        0.0f64..=1.0,    // cLat
        0.0f64..=1.0,    // nLat
        0.0f64..=0.6,    // error
        50.0f64..=400.0, // workload
    )
        .prop_map(|(n, ratio, clat, nlat, error, w)| {
            let mut s = Scenario::table1(n, ratio, clat, nlat, error);
            s.w_total = w;
            (s, error)
        })
}

fn kinds(error: f64) -> Vec<SchedulerKind> {
    vec![
        SchedulerKind::rumr_known_error(error),
        SchedulerKind::AdaptiveRumr,
        SchedulerKind::HetRumr(rumr::RumrConfig::with_known_error(error)),
        SchedulerKind::Umr,
        SchedulerKind::Mi { installments: 2 },
        SchedulerKind::OneRound,
        SchedulerKind::Factoring,
        SchedulerKind::Fsc { error },
        SchedulerKind::Gss,
        SchedulerKind::Tss,
        SchedulerKind::EqualStatic,
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Every scheduler processes exactly the workload it was given, and the
    /// execution trace satisfies the platform's physical invariants.
    #[test]
    fn conservation_and_valid_traces((scenario, error) in scenario_strategy(), seed in 0u64..1000) {
        for kind in kinds(error) {
            let result = scenario
                .execute(&RunSpec::new(kind).seed(seed).trace_mode(TraceMode::Full))
                .unwrap_or_else(|e| panic!("{kind}: {e}"));
            prop_assert!(
                (result.completed_work() - scenario.w_total).abs() < 1e-6 * scenario.w_total,
                "{} completed {} of {}", kind, result.completed_work(), scenario.w_total
            );
            let n = scenario.platform.num_workers();
            let trace = result.trace.expect("trace recorded");
            let violations = trace.validate(n);
            prop_assert!(violations.is_empty(), "{}: {:?}", kind, violations);
        }
    }

    /// Makespan is invariant under re-running with the same seed and is
    /// finite and positive.
    #[test]
    fn determinism((scenario, error) in scenario_strategy(), seed in 0u64..1000) {
        let kind = SchedulerKind::rumr_known_error(error);
        let a = scenario.execute(&RunSpec::new(kind).seed(seed)).unwrap().makespan;
        let b = scenario.execute(&RunSpec::new(kind).seed(seed)).unwrap().makespan;
        prop_assert_eq!(a, b);
        prop_assert!(a.is_finite() && a > 0.0);
    }

    /// RUMR with error estimate 0 is exactly UMR.
    #[test]
    fn rumr_zero_error_is_umr((scenario, _) in scenario_strategy()) {
        let mut s = scenario;
        s.error_model = rumr::ErrorModel::None;
        let a = s.execute(&RunSpec::new(SchedulerKind::rumr_known_error(0.0))).unwrap();
        let b = s.execute(&RunSpec::new(SchedulerKind::Umr)).unwrap();
        prop_assert_eq!(a.num_chunks, b.num_chunks);
        prop_assert!((a.makespan - b.makespan).abs() < 1e-9);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Conservation and trace validity hold under the concurrent-transfer
    /// and output-data engine extensions too.
    #[test]
    fn extensions_conserve_and_validate(
        (scenario, error) in scenario_strategy(),
        seed in 0u64..500,
        max_sends in 1usize..=4,
        output_pct in 0u8..=100,
        capped in proptest::bool::ANY,
    ) {
        use rumr::SimConfig;
        let capacity = capped.then(|| scenario.platform.worker(0).bandwidth * 0.8);
        let config = SimConfig {
            trace_mode: TraceMode::Full,
            max_concurrent_sends: max_sends,
            uplink_capacity: capacity,
            output_ratio: output_pct as f64 / 100.0,
            ..Default::default()
        };
        for kind in [SchedulerKind::rumr_known_error(error), SchedulerKind::Factoring] {
            let result = scenario
                .execute(&RunSpec::new(kind).seed(seed).config(config.clone()))
                .unwrap_or_else(|e| panic!("{kind}: {e}"));
            prop_assert!(
                (result.completed_work() - scenario.w_total).abs() < 1e-6 * scenario.w_total,
                "{}: completed {}", kind, result.completed_work()
            );
            let expected_returns = scenario.w_total * output_pct as f64 / 100.0;
            prop_assert!(
                (result.returned_work - expected_returns).abs() < 1e-6 * scenario.w_total.max(1.0),
                "{}: returned {} of {}", kind, result.returned_work, expected_returns
            );
            let n = scenario.platform.num_workers();
            let trace = result.trace.expect("trace recorded");
            let violations = trace.validate_with_concurrency(n, max_sends);
            prop_assert!(violations.is_empty(), "{}: {:?}", kind, violations);
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Under seeded Poisson faults the work ledger balances exactly —
    /// dispatched = completed + lost + outstanding — and the trace (with
    /// its fault events) still satisfies every platform invariant. Runs
    /// both the raw scheduler (under-completes on crash-stop) and the
    /// recovery wrapper. Debug builds additionally exercise the engine's
    /// internal conservation `debug_assert` on every one of these runs.
    #[test]
    fn fault_conservation_and_valid_traces(
        (scenario, error) in scenario_strategy(),
        seed in 0u64..500,
        fault_seed in 0u64..500,
        mttf in 20.0f64..=200.0,
        recover in proptest::bool::ANY,
        wrap in proptest::bool::ANY,
    ) {
        use rumr::{FaultModel, PoissonFaults, RecoveryConfig, SimConfig};
        let faults = if recover {
            PoissonFaults::crash_recovery(mttf, mttf / 4.0, 20_000.0, fault_seed)
        } else {
            PoissonFaults::crash_stop(mttf, 20_000.0, fault_seed)
        };
        let config = SimConfig {
            trace_mode: TraceMode::Full,
            faults: FaultModel::Poisson(faults),
            ..Default::default()
        };
        let kind = SchedulerKind::rumr_known_error(error);
        let mut spec = RunSpec::new(kind).seed(seed).config(config);
        if wrap {
            spec = spec.recovering(RecoveryConfig::default());
        }
        let result = scenario.execute(&spec).unwrap_or_else(|e| panic!("{e}"));
        prop_assert!(
            result.conservation_residual().abs() <= 1e-6 * result.dispatched_work.abs().max(1.0),
            "ledger residual {} (dispatched {}, lost {}, outstanding {})",
            result.conservation_residual(), result.dispatched_work,
            result.lost_work, result.outstanding_work
        );
        prop_assert!(
            result.completed_work() <= scenario.w_total * (1.0 + 1e-6),
            "completed more than the workload: {}", result.completed_work()
        );
        let n = scenario.platform.num_workers();
        let trace = result.trace.expect("trace recorded");
        let violations = trace.validate(n);
        prop_assert!(violations.is_empty(), "{:?}", violations);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The UMR chunk sequence satisfies the uniform-round recursion and the
    /// workload constraint for arbitrary valid inputs.
    #[test]
    fn umr_schedule_structure(
        n in 2usize..=32,
        ratio in 1.05f64..=3.0,
        clat in 0.0f64..=2.0,
        nlat in 0.0f64..=2.0,
        w in 10.0f64..=5000.0,
    ) {
        use rumr::{UmrInputs, UmrSchedule};
        let platform = rumr::HomogeneousParams::table1(n, ratio, clat, nlat).build().unwrap();
        let inputs = UmrInputs::from_platform(&platform, w).unwrap();
        let schedule = UmrSchedule::solve(inputs).unwrap();
        let chunks = schedule.round_chunks();
        prop_assert!(!chunks.is_empty());
        // All chunks strictly positive.
        for &c in chunks {
            prop_assert!(c > 0.0, "non-positive chunk in {:?}", chunks);
        }
        // Conservation.
        let total: f64 = chunks.iter().sum::<f64>() * n as f64;
        prop_assert!((total - w).abs() < 1e-6 * w, "sum {} vs {}", total, w);
        // Uniform-round recursion between consecutive rounds (the last
        // round absorbs the floating-point residual, so skip the final
        // pair's check when M > 1 only if it was adjusted; tolerance covers
        // it).
        let theta = inputs.theta();
        let eta = inputs.eta();
        for w2 in chunks.windows(2).take(chunks.len().saturating_sub(2)) {
            let expected = theta * w2[0] + eta;
            prop_assert!(
                (w2[1] - expected).abs() < 1e-6 * (1.0 + expected.abs()),
                "recursion violated: {} -> {} (expected {})", w2[0], w2[1], expected
            );
        }
    }

    /// Factoring chunk sequences are non-increasing and conserve workload.
    #[test]
    fn factoring_sequence_structure(
        n in 1usize..=32,
        w in 1.0f64..=5000.0,
        factor in 1.2f64..=4.0,
        min_chunk in 0.5f64..=20.0,
    ) {
        use dls_sched::{ChunkSource, FactoringSource};
        let mut source = FactoringSource::new(w, n, factor, min_chunk);
        let mut chunks = Vec::new();
        while let Some(c) = source.next_chunk() {
            prop_assert!(c > 0.0);
            chunks.push(c);
            prop_assert!(chunks.len() < 100_000, "sequence does not terminate");
        }
        let total: f64 = chunks.iter().sum();
        prop_assert!((total - w).abs() < 1e-6 * w.max(1.0));
        // Non-increasing, except that the final balanced batch (at most n
        // chunks) may bounce back up: it splits the remainder into the
        // largest bound-respecting chunk count, so its chunks land in
        // [bound, 2·bound) and can overshoot an opening chunk that was
        // already near the bound.
        let body = chunks.len().saturating_sub(n);
        for pair in chunks[..body.max(1)].windows(2) {
            prop_assert!(pair[1] <= pair[0] + 1e-9, "increasing chunks: {:?}", pair);
        }
        let floor = min_chunk.max(1.0);
        if let Some(&first) = chunks.first() {
            for &c in &chunks[body..] {
                prop_assert!(
                    c <= first.max(2.0 * floor) + 1e-9,
                    "tail chunk {} above first {} and above 2x the {} floor",
                    c, first, floor
                );
            }
        }
    }

    /// The MI linear system solves with a tiny residual and positive chunks
    /// on feasible configurations, and its plan conserves the workload.
    #[test]
    fn mi_schedule_structure(
        n in 2usize..=16,
        ratio in 1.1f64..=3.0,
        x in 1usize..=4,
        w in 10.0f64..=5000.0,
    ) {
        use rumr::sched::MiSchedule;
        let platform = rumr::HomogeneousParams::table1(n, ratio, 0.0, 0.0).build().unwrap();
        match MiSchedule::solve(&platform, w, x) {
            Ok(s) => {
                let total: f64 = s.chunks().iter().flatten().sum();
                prop_assert!((total - w).abs() < 1e-6 * w);
                for &c in s.chunks().iter().flatten() {
                    prop_assert!(c > 0.0);
                }
            }
            // Infeasible installment counts are allowed; the scheduler
            // falls back to fewer installments in that case.
            Err(rumr::sched::MiError::Infeasible { .. }) => {}
            Err(e) => return Err(TestCaseError::fail(format!("{e}"))),
        }
    }

    /// Pinned regression (from the checked-in proptest seed file): this
    /// parameter combination once produced an increasing chunk pair in the
    /// factoring tail. Kept as an explicit test so the case survives even
    /// if the regression file is pruned.
    #[test]
    fn factoring_regression_n6(_x in 0u8..1) {
        use dls_sched::{ChunkSource, FactoringSource};
        let (n, w, factor, min_chunk) = (6usize, 933.3110134737071f64, 1.2f64, 0.5f64);
        let mut source = FactoringSource::new(w, n, factor, min_chunk);
        let mut chunks = Vec::new();
        while let Some(c) = source.next_chunk() {
            prop_assert!(c > 0.0);
            chunks.push(c);
            prop_assert!(chunks.len() < 100_000);
        }
        let total: f64 = chunks.iter().sum();
        prop_assert!((total - w).abs() < 1e-6 * w);
        let body = chunks.len().saturating_sub(n);
        for pair in chunks[..body.max(1)].windows(2) {
            prop_assert!(pair[1] <= pair[0] + 1e-9, "increasing chunks: {:?}", pair);
        }
    }

    /// The RUMR phase split always partitions the workload and respects the
    /// paper's boundary rules.
    #[test]
    fn phase_split_partitions(
        w in 1.0f64..=10_000.0,
        n in 1usize..=64,
        clat in 0.0f64..=2.0,
        nlat in 0.0f64..=2.0,
        error in 0.0f64..=2.0,
    ) {
        use rumr::sched::{phase_split, RumrConfig};
        let cfg = RumrConfig::with_known_error(error);
        let split = phase_split(w, n, clat, nlat, &cfg);
        prop_assert!(split.w1 >= 0.0 && split.w2 >= 0.0);
        prop_assert!((split.w1 + split.w2 - w).abs() < 1e-9 * w);
        if error <= 0.0 {
            prop_assert_eq!(split.w2, 0.0);
        }
        if error >= 1.0 {
            prop_assert_eq!(split.w1, 0.0);
        }
        // The threshold rule: a non-empty phase 2 amortizes one round of
        // empty-chunk overhead per worker.
        if error > 0.0 && error < 1.0 && split.w2 > 0.0 {
            prop_assert!(split.w2 / n as f64 >= clat + nlat * n as f64 - 1e-9);
        }
    }
}
