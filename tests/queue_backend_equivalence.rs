//! Queue-backend equivalence: the calendar queue is an optimization, not
//! a semantic change.
//!
//! The engine's event queue pops events in exact `(time, seq)` order for
//! both backends, so every run — any scheduler kind, any fault plan, any
//! platform — must be *bit-identical* between `Heap` and `Calendar`:
//! same makespans, same work accounting, and byte-identical `Full`
//! traces. These properties are what allowed flipping the default backend
//! to `Calendar` without touching a single golden value.

use proptest::prelude::*;
use rumr::{
    FaultModel, FaultPlan, PoissonFaults, QueueBackend, RecoveryConfig, RumrConfig, RunSpec,
    Scenario, SchedulerKind, SimConfig, SimResult, TraceMode,
};

/// Random-but-sane Table-1-style scenario (kept small for debug builds).
fn scenario_strategy() -> impl Strategy<Value = (Scenario, f64)> {
    (
        2usize..=8,       // workers
        1.1f64..=3.0,     // bandwidth ratio
        0.0f64..=0.8,     // cLat
        0.0f64..=0.8,     // nLat
        0.0f64..=0.6,     // error
        100.0f64..=400.0, // workload
    )
        .prop_map(|(n, ratio, clat, nlat, error, w)| {
            let mut s = Scenario::table1(n, ratio, clat, nlat, error);
            s.w_total = w;
            (s, error)
        })
}

fn kinds(error: f64) -> Vec<SchedulerKind> {
    vec![
        SchedulerKind::rumr_known_error(error),
        SchedulerKind::AdaptiveRumr,
        SchedulerKind::HetRumr(RumrConfig::with_known_error(error)),
        SchedulerKind::Umr,
        SchedulerKind::HetUmr,
        SchedulerKind::Mi { installments: 2 },
        SchedulerKind::OneRound,
        SchedulerKind::Factoring,
        SchedulerKind::Fsc { error },
        SchedulerKind::Gss,
        SchedulerKind::Tss,
        SchedulerKind::EqualStatic,
    ]
}

fn config(backend: QueueBackend, faults: &FaultModel) -> SimConfig {
    SimConfig {
        trace_mode: TraceMode::Full,
        faults: faults.clone(),
        queue_backend: backend,
        ..Default::default()
    }
}

fn fault_plans(n: usize) -> Vec<FaultModel> {
    vec![
        FaultModel::None,
        FaultModel::Plan(
            FaultPlan::new()
                .crash_recover(10.0, n / 2, 15.0)
                .crash(18.0, 0),
        ),
        // A dense Poisson process so calendar-bucket migration and
        // overflow paths are exercised under redispatch load.
        FaultModel::Poisson(PoissonFaults {
            mttf: 30.0,
            mttr: Some(8.0),
            link_mtbf: None,
            horizon: 500.0,
            seed: 5,
        }),
    ]
}

/// Bit-for-bit comparison of everything a run reports, including the full
/// event trace (compared via `Debug` formatting, which prints every f64
/// exactly — a byte-identical check, not an epsilon one).
fn assert_runs_identical(heap: &SimResult, cal: &SimResult, label: &str) {
    assert_eq!(
        heap.makespan.to_bits(),
        cal.makespan.to_bits(),
        "{label}: makespan differs: {} vs {}",
        heap.makespan,
        cal.makespan
    );
    assert_eq!(heap.num_chunks, cal.num_chunks, "{label}: num_chunks");
    assert_eq!(heap.events, cal.events, "{label}: event count");
    assert_eq!(
        heap.dispatched_work.to_bits(),
        cal.dispatched_work.to_bits(),
        "{label}: dispatched_work"
    );
    assert_eq!(
        heap.lost_work.to_bits(),
        cal.lost_work.to_bits(),
        "{label}: lost_work"
    );
    assert_eq!(heap.lost_chunks, cal.lost_chunks, "{label}: lost_chunks");
    assert_eq!(
        heap.redispatched_work.to_bits(),
        cal.redispatched_work.to_bits(),
        "{label}: redispatched_work"
    );
    for (w, (x, y)) in heap
        .per_worker_work
        .iter()
        .zip(&cal.per_worker_work)
        .enumerate()
    {
        assert_eq!(x.to_bits(), y.to_bits(), "{label}: per_worker_work[{w}]");
    }
    let (ht, ct) = (
        heap.trace.as_ref().expect("Full records a trace"),
        cal.trace.as_ref().expect("Full records a trace"),
    );
    assert_eq!(
        ht.events().len(),
        ct.events().len(),
        "{label}: trace length"
    );
    for (i, (a, b)) in ht.events().iter().zip(ct.events()).enumerate() {
        let (da, db) = (format!("{a:?}"), format!("{b:?}"));
        assert_eq!(da, db, "{label}: trace event {i} differs");
    }
    let (hm, cm) = (
        heap.metrics.as_ref().expect("summary recorded"),
        cal.metrics.as_ref().expect("summary recorded"),
    );
    assert_eq!(
        hm.event_counts, cm.event_counts,
        "{label}: per-event-type counters"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Heap and calendar produce identical pop order — and therefore
    /// byte-identical runs — for every scheduler kind and fault plan.
    #[test]
    fn backends_are_bit_identical(
        (scenario, error) in scenario_strategy(),
        seed in 0u64..1000,
    ) {
        let n = scenario.platform.num_workers();
        for faults in fault_plans(n) {
            for kind in kinds(error) {
                let run = |backend| {
                    scenario
                        .execute(&RunSpec::new(kind).seed(seed).config(config(backend, &faults)))
                        .unwrap_or_else(|e| panic!("{kind}: {e}"))
                };
                let heap = run(QueueBackend::Heap);
                let cal = run(QueueBackend::Calendar);
                assert_runs_identical(&heap, &cal, &format!("{kind} ({faults:?})"));
            }
        }
    }

    /// Same property through the `Recovering<S>` wrapper — the path the
    /// faulty benchmark cases and the degradation sweep use.
    #[test]
    fn backends_are_bit_identical_recovering(
        (scenario, error) in scenario_strategy(),
        seed in 0u64..1000,
    ) {
        let n = scenario.platform.num_workers();
        let faults = FaultModel::Plan(FaultPlan::new().crash_recover(8.0, n - 1, 12.0));
        let kind = SchedulerKind::rumr_known_error(error);
        let run = |backend| {
            scenario
                .execute(
                    &RunSpec::new(kind)
                        .seed(seed)
                        .config(config(backend, &faults))
                        .recovering(RecoveryConfig::default()),
                )
                .unwrap_or_else(|e| panic!("{kind}: {e}"))
        };
        let heap = run(QueueBackend::Heap);
        let cal = run(QueueBackend::Calendar);
        assert_runs_identical(&heap, &cal, "recovering");
    }
}

/// The 16 pinned benchmark cases (2 platforms × 4 schedulers ×
/// {fault-free, faulty}, mirroring `snapshot::pinned_cases`) must have
/// byte-identical `Full` traces across backends — the snapshot's timing
/// rows compare like with like.
#[test]
fn pinned_bench_cases_are_bit_identical() {
    const CASE_ERROR: f64 = 0.3;
    let pinned_faults = FaultModel::Poisson(PoissonFaults {
        mttf: 60.0,
        mttr: Some(15.0),
        link_mtbf: None,
        horizon: 2000.0,
        seed: 11,
    });
    let homog = Scenario::table1(20, 1.6, 0.3, 0.2, CASE_ERROR);
    let het = Scenario::heterogeneous_demo(20, CASE_ERROR);
    let cases: Vec<(&Scenario, SchedulerKind)> = vec![
        (&homog, SchedulerKind::Umr),
        (&homog, SchedulerKind::rumr_known_error(CASE_ERROR)),
        (&homog, SchedulerKind::Factoring),
        (&homog, SchedulerKind::Mi { installments: 3 }),
        (&het, SchedulerKind::HetUmr),
        (
            &het,
            SchedulerKind::HetRumr(RumrConfig::with_known_error(CASE_ERROR)),
        ),
        (&het, SchedulerKind::Factoring),
        (&het, SchedulerKind::Gss),
    ];
    for faulty in [false, true] {
        let faults = if faulty {
            pinned_faults.clone()
        } else {
            FaultModel::None
        };
        for (scenario, kind) in &cases {
            let run = |backend| {
                let mut spec = RunSpec::new(*kind)
                    .seed(42)
                    .config(config(backend, &faults));
                if faulty {
                    spec = spec.recovering(RecoveryConfig::default());
                }
                scenario
                    .execute(&spec)
                    .unwrap_or_else(|e| panic!("{kind}: {e}"))
            };
            let heap = run(QueueBackend::Heap);
            let cal = run(QueueBackend::Calendar);
            assert_runs_identical(&heap, &cal, &format!("pinned {kind} faulty={faulty}"));
        }
    }
}

/// The calendar queue's storage must reach a fixed point under
/// `reset`/`run_reusing`: after a warm-up rep sizes the buckets, 100
/// further repetitions of the same scenario may not grow them.
#[test]
fn calendar_reset_reuse_does_not_grow() {
    let scenario = Scenario::table1(20, 1.6, 0.3, 0.2, 0.3);
    let kind = SchedulerKind::rumr_known_error(0.3);
    let cfg = SimConfig {
        queue_backend: QueueBackend::Calendar,
        faults: FaultModel::Poisson(PoissonFaults {
            mttf: 60.0,
            mttr: Some(15.0),
            link_mtbf: None,
            horizon: 2000.0,
            seed: 11,
        }),
        ..SimConfig::default()
    };
    let mut runner = scenario.runner(cfg.clone());
    let proto = runner.prototype(&kind).unwrap();
    let spec = RunSpec::new(kind)
        .config(cfg)
        .recovering(RecoveryConfig::default())
        .with_prototype(proto);
    // Warm-up: the first runs size the buckets, and the width retune on
    // `clear` reaches its fixed point by the second repetition.
    for _ in 0..3 {
        runner.execute_at(&spec, 7).unwrap();
    }
    let warm = runner.debug_queue_capacity();
    assert!(warm > 0, "probe must report calendar storage");
    for rep in 0..100 {
        runner.execute_at(&spec, 7).unwrap();
        assert_eq!(
            runner.debug_queue_capacity(),
            warm,
            "bucket storage grew at rep {rep}"
        );
    }
}

/// A spec with a pre-planned prototype attached is bit-identical to one
/// that plans per run — the snapshot's faulty cases lean on it to hoist
/// the planner out of the timed loop.
#[test]
fn recovering_prototype_matches_fresh_builds() {
    let scenario = Scenario::heterogeneous_demo(20, 0.3);
    let kind = SchedulerKind::HetUmr;
    let faults = FaultModel::Poisson(PoissonFaults {
        mttf: 60.0,
        mttr: Some(15.0),
        link_mtbf: None,
        horizon: 2000.0,
        seed: 11,
    });
    let cfg = SimConfig {
        faults,
        ..SimConfig::default()
    };
    let mut runner = scenario.runner(cfg.clone());
    let proto = runner.prototype(&kind).unwrap();
    let plain = RunSpec::new(kind)
        .config(cfg)
        .recovering(RecoveryConfig::default());
    let stamped_spec = plain.clone().with_prototype(proto);
    for seed in 0..10 {
        let fresh = runner.execute_at(&plain, seed).unwrap();
        let stamped = runner.execute_at(&stamped_spec, seed).unwrap();
        assert_eq!(
            fresh.makespan.to_bits(),
            stamped.makespan.to_bits(),
            "seed {seed}: prototype path changed the makespan"
        );
        assert_eq!(fresh.events, stamped.events, "seed {seed}: event count");
    }
}
