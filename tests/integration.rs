//! Cross-crate integration tests: every scheduler running end-to-end on the
//! simulator, checked for conservation, trace validity, and agreement with
//! the analytic models.

use rumr::{RumrConfig, RunSpec, Scenario, SchedulerKind, TraceMode};

fn all_kinds(error: f64) -> Vec<SchedulerKind> {
    vec![
        SchedulerKind::rumr_known_error(error),
        SchedulerKind::Rumr(RumrConfig::default()),
        SchedulerKind::rumr_plain_phase1(error),
        SchedulerKind::rumr_fixed_fraction(0.7, Some(error)),
        SchedulerKind::Umr,
        SchedulerKind::Mi { installments: 1 },
        SchedulerKind::Mi { installments: 3 },
        SchedulerKind::Factoring,
        SchedulerKind::Fsc { error },
        SchedulerKind::EqualStatic,
        SchedulerKind::SelfScheduling { unit: 20.0 },
        SchedulerKind::HetUmr,
    ]
}

#[test]
fn every_scheduler_conserves_workload_and_validates() {
    for (n, r, clat, nlat, error) in [
        (10, 1.5, 0.2, 0.1, 0.0),
        (10, 1.5, 0.2, 0.1, 0.3),
        (20, 1.2, 0.0, 0.6, 0.5),
        (5, 2.0, 1.0, 1.0, 0.15),
    ] {
        let scenario = Scenario::table1(n, r, clat, nlat, error);
        for kind in all_kinds(error) {
            let result = scenario
                .execute(&RunSpec::new(kind).seed(11).trace_mode(TraceMode::Full))
                .unwrap_or_else(|e| panic!("{kind}: {e}"));
            assert!(
                (result.completed_work() - 1000.0).abs() < 1e-6,
                "{kind} on N={n} r={r} cLat={clat} nLat={nlat} e={error}: completed {}",
                result.completed_work()
            );
            let trace = result.trace.expect("trace recorded");
            let violations = trace.validate(n);
            assert!(
                violations.is_empty(),
                "{kind}: trace violations {violations:?}"
            );
            assert!(result.makespan > 0.0);
            // Physical floor: total workload must cross the master's link.
            let lb = scenario.platform.makespan_lower_bound(1000.0);
            // Effective durations can undershoot predictions by the error
            // distribution's support, so scale the bound accordingly.
            let slack = 1.0 - 4.0 * error;
            if slack > 0.0 {
                assert!(
                    result.makespan > lb * slack * 0.5,
                    "{kind}: makespan {} below physical floor {}",
                    result.makespan,
                    lb
                );
            }
        }
    }
}

#[test]
fn rumr_equals_umr_without_error_everywhere() {
    for (n, r, clat, nlat) in [
        (10, 1.5, 0.3, 0.3),
        (15, 1.3, 0.0, 0.8),
        (30, 2.0, 0.7, 0.0),
    ] {
        let scenario = Scenario::table1(n, r, clat, nlat, 0.0);
        let rumr = scenario
            .execute(&RunSpec::new(SchedulerKind::rumr_known_error(0.0)))
            .unwrap();
        let umr = scenario.execute(&RunSpec::new(SchedulerKind::Umr)).unwrap();
        assert_eq!(rumr.num_chunks, umr.num_chunks);
        assert!((rumr.makespan - umr.makespan).abs() < 1e-9);
    }
}

#[test]
fn deterministic_across_identical_runs() {
    let scenario = Scenario::table1(12, 1.7, 0.4, 0.2, 0.35);
    for kind in all_kinds(0.35) {
        let a = scenario.execute(&RunSpec::new(kind).seed(99)).unwrap();
        let b = scenario.execute(&RunSpec::new(kind).seed(99)).unwrap();
        assert_eq!(a.makespan, b.makespan, "{kind} not deterministic");
        assert_eq!(a.num_chunks, b.num_chunks);
    }
}

#[test]
fn umr_simulation_matches_analytic_makespan() {
    use rumr::{UmrInputs, UmrSchedule};
    for (n, r, clat, nlat) in [(10, 1.5, 0.4, 0.2), (25, 1.9, 0.1, 0.6)] {
        let scenario = Scenario::table1(n, r, clat, nlat, 0.0);
        let inputs = UmrInputs::from_platform(&scenario.platform, 1000.0).unwrap();
        let schedule = UmrSchedule::solve(inputs).unwrap();
        let result = scenario.execute(&RunSpec::new(SchedulerKind::Umr)).unwrap();
        let predicted = schedule.predicted_makespan();
        assert!(
            (result.makespan - predicted).abs() < 1e-6 * predicted,
            "sim {} vs analytic {}",
            result.makespan,
            predicted
        );
    }
}

#[test]
fn robustness_ordering_at_high_error() {
    // The paper's central claim, at one representative low-latency point:
    // with large prediction errors, RUMR beats plain UMR on average, and
    // both beat the naive static split.
    let error = 0.45;
    let scenario = Scenario::table1(20, 1.6, 0.2, 0.1, error);
    let reps = 40;
    let rumr = scenario
        .execute_mean(&RunSpec::new(SchedulerKind::rumr_known_error(error)).reps(reps))
        .unwrap();
    let umr = scenario
        .execute_mean(&RunSpec::new(SchedulerKind::Umr).seed(1000).reps(reps))
        .unwrap();
    let eq = scenario
        .execute_mean(
            &RunSpec::new(SchedulerKind::EqualStatic)
                .seed(2000)
                .reps(reps),
        )
        .unwrap();
    assert!(
        rumr < umr,
        "RUMR {rumr} should beat UMR {umr} at error {error}"
    );
    assert!(umr < eq, "UMR {umr} should beat EqualStatic {eq}");
}

#[test]
fn performance_ordering_without_error() {
    // With exact predictions on a latency-laden platform, UMR (and RUMR,
    // which equals it) must beat the one-round and self-scheduling
    // baselines.
    let scenario = Scenario::table1(10, 1.4, 0.4, 0.3, 0.0);
    let umr = scenario
        .execute(&RunSpec::new(SchedulerKind::Umr))
        .unwrap()
        .makespan;
    let mi1 = scenario
        .execute(&RunSpec::new(SchedulerKind::Mi { installments: 1 }))
        .unwrap()
        .makespan;
    let eq = scenario
        .execute(&RunSpec::new(SchedulerKind::EqualStatic))
        .unwrap()
        .makespan;
    let selfs = scenario
        .execute(&RunSpec::new(SchedulerKind::SelfScheduling { unit: 10.0 }))
        .unwrap()
        .makespan;
    assert!(umr < mi1, "UMR {umr} vs MI-1 {mi1}");
    assert!(umr < eq, "UMR {umr} vs EqualStatic {eq}");
    assert!(umr < selfs, "UMR {umr} vs SelfSched {selfs}");
}

#[test]
fn workload_crate_plugs_into_scheduling() {
    use dls_workloads::{DivisibleApp, ImageFeatureExtraction};
    let image = ImageFeatureExtraction::generate(40, 25, 6, 3.0, 5);
    let platform = rumr::HomogeneousParams::table1(8, 1.5, 0.2, 0.1)
        .build()
        .unwrap();
    let scenario = image.scenario(platform);
    let result = scenario
        .execute(&RunSpec::new(image.recommended()).seed(3))
        .unwrap();
    assert!((result.completed_work() - image.total_units()).abs() < 1e-6);
}

#[test]
fn uniform_error_model_behaves_like_normal() {
    // The paper: "we also ran all the experiments under a uniformly
    // distributed error model, but our results were essentially similar."
    let error = 0.4;
    let mut normal_scenario = Scenario::table1(15, 1.6, 0.3, 0.2, error);
    let mut uniform_scenario = normal_scenario.clone();
    normal_scenario.error_model = rumr::ErrorModel::TruncatedNormal { error };
    uniform_scenario.error_model = rumr::ErrorModel::Uniform { error };
    let kind = SchedulerKind::rumr_known_error(error);
    let reps = 40;
    let spec = RunSpec::new(kind).reps(reps);
    let a = normal_scenario.execute_mean(&spec).unwrap();
    let b = uniform_scenario.execute_mean(&spec).unwrap();
    let ratio = a / b;
    assert!(
        (0.9..1.1).contains(&ratio),
        "normal {a} vs uniform {b}: ratio {ratio}"
    );
}
