//! Micro-scale checks that the experiment harness reproduces the *shapes*
//! of the paper's tables and figures (the full grids are exercised by the
//! `dls-experiments` binaries; these tests use tiny grids so the whole
//! suite stays fast).

use dls_experiments::{
    fig4a, overall_win_rate, paper_competitors, relative_series, run_sweep, win_rate_table,
    Competitor, ErrorModelKind, SweepConfig, Table1Grid,
};

fn micro_config(errors: Vec<f64>, reps: u64) -> SweepConfig {
    SweepConfig {
        grid: Table1Grid {
            n_values: vec![10, 20],
            ratio_values: vec![1.4, 1.8],
            clat_values: vec![0.2, 0.6],
            nlat_values: vec![0.1, 0.4],
        },
        errors,
        reps,
        root_seed: 7,
        threads: 0,
        model: ErrorModelKind::Normal,
        w_total: 1000.0,
        progress: false,
        trace_mode: rumr::TraceMode::Off,
        queue_backend: rumr::QueueBackend::default(),
        speeds: rumr::SpeedModel::Declared,
        audit: false,
    }
}

#[test]
fn table2_shape_rumr_wins_majority_overall() {
    let cfg = micro_config(vec![0.04, 0.24, 0.44], 6);
    let sweep = run_sweep(&cfg, &paper_competitors());
    let rate = overall_win_rate(&sweep);
    assert!(
        rate > 60.0,
        "RUMR should win well over half of all comparisons, got {rate:.1}%"
    );

    let table = win_rate_table(&sweep, 1.0);
    // UMR's win-rate trend: RUMR gains on UMR as error grows.
    let umr_row = &table.percentages[table.rows.iter().position(|r| r == "UMR").unwrap()];
    assert!(
        umr_row[4] > umr_row[0],
        "RUMR-vs-UMR win rate should grow with error: {umr_row:?}"
    );
}

#[test]
fn fig4_shape_trends() {
    let cfg = micro_config(vec![0.0, 0.2, 0.4], 8);
    let sweep = run_sweep(&cfg, &paper_competitors());
    let series = fig4a(&sweep);

    // UMR: relative makespan rises with error (loses robustness).
    let umr = series.series("UMR").unwrap();
    assert!(
        umr[2] > umr[0] + 0.01,
        "UMR relative makespan should grow with error: {umr:?}"
    );
    // Factoring: relative makespan falls with error (robustness pays off).
    let fac = series.series("Factoring").unwrap();
    assert!(
        fac[2] < fac[0] - 0.01,
        "Factoring relative makespan should shrink with error: {fac:?}"
    );
    // MI-x stays clearly above 1 on average (never close to RUMR).
    for mi in ["MI-2", "MI-3", "MI-4"] {
        let row = series.series(mi).unwrap();
        for (i, v) in row.iter().enumerate() {
            assert!(*v > 1.0, "{mi} at error index {i}: {v} should exceed 1");
        }
    }
}

#[test]
fn fig6_shape_original_split_competitive() {
    // The error-driven split should beat or match fixed splits when error
    // is small (it skips phase 2 entirely), per the paper's Fig. 6.
    let cfg = micro_config(vec![0.04], 8);
    let competitors = vec![
        Competitor::RumrKnown,
        Competitor::RumrFixed(0.5),
        Competitor::RumrFixed(0.8),
    ];
    let sweep = run_sweep(&cfg, &competitors);
    let series = relative_series(&sweep, |_| true);
    let r50 = series.series("RUMR_50").unwrap()[0];
    let r80 = series.series("RUMR_80").unwrap()[0];
    assert!(
        r50 > 1.0,
        "at small error a 50% fixed split must lose to the original: {r50}"
    );
    // 80/20 is the better static choice (closer to 1).
    assert!(
        r80 < r50,
        "RUMR_80 ({r80}) should beat RUMR_50 ({r50}) at small error"
    );
}

#[test]
fn fig7_shape_out_of_order_is_small_effect() {
    let cfg = micro_config(vec![0.0, 0.4], 10);
    let competitors = vec![Competitor::RumrKnown, Competitor::RumrPlain];
    let sweep = run_sweep(&cfg, &competitors);
    let series = relative_series(&sweep, |_| true);
    let plain = series.series("RUMR-plain").unwrap();
    // At error 0 the variants are identical.
    assert!(
        (plain[0] - 1.0).abs() < 1e-9,
        "identical at zero error: {plain:?}"
    );
    // At high error the effect exists but stays small (paper: ~1%).
    assert!(
        (plain[1] - 1.0).abs() < 0.10,
        "out-of-order dispatch should be a small effect: {plain:?}"
    );
}

#[test]
fn fsc_dominated_by_factoring() {
    // §5.1: FSC "performs worse than Factoring in most of our experiments.
    // Consequently we do not show results for FSC."
    let cfg = micro_config(vec![0.1, 0.3, 0.5], 6);
    let competitors = vec![
        Competitor::RumrKnown, // reference column (unused here)
        Competitor::Factoring,
        Competitor::Fsc,
    ];
    let sweep = run_sweep(&cfg, &competitors);
    let fac_col = sweep.column("Factoring").unwrap();
    let fsc_col = sweep.column("FSC").unwrap();
    let mut factoring_wins = 0;
    for cell in &sweep.cells {
        if cell.means[fac_col] < cell.means[fsc_col] {
            factoring_wins += 1;
        }
    }
    assert!(
        factoring_wins * 2 > sweep.cells.len(),
        "Factoring should beat FSC in most experiments: {factoring_wins}/{}",
        sweep.cells.len()
    );
}

#[test]
fn adaptive_rumr_tracks_oracle() {
    // The §6 future-work scheduler should stay close to oracle RUMR on
    // average over the micro-grid.
    let cfg = micro_config(vec![0.3], 6);
    let competitors = vec![Competitor::RumrKnown, Competitor::RumrAdaptive];
    let sweep = run_sweep(&cfg, &competitors);
    let series = relative_series(&sweep, |_| true);
    let adaptive = series.series("RUMR-adaptive").unwrap()[0];
    assert!(
        adaptive < 1.2,
        "adaptive RUMR should be within 20% of the oracle: {adaptive}"
    );
}

#[test]
fn inverse_and_uniform_models_run() {
    for model in [ErrorModelKind::Uniform, ErrorModelKind::Inverse] {
        let mut cfg = micro_config(vec![0.3], 3);
        cfg.model = model;
        cfg.grid = Table1Grid {
            n_values: vec![10],
            ratio_values: vec![1.5],
            clat_values: vec![0.2],
            nlat_values: vec![0.2],
        };
        let sweep = run_sweep(&cfg, &paper_competitors());
        assert_eq!(sweep.cells.len(), 1);
        assert!(sweep.cells[0]
            .means
            .iter()
            .all(|m| m.is_finite() && *m > 0.0));
    }
}
