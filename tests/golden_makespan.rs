//! Golden-value regression tests: the fault-injection machinery must leave
//! fault-free runs **bit-for-bit** identical.
//!
//! The expected bit patterns below were captured from the engine before the
//! fault extension landed (same scenario constructors, same seeds). Every
//! one of these runs uses `FaultModel::None` — the default — so any drift
//! here means the fault machinery leaked into the reliable-platform path
//! (e.g. by consuming an extra event sequence number or RNG draw).
//!
//! The UMR and Factoring pins were refreshed when the numerical edge-case
//! fixes landed: `expm1` in UMR's chunk-0 solve shifts one seed by 2 ulp,
//! and Factoring's minimum-chunk floor merges degenerate tail chunks
//! (69 → 64 chunks on this platform).

use rumr::{
    FaultModel, FaultPlan, RecoveryConfig, RumrConfig, RunSpec, Scenario, SchedulerKind, SimConfig,
};

fn table1() -> Scenario {
    Scenario::table1(10, 1.5, 0.2, 0.2, 0.3)
}

#[test]
fn rumr_makespans_are_bit_identical() {
    let s = table1();
    let kind = SchedulerKind::rumr_known_error(0.3);
    for (seed, bits, chunks) in [
        (1_u64, 0x405db99083535599_u64, 111_usize),
        (42, 0x405d4f22e1bfb2a9, 111),
        (20030623, 0x405d1fdd4888ce5c, 111),
    ] {
        let r = s.execute(&RunSpec::new(kind).seed(seed)).unwrap();
        assert_eq!(
            r.makespan.to_bits(),
            bits,
            "rumr seed {seed}: got {} ({:#x})",
            r.makespan,
            r.makespan.to_bits()
        );
        assert_eq!(r.num_chunks, chunks, "rumr seed {seed} chunk count");
    }
}

#[test]
fn umr_makespans_are_bit_identical() {
    let s = table1();
    for (seed, bits, chunks) in [
        (1_u64, 0x40604bfbb7ef18ec_u64, 90_usize),
        (42, 0x405e2f0564bee54a, 90),
        (20030623, 0x405f679799aa810e, 90),
    ] {
        let r = s
            .execute(&RunSpec::new(SchedulerKind::Umr).seed(seed))
            .unwrap();
        assert_eq!(
            r.makespan.to_bits(),
            bits,
            "umr seed {seed}: got {} ({:#x})",
            r.makespan,
            r.makespan.to_bits()
        );
        assert_eq!(r.num_chunks, chunks, "umr seed {seed} chunk count");
    }
}

#[test]
fn factoring_makespans_are_bit_identical() {
    let s = table1();
    for (seed, bits, chunks) in [
        (1_u64, 0x40604c7c1fa2e4d7_u64, 64_usize),
        (42, 0x405fa4f6cdf20d43, 64),
        (20030623, 0x40610aac0f46c60e, 64),
    ] {
        let r = s
            .execute(&RunSpec::new(SchedulerKind::Factoring).seed(seed))
            .unwrap();
        assert_eq!(
            r.makespan.to_bits(),
            bits,
            "factoring seed {seed}: got {} ({:#x})",
            r.makespan,
            r.makespan.to_bits()
        );
        assert_eq!(r.num_chunks, chunks, "factoring seed {seed} chunk count");
    }
}

#[test]
fn exact_umr_is_bit_identical() {
    // Error-free scenario: exercises the no-injector code path.
    let s = Scenario::table1(10, 1.5, 0.2, 0.2, 0.0);
    let r = s.execute(&RunSpec::new(SchedulerKind::Umr)).unwrap();
    assert_eq!(
        r.makespan.to_bits(),
        0x405af6e29754aefa,
        "got {} ({:#x})",
        r.makespan,
        r.makespan.to_bits()
    );
    assert_eq!(r.num_chunks, 90);
}

#[test]
fn concurrent_factoring_is_bit_identical() {
    // Concurrent-transfer extension path (max-min fair uplink pool).
    let s = table1();
    let r = s
        .execute(
            &RunSpec::new(SchedulerKind::Factoring)
                .seed(7)
                .config(SimConfig {
                    max_concurrent_sends: 3,
                    uplink_capacity: Some(15.0),
                    ..Default::default()
                }),
        )
        .unwrap();
    assert_eq!(
        r.makespan.to_bits(),
        0x40614addf47ac3da,
        "got {} ({:#x})",
        r.makespan,
        r.makespan.to_bits()
    );
    assert_eq!(r.num_chunks, 64);
}

#[test]
fn heterogeneous_umr_makespans_are_bit_identical() {
    // Heterogeneous planner path (per-worker closed-form rounds). Guards the
    // buffer-reuse/prototype refactor on the non-uniform platform too.
    let s = Scenario::heterogeneous_demo(12, 0.3);
    for (seed, bits, chunks) in [
        (1_u64, 0x40561b076906d836_u64, 132_usize),
        (42, 0x40569e18c289ac14, 132),
        (20030623, 0x40578dcca1992a5a, 132),
    ] {
        let r = s
            .execute(&RunSpec::new(SchedulerKind::HetUmr).seed(seed))
            .unwrap();
        assert_eq!(
            r.makespan.to_bits(),
            bits,
            "het umr seed {seed}: got {} ({:#x})",
            r.makespan,
            r.makespan.to_bits()
        );
        assert_eq!(r.num_chunks, chunks, "het umr seed {seed} chunk count");
    }
}

#[test]
fn heterogeneous_rumr_makespans_are_bit_identical() {
    let s = Scenario::heterogeneous_demo(12, 0.3);
    let kind = SchedulerKind::HetRumr(RumrConfig::with_known_error(0.3));
    for (seed, bits, chunks) in [
        (1_u64, 0x40567732a913534d_u64, 150_usize),
        (42, 0x405593bbb298cee5, 150),
        (20030623, 0x4055a1ed35dc2e3f, 150),
    ] {
        let r = s.execute(&RunSpec::new(kind).seed(seed)).unwrap();
        assert_eq!(
            r.makespan.to_bits(),
            bits,
            "het rumr seed {seed}: got {} ({:#x})",
            r.makespan,
            r.makespan.to_bits()
        );
        assert_eq!(r.num_chunks, chunks, "het rumr seed {seed} chunk count");
    }
}

#[test]
fn recovering_factoring_faulty_run_is_bit_identical() {
    // Recovery path under a pinned fault plan: one crash that recovers and
    // one that does not. Pins the makespan bits *and* the loss accounting,
    // so engine-reuse changes cannot silently shift the redispatch path.
    let s = table1();
    let faults = FaultModel::Plan(FaultPlan::new().crash_recover(20.0, 3, 25.0).crash(45.0, 7));
    let cfg = SimConfig {
        faults,
        ..Default::default()
    };
    for (seed, bits, chunks) in [
        (1_u64, 0x4062c2790a4adfcf_u64, 112_usize),
        (42, 0x406230aa5e232912, 112),
    ] {
        let r = s
            .execute(
                &RunSpec::new(SchedulerKind::Factoring)
                    .seed(seed)
                    .config(cfg.clone())
                    .recovering(RecoveryConfig::default()),
            )
            .unwrap();
        assert_eq!(
            r.makespan.to_bits(),
            bits,
            "recovering factoring seed {seed}: got {} ({:#x})",
            r.makespan,
            r.makespan.to_bits()
        );
        assert_eq!(
            r.num_chunks, chunks,
            "recovering factoring seed {seed} chunks"
        );
        assert!(r.lost_chunks > 0, "the pinned plan must actually lose work");
        assert!(
            (r.completed_work() - s.w_total).abs() < 1e-9,
            "all work must still complete after recovery (got {})",
            r.completed_work()
        );
    }
}

#[test]
fn fault_free_results_have_empty_fault_accounting() {
    let s = table1();
    let r = s
        .execute(&RunSpec::new(SchedulerKind::rumr_known_error(0.3)).seed(1))
        .unwrap();
    assert_eq!(r.lost_work, 0.0);
    assert_eq!(r.lost_chunks, 0);
    assert_eq!(r.redispatched_work, 0.0);
    assert_eq!(r.outstanding_work, 0.0);
    assert!(r.lost_ranges.is_empty());
    assert!(r.conservation_residual().abs() < 1e-9);
}
