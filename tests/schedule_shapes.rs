//! Structural checks on executed schedules, via the trace-metrics module:
//! chunk-size signatures, gap-freedom, and link utilization match what the
//! paper's Figure 3 (UMR) and the RUMR two-phase design promise.

use dls_sim::TraceMetrics;
use rumr::{RunSpec, Scenario, SchedulerKind, TraceMode};

fn metrics(scenario: &Scenario, kind: &SchedulerKind, seed: u64) -> TraceMetrics {
    let result = scenario
        .execute(&RunSpec::new(*kind).seed(seed).trace_mode(TraceMode::Full))
        .expect("simulation succeeds");
    TraceMetrics::from_trace(
        result.trace.as_ref().expect("trace recorded"),
        scenario.platform.num_workers(),
    )
}

#[test]
fn umr_is_gap_free_with_exact_predictions() {
    // The whole point of the uniform-round condition: once a worker starts
    // computing it never waits for data again.
    for (n, r, clat, nlat) in [(10, 1.5, 0.4, 0.2), (20, 1.8, 0.3, 0.1)] {
        let scenario = Scenario::table1(n, r, clat, nlat, 0.0);
        let m = metrics(&scenario, &SchedulerKind::Umr, 0);
        assert!(
            m.total_gap_time() < 1e-9,
            "UMR must be gap-free at error 0, gaps: {:?}",
            m.gaps
        );
        assert!((m.mean_compute_density - 1.0).abs() < 1e-9);
    }
}

#[test]
fn umr_chunk_timeline_is_non_decreasing() {
    let scenario = Scenario::table1(10, 1.5, 0.3, 0.1, 0.0);
    let m = metrics(&scenario, &SchedulerKind::Umr, 0);
    for pair in m.chunk_timeline.windows(2) {
        assert!(
            pair[1] >= pair[0] - 1e-9,
            "UMR chunks must not shrink: {:?}",
            pair
        );
    }
}

#[test]
fn rumr_chunk_timeline_rises_then_falls() {
    // The two-phase signature: increasing (phase 1) then decreasing
    // (phase 2). The peak must sit strictly inside the timeline.
    let error = 0.35;
    let scenario = Scenario::table1(10, 1.6, 0.2, 0.05, error);
    let m = metrics(&scenario, &SchedulerKind::rumr_known_error(error), 3);
    let peak = m.peak_chunk_index().expect("chunks dispatched");
    assert!(peak > 0, "first chunk should not be the largest");
    assert!(
        peak < m.chunk_timeline.len() - 1,
        "last chunk should not be the largest (phase 2 shrinks chunks)"
    );
    // Phase 1 rises to the peak.
    for pair in m.chunk_timeline[..=peak].windows(2) {
        assert!(
            pair[1] >= pair[0] - 1e-9,
            "phase 1 must ramp up: {:?}",
            pair
        );
    }
    // Phase 2 (after the peak) never exceeds the peak again and ends small.
    let peak_size = m.chunk_timeline[peak];
    let last = *m.chunk_timeline.last().unwrap();
    assert!(last < peak_size * 0.5, "tail chunks should be small");
}

#[test]
fn factoring_gaps_reflect_missing_overlap() {
    // Factoring's pull-based dispatch cannot overlap transfers with the
    // requesting worker's computation: with exact predictions it must show
    // strictly more worker idleness than UMR.
    let scenario = Scenario::table1(10, 1.5, 0.3, 0.2, 0.0);
    let umr = metrics(&scenario, &SchedulerKind::Umr, 0);
    let fac = metrics(&scenario, &SchedulerKind::Factoring, 0);
    assert!(
        fac.total_gap_time() > umr.total_gap_time() + 1.0,
        "factoring gaps {} vs UMR gaps {}",
        fac.total_gap_time(),
        umr.total_gap_time()
    );
    assert!(fac.mean_compute_density < umr.mean_compute_density);
}

#[test]
fn link_utilization_sane() {
    let scenario = Scenario::table1(10, 1.2, 0.1, 0.1, 0.0);
    for kind in [SchedulerKind::Umr, SchedulerKind::Factoring] {
        let m = metrics(&scenario, &kind, 0);
        assert!(
            m.link_utilization > 0.0 && m.link_utilization <= 1.0 + 1e-9,
            "{kind}: utilization {}",
            m.link_utilization
        );
    }
}

#[test]
fn trace_driven_costs_shift_hot_chunks() {
    // A workload whose second half is 3x as expensive: under a trace-driven
    // profile the makespan must exceed the uniform-cost run because the
    // planner mispredicts the hot region.
    use rumr::sim::CostProfile;
    let mut costs = vec![1.0; 500];
    costs.extend(std::iter::repeat_n(3.0, 500));
    let uniform = Scenario::table1(10, 1.5, 0.2, 0.1, 0.0);
    let mut hot = uniform.clone();
    hot.cost_profile = Some(CostProfile::from_unit_costs(&costs));

    let kind = SchedulerKind::Umr;
    let base = uniform.execute(&RunSpec::new(kind)).unwrap().makespan;
    let skewed = hot.execute(&RunSpec::new(kind)).unwrap().makespan;
    assert!(
        skewed > base * 1.05,
        "hot tail must hurt the static plan: {skewed} vs {base}"
    );

    // A reactive scheduler absorbs the same skew better than the plan.
    let fac_skew = hot
        .execute(&RunSpec::new(SchedulerKind::Factoring))
        .unwrap()
        .makespan;
    let umr_skew = skewed;
    assert!(
        fac_skew < umr_skew,
        "factoring should absorb the skew: {fac_skew} vs {umr_skew}"
    );
}
