//! Trace-mode equivalence: observability must be free of behavior.
//!
//! The engine's `TraceMode` decides how much a run records, and the sweep
//! harness leans on `Off` for throughput — so these properties pin that
//! `Off` and `MetricsOnly` produce *bit-identical* results to `Full` for
//! every scheduler kind, with and without injected faults, across random
//! scenarios. Any divergence means recording leaked into simulation logic.

use proptest::prelude::*;
use rumr::{
    FaultModel, FaultPlan, RecoveryConfig, RunSpec, Scenario, SchedulerKind, SimConfig, SimResult,
    TraceMode,
};

/// Random-but-sane Table-1-style scenario (kept small for debug builds).
fn scenario_strategy() -> impl Strategy<Value = (Scenario, f64)> {
    (
        2usize..=8,       // workers
        1.1f64..=3.0,     // bandwidth ratio
        0.0f64..=0.8,     // cLat
        0.0f64..=0.8,     // nLat
        0.0f64..=0.6,     // error
        100.0f64..=400.0, // workload
    )
        .prop_map(|(n, ratio, clat, nlat, error, w)| {
            let mut s = Scenario::table1(n, ratio, clat, nlat, error);
            s.w_total = w;
            (s, error)
        })
}

fn kinds(error: f64) -> Vec<SchedulerKind> {
    vec![
        SchedulerKind::rumr_known_error(error),
        SchedulerKind::AdaptiveRumr,
        SchedulerKind::HetRumr(rumr::RumrConfig::with_known_error(error)),
        SchedulerKind::Umr,
        SchedulerKind::HetUmr,
        SchedulerKind::Mi { installments: 2 },
        SchedulerKind::OneRound,
        SchedulerKind::Factoring,
        SchedulerKind::Fsc { error },
        SchedulerKind::Gss,
        SchedulerKind::Tss,
        SchedulerKind::EqualStatic,
    ]
}

fn config(mode: TraceMode, faults: &FaultModel) -> SimConfig {
    SimConfig {
        trace_mode: mode,
        faults: faults.clone(),
        ..Default::default()
    }
}

/// Compare every field of the result that describes *what happened* (as
/// opposed to what was recorded) bit-for-bit.
fn assert_results_identical(a: &SimResult, b: &SimResult, label: &str) {
    assert_eq!(
        a.makespan.to_bits(),
        b.makespan.to_bits(),
        "{label}: makespan differs: {} vs {}",
        a.makespan,
        b.makespan
    );
    assert_eq!(a.num_chunks, b.num_chunks, "{label}: num_chunks");
    assert_eq!(a.events, b.events, "{label}: event count");
    assert_eq!(
        a.dispatched_work.to_bits(),
        b.dispatched_work.to_bits(),
        "{label}: dispatched_work"
    );
    assert_eq!(
        a.lost_work.to_bits(),
        b.lost_work.to_bits(),
        "{label}: lost_work"
    );
    assert_eq!(a.lost_chunks, b.lost_chunks, "{label}: lost_chunks");
    assert_eq!(
        a.redispatched_work.to_bits(),
        b.redispatched_work.to_bits(),
        "{label}: redispatched_work"
    );
    assert_eq!(
        a.outstanding_work.to_bits(),
        b.outstanding_work.to_bits(),
        "{label}: outstanding_work"
    );
    assert_eq!(
        a.returned_work.to_bits(),
        b.returned_work.to_bits(),
        "{label}: returned_work"
    );
    assert_eq!(
        a.per_worker_work.len(),
        b.per_worker_work.len(),
        "{label}: worker count"
    );
    for (w, (x, y)) in a.per_worker_work.iter().zip(&b.per_worker_work).enumerate() {
        assert_eq!(x.to_bits(), y.to_bits(), "{label}: per_worker_work[{w}]");
    }
    for (w, (x, y)) in a.per_worker_busy.iter().zip(&b.per_worker_busy).enumerate() {
        assert_eq!(x.to_bits(), y.to_bits(), "{label}: per_worker_busy[{w}]");
    }
    assert_eq!(
        a.lost_ranges.len(),
        b.lost_ranges.len(),
        "{label}: lost_ranges"
    );
    for (i, ((s1, l1), (s2, l2))) in a.lost_ranges.iter().zip(&b.lost_ranges).enumerate() {
        assert_eq!(
            s1.to_bits(),
            s2.to_bits(),
            "{label}: lost_ranges[{i}].start"
        );
        assert_eq!(l1.to_bits(), l2.to_bits(), "{label}: lost_ranges[{i}].len");
    }
}

/// The incremental summaries of `MetricsOnly` and `Full` must agree too —
/// they are computed by the same code paths on the same event sequence.
fn assert_summaries_identical(a: &SimResult, b: &SimResult, label: &str) {
    let (ma, mb) = (
        a.metrics.as_ref().expect("summary recorded"),
        b.metrics.as_ref().expect("summary recorded"),
    );
    assert_eq!(ma.trace_events, mb.trace_events, "{label}: trace_events");
    assert_eq!(
        ma.link_busy.to_bits(),
        mb.link_busy.to_bits(),
        "{label}: link_busy"
    );
    assert_eq!(ma.num_gaps, mb.num_gaps, "{label}: num_gaps");
    for (w, (x, y)) in ma.per_worker_gap.iter().zip(&mb.per_worker_gap).enumerate() {
        assert_eq!(x.to_bits(), y.to_bits(), "{label}: per_worker_gap[{w}]");
    }
}

fn fault_plans(n: usize) -> Vec<FaultModel> {
    vec![
        FaultModel::None,
        // Crash one worker mid-run, recover it later, and drop another's
        // link once — exercises loss, recovery, and redispatch paths.
        FaultModel::Plan(
            FaultPlan::new()
                .crash_recover(10.0, n / 2, 15.0)
                .crash(18.0, 0),
        ),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// `Off` and `MetricsOnly` are bit-identical to `Full` for every
    /// scheduler kind, fault-free and under a crash/recover `FaultPlan`.
    #[test]
    fn trace_modes_never_change_results(
        (scenario, error) in scenario_strategy(),
        seed in 0u64..1000,
    ) {
        let n = scenario.platform.num_workers();
        for faults in fault_plans(n) {
            for kind in kinds(error) {
                let run = |mode: TraceMode| {
                    scenario
                        .execute(&RunSpec::new(kind).seed(seed).config(config(mode, &faults)))
                        .unwrap_or_else(|e| panic!("{kind}: {e}"))
                };
                let full = run(TraceMode::Full);
                let metrics_only = run(TraceMode::MetricsOnly);
                let off = run(TraceMode::Off);

                let label = format!("{kind} ({faults:?})");
                assert_results_identical(&off, &full, &label);
                assert_results_identical(&metrics_only, &full, &label);
                assert_summaries_identical(&metrics_only, &full, &label);
                prop_assert!(off.metrics.is_none(), "{label}: Off must not record a summary");
                prop_assert!(off.trace.is_none(), "{label}: Off must not record a trace");
                prop_assert!(metrics_only.trace.is_none(), "{label}: MetricsOnly must not record a trace");
                prop_assert!(full.trace.is_some(), "{label}: Full must record a trace");
            }
        }
    }

    /// Same property through the recovery wrapper (the path the faulty
    /// benchmark cases and the degradation sweep use).
    #[test]
    fn trace_modes_never_change_recovering_results(
        (scenario, error) in scenario_strategy(),
        seed in 0u64..1000,
    ) {
        let n = scenario.platform.num_workers();
        let faults = FaultModel::Plan(FaultPlan::new().crash_recover(8.0, n - 1, 12.0));
        let kind = SchedulerKind::rumr_known_error(error);
        let run = |mode: TraceMode| {
            scenario
                .execute(
                    &RunSpec::new(kind)
                        .seed(seed)
                        .config(config(mode, &faults))
                        .recovering(RecoveryConfig::default()),
                )
                .unwrap_or_else(|e| panic!("{kind}: {e}"))
        };
        let full = run(TraceMode::Full);
        let metrics_only = run(TraceMode::MetricsOnly);
        let off = run(TraceMode::Off);
        assert_results_identical(&off, &full, "recovering");
        assert_results_identical(&metrics_only, &full, "recovering");
        assert_summaries_identical(&metrics_only, &full, "recovering");
    }
}

/// The buffer-reusing runner and prototype path must also be bit-identical
/// to fresh builds — the sweep rides on this.
#[test]
fn runner_and_prototype_match_fresh_runs() {
    let scenario = Scenario::table1(10, 1.5, 0.2, 0.2, 0.3);
    let kind = SchedulerKind::rumr_known_error(0.3);
    let mut runner = scenario.runner(SimConfig::default());
    let proto = runner.prototype(&kind).unwrap();
    let spec = RunSpec::new(kind);
    let stamped_spec = spec.clone().with_prototype(proto);
    for seed in 0..20 {
        let fresh = scenario.execute(&spec.clone().seed(seed)).unwrap();
        let reused = runner.execute_at(&spec, seed).unwrap();
        let stamped = runner.execute_at(&stamped_spec, seed).unwrap();
        assert_results_identical(&reused, &fresh, "runner vs fresh");
        assert_results_identical(&stamped, &fresh, "prototype vs fresh");
    }
}
