//! Golden multi-load regressions: six pinned concurrent-tenant cases.
//!
//! Each case pins the set makespan bits, the total chunk count, and every
//! job's completion-time bits, so any drift in the arbitration layer, the
//! timer machinery, or the per-job accounting shows up as a bit-level
//! diff. The pins were captured from the engine when the multi-load layer
//! landed. Case 6 additionally asserts heap/calendar backend bit-identity
//! by running the same spec under both backends against one pin set.

use rumr::{
    FaultModel, FaultPlan, JobSet, MultiJob, MultiPolicy, MultiRunResult, MultiRunSpec,
    QueueBackend, RecoveryConfig, Scenario, SchedulerKind, SimConfig, SpeedModel, TraceMode,
};

fn audited(backend: QueueBackend) -> SimConfig {
    SimConfig {
        trace_mode: TraceMode::Full,
        queue_backend: backend,
        audit: true,
        ..Default::default()
    }
}

/// Assert the full pin set for one case and that both audits came back
/// clean (a golden run with findings is a broken golden run).
fn assert_pins(what: &str, r: &MultiRunResult, makespan: u64, chunks: usize, completions: &[u64]) {
    assert_eq!(r.total_audit_findings(), 0, "{what}: audit findings");
    assert_eq!(
        r.sim.makespan.to_bits(),
        makespan,
        "{what}: makespan {} ({:#x})",
        r.sim.makespan,
        r.sim.makespan.to_bits()
    );
    assert_eq!(r.sim.num_chunks, chunks, "{what}: chunk count");
    assert_eq!(r.jobs.len(), completions.len(), "{what}: job count");
    for (j, &bits) in r.jobs.iter().zip(completions) {
        let c = j.completion.expect("golden jobs complete");
        assert_eq!(
            c.to_bits(),
            bits,
            "{what} job {}: completion {} ({:#x})",
            j.job,
            c,
            c.to_bits()
        );
    }
}

/// Case 1: mixed sizes released simultaneously, FIFO-exclusive factoring
/// on the Table-1 platform.
#[test]
fn fifo_mixed_sizes_simultaneous() {
    let scenario = Scenario::table1(10, 1.5, 0.2, 0.2, 0.3);
    let set = JobSet::simultaneous(&[400.0, 250.0, 150.0, 100.0]).unwrap();
    let spec =
        MultiRunSpec::from_job_set(&set, SchedulerKind::Factoring, MultiPolicy::FifoExclusive)
            .seed(1)
            .config(audited(QueueBackend::Heap));
    let r = scenario.execute_jobs(&spec).unwrap();
    assert_pins(
        "fifo/simultaneous",
        &r,
        0x4060cdb8ebd93b6c,
        163,
        &[
            0x404bc6f44dd4e4d7,
            0x4056fa6fa4ce3f24,
            0x405ce28858f53a74,
            0x4060cdb8ebd93b6c,
        ],
    );
}

/// Case 2: staggered releases with a different planner per tenant under
/// round-robin arbitration (exercises WaitUntil timers between releases).
#[test]
fn round_robin_staggered_mixed_planners() {
    let scenario = Scenario::table1(10, 1.5, 0.2, 0.2, 0.3);
    let spec = MultiRunSpec::new(MultiPolicy::RoundRobin)
        .job(MultiJob::new(0.0, 400.0, SchedulerKind::Factoring))
        .job(MultiJob::new(40.0, 250.0, SchedulerKind::Umr))
        .job(MultiJob::new(
            90.0,
            150.0,
            SchedulerKind::rumr_known_error(0.3),
        ))
        .seed(42)
        .config(audited(QueueBackend::Heap));
    let r = scenario.execute_jobs(&spec).unwrap();
    assert_pins(
        "round-robin/staggered",
        &r,
        0x405c878bd5a17cdb,
        141,
        &[0x4053b7f5ec7ef9e1, 0x40541a5a12304fd8, 0x405c878bd5a17cdb],
    );
}

/// Case 3: Poisson arrivals under fair-share on the heterogeneous
/// platform.
#[test]
fn fair_share_poisson_heterogeneous() {
    let scenario = Scenario::heterogeneous_demo(8, 0.2);
    let set = JobSet::poisson(5, 40.0, 200.0, 7);
    let spec = MultiRunSpec::from_job_set(&set, SchedulerKind::Factoring, MultiPolicy::FairShare)
        .seed(7)
        .config(audited(QueueBackend::Heap));
    let r = scenario.execute_jobs(&spec).unwrap();
    assert_pins(
        "fair-share/poisson",
        &r,
        0x407efe71838ae39e,
        146,
        &[
            0x404c440ba8110e9e,
            0x406068df272bd80b,
            0x40611599a4a3dba5,
            0x40732f686c92c2aa,
            0x407efe71838ae39e,
        ],
    );
}

/// Case 4: a pinned fault plan with per-job recovery — the redispatch
/// path through the arbitration layer is deterministic too.
#[test]
fn faulty_recovering_multiload() {
    let scenario = Scenario::table1(10, 1.5, 0.2, 0.2, 0.2);
    let mut config = audited(QueueBackend::Heap);
    config.faults = FaultModel::Plan(FaultPlan::new().crash_recover(15.0, 2, 20.0));
    let recovery = RecoveryConfig::default();
    let spec = MultiRunSpec::new(MultiPolicy::FifoExclusive)
        .job(MultiJob::new(0.0, 300.0, SchedulerKind::Factoring).recovering(recovery))
        .job(MultiJob::new(25.0, 200.0, SchedulerKind::Factoring).recovering(recovery))
        .seed(11)
        .config(config);
    let r = scenario.execute_jobs(&spec).unwrap();
    assert!(r.sim.lost_chunks > 0, "the pinned plan must lose work");
    assert_pins(
        "faulty/recovering",
        &r,
        0x40535c125cdf98e0,
        103,
        &[0x4047945ab6ad1ba2, 0x40535c125cdf98e0],
    );
}

/// Case 5: an adversarial speed-revelation profile composed with the
/// multi-load layer.
#[test]
fn speed_revelation_multiload() {
    let scenario = Scenario::table1(8, 1.5, 0.2, 0.2, 0.0);
    let mut config = audited(QueueBackend::Heap);
    config.speeds = SpeedModel::Adversarial {
        fraction: 0.25,
        slowdown: 2.0,
    };
    let spec = MultiRunSpec::new(MultiPolicy::RoundRobin)
        .job(MultiJob::new(0.0, 300.0, SchedulerKind::Factoring))
        .job(MultiJob::new(25.0, 150.0, SchedulerKind::Factoring))
        .seed(3)
        .config(config);
    let r = scenario.execute_jobs(&spec).unwrap();
    assert_pins(
        "speed-revelation",
        &r,
        0x4055dc99999999a5,
        76,
        &[0x4055dc99999999a5, 0x4055c4333333333e],
    );
}

/// Case 6: bursty arrivals under fair-share, pinned once and executed
/// under BOTH queue backends — heap and calendar must produce the exact
/// same bits.
#[test]
fn bursty_fair_share_backend_bit_identity() {
    let scenario = Scenario::table1(10, 1.5, 0.2, 0.2, 0.3);
    let set = JobSet::bursty(2, 2, 120.0, 180.0, 5);
    for backend in [QueueBackend::Heap, QueueBackend::Calendar] {
        let spec =
            MultiRunSpec::from_job_set(&set, SchedulerKind::Factoring, MultiPolicy::FairShare)
                .seed(5)
                .config(audited(backend));
        let r = scenario.execute_jobs(&spec).unwrap();
        assert_pins(
            &format!("bursty/{}", backend.name()),
            &r,
            0x4065efa53209d184,
            109,
            &[
                0x403559856c65f409,
                0x4035287dec98a1d2,
                0x4065efa53209d184,
                0x40658deaa6728eb6,
            ],
        );
    }
}
