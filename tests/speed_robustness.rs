//! Speed-revelation properties.
//!
//! Planners commit to a schedule knowing only *declared* worker rates; the
//! engine executes at *realized* rates drawn by a [`SpeedModel`]. Two
//! repo-level contracts follow:
//!
//! * the robustness ratio — realized makespan over the clairvoyant
//!   reference replanned on realized rates — is ≥ 1 for every scheduler
//!   kind, every revelation profile, and both queue backends;
//! * the `Declared` model is inert: it draws nothing from the RNG, so runs
//!   are **bit-for-bit** identical to runs with no speed model configured,
//!   and the pinned golden makespans still hold with it switched on.

use proptest::prelude::*;
use rumr::{
    QueueBackend, RumrConfig, RunSpec, Scenario, SchedulerKind, SimConfig, SpeedModel, TraceMode,
};

/// Random-but-sane Table-1-style scenario (kept small for debug builds).
fn scenario_strategy() -> impl Strategy<Value = (Scenario, f64)> {
    (
        2usize..=8,       // workers
        1.1f64..=3.0,     // bandwidth ratio
        0.0f64..=0.8,     // cLat
        0.0f64..=0.8,     // nLat
        0.0f64..=0.6,     // error
        100.0f64..=400.0, // workload
    )
        .prop_map(|(n, ratio, clat, nlat, error, w)| {
            let mut s = Scenario::table1(n, ratio, clat, nlat, error);
            s.w_total = w;
            (s, error)
        })
}

fn kinds(error: f64) -> Vec<SchedulerKind> {
    vec![
        SchedulerKind::rumr_known_error(error),
        SchedulerKind::AdaptiveRumr,
        SchedulerKind::HetRumr(RumrConfig::with_known_error(error)),
        SchedulerKind::Umr,
        SchedulerKind::HetUmr,
        SchedulerKind::Mi { installments: 2 },
        SchedulerKind::OneRound,
        SchedulerKind::Factoring,
        SchedulerKind::Fsc { error },
        SchedulerKind::Gss,
        SchedulerKind::Tss,
        SchedulerKind::EqualStatic,
        SchedulerKind::SelfScheduling { unit: 10.0 },
    ]
}

fn profile_strategy() -> impl Strategy<Value = SpeedModel> {
    (
        0u64..3,       // which profile family
        0.01f64..=0.9, // stochastic spread
        0.1f64..=1.0,  // slowed fraction
        1.1f64..=4.0,  // slowdown factor
        0u64..1000,    // revelation seed
    )
        .prop_map(|(family, spread, fraction, slowdown, seed)| match family {
            0 => SpeedModel::Stochastic { spread, seed },
            1 => SpeedModel::Sandbagged {
                fraction,
                slowdown,
                seed,
            },
            _ => SpeedModel::Adversarial { fraction, slowdown },
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Ratio ≥ 1 (up to float noise) for every scheduler kind under both
    /// queue backends, for any revelation profile: the clairvoyant
    /// reference can never be beaten by the blind run it explains.
    #[test]
    fn robustness_ratio_is_at_least_one(
        (scenario, error) in scenario_strategy(),
        profile in profile_strategy(),
        seed in 0u64..1000,
    ) {
        for backend in [QueueBackend::Heap, QueueBackend::Calendar] {
            for kind in kinds(error) {
                let spec = RunSpec::new(kind)
                    .seed(seed)
                    .queue(backend)
                    .speeds(profile);
                let realized = scenario
                    .execute(&spec)
                    .unwrap_or_else(|e| panic!("{kind}: {e}"));
                let report = scenario
                    .robustness(&spec, seed, realized.makespan)
                    .expect("profile is active");
                prop_assert!(
                    report.ratio.is_finite() && report.ratio >= 1.0 - 1e-9,
                    "{kind} ({backend:?}, {}): ratio {}",
                    profile.label(),
                    report.ratio
                );
                prop_assert!(
                    report.clairvoyant_makespan <= realized.makespan + 1e-12,
                    "{kind}: reference above the realized run"
                );
                prop_assert!(
                    report.analytic_lower_bound.is_finite() && report.analytic_lower_bound > 0.0,
                    "{kind}: bad analytic bound {}",
                    report.analytic_lower_bound
                );
            }
        }
    }

    /// On error-free runs the analytic lower bound of the realized
    /// platform floors the clairvoyant reference (noise can beat the
    /// nominal-rate bound; determinism cannot).
    #[test]
    fn analytic_bound_floors_error_free_runs(
        (mut scenario, _) in scenario_strategy(),
        profile in profile_strategy(),
        seed in 0u64..1000,
    ) {
        scenario.error_model = rumr::ErrorModel::None;
        for kind in kinds(0.0) {
            let spec = RunSpec::new(kind).seed(seed).speeds(profile);
            let realized = scenario
                .execute(&spec)
                .unwrap_or_else(|e| panic!("{kind}: {e}"));
            let report = scenario
                .robustness(&spec, seed, realized.makespan)
                .expect("profile is active");
            prop_assert!(
                report.analytic_lower_bound <= report.clairvoyant_makespan + 1e-9,
                "{kind} ({}): clairvoyant {} beats the analytic bound {}",
                profile.label(),
                report.clairvoyant_makespan,
                report.analytic_lower_bound
            );
        }
    }

    /// `Declared` is bit-for-bit inert: same makespan bits, same event
    /// count, byte-identical full traces as a spec with no speed model.
    #[test]
    fn declared_profile_is_bit_identical(
        (scenario, error) in scenario_strategy(),
        seed in 0u64..1000,
    ) {
        let config = SimConfig {
            trace_mode: TraceMode::Full,
            ..Default::default()
        };
        for kind in kinds(error) {
            let base = scenario
                .execute(&RunSpec::new(kind).seed(seed).config(config.clone()))
                .unwrap_or_else(|e| panic!("{kind}: {e}"));
            let gated = scenario
                .execute(
                    &RunSpec::new(kind)
                        .seed(seed)
                        .config(config.clone())
                        .speeds(SpeedModel::Declared),
                )
                .unwrap_or_else(|e| panic!("{kind}: {e}"));
            prop_assert_eq!(base.makespan.to_bits(), gated.makespan.to_bits());
            prop_assert_eq!(base.num_chunks, gated.num_chunks);
            prop_assert_eq!(base.events, gated.events);
            let (bt, gt) = (
                base.trace.as_ref().expect("Full records a trace"),
                gated.trace.as_ref().expect("Full records a trace"),
            );
            prop_assert_eq!(bt.events().len(), gt.events().len());
            for (i, (a, b)) in bt.events().iter().zip(gt.events()).enumerate() {
                let (da, db) = (format!("{a:?}"), format!("{b:?}"));
                prop_assert_eq!(da, db, "{} trace event {} differs", kind, i);
            }
        }
    }
}

/// The golden makespan pins from `golden_makespan.rs` hold verbatim with
/// `SpeedModel::Declared` configured explicitly — the revelation machinery
/// adds zero RNG draws to the trusted path.
#[test]
fn golden_pins_hold_with_declared_speeds() {
    let s = Scenario::table1(10, 1.5, 0.2, 0.2, 0.3);
    let cases: [(SchedulerKind, u64, u64, usize); 6] = [
        (
            SchedulerKind::rumr_known_error(0.3),
            1,
            0x405db99083535599,
            111,
        ),
        (
            SchedulerKind::rumr_known_error(0.3),
            42,
            0x405d4f22e1bfb2a9,
            111,
        ),
        (
            SchedulerKind::rumr_known_error(0.3),
            20030623,
            0x405d1fdd4888ce5c,
            111,
        ),
        (SchedulerKind::Umr, 1, 0x40604bfbb7ef18ec, 90),
        (SchedulerKind::Umr, 42, 0x405e2f0564bee54a, 90),
        (SchedulerKind::Umr, 20030623, 0x405f679799aa810e, 90),
    ];
    for (kind, seed, bits, chunks) in cases {
        let r = s
            .execute(&RunSpec::new(kind).seed(seed).speeds(SpeedModel::Declared))
            .unwrap();
        assert_eq!(
            r.makespan.to_bits(),
            bits,
            "{kind} seed {seed}: got {} ({:#x})",
            r.makespan,
            r.makespan.to_bits()
        );
        assert_eq!(r.num_chunks, chunks, "{kind} seed {seed} chunk count");
    }
}
