//! Multi-load invariant battery: concurrent tenants on one platform.
//!
//! Property tests over (arrival family × arbitration policy × queue
//! backend): every audited run must come back with zero findings from
//! BOTH checkers (the engine's streaming `InvariantChecker` and the
//! job-level `MultiJobChecker` — per-job work conservation, release-time
//! compliance, cross-job master exclusivity), every job must finish all
//! its work, and every completed job must dominate its oracle-style
//! analytic lower bound (stretch ≥ 1). A refusal sweep pins the
//! panic-vs-refusal contract: invalid inputs get a typed `PlanError`
//! from every scheduler kind, never a panic.

use proptest::prelude::*;
use rumr::{
    FaultModel, FaultPlan, JobSet, MultiJob, MultiPolicy, MultiRunSpec, PlanError, QueueBackend,
    RumrConfig, Scenario, SchedulerKind, SimConfig, SpeedModel, TraceMode,
};

const EPS: f64 = 1e-9;
const WORK_TOL: f64 = 1e-6;

/// One arrival family per selector: adversarial simultaneous release,
/// Poisson arrivals, or bursty arrivals (bursts separated by an idle gap
/// wide enough to exercise `Decision::WaitUntil` timers).
fn job_set(family: usize, n: usize, seed: u64, mean_size: f64, gap: f64) -> JobSet {
    match family % 3 {
        0 => {
            let sizes: Vec<f64> = (0..n).map(|i| mean_size * (1.0 + 0.5 * i as f64)).collect();
            JobSet::simultaneous(&sizes).expect("sizes are positive")
        }
        1 => JobSet::poisson(n, gap, mean_size, seed),
        _ => JobSet::bursty(2, n.div_ceil(2), 4.0 * gap, mean_size, seed),
    }
}

fn audited(backend: QueueBackend) -> SimConfig {
    SimConfig {
        trace_mode: TraceMode::Full,
        queue_backend: backend,
        audit: true,
        ..Default::default()
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// The headline property: for every arrival family, policy and
    /// backend, an audited multi-load run is clean — no engine findings,
    /// no job-level findings, all work delivered, every response at or
    /// above the analytic floor.
    #[test]
    fn audited_runs_are_clean_and_dominate_bounds(
        family in 0usize..3,
        n in 2usize..=5,
        workers in 3usize..=8,
        seed in 0u64..1000,
        mean_size in 120.0f64..300.0,
        gap in 30.0f64..90.0,
        error in 0.0f64..0.5,
    ) {
        let scenario = Scenario::table1(workers, 1.5, 0.2, 0.2, error);
        let set = job_set(family, n, seed, mean_size, gap);
        for backend in [QueueBackend::Heap, QueueBackend::Calendar] {
            for policy in MultiPolicy::ALL {
                let spec = MultiRunSpec::from_job_set(&set, SchedulerKind::Factoring, policy)
                    .seed(seed)
                    .config(audited(backend));
                let result = scenario.execute_jobs(&spec).unwrap();
                let what = format!("family {family}/{}/{}", policy.label(), backend.name());

                prop_assert_eq!(
                    result.sim.audit.as_deref(),
                    Some(&[][..]),
                    "{}: engine audit findings",
                    &what
                );
                prop_assert!(
                    result.job_audit.is_empty(),
                    "{}: job audit findings: {:?}",
                    &what,
                    result.job_audit
                );
                for j in &result.jobs {
                    // Per-job work conservation: everything dispatched on
                    // the job's behalf is completed (no faults here), and
                    // the job's full size was delivered.
                    prop_assert!(
                        (j.completed - j.size).abs() <= WORK_TOL * j.size,
                        "{} job {}: completed {} of {}",
                        &what, j.job, j.completed, j.size
                    );
                    prop_assert!(
                        (j.dispatched - j.completed - j.lost).abs() <= WORK_TOL * j.size,
                        "{} job {}: ledger leak",
                        &what, j.job
                    );
                    prop_assert!(j.first_dispatch.unwrap() >= j.release - EPS,
                        "{} job {}: dispatched before release", &what, j.job);
                    // Response dominates the oracle-style lower bound.
                    let response = j.response.unwrap();
                    prop_assert!(
                        response >= j.lower_bound - EPS,
                        "{} job {}: response {} beats bound {}",
                        &what, j.job, response, j.lower_bound
                    );
                    prop_assert!(j.stretch.unwrap() >= 1.0 - EPS);
                }
                prop_assert!(
                    result.sim.makespan >= set.makespan_lower_bound(&scenario.platform) - EPS,
                    "{}: set makespan beats the whole-set bound",
                    &what
                );
                prop_assert_eq!(result.fairness.completed_jobs, set.len());
            }
        }
    }

    /// Different inner planners per job (the service's mixed-tenant case)
    /// stay clean too, including under prediction error.
    #[test]
    fn mixed_planners_are_clean(
        workers in 3usize..=8,
        seed in 0u64..1000,
        error in 0.0f64..0.4,
        release_gap in 10.0f64..80.0,
    ) {
        let scenario = Scenario::table1(workers, 1.8, 0.3, 0.1, error);
        for policy in MultiPolicy::ALL {
            let spec = MultiRunSpec::new(policy)
                .job(MultiJob::new(0.0, 400.0, SchedulerKind::rumr_known_error(error)))
                .job(MultiJob::new(release_gap, 250.0, SchedulerKind::Factoring))
                .job(MultiJob::new(2.0 * release_gap, 120.0, SchedulerKind::Gss))
                .seed(seed)
                .config(audited(QueueBackend::Heap));
            let result = scenario.execute_jobs(&spec).unwrap();
            prop_assert!(result.job_audit.is_empty(), "{}: {:?}", policy.label(), result.job_audit);
            prop_assert_eq!(result.sim.audit.as_deref(), Some(&[][..]));
            for j in &result.jobs {
                prop_assert!((j.completed - j.size).abs() <= WORK_TOL * j.size);
                prop_assert!(j.stretch.unwrap() >= 1.0 - EPS);
            }
        }
    }
}

/// Faulty multi-load runs with per-job recovery: the job-level ledger
/// must balance (dispatched = completed + lost per job), every job must
/// still deliver its full size, and both audits stay clean.
#[test]
fn faulty_run_with_recovery_conserves_per_job_work() {
    let scenario = Scenario::table1(6, 1.5, 0.2, 0.2, 0.2);
    let faults = FaultModel::Plan(FaultPlan::new().crash_recover(8.0, 1, 6.0));
    for policy in MultiPolicy::ALL {
        let mut config = audited(QueueBackend::Calendar);
        config.faults = faults.clone();
        let recovery = rumr::RecoveryConfig::default();
        let spec = MultiRunSpec::new(policy)
            .job(MultiJob::new(0.0, 300.0, SchedulerKind::Factoring).recovering(recovery))
            .job(MultiJob::new(20.0, 200.0, SchedulerKind::Factoring).recovering(recovery))
            .seed(11)
            .config(config);
        let result = scenario.execute_jobs(&spec).unwrap();
        assert!(
            result.job_audit.is_empty(),
            "{}: {:?}",
            policy.label(),
            result.job_audit
        );
        assert_eq!(result.sim.audit.as_deref(), Some(&[][..]));
        for j in &result.jobs {
            assert!(
                (j.completed - j.size).abs() <= WORK_TOL * j.size,
                "{} job {}: completed {} of {} (lost {})",
                policy.label(),
                j.job,
                j.completed,
                j.size,
                j.lost
            );
            assert!(
                (j.dispatched - j.completed - j.lost).abs() <= WORK_TOL * j.size,
                "{} job {}: ledger leak",
                policy.label(),
                j.job
            );
            assert!(j.stretch.unwrap() >= 1.0 - EPS);
        }
    }
}

/// Speed revelation composes with the multi-load layer: realized rates
/// slower than declared stretch responses but never break the audits or
/// the (declared-platform-free) conservation ledger.
#[test]
fn speed_revelation_composes_with_multi_load() {
    let scenario = Scenario::table1(8, 1.5, 0.2, 0.2, 0.0);
    let mut config = audited(QueueBackend::Heap);
    config.speeds = SpeedModel::Adversarial {
        fraction: 0.25,
        slowdown: 2.0,
    };
    let spec = MultiRunSpec::new(MultiPolicy::RoundRobin)
        .job(MultiJob::new(0.0, 300.0, SchedulerKind::Factoring))
        .job(MultiJob::new(25.0, 150.0, SchedulerKind::Factoring))
        .seed(3)
        .config(config);
    let result = scenario.execute_jobs(&spec).unwrap();
    assert!(result.job_audit.is_empty(), "{:?}", result.job_audit);
    assert_eq!(result.sim.audit.as_deref(), Some(&[][..]));
    for j in &result.jobs {
        assert!((j.completed - j.size).abs() <= WORK_TOL * j.size);
        // The declared-platform bound still holds: realized speeds are
        // only ever slower.
        assert!(j.stretch.unwrap() >= 1.0 - EPS);
    }
}

/// The panic-vs-refusal contract: refusal-inducing inputs produce a typed
/// [`PlanError`] from every scheduler kind — uniformly, never a panic and
/// never a kind-dependent failure mode.
#[test]
fn invalid_inputs_refuse_with_typed_errors_for_every_kind() {
    let platform = Scenario::table1(4, 1.5, 0.2, 0.2, 0.0).platform;
    let kinds = [
        SchedulerKind::Rumr(RumrConfig::default()),
        SchedulerKind::Umr,
        SchedulerKind::Mi { installments: 2 },
        SchedulerKind::Factoring,
        SchedulerKind::Fsc { error: 0.2 },
        SchedulerKind::EqualStatic,
        SchedulerKind::SelfScheduling { unit: 10.0 },
        SchedulerKind::HetUmr,
        SchedulerKind::AdaptiveRumr,
        SchedulerKind::HetRumr(RumrConfig::default()),
        SchedulerKind::OneRound,
        SchedulerKind::Gss,
        SchedulerKind::Tss,
    ];
    for kind in kinds {
        for w in [0.0, -10.0, f64::NAN, f64::INFINITY, f64::NEG_INFINITY] {
            let e = match kind.build(&platform, w) {
                Err(e) => e,
                Ok(_) => panic!("{kind:?} on w={w}: must refuse"),
            };
            assert!(
                matches!(e, rumr::BuildError::Plan(PlanError::InvalidWorkload { .. })),
                "{kind:?} on w={w}: wrong error {e}"
            );
            assert!(kind.prototype(&platform, w).is_err(), "{kind:?} prototype");
            assert!(kind.oracle(&platform, w).is_err(), "{kind:?} oracle");
        }
    }
    // Parameterized kinds refuse their own bad parameters the same way.
    for (kind, param) in [
        (SchedulerKind::SelfScheduling { unit: 0.0 }, "unit"),
        (SchedulerKind::SelfScheduling { unit: f64::NAN }, "unit"),
        (SchedulerKind::Fsc { error: f64::NAN }, "error"),
        (SchedulerKind::Fsc { error: -0.5 }, "error"),
    ] {
        let e = match kind.build(&platform, 100.0) {
            Err(e) => e,
            Ok(_) => panic!("{kind:?}: must refuse"),
        };
        match e {
            rumr::BuildError::Plan(PlanError::InvalidParameter { param: p, .. }) => {
                assert_eq!(p, param, "{kind:?}")
            }
            other => panic!("{kind:?}: wrong error {other}"),
        }
    }
}

/// Multi-load spec validation is typed too: bad releases/sizes and a
/// non-serial master refuse before any planner runs.
#[test]
fn multi_spec_validation_refuses_typed() {
    let scenario = Scenario::table1(4, 1.5, 0.2, 0.2, 0.0);
    let bad_specs = [
        MultiRunSpec::new(MultiPolicy::FifoExclusive),
        MultiRunSpec::new(MultiPolicy::RoundRobin).job(MultiJob::new(
            f64::NAN,
            100.0,
            SchedulerKind::Umr,
        )),
        MultiRunSpec::new(MultiPolicy::FairShare).job(MultiJob::new(0.0, -5.0, SchedulerKind::Umr)),
        MultiRunSpec::new(MultiPolicy::FifoExclusive).job(MultiJob::new(
            0.0,
            f64::INFINITY,
            SchedulerKind::Umr,
        )),
    ];
    for spec in bad_specs {
        match scenario.execute_jobs(&spec) {
            Err(rumr::RunError::Build(rumr::BuildError::Plan(_))) => {}
            other => panic!("expected a typed refusal, got {other:?}"),
        }
    }
}
