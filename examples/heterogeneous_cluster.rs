//! Anatomy of a heterogeneous UMR schedule: how per-round chunks adapt to
//! worker speed, and when resource selection drops badly-connected nodes.
//!
//! Run with: `cargo run --release --example heterogeneous_cluster`

use dls_sched::HetUmrSchedule;
use rumr::{Platform, WorkerSpec};

fn node(speed: f64, bandwidth: f64, clat: f64, nlat: f64) -> WorkerSpec {
    WorkerSpec {
        speed,
        bandwidth,
        comp_latency: clat,
        net_latency: nlat,
        transfer_latency: 0.0,
    }
}

fn main() {
    let w_total = 2000.0;

    println!("=== Balanced heterogeneous cluster ===");
    let balanced = Platform::new(vec![
        node(4.0, 40.0, 0.1, 0.05),
        node(3.0, 30.0, 0.1, 0.05),
        node(2.0, 25.0, 0.2, 0.10),
        node(1.0, 15.0, 0.3, 0.10),
    ])
    .expect("valid platform");
    describe(&balanced, w_total);

    println!("\n=== Cluster with two starved stragglers ===");
    let starved = Platform::new(vec![
        node(8.0, 80.0, 0.1, 0.05),
        node(8.0, 80.0, 0.1, 0.05),
        node(6.0, 0.4, 0.1, 2.0), // fast CPU, terrible link
        node(6.0, 0.3, 0.1, 2.5), // fast CPU, worse link
    ])
    .expect("valid platform");
    describe(&starved, w_total);
}

fn describe(platform: &Platform, w_total: f64) {
    let all = HetUmrSchedule::solve(platform, w_total).expect("feasible");
    let selected = HetUmrSchedule::solve_with_selection(platform, w_total).expect("feasible");

    println!(
        "all workers : {} rounds, predicted makespan {:>8.2} s",
        all.num_rounds(),
        all.predicted_makespan()
    );
    println!(
        "selected    : {} rounds, predicted makespan {:>8.2} s using workers {:?}",
        selected.num_rounds(),
        selected.predicted_makespan(),
        selected.worker_ids()
    );

    let r0 = selected.round_sizes()[0];
    let chunks = selected.round_chunks(r0);
    println!("first round ({r0:.1} units total):");
    for (wid, chunk) in selected.worker_ids().iter().zip(&chunks) {
        let spec = platform.worker(*wid);
        println!(
            "  worker {wid}: chunk {chunk:>7.2} units (S = {:.1}, B = {:.1}) -> compute {:.2} s",
            spec.speed,
            spec.bandwidth,
            spec.comp_time(*chunk)
        );
    }
}
