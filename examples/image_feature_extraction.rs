//! Feature extraction over a segmented image — the paper's first
//! motivating application.
//!
//! The image is divided into blocks; blocks rich in features cost more to
//! process, so execution times are data-dependent and predictions are
//! imperfect. The example measures that variability, lets RUMR use it as
//! its error estimate, and shows the resulting schedule (including an ASCII
//! Gantt chart of a run).
//!
//! Run with: `cargo run --release --example image_feature_extraction`

use dls_workloads::{DivisibleApp, ImageFeatureExtraction};
use rumr::{HomogeneousParams, RunSpec, SchedulerKind, TraceMode};

fn main() {
    // A 40×25-block image (1000 blocks) with 8 feature clusters.
    let image = ImageFeatureExtraction::generate(40, 25, 8, 4.0, 7);
    let error = image.cost_variability();
    println!(
        "Image: {}x{} blocks, {} workload units",
        image.width(),
        image.height(),
        image.total_units()
    );
    println!("Per-block cost variability (error estimate): {error:.3}\n");

    // A 16-worker cluster.
    let platform = HomogeneousParams::table1(16, 1.5, 0.2, 0.1)
        .build()
        .expect("valid platform");
    let scenario = image.scenario(platform);

    let recommended = image.recommended();
    println!("Recommended scheduler: {}", recommended.label());

    let competitors = [
        recommended,
        SchedulerKind::Umr,
        SchedulerKind::Factoring,
        SchedulerKind::Mi { installments: 2 },
    ];
    println!("\n{:<12} {:>14}", "algorithm", "makespan (s)");
    for kind in &competitors {
        let mean = scenario
            .execute_mean(&RunSpec::new(*kind).seed(100).reps(20))
            .expect("simulation succeeds");
        println!("{:<12} {:>14.2}", kind.label(), mean);
    }

    // Show one run of the recommended scheduler as a Gantt chart.
    let mut result = scenario
        .execute(
            &RunSpec::new(recommended)
                .seed(1)
                .trace_mode(TraceMode::Full),
        )
        .expect("simulation succeeds");
    let trace = result.trace.take().expect("trace recorded");
    println!(
        "\nOne {} run: makespan {:.2} s, {} chunks, mean utilization {:.0} %",
        recommended.label(),
        result.makespan,
        result.num_chunks,
        result.mean_utilization() * 100.0
    );
    println!("{}", trace.gantt(scenario.platform.num_workers(), 100));
}
