//! Quickstart: schedule a divisible workload with RUMR and compare against
//! the paper's competitors on one platform.
//!
//! Run with: `cargo run --release --example quickstart`

use rumr::{RunSpec, Scenario, SchedulerKind};

fn main() {
    // A cluster of 20 workers, each computing 1 workload unit per second.
    // The master's link runs at B = 1.8·N = 36 units/s; starting a transfer
    // costs nLat = 0.1 s and starting a computation cLat = 0.3 s.
    // Execution-time predictions are off by 25 % on average (resource
    // contention, data-dependent costs, ...).
    let error = 0.25;
    let scenario = Scenario::table1(20, 1.8, 0.3, 0.1, error);

    println!(
        "Platform: {} workers, B = {:.0} units/s, cLat = 0.3 s, nLat = 0.1 s",
        scenario.platform.num_workers(),
        scenario.platform.worker(0).bandwidth,
    );
    println!(
        "Workload: {} units, prediction error {:.0} %\n",
        scenario.w_total,
        error * 100.0
    );

    let algorithms = [
        SchedulerKind::rumr_known_error(error),
        SchedulerKind::Umr,
        SchedulerKind::Mi { installments: 3 },
        SchedulerKind::Factoring,
        SchedulerKind::EqualStatic,
    ];

    println!(
        "{:<14} {:>14} {:>10}",
        "algorithm", "makespan (s)", "chunks"
    );
    let reps = 25;
    for kind in &algorithms {
        let mean = scenario
            .execute_mean(&RunSpec::new(*kind).reps(reps))
            .expect("simulation succeeds");
        let chunks = scenario
            .execute(&RunSpec::new(*kind))
            .expect("simulation succeeds")
            .num_chunks;
        println!("{:<14} {:>14.2} {:>10}", kind.label(), mean, chunks);
    }

    println!("\n(averages over {reps} runs; RUMR ramps chunk sizes up for overlap,");
    println!(" then back down at the end to absorb the prediction errors)");
}
