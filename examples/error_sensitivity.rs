//! Error-sensitivity mini-study: a pocket version of the paper's Fig. 4(a)
//! on a single platform, printing the relative makespan of every competitor
//! as the prediction error grows.
//!
//! Run with: `cargo run --release --example error_sensitivity`

use rumr::{RunSpec, Scenario, SchedulerKind};

fn main() {
    let reps = 30;
    println!("Relative makespan (algorithm / RUMR) on N=20, r=1.6, cLat=0.2, nLat=0.2");
    println!("(averages over {reps} seeds; > 1.0 means RUMR wins)\n");

    let competitors = [
        SchedulerKind::Umr,
        SchedulerKind::Mi { installments: 2 },
        SchedulerKind::Mi { installments: 4 },
        SchedulerKind::Factoring,
        SchedulerKind::Fsc { error: 0.0 }, // re-parameterized per error below
    ];

    print!("{:<7}", "error");
    for kind in &competitors {
        print!("{:>12}", kind.label());
    }
    println!();

    for step in 0..=10 {
        let error = step as f64 * 0.05;
        let scenario = Scenario::table1(20, 1.6, 0.2, 0.2, error);
        let rumr_kind = SchedulerKind::rumr_known_error(error);
        let rumr = scenario
            .execute_mean(&RunSpec::new(rumr_kind).reps(reps))
            .expect("simulation succeeds");

        print!("{error:<7.2}");
        for kind in &competitors {
            // FSC needs the error magnitude for its chunk-size formula.
            let kind = match kind {
                SchedulerKind::Fsc { .. } => SchedulerKind::Fsc { error },
                other => *other,
            };
            let mean = scenario
                .execute_mean(&RunSpec::new(kind).seed(1000).reps(reps))
                .expect("simulation succeeds");
            print!("{:>12.4}", mean / rumr);
        }
        println!();
    }

    println!("\nShapes to look for (paper Fig. 4): UMR's column rises with error,");
    println!("Factoring's falls toward 1, MI-x stays well above 1 throughout.");
}
