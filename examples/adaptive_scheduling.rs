//! Adaptive RUMR in action: schedule without knowing the error magnitude,
//! estimate it from completed chunks, and switch to the robust phase at the
//! measured point — the paper's §6 "use information on-the-fly" vision.
//!
//! Run with: `cargo run --release --example adaptive_scheduling`

use dls_sched::{AdaptiveConfig, AdaptiveRumr};
use rumr::{
    sim::{simulate, ErrorInjector, ErrorModel, SimConfig},
    HomogeneousParams, RunSpec, Scenario, SchedulerKind,
};

fn main() {
    let platform = HomogeneousParams::table1(16, 1.6, 0.2, 0.1)
        .build()
        .expect("valid platform");
    let w_total = 1000.0;

    println!("True error magnitudes vs the adaptive scheduler's estimates\n");
    println!(
        "{:<12} {:>12} {:>14} {:>14}",
        "true error", "estimate", "switch at (s)", "makespan (s)"
    );
    for &error in &[0.0, 0.1, 0.2, 0.3, 0.4, 0.5] {
        let mut adaptive = AdaptiveRumr::new(&platform, w_total, AdaptiveConfig::default())
            .expect("feasible plan");
        let model = if error > 0.0 {
            ErrorModel::TruncatedNormal { error }
        } else {
            ErrorModel::None
        };
        let result = simulate(
            &platform,
            &mut adaptive,
            ErrorInjector::new(model, 42),
            SimConfig::default(),
        )
        .expect("simulation succeeds");
        let estimate = adaptive
            .estimated_error()
            .map(|e| format!("{e:.3}"))
            .unwrap_or_else(|| "-".into());
        let switch = adaptive
            .switched_at()
            .map(|t| format!("{t:.1}"))
            .unwrap_or_else(|| "never".into());
        println!(
            "{error:<12.2} {estimate:>12} {switch:>14} {:>14.2}",
            result.makespan
        );
    }

    // How much does not knowing the error cost?
    println!("\nMean makespan over 30 seeds at error 0.4 (N = 16):");
    let error = 0.4;
    let scenario = Scenario::table1(16, 1.6, 0.2, 0.1, error);
    for kind in [
        SchedulerKind::rumr_known_error(error), // oracle
        SchedulerKind::AdaptiveRumr,            // measures on-the-fly
        SchedulerKind::Umr,                     // ignores errors
    ] {
        let mean = scenario
            .execute_mean(&RunSpec::new(kind).reps(30))
            .expect("simulation succeeds");
        println!("  {:<16} {:>10.2} s", kind.label(), mean);
    }
}
