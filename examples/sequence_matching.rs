//! Sequence matching against a large dictionary (BLAST-style) on a
//! *heterogeneous* cluster — exercising the library's heterogeneous UMR
//! extension with resource selection.
//!
//! Run with: `cargo run --release --example sequence_matching`

use dls_sched::HetUmrSchedule;
use dls_workloads::{DivisibleApp, SequenceMatching};
use rumr::{ErrorModel, Platform, RunSpec, Scenario, SchedulerKind, WorkerSpec};

fn main() {
    // A 100k-letter dictionary of 2000 sequences with log-normal lengths.
    let dictionary = SequenceMatching::generate(2000, 350.0, 0.35, 11);
    println!(
        "Dictionary: {} sequences, {:.0} letters total, cost variability {:.3}",
        dictionary.entries(),
        dictionary.total_letters(),
        dictionary.cost_variability()
    );

    // A scavenged lab cluster: 4 fast well-connected nodes, 4 mid nodes,
    // 4 old workstations behind a slow switch.
    let mut workers = Vec::new();
    for _ in 0..4 {
        workers.push(WorkerSpec {
            speed: 4.0,
            bandwidth: 60.0,
            comp_latency: 0.1,
            net_latency: 0.05,
            transfer_latency: 0.0,
        });
    }
    for _ in 0..4 {
        workers.push(WorkerSpec {
            speed: 2.0,
            bandwidth: 30.0,
            comp_latency: 0.2,
            net_latency: 0.1,
            transfer_latency: 0.0,
        });
    }
    for _ in 0..4 {
        workers.push(WorkerSpec {
            speed: 1.0,
            bandwidth: 8.0,
            comp_latency: 0.5,
            net_latency: 0.3,
            transfer_latency: 0.0,
        });
    }
    let platform = Platform::new(workers).expect("valid platform");

    // Inspect the heterogeneous UMR schedule directly.
    let schedule = HetUmrSchedule::solve_with_selection(&platform, dictionary.total_units())
        .expect("feasible schedule");
    println!(
        "\nHeterogeneous UMR: {} rounds over {} of {} workers (resource selection)",
        schedule.num_rounds(),
        schedule.worker_ids().len(),
        platform.num_workers()
    );
    println!("Round sizes: {:?}", summarize(schedule.round_sizes()));
    let first_round = schedule.round_chunks(schedule.round_sizes()[0]);
    println!(
        "First-round chunks (fast nodes get more): {:?}",
        summarize(&first_round)
    );
    println!("Predicted makespan: {:.2} s", schedule.predicted_makespan());

    // Simulate with the dictionary's intrinsic variability as the error.
    let scenario = Scenario {
        platform,
        w_total: dictionary.total_units(),
        error_model: ErrorModel::TruncatedNormal {
            error: dictionary.cost_variability(),
        },
        cost_profile: None,
        temporal_noise: None,
    };
    println!("\n{:<12} {:>14}", "algorithm", "makespan (s)");
    for kind in [
        SchedulerKind::HetUmr,
        SchedulerKind::Factoring,
        SchedulerKind::SelfScheduling { unit: 25.0 },
        SchedulerKind::EqualStatic,
    ] {
        let mean = scenario
            .execute_mean(&RunSpec::new(kind).reps(15))
            .expect("simulation succeeds");
        println!("{:<12} {:>14.2}", kind.label(), mean);
    }
}

fn summarize(values: &[f64]) -> Vec<f64> {
    values.iter().map(|v| (v * 10.0).round() / 10.0).collect()
}
