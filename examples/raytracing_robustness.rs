//! Ray tracing with strongly data-dependent pixel costs — the paper's
//! example of why prediction errors are unavoidable (§4).
//!
//! Sweeps the scene complexity (and therefore the effective prediction
//! error) and shows how the best algorithm shifts from UMR through RUMR
//! toward Factoring as costs become less predictable — the crossover story
//! of the paper's Figure 4.
//!
//! Run with: `cargo run --release --example raytracing_robustness`

use dls_workloads::{DivisibleApp, RayTracing};
use rumr::{HomogeneousParams, RunSpec, SchedulerKind};

fn main() {
    println!("Scene complexity sweep on a 24-worker render farm\n");
    println!(
        "{:<22} {:>7} {:>10} {:>10} {:>10}",
        "scene", "error", "RUMR", "UMR", "Factoring"
    );

    for (label, objects, depth) in [
        ("empty scene", 0usize, 1u32),
        ("simple scene", 5, 2),
        ("glossy scene", 12, 5),
        ("hall of mirrors", 25, 8),
    ] {
        let scene = RayTracing::generate(40, 25, objects, depth, 99);
        let error = scene.cost_variability();

        let platform = HomogeneousParams::table1(24, 1.6, 0.2, 0.1)
            .build()
            .expect("valid platform");
        let scenario = scene.scenario(platform);

        let mut row = format!("{label:<22} {error:>7.3}");
        for kind in [
            SchedulerKind::rumr_known_error(error),
            SchedulerKind::Umr,
            SchedulerKind::Factoring,
        ] {
            let mean = scenario
                .execute_mean(&RunSpec::new(kind).seed(7).reps(20))
                .expect("simulation succeeds");
            row.push_str(&format!(" {mean:>10.2}"));
        }
        println!("{row}");

        let _ = scenario; // scenario consumed above
    }

    println!("\nWith predictable scenes UMR's precalculated overlap wins;");
    println!("as data-dependence grows, RUMR's factoring tail and eventually");
    println!("pure Factoring take over — the paper's Figure 4 crossover.");
}
