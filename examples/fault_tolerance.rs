//! Fault tolerance: a worker dies mid-run; the recovery wrapper redispatches
//! its lost chunks and still finishes the whole workload.
//!
//! Run with: `cargo run --release --example fault_tolerance`

use rumr::{FaultModel, FaultPlan, RecoveryConfig, RunSpec, Scenario, SchedulerKind, SimConfig};

fn main() {
    // 6 workers, exact predictions, 1000 units. Worker 2 crashes for good at
    // t = 60 s — roughly two thirds of the way through the fault-free run —
    // taking whatever it was computing and holding in its queue with it.
    let scenario = Scenario::table1(6, 1.5, 0.2, 0.2, 0.0);
    let kind = SchedulerKind::rumr_known_error(0.0);
    let seed = 42;
    let faults = FaultModel::Plan(FaultPlan::new().crash(60.0, 2));

    let fault_free = scenario
        .execute(&RunSpec::new(kind).seed(seed))
        .expect("fault-free run");
    println!(
        "fault-free RUMR:      makespan {:>7.2} s, {:>6.1} / {} units computed",
        fault_free.makespan,
        fault_free.completed_work(),
        scenario.w_total
    );

    // A plain scheduler has no answer to the crash: the destroyed chunks are
    // simply gone and the run ends with part of the workload never computed.
    let plain = scenario
        .execute(&RunSpec::new(kind).seed(seed).faults(faults.clone()))
        .expect("faulty run");
    println!(
        "plain RUMR + crash:   makespan {:>7.2} s, {:>6.1} / {} units computed",
        plain.makespan,
        plain.completed_work(),
        scenario.w_total
    );
    println!(
        "                      {} chunks ({:.1} units) destroyed, never redone:",
        plain.lost_chunks, plain.lost_work
    );
    for (start, len) in &plain.lost_ranges {
        println!(
            "                        units [{:.1}, {:.1}) lost",
            start,
            start + len
        );
    }

    // Wrapped in `Recovering`, the same scheduler gets every loss reported
    // back, steers new dispatches away from the dead worker, and factors the
    // lost units out over the survivors until everything is computed.
    let recovering = scenario
        .execute(
            &RunSpec::new(kind)
                .seed(seed)
                .config(SimConfig {
                    faults,
                    ..Default::default()
                })
                .recovering(RecoveryConfig::default()),
        )
        .expect("recovering run");
    println!(
        "recovering(RUMR):     makespan {:>7.2} s, {:>6.1} / {} units computed",
        recovering.makespan,
        recovering.completed_work(),
        scenario.w_total
    );
    println!(
        "                      {:.1} lost units redispatched to the 5 survivors",
        recovering.redispatched_work
    );

    assert!(plain.completed_work() < scenario.w_total);
    assert!((recovering.completed_work() - scenario.w_total).abs() < 1e-6);
    println!(
        "\nThe crash costs {:.1} units under the plain scheduler; the recovery",
        scenario.w_total - plain.completed_work()
    );
    println!(
        "wrapper finishes all of them, {:.1} s later than the fault-free run.",
        recovering.makespan - fault_free.makespan
    );
}
