//! Execution traces and their validation.
//!
//! The engine can record every simulated event. Traces serve three purposes:
//!
//! 1. **Debugging / inspection** — an ASCII Gantt chart ([`Trace::gantt`]).
//! 2. **Validation** — [`Trace::validate`] checks the physical invariants of
//!    the platform model (serial master link, one computation at a time per
//!    worker, computation only after data arrival, workload conservation).
//!    The property-based test suite runs every scheduler through this.
//! 3. **Metrics** — per-worker busy/idle time, used by the examples.

use std::fmt;

/// One timestamped simulation event.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum TraceEvent {
    /// The master started sending `chunk` units to `worker`.
    SendStart {
        /// Destination worker (0-based).
        worker: usize,
        /// Chunk size in workload units.
        chunk: f64,
        /// Simulation time (s).
        time: f64,
    },
    /// The master's interface finished pushing the chunk (link freed).
    SendEnd {
        /// Destination worker.
        worker: usize,
        /// Chunk size.
        chunk: f64,
        /// Simulation time.
        time: f64,
    },
    /// The last byte reached the worker (after `tLat`); the chunk is now in
    /// the worker's local queue.
    Arrival {
        /// Receiving worker.
        worker: usize,
        /// Chunk size.
        chunk: f64,
        /// Simulation time.
        time: f64,
    },
    /// The worker began computing a chunk.
    ComputeStart {
        /// Computing worker.
        worker: usize,
        /// Chunk size.
        chunk: f64,
        /// Simulation time.
        time: f64,
    },
    /// The worker finished computing a chunk.
    ComputeEnd {
        /// Computing worker.
        worker: usize,
        /// Chunk size.
        chunk: f64,
        /// Simulation time.
        time: f64,
    },
    /// The worker began returning output data to the master (output-data
    /// extension; never emitted under the paper's input-only model).
    ReturnStart {
        /// Sending worker.
        worker: usize,
        /// Output size in workload-equivalent units.
        bytes: f64,
        /// Simulation time.
        time: f64,
    },
    /// The master finished receiving a worker's output data.
    ReturnEnd {
        /// Sending worker.
        worker: usize,
        /// Output size.
        bytes: f64,
        /// Simulation time.
        time: f64,
    },
}

impl TraceEvent {
    /// The event's timestamp.
    pub fn time(&self) -> f64 {
        match *self {
            TraceEvent::SendStart { time, .. }
            | TraceEvent::SendEnd { time, .. }
            | TraceEvent::Arrival { time, .. }
            | TraceEvent::ComputeStart { time, .. }
            | TraceEvent::ComputeEnd { time, .. }
            | TraceEvent::ReturnStart { time, .. }
            | TraceEvent::ReturnEnd { time, .. } => time,
        }
    }

    /// The worker the event refers to.
    pub fn worker(&self) -> usize {
        match *self {
            TraceEvent::SendStart { worker, .. }
            | TraceEvent::SendEnd { worker, .. }
            | TraceEvent::Arrival { worker, .. }
            | TraceEvent::ComputeStart { worker, .. }
            | TraceEvent::ComputeEnd { worker, .. }
            | TraceEvent::ReturnStart { worker, .. }
            | TraceEvent::ReturnEnd { worker, .. } => worker,
        }
    }
}

/// A violation of the platform model's physical invariants.
#[derive(Debug, Clone, PartialEq)]
pub enum TraceViolation {
    /// Events are not in chronological order.
    OutOfOrder {
        /// Index of the offending event.
        index: usize,
    },
    /// Two master transfers overlapped.
    OverlappingSends {
        /// Index of the offending event.
        index: usize,
    },
    /// A worker computed two chunks at once, or compute events don't pair.
    OverlappingComputation {
        /// Offending worker.
        worker: usize,
        /// Index of the offending event.
        index: usize,
    },
    /// A chunk arrived before the master finished sending it, or a worker
    /// started computing a chunk it had not received.
    CausalityViolation {
        /// Offending worker.
        worker: usize,
        /// Description of the violated causal edge.
        what: &'static str,
    },
    /// Computed workload does not equal dispatched workload.
    WorkloadMismatch {
        /// Total workload units dispatched by the master.
        dispatched: f64,
        /// Total workload units whose computation completed.
        computed: f64,
    },
    /// A non-finite or negative timestamp or chunk size.
    InvalidValue {
        /// Index of the offending event.
        index: usize,
    },
}

impl fmt::Display for TraceViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TraceViolation::OutOfOrder { index } => write!(f, "event {index} out of order"),
            TraceViolation::OverlappingSends { index } => {
                write!(f, "overlapping master sends at event {index}")
            }
            TraceViolation::OverlappingComputation { worker, index } => {
                write!(
                    f,
                    "overlapping computation on worker {worker} at event {index}"
                )
            }
            TraceViolation::CausalityViolation { worker, what } => {
                write!(f, "causality violation on worker {worker}: {what}")
            }
            TraceViolation::WorkloadMismatch {
                dispatched,
                computed,
            } => write!(
                f,
                "workload mismatch: dispatched {dispatched}, computed {computed}"
            ),
            TraceViolation::InvalidValue { index } => {
                write!(f, "invalid time or chunk at event {index}")
            }
        }
    }
}

impl std::error::Error for TraceViolation {}

/// Chronological record of a simulation run.
#[derive(Debug, Clone, Default)]
pub struct Trace {
    events: Vec<TraceEvent>,
}

/// Tolerance for floating-point comparisons inside the validator. Event
/// times come from sums of perturbed durations, so exact equality can't be
/// demanded.
const TIME_EPS: f64 = 1e-9;

impl Trace {
    /// Create an empty trace.
    pub fn new() -> Self {
        Trace::default()
    }

    /// Append an event (engine use).
    pub(crate) fn push(&mut self, e: TraceEvent) {
        self.events.push(e);
    }

    /// All recorded events, in the order they fired.
    pub fn events(&self) -> &[TraceEvent] {
        &self.events
    }

    /// Number of recorded events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// True if no event was recorded.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Total workload units for which a `SendStart` was recorded.
    pub fn dispatched_work(&self) -> f64 {
        self.events
            .iter()
            .filter_map(|e| match e {
                TraceEvent::SendStart { chunk, .. } => Some(chunk),
                _ => None,
            })
            .sum()
    }

    /// Total workload units for which a `ComputeEnd` was recorded.
    pub fn computed_work(&self) -> f64 {
        self.events
            .iter()
            .filter_map(|e| match e {
                TraceEvent::ComputeEnd { chunk, .. } => Some(chunk),
                _ => None,
            })
            .sum()
    }

    /// Number of chunks dispatched.
    pub fn num_chunks(&self) -> usize {
        self.events
            .iter()
            .filter(|e| matches!(e, TraceEvent::SendStart { .. }))
            .count()
    }

    /// Check the physical invariants of the platform model; returns every
    /// violation found (empty = valid).
    ///
    /// Invariants:
    /// 1. Events are chronological, with finite non-negative times/chunks.
    /// 2. Master sends never overlap (`SendStart`/`SendEnd` alternate) —
    ///    the paper's serial-link model. For concurrent-transfer runs use
    ///    [`Trace::validate_with_concurrency`].
    /// 3. Per worker, computations never overlap and consume previously
    ///    arrived chunks in FIFO order.
    /// 4. `Arrival` follows the matching `SendEnd`; `ComputeStart` follows
    ///    the arrival of the chunk it consumes.
    /// 5. Every dispatched unit of workload is eventually computed.
    pub fn validate(&self, num_workers: usize) -> Vec<TraceViolation> {
        self.validate_with_concurrency(num_workers, 1)
    }

    /// [`Trace::validate`] generalized to a master allowed `max_sends`
    /// simultaneous transfers (the concurrent-transfer extension).
    pub fn validate_with_concurrency(
        &self,
        num_workers: usize,
        max_sends: usize,
    ) -> Vec<TraceViolation> {
        let mut violations = Vec::new();
        let mut last_time = 0.0_f64;
        // Open sends per worker: chunks started but not yet `SendEnd`ed.
        let mut open_sends: Vec<Vec<f64>> = vec![Vec::new(); num_workers];
        // Open output returns per worker (output-data extension).
        let mut open_returns: Vec<Vec<f64>> = vec![Vec::new(); num_workers];
        let mut open_send_count = 0usize;
        // Per worker: chunks sent but not yet arrived (FIFO), arrived but not
        // consumed (FIFO), current computation.
        let mut in_flight: Vec<std::collections::VecDeque<f64>> =
            vec![Default::default(); num_workers];
        let mut queued: Vec<std::collections::VecDeque<f64>> =
            vec![Default::default(); num_workers];
        let mut computing: Vec<Option<f64>> = vec![None; num_workers];
        let mut sent_not_arrived: Vec<std::collections::VecDeque<f64>> =
            vec![Default::default(); num_workers];

        for (i, e) in self.events.iter().enumerate() {
            let t = e.time();
            let w = e.worker();
            if !t.is_finite() || t < 0.0 {
                violations.push(TraceViolation::InvalidValue { index: i });
                continue;
            }
            if w >= num_workers {
                violations.push(TraceViolation::InvalidValue { index: i });
                continue;
            }
            if t < last_time - TIME_EPS {
                violations.push(TraceViolation::OutOfOrder { index: i });
            }
            last_time = last_time.max(t);

            match *e {
                TraceEvent::SendStart { worker, chunk, .. } => {
                    if !chunk.is_finite() || chunk < 0.0 {
                        violations.push(TraceViolation::InvalidValue { index: i });
                    }
                    if open_send_count >= max_sends {
                        violations.push(TraceViolation::OverlappingSends { index: i });
                    }
                    open_sends[worker].push(chunk);
                    open_send_count += 1;
                }
                TraceEvent::SendEnd { worker, chunk, .. } => {
                    match open_sends[worker]
                        .iter()
                        .position(|&sc| (sc - chunk).abs() < TIME_EPS)
                    {
                        Some(pos) => {
                            open_sends[worker].remove(pos);
                            open_send_count -= 1;
                            in_flight[worker].push_back(chunk);
                            sent_not_arrived[worker].push_back(chunk);
                        }
                        None => violations.push(TraceViolation::OverlappingSends { index: i }),
                    }
                }
                TraceEvent::Arrival { worker, chunk, .. } => {
                    match sent_not_arrived[worker].pop_front() {
                        Some(sc) if (sc - chunk).abs() < TIME_EPS => {
                            queued[worker].push_back(chunk);
                        }
                        _ => violations.push(TraceViolation::CausalityViolation {
                            worker,
                            what: "arrival without a completed send",
                        }),
                    }
                }
                TraceEvent::ComputeStart { worker, chunk, .. } => {
                    if computing[worker].is_some() {
                        violations
                            .push(TraceViolation::OverlappingComputation { worker, index: i });
                    }
                    match queued[worker].pop_front() {
                        Some(qc) if (qc - chunk).abs() < TIME_EPS => {
                            computing[worker] = Some(chunk);
                        }
                        _ => violations.push(TraceViolation::CausalityViolation {
                            worker,
                            what: "compute started before chunk arrived",
                        }),
                    }
                }
                TraceEvent::ComputeEnd { worker, chunk, .. } => match computing[worker].take() {
                    Some(cc) if (cc - chunk).abs() < TIME_EPS => {}
                    _ => {
                        violations.push(TraceViolation::OverlappingComputation { worker, index: i })
                    }
                },
                TraceEvent::ReturnStart { worker, bytes, .. } => {
                    if !bytes.is_finite() || bytes < 0.0 {
                        violations.push(TraceViolation::InvalidValue { index: i });
                    }
                    // Returns share the master's interface with input sends.
                    if open_send_count >= max_sends {
                        violations.push(TraceViolation::OverlappingSends { index: i });
                    }
                    open_returns[worker].push(bytes);
                    open_send_count += 1;
                }
                TraceEvent::ReturnEnd { worker, bytes, .. } => {
                    match open_returns[worker]
                        .iter()
                        .position(|&b| (b - bytes).abs() < TIME_EPS)
                    {
                        Some(pos) => {
                            open_returns[worker].remove(pos);
                            open_send_count -= 1;
                        }
                        None => violations.push(TraceViolation::CausalityViolation {
                            worker,
                            what: "return completed without a matching start",
                        }),
                    }
                }
            }
        }

        if open_send_count > 0 {
            violations.push(TraceViolation::OverlappingSends {
                index: self.events.len(),
            });
        }
        for (w, c) in computing.iter().enumerate() {
            if c.is_some() {
                violations.push(TraceViolation::OverlappingComputation {
                    worker: w,
                    index: self.events.len(),
                });
            }
        }

        let dispatched = self.dispatched_work();
        let computed = self.computed_work();
        let scale = dispatched.abs().max(1.0);
        if (dispatched - computed).abs() > 1e-6 * scale {
            violations.push(TraceViolation::WorkloadMismatch {
                dispatched,
                computed,
            });
        }
        violations
    }

    /// Per-worker busy time (sum of computation intervals).
    pub fn busy_time(&self, num_workers: usize) -> Vec<f64> {
        let mut busy = vec![0.0; num_workers];
        let mut start: Vec<Option<f64>> = vec![None; num_workers];
        for e in &self.events {
            match *e {
                TraceEvent::ComputeStart { worker, time, .. } if worker < num_workers => {
                    start[worker] = Some(time);
                }
                TraceEvent::ComputeEnd { worker, time, .. } if worker < num_workers => {
                    if let Some(s) = start[worker].take() {
                        busy[worker] += time - s;
                    }
                }
                _ => {}
            }
        }
        busy
    }

    /// Export the trace as CSV (`event,worker,chunk,time`), suitable for
    /// external plotting tools.
    pub fn to_csv(&self) -> String {
        let mut out = String::from("event,worker,chunk,time\n");
        for e in &self.events {
            let (name, worker, chunk, time) = match *e {
                TraceEvent::SendStart {
                    worker,
                    chunk,
                    time,
                } => ("send_start", worker, chunk, time),
                TraceEvent::SendEnd {
                    worker,
                    chunk,
                    time,
                } => ("send_end", worker, chunk, time),
                TraceEvent::Arrival {
                    worker,
                    chunk,
                    time,
                } => ("arrival", worker, chunk, time),
                TraceEvent::ComputeStart {
                    worker,
                    chunk,
                    time,
                } => ("compute_start", worker, chunk, time),
                TraceEvent::ComputeEnd {
                    worker,
                    chunk,
                    time,
                } => ("compute_end", worker, chunk, time),
                TraceEvent::ReturnStart {
                    worker,
                    bytes,
                    time,
                } => ("return_start", worker, bytes, time),
                TraceEvent::ReturnEnd {
                    worker,
                    bytes,
                    time,
                } => ("return_end", worker, bytes, time),
            };
            out.push_str(&format!("{name},{worker},{chunk},{time}\n"));
        }
        out
    }

    /// Render a compact ASCII Gantt chart: one row per worker (`#` compute,
    /// `.` idle) plus a master row (`=` sending). `width` is the number of
    /// character columns the makespan is scaled to.
    pub fn gantt(&self, num_workers: usize, width: usize) -> String {
        let makespan = self.events.iter().map(|e| e.time()).fold(0.0_f64, f64::max);
        if makespan <= 0.0 || width == 0 {
            return String::from("(empty trace)\n");
        }
        let col = |t: f64| ((t / makespan) * width as f64).round() as usize;

        let mut rows = vec![vec![b'.'; width + 1]; num_workers + 1];
        let mut compute_start: Vec<Option<f64>> = vec![None; num_workers];
        let mut send_start: Option<f64> = None;
        for e in &self.events {
            match *e {
                TraceEvent::SendStart { time, .. } => send_start = Some(time),
                TraceEvent::SendEnd { time, .. } => {
                    if let Some(s) = send_start.take() {
                        for cell in &mut rows[0][col(s)..=col(time).min(width)] {
                            *cell = b'=';
                        }
                    }
                }
                TraceEvent::ComputeStart { worker, time, .. } if worker < num_workers => {
                    compute_start[worker] = Some(time);
                }
                TraceEvent::ComputeEnd { worker, time, .. } if worker < num_workers => {
                    if let Some(s) = compute_start[worker].take() {
                        for cell in &mut rows[worker + 1][col(s)..=col(time).min(width)] {
                            *cell = b'#';
                        }
                    }
                }
                _ => {}
            }
        }
        let mut out = String::new();
        out.push_str(&format!("master |{}|\n", String::from_utf8_lossy(&rows[0])));
        for (w, row) in rows.iter().enumerate().skip(1) {
            out.push_str(&format!(
                "w{:<5} |{}|\n",
                w - 1,
                String::from_utf8_lossy(row)
            ));
        }
        out.push_str(&format!("0 {:>width$.3} s\n", makespan, width = width));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn valid_trace() -> Trace {
        let mut t = Trace::new();
        // Master sends 2 chunks to workers 0 and 1 sequentially; each
        // computes after arrival.
        t.push(TraceEvent::SendStart {
            worker: 0,
            chunk: 5.0,
            time: 0.0,
        });
        t.push(TraceEvent::SendEnd {
            worker: 0,
            chunk: 5.0,
            time: 1.0,
        });
        t.push(TraceEvent::Arrival {
            worker: 0,
            chunk: 5.0,
            time: 1.0,
        });
        t.push(TraceEvent::SendStart {
            worker: 1,
            chunk: 5.0,
            time: 1.0,
        });
        t.push(TraceEvent::ComputeStart {
            worker: 0,
            chunk: 5.0,
            time: 1.0,
        });
        t.push(TraceEvent::SendEnd {
            worker: 1,
            chunk: 5.0,
            time: 2.0,
        });
        t.push(TraceEvent::Arrival {
            worker: 1,
            chunk: 5.0,
            time: 2.0,
        });
        t.push(TraceEvent::ComputeStart {
            worker: 1,
            chunk: 5.0,
            time: 2.0,
        });
        t.push(TraceEvent::ComputeEnd {
            worker: 0,
            chunk: 5.0,
            time: 6.0,
        });
        t.push(TraceEvent::ComputeEnd {
            worker: 1,
            chunk: 5.0,
            time: 7.0,
        });
        t
    }

    #[test]
    fn valid_trace_passes() {
        assert!(valid_trace().validate(2).is_empty());
    }

    #[test]
    fn accounting() {
        let t = valid_trace();
        assert!((t.dispatched_work() - 10.0).abs() < 1e-12);
        assert!((t.computed_work() - 10.0).abs() < 1e-12);
        assert_eq!(t.num_chunks(), 2);
        let busy = t.busy_time(2);
        assert!((busy[0] - 5.0).abs() < 1e-12);
        assert!((busy[1] - 5.0).abs() < 1e-12);
    }

    #[test]
    fn detects_overlapping_sends() {
        let mut t = Trace::new();
        t.push(TraceEvent::SendStart {
            worker: 0,
            chunk: 1.0,
            time: 0.0,
        });
        t.push(TraceEvent::SendStart {
            worker: 1,
            chunk: 1.0,
            time: 0.5,
        });
        let v = t.validate(2);
        assert!(v
            .iter()
            .any(|x| matches!(x, TraceViolation::OverlappingSends { .. })));
    }

    #[test]
    fn detects_out_of_order() {
        let mut t = Trace::new();
        t.push(TraceEvent::SendStart {
            worker: 0,
            chunk: 1.0,
            time: 5.0,
        });
        t.push(TraceEvent::SendEnd {
            worker: 0,
            chunk: 1.0,
            time: 1.0,
        });
        let v = t.validate(1);
        assert!(v
            .iter()
            .any(|x| matches!(x, TraceViolation::OutOfOrder { .. })));
    }

    #[test]
    fn detects_compute_without_arrival() {
        let mut t = Trace::new();
        t.push(TraceEvent::ComputeStart {
            worker: 0,
            chunk: 1.0,
            time: 0.0,
        });
        let v = t.validate(1);
        assert!(v
            .iter()
            .any(|x| matches!(x, TraceViolation::CausalityViolation { .. })));
    }

    #[test]
    fn detects_overlapping_computation() {
        let mut t = Trace::new();
        t.push(TraceEvent::SendStart {
            worker: 0,
            chunk: 1.0,
            time: 0.0,
        });
        t.push(TraceEvent::SendEnd {
            worker: 0,
            chunk: 1.0,
            time: 0.1,
        });
        t.push(TraceEvent::Arrival {
            worker: 0,
            chunk: 1.0,
            time: 0.1,
        });
        t.push(TraceEvent::SendStart {
            worker: 0,
            chunk: 2.0,
            time: 0.1,
        });
        t.push(TraceEvent::SendEnd {
            worker: 0,
            chunk: 2.0,
            time: 0.2,
        });
        t.push(TraceEvent::Arrival {
            worker: 0,
            chunk: 2.0,
            time: 0.2,
        });
        t.push(TraceEvent::ComputeStart {
            worker: 0,
            chunk: 1.0,
            time: 0.2,
        });
        t.push(TraceEvent::ComputeStart {
            worker: 0,
            chunk: 2.0,
            time: 0.3,
        });
        let v = t.validate(1);
        assert!(v
            .iter()
            .any(|x| matches!(x, TraceViolation::OverlappingComputation { .. })));
    }

    #[test]
    fn detects_workload_mismatch() {
        let mut t = Trace::new();
        t.push(TraceEvent::SendStart {
            worker: 0,
            chunk: 5.0,
            time: 0.0,
        });
        t.push(TraceEvent::SendEnd {
            worker: 0,
            chunk: 5.0,
            time: 1.0,
        });
        t.push(TraceEvent::Arrival {
            worker: 0,
            chunk: 5.0,
            time: 1.0,
        });
        // Never computed.
        let v = t.validate(1);
        assert!(v
            .iter()
            .any(|x| matches!(x, TraceViolation::WorkloadMismatch { .. })));
    }

    #[test]
    fn detects_unterminated_send() {
        let mut t = Trace::new();
        t.push(TraceEvent::SendStart {
            worker: 0,
            chunk: 0.0,
            time: 0.0,
        });
        let v = t.validate(1);
        assert!(v
            .iter()
            .any(|x| matches!(x, TraceViolation::OverlappingSends { .. })));
    }

    #[test]
    fn detects_invalid_values() {
        let mut t = Trace::new();
        t.push(TraceEvent::SendStart {
            worker: 0,
            chunk: f64::NAN,
            time: 0.0,
        });
        assert!(!t.validate(1).is_empty());

        let mut t = Trace::new();
        t.push(TraceEvent::SendStart {
            worker: 5,
            chunk: 1.0,
            time: 0.0,
        });
        assert!(!t.validate(1).is_empty());

        let mut t = Trace::new();
        t.push(TraceEvent::SendStart {
            worker: 0,
            chunk: 1.0,
            time: -1.0,
        });
        assert!(!t.validate(1).is_empty());
    }

    #[test]
    fn csv_export() {
        let csv = valid_trace().to_csv();
        let mut lines = csv.lines();
        assert_eq!(lines.next().unwrap(), "event,worker,chunk,time");
        assert_eq!(lines.next().unwrap(), "send_start,0,5,0");
        assert_eq!(csv.lines().count(), 11);
        assert!(csv.contains("compute_end,1,5,7"));
    }

    #[test]
    fn gantt_renders() {
        let g = valid_trace().gantt(2, 40);
        assert!(g.contains("master"));
        assert!(g.contains('#'));
        assert!(g.contains('='));
        assert!(Trace::new().gantt(2, 40).contains("empty"));
    }

    #[test]
    fn violation_display() {
        for v in [
            TraceViolation::OutOfOrder { index: 1 },
            TraceViolation::OverlappingSends { index: 2 },
            TraceViolation::OverlappingComputation {
                worker: 0,
                index: 3,
            },
            TraceViolation::CausalityViolation {
                worker: 1,
                what: "x",
            },
            TraceViolation::WorkloadMismatch {
                dispatched: 1.0,
                computed: 0.5,
            },
            TraceViolation::InvalidValue { index: 4 },
        ] {
            assert!(!format!("{v}").is_empty());
        }
    }
}
