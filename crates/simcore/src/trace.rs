//! Execution traces and their validation.
//!
//! The engine can record every simulated event. Traces serve three purposes:
//!
//! 1. **Debugging / inspection** — an ASCII Gantt chart ([`Trace::gantt`]).
//! 2. **Validation** — [`Trace::validate`] checks the physical invariants of
//!    the platform model (serial master link, one computation at a time per
//!    worker, computation only after data arrival, workload conservation).
//!    The property-based test suite runs every scheduler through this.
//! 3. **Metrics** — per-worker busy/idle time, used by the examples.

use std::fmt;

/// Which lifecycle stage a chunk was in when a fault destroyed it. Lets the
/// validator retire the chunk from exactly the right stage even when several
/// same-sized chunks are live at once (factoring rounds send equal sizes).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LostStage {
    /// The master was still pushing it (setup or data phase).
    Sending,
    /// Fly phase: it had left the master but not yet arrived.
    InFlight,
    /// Sitting in the worker's local queue.
    Queued,
    /// Being computed.
    Computing,
}

/// One timestamped simulation event.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum TraceEvent {
    /// The master started sending `chunk` units to `worker`.
    SendStart {
        /// Destination worker (0-based).
        worker: usize,
        /// Chunk size in workload units.
        chunk: f64,
        /// Simulation time (s).
        time: f64,
    },
    /// The master's interface finished pushing the chunk (link freed).
    SendEnd {
        /// Destination worker.
        worker: usize,
        /// Chunk size.
        chunk: f64,
        /// Simulation time.
        time: f64,
    },
    /// The last byte reached the worker (after `tLat`); the chunk is now in
    /// the worker's local queue.
    Arrival {
        /// Receiving worker.
        worker: usize,
        /// Chunk size.
        chunk: f64,
        /// Simulation time.
        time: f64,
    },
    /// The worker began computing a chunk.
    ComputeStart {
        /// Computing worker.
        worker: usize,
        /// Chunk size.
        chunk: f64,
        /// Simulation time.
        time: f64,
    },
    /// The worker finished computing a chunk.
    ComputeEnd {
        /// Computing worker.
        worker: usize,
        /// Chunk size.
        chunk: f64,
        /// Simulation time.
        time: f64,
    },
    /// The worker began returning output data to the master (output-data
    /// extension; never emitted under the paper's input-only model).
    ReturnStart {
        /// Sending worker.
        worker: usize,
        /// Output size in workload-equivalent units.
        bytes: f64,
        /// Simulation time.
        time: f64,
    },
    /// The master finished receiving a worker's output data.
    ReturnEnd {
        /// Sending worker.
        worker: usize,
        /// Output size.
        bytes: f64,
        /// Simulation time.
        time: f64,
    },
    /// The worker crashed (fault injection). Chunks it held are reported by
    /// individual [`TraceEvent::ChunkLost`] events.
    WorkerDown {
        /// Crashed worker.
        worker: usize,
        /// Simulation time.
        time: f64,
    },
    /// The worker came back up with an empty queue (crash-recovery).
    WorkerUp {
        /// Recovered worker.
        worker: usize,
        /// Simulation time.
        time: f64,
    },
    /// A dispatched chunk was destroyed by a fault — mid-transfer, queued,
    /// or mid-computation.
    ChunkLost {
        /// Worker the chunk was bound for or held by.
        worker: usize,
        /// Chunk size in workload units.
        chunk: f64,
        /// Lifecycle stage the chunk was in when destroyed.
        stage: LostStage,
        /// Simulation time.
        time: f64,
    },
    /// Marker: the next `SendStart` to this worker re-sends previously lost
    /// work (`Decision::Redispatch`). Carries no platform semantics.
    Redispatch {
        /// Destination worker.
        worker: usize,
        /// Chunk size in workload units.
        chunk: f64,
        /// Simulation time.
        time: f64,
    },
}

impl TraceEvent {
    /// The event's timestamp.
    pub fn time(&self) -> f64 {
        match *self {
            TraceEvent::SendStart { time, .. }
            | TraceEvent::SendEnd { time, .. }
            | TraceEvent::Arrival { time, .. }
            | TraceEvent::ComputeStart { time, .. }
            | TraceEvent::ComputeEnd { time, .. }
            | TraceEvent::ReturnStart { time, .. }
            | TraceEvent::ReturnEnd { time, .. }
            | TraceEvent::WorkerDown { time, .. }
            | TraceEvent::WorkerUp { time, .. }
            | TraceEvent::ChunkLost { time, .. }
            | TraceEvent::Redispatch { time, .. } => time,
        }
    }

    /// The worker the event refers to.
    pub fn worker(&self) -> usize {
        match *self {
            TraceEvent::SendStart { worker, .. }
            | TraceEvent::SendEnd { worker, .. }
            | TraceEvent::Arrival { worker, .. }
            | TraceEvent::ComputeStart { worker, .. }
            | TraceEvent::ComputeEnd { worker, .. }
            | TraceEvent::ReturnStart { worker, .. }
            | TraceEvent::ReturnEnd { worker, .. }
            | TraceEvent::WorkerDown { worker, .. }
            | TraceEvent::WorkerUp { worker, .. }
            | TraceEvent::ChunkLost { worker, .. }
            | TraceEvent::Redispatch { worker, .. } => worker,
        }
    }
}

/// A violation of the platform model's physical invariants.
#[derive(Debug, Clone, PartialEq)]
pub enum TraceViolation {
    /// Events are not in chronological order.
    OutOfOrder {
        /// Index of the offending event.
        index: usize,
    },
    /// Two master transfers overlapped.
    OverlappingSends {
        /// Index of the offending event.
        index: usize,
    },
    /// A worker computed two chunks at once, or compute events don't pair.
    OverlappingComputation {
        /// Offending worker.
        worker: usize,
        /// Index of the offending event.
        index: usize,
    },
    /// A chunk arrived before the master finished sending it, or a worker
    /// started computing a chunk it had not received.
    CausalityViolation {
        /// Offending worker.
        worker: usize,
        /// Description of the violated causal edge.
        what: &'static str,
    },
    /// Accounted workload (computed + explicitly lost) does not equal
    /// dispatched workload.
    WorkloadMismatch {
        /// Total workload units dispatched by the master.
        dispatched: f64,
        /// Total workload units accounted for: computation completed plus
        /// explicitly lost to faults.
        computed: f64,
    },
    /// A non-finite or negative timestamp or chunk size.
    InvalidValue {
        /// Index of the offending event.
        index: usize,
    },
}

impl fmt::Display for TraceViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TraceViolation::OutOfOrder { index } => write!(f, "event {index} out of order"),
            TraceViolation::OverlappingSends { index } => {
                write!(f, "overlapping master sends at event {index}")
            }
            TraceViolation::OverlappingComputation { worker, index } => {
                write!(
                    f,
                    "overlapping computation on worker {worker} at event {index}"
                )
            }
            TraceViolation::CausalityViolation { worker, what } => {
                write!(f, "causality violation on worker {worker}: {what}")
            }
            TraceViolation::WorkloadMismatch {
                dispatched,
                computed,
            } => write!(
                f,
                "workload mismatch: dispatched {dispatched}, computed {computed}"
            ),
            TraceViolation::InvalidValue { index } => {
                write!(f, "invalid time or chunk at event {index}")
            }
        }
    }
}

impl std::error::Error for TraceViolation {}

/// Chronological record of a simulation run.
#[derive(Debug, Clone, Default)]
pub struct Trace {
    events: Vec<TraceEvent>,
}

/// Tolerance for floating-point comparisons inside the validator. Event
/// times come from sums of perturbed durations, so exact equality can't be
/// demanded.
const TIME_EPS: f64 = 1e-9;

impl Trace {
    /// Create an empty trace.
    pub fn new() -> Self {
        Trace::default()
    }

    /// Append an event (engine use).
    pub(crate) fn push(&mut self, e: TraceEvent) {
        self.events.push(e);
    }

    /// All recorded events, in the order they fired.
    pub fn events(&self) -> &[TraceEvent] {
        &self.events
    }

    /// Number of recorded events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// True if no event was recorded.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Total workload units for which a `SendStart` was recorded.
    pub fn dispatched_work(&self) -> f64 {
        self.events
            .iter()
            .filter_map(|e| match e {
                TraceEvent::SendStart { chunk, .. } => Some(chunk),
                _ => None,
            })
            .sum()
    }

    /// Total workload units for which a `ComputeEnd` was recorded.
    pub fn computed_work(&self) -> f64 {
        self.events
            .iter()
            .filter_map(|e| match e {
                TraceEvent::ComputeEnd { chunk, .. } => Some(chunk),
                _ => None,
            })
            .sum()
    }

    /// Total workload units destroyed by faults (`ChunkLost` events).
    pub fn lost_work(&self) -> f64 {
        self.events
            .iter()
            .filter_map(|e| match e {
                TraceEvent::ChunkLost { chunk, .. } => Some(chunk),
                _ => None,
            })
            .sum()
    }

    /// Number of chunks dispatched.
    pub fn num_chunks(&self) -> usize {
        self.events
            .iter()
            .filter(|e| matches!(e, TraceEvent::SendStart { .. }))
            .count()
    }

    /// Check the physical invariants of the platform model; returns every
    /// violation found (empty = valid).
    ///
    /// Invariants:
    /// 1. Events are chronological, with finite non-negative times/chunks.
    /// 2. Master sends never overlap (`SendStart`/`SendEnd` alternate) —
    ///    the paper's serial-link model. For concurrent-transfer runs use
    ///    [`Trace::validate_with_concurrency`].
    /// 3. Per worker, computations never overlap and consume previously
    ///    arrived chunks in FIFO order.
    /// 4. `Arrival` follows the matching `SendEnd`; `ComputeStart` follows
    ///    the arrival of the chunk it consumes.
    /// 5. Every dispatched unit of workload is eventually computed **or
    ///    explicitly lost to a fault** (`ChunkLost`); a lost chunk is
    ///    removed from whatever lifecycle stage it occupied.
    /// 6. Fault events alternate sanely: no `WorkerDown` while down, no
    ///    `WorkerUp` while up.
    pub fn validate(&self, num_workers: usize) -> Vec<TraceViolation> {
        self.validate_with_concurrency(num_workers, 1)
    }

    /// [`Trace::validate`] generalized to a master allowed `max_sends`
    /// simultaneous transfers (the concurrent-transfer extension).
    pub fn validate_with_concurrency(
        &self,
        num_workers: usize,
        max_sends: usize,
    ) -> Vec<TraceViolation> {
        let mut violations = Vec::new();
        let mut last_time = 0.0_f64;
        // Open sends per worker: chunks started but not yet `SendEnd`ed.
        let mut open_sends: Vec<Vec<f64>> = vec![Vec::new(); num_workers];
        // Open output returns per worker (output-data extension).
        let mut open_returns: Vec<Vec<f64>> = vec![Vec::new(); num_workers];
        let mut open_send_count = 0usize;
        // Per worker: chunks sent but not yet arrived (FIFO), arrived but not
        // consumed (FIFO), current computation.
        let mut in_flight: Vec<std::collections::VecDeque<f64>> =
            vec![Default::default(); num_workers];
        let mut queued: Vec<std::collections::VecDeque<f64>> =
            vec![Default::default(); num_workers];
        let mut computing: Vec<Option<f64>> = vec![None; num_workers];
        let mut sent_not_arrived: Vec<std::collections::VecDeque<f64>> =
            vec![Default::default(); num_workers];
        let mut alive = vec![true; num_workers];
        let mut lost_total = 0.0_f64;

        for (i, e) in self.events.iter().enumerate() {
            let t = e.time();
            let w = e.worker();
            if !t.is_finite() || t < 0.0 {
                violations.push(TraceViolation::InvalidValue { index: i });
                continue;
            }
            if w >= num_workers {
                violations.push(TraceViolation::InvalidValue { index: i });
                continue;
            }
            if t < last_time - TIME_EPS {
                violations.push(TraceViolation::OutOfOrder { index: i });
            }
            last_time = last_time.max(t);

            match *e {
                TraceEvent::SendStart { worker, chunk, .. } => {
                    if !chunk.is_finite() || chunk < 0.0 {
                        violations.push(TraceViolation::InvalidValue { index: i });
                    }
                    if open_send_count >= max_sends {
                        violations.push(TraceViolation::OverlappingSends { index: i });
                    }
                    open_sends[worker].push(chunk);
                    open_send_count += 1;
                }
                TraceEvent::SendEnd { worker, chunk, .. } => {
                    match open_sends[worker]
                        .iter()
                        .position(|&sc| (sc - chunk).abs() < TIME_EPS)
                    {
                        Some(pos) => {
                            open_sends[worker].remove(pos);
                            open_send_count -= 1;
                            in_flight[worker].push_back(chunk);
                            sent_not_arrived[worker].push_back(chunk);
                        }
                        None => violations.push(TraceViolation::OverlappingSends { index: i }),
                    }
                }
                TraceEvent::Arrival { worker, chunk, .. } => {
                    match sent_not_arrived[worker].pop_front() {
                        Some(sc) if (sc - chunk).abs() < TIME_EPS => {
                            queued[worker].push_back(chunk);
                        }
                        _ => violations.push(TraceViolation::CausalityViolation {
                            worker,
                            what: "arrival without a completed send",
                        }),
                    }
                }
                TraceEvent::ComputeStart { worker, chunk, .. } => {
                    if computing[worker].is_some() {
                        violations
                            .push(TraceViolation::OverlappingComputation { worker, index: i });
                    }
                    match queued[worker].pop_front() {
                        Some(qc) if (qc - chunk).abs() < TIME_EPS => {
                            computing[worker] = Some(chunk);
                        }
                        _ => violations.push(TraceViolation::CausalityViolation {
                            worker,
                            what: "compute started before chunk arrived",
                        }),
                    }
                }
                TraceEvent::ComputeEnd { worker, chunk, .. } => match computing[worker].take() {
                    Some(cc) if (cc - chunk).abs() < TIME_EPS => {}
                    _ => {
                        violations.push(TraceViolation::OverlappingComputation { worker, index: i })
                    }
                },
                TraceEvent::ReturnStart { worker, bytes, .. } => {
                    if !bytes.is_finite() || bytes < 0.0 {
                        violations.push(TraceViolation::InvalidValue { index: i });
                    }
                    // Returns share the master's interface with input sends.
                    if open_send_count >= max_sends {
                        violations.push(TraceViolation::OverlappingSends { index: i });
                    }
                    open_returns[worker].push(bytes);
                    open_send_count += 1;
                }
                TraceEvent::ReturnEnd { worker, bytes, .. } => {
                    match open_returns[worker]
                        .iter()
                        .position(|&b| (b - bytes).abs() < TIME_EPS)
                    {
                        Some(pos) => {
                            open_returns[worker].remove(pos);
                            open_send_count -= 1;
                        }
                        None => violations.push(TraceViolation::CausalityViolation {
                            worker,
                            what: "return completed without a matching start",
                        }),
                    }
                }
                TraceEvent::WorkerDown { worker, .. } => {
                    if !alive[worker] {
                        violations.push(TraceViolation::CausalityViolation {
                            worker,
                            what: "worker went down while already down",
                        });
                    }
                    alive[worker] = false;
                }
                TraceEvent::WorkerUp { worker, .. } => {
                    if alive[worker] {
                        violations.push(TraceViolation::CausalityViolation {
                            worker,
                            what: "worker recovered while already up",
                        });
                    }
                    alive[worker] = true;
                }
                TraceEvent::ChunkLost {
                    worker,
                    chunk,
                    stage,
                    ..
                } => {
                    if !chunk.is_finite() || chunk < 0.0 {
                        violations.push(TraceViolation::InvalidValue { index: i });
                        continue;
                    }
                    lost_total += chunk;
                    // Retire the chunk from exactly the stage the event
                    // claims (a mid-send loss leaves its SendStart without
                    // a SendEnd).
                    let near = |&sc: &f64| (sc - chunk).abs() < TIME_EPS;
                    let found = match stage {
                        LostStage::Computing => computing[worker]
                            .filter(|c| near(c))
                            .map(|_| computing[worker] = None)
                            .is_some(),
                        LostStage::Queued => queued[worker]
                            .iter()
                            .position(near)
                            .map(|pos| {
                                queued[worker].remove(pos);
                            })
                            .is_some(),
                        LostStage::InFlight => sent_not_arrived[worker]
                            .iter()
                            .position(near)
                            .map(|pos| {
                                sent_not_arrived[worker].remove(pos);
                            })
                            .is_some(),
                        LostStage::Sending => open_sends[worker]
                            .iter()
                            .position(near)
                            .map(|pos| {
                                open_sends[worker].remove(pos);
                                open_send_count -= 1;
                            })
                            .is_some(),
                    };
                    if !found {
                        violations.push(TraceViolation::CausalityViolation {
                            worker,
                            what: "chunk lost in a stage it never reached",
                        });
                    }
                }
                TraceEvent::Redispatch { .. } => {
                    // Accounting marker only; the actual transfer is the
                    // SendStart that follows.
                }
            }
        }

        if open_send_count > 0 {
            violations.push(TraceViolation::OverlappingSends {
                index: self.events.len(),
            });
        }
        for (w, c) in computing.iter().enumerate() {
            if c.is_some() {
                violations.push(TraceViolation::OverlappingComputation {
                    worker: w,
                    index: self.events.len(),
                });
            }
        }

        // Conservation: everything dispatched is computed or explicitly
        // lost to a fault (lost_total = 0 on fault-free traces).
        let dispatched = self.dispatched_work();
        let computed = self.computed_work();
        let scale = dispatched.abs().max(1.0);
        if (dispatched - computed - lost_total).abs() > 1e-6 * scale {
            violations.push(TraceViolation::WorkloadMismatch {
                dispatched,
                computed: computed + lost_total,
            });
        }
        violations
    }

    /// Per-worker busy time (sum of computation intervals).
    pub fn busy_time(&self, num_workers: usize) -> Vec<f64> {
        let mut busy = vec![0.0; num_workers];
        let mut start: Vec<Option<f64>> = vec![None; num_workers];
        for e in &self.events {
            match *e {
                TraceEvent::ComputeStart { worker, time, .. } if worker < num_workers => {
                    start[worker] = Some(time);
                }
                TraceEvent::ComputeEnd { worker, time, .. } if worker < num_workers => {
                    if let Some(s) = start[worker].take() {
                        busy[worker] += time - s;
                    }
                }
                _ => {}
            }
        }
        busy
    }

    /// Export the trace as CSV (`event,worker,chunk,time`), suitable for
    /// external plotting tools.
    pub fn to_csv(&self) -> String {
        let mut out = String::from("event,worker,chunk,time\n");
        for e in &self.events {
            let (name, worker, chunk, time) = match *e {
                TraceEvent::SendStart {
                    worker,
                    chunk,
                    time,
                } => ("send_start", worker, chunk, time),
                TraceEvent::SendEnd {
                    worker,
                    chunk,
                    time,
                } => ("send_end", worker, chunk, time),
                TraceEvent::Arrival {
                    worker,
                    chunk,
                    time,
                } => ("arrival", worker, chunk, time),
                TraceEvent::ComputeStart {
                    worker,
                    chunk,
                    time,
                } => ("compute_start", worker, chunk, time),
                TraceEvent::ComputeEnd {
                    worker,
                    chunk,
                    time,
                } => ("compute_end", worker, chunk, time),
                TraceEvent::ReturnStart {
                    worker,
                    bytes,
                    time,
                } => ("return_start", worker, bytes, time),
                TraceEvent::ReturnEnd {
                    worker,
                    bytes,
                    time,
                } => ("return_end", worker, bytes, time),
                TraceEvent::WorkerDown { worker, time } => ("worker_down", worker, 0.0, time),
                TraceEvent::WorkerUp { worker, time } => ("worker_up", worker, 0.0, time),
                TraceEvent::ChunkLost {
                    worker,
                    chunk,
                    time,
                    ..
                } => ("chunk_lost", worker, chunk, time),
                TraceEvent::Redispatch {
                    worker,
                    chunk,
                    time,
                } => ("redispatch", worker, chunk, time),
            };
            out.push_str(&format!("{name},{worker},{chunk},{time}\n"));
        }
        out
    }

    /// Render a compact ASCII Gantt chart: one row per worker (`#` compute,
    /// `.` idle) plus a master row (`=` sending). `width` is the number of
    /// character columns the makespan is scaled to.
    pub fn gantt(&self, num_workers: usize, width: usize) -> String {
        let makespan = self.events.iter().map(|e| e.time()).fold(0.0_f64, f64::max);
        if makespan <= 0.0 || width == 0 {
            return String::from("(empty trace)\n");
        }
        let col = |t: f64| ((t / makespan) * width as f64).round() as usize;

        let mut rows = vec![vec![b'.'; width + 1]; num_workers + 1];
        let mut compute_start: Vec<Option<f64>> = vec![None; num_workers];
        let mut send_start: Option<f64> = None;
        for e in &self.events {
            match *e {
                TraceEvent::SendStart { time, .. } => send_start = Some(time),
                TraceEvent::SendEnd { time, .. } => {
                    if let Some(s) = send_start.take() {
                        for cell in &mut rows[0][col(s)..=col(time).min(width)] {
                            *cell = b'=';
                        }
                    }
                }
                TraceEvent::ComputeStart { worker, time, .. } if worker < num_workers => {
                    compute_start[worker] = Some(time);
                }
                TraceEvent::ComputeEnd { worker, time, .. } if worker < num_workers => {
                    if let Some(s) = compute_start[worker].take() {
                        for cell in &mut rows[worker + 1][col(s)..=col(time).min(width)] {
                            *cell = b'#';
                        }
                    }
                }
                _ => {}
            }
        }
        // Downtime overlay (`x`): crashed intervals, open ones running to
        // the end of the chart.
        let mut down_since: Vec<Option<f64>> = vec![None; num_workers];
        for e in &self.events {
            match *e {
                TraceEvent::WorkerDown { worker, time } if worker < num_workers => {
                    down_since[worker] = Some(time);
                }
                TraceEvent::WorkerUp { worker, time } if worker < num_workers => {
                    if let Some(s) = down_since[worker].take() {
                        for cell in &mut rows[worker + 1][col(s)..=col(time).min(width)] {
                            if *cell == b'.' {
                                *cell = b'x';
                            }
                        }
                    }
                }
                _ => {}
            }
        }
        for (w, since) in down_since.iter().enumerate() {
            if let Some(s) = since {
                for cell in &mut rows[w + 1][col(*s)..=width] {
                    if *cell == b'.' {
                        *cell = b'x';
                    }
                }
            }
        }
        let mut out = String::new();
        out.push_str(&format!("master |{}|\n", String::from_utf8_lossy(&rows[0])));
        for (w, row) in rows.iter().enumerate().skip(1) {
            out.push_str(&format!(
                "w{:<5} |{}|\n",
                w - 1,
                String::from_utf8_lossy(row)
            ));
        }
        out.push_str(&format!("0 {:>width$.3} s\n", makespan, width = width));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn valid_trace() -> Trace {
        let mut t = Trace::new();
        // Master sends 2 chunks to workers 0 and 1 sequentially; each
        // computes after arrival.
        t.push(TraceEvent::SendStart {
            worker: 0,
            chunk: 5.0,
            time: 0.0,
        });
        t.push(TraceEvent::SendEnd {
            worker: 0,
            chunk: 5.0,
            time: 1.0,
        });
        t.push(TraceEvent::Arrival {
            worker: 0,
            chunk: 5.0,
            time: 1.0,
        });
        t.push(TraceEvent::SendStart {
            worker: 1,
            chunk: 5.0,
            time: 1.0,
        });
        t.push(TraceEvent::ComputeStart {
            worker: 0,
            chunk: 5.0,
            time: 1.0,
        });
        t.push(TraceEvent::SendEnd {
            worker: 1,
            chunk: 5.0,
            time: 2.0,
        });
        t.push(TraceEvent::Arrival {
            worker: 1,
            chunk: 5.0,
            time: 2.0,
        });
        t.push(TraceEvent::ComputeStart {
            worker: 1,
            chunk: 5.0,
            time: 2.0,
        });
        t.push(TraceEvent::ComputeEnd {
            worker: 0,
            chunk: 5.0,
            time: 6.0,
        });
        t.push(TraceEvent::ComputeEnd {
            worker: 1,
            chunk: 5.0,
            time: 7.0,
        });
        t
    }

    #[test]
    fn valid_trace_passes() {
        assert!(valid_trace().validate(2).is_empty());
    }

    #[test]
    fn accounting() {
        let t = valid_trace();
        assert!((t.dispatched_work() - 10.0).abs() < 1e-12);
        assert!((t.computed_work() - 10.0).abs() < 1e-12);
        assert_eq!(t.num_chunks(), 2);
        let busy = t.busy_time(2);
        assert!((busy[0] - 5.0).abs() < 1e-12);
        assert!((busy[1] - 5.0).abs() < 1e-12);
    }

    #[test]
    fn detects_overlapping_sends() {
        let mut t = Trace::new();
        t.push(TraceEvent::SendStart {
            worker: 0,
            chunk: 1.0,
            time: 0.0,
        });
        t.push(TraceEvent::SendStart {
            worker: 1,
            chunk: 1.0,
            time: 0.5,
        });
        let v = t.validate(2);
        assert!(v
            .iter()
            .any(|x| matches!(x, TraceViolation::OverlappingSends { .. })));
    }

    #[test]
    fn detects_out_of_order() {
        let mut t = Trace::new();
        t.push(TraceEvent::SendStart {
            worker: 0,
            chunk: 1.0,
            time: 5.0,
        });
        t.push(TraceEvent::SendEnd {
            worker: 0,
            chunk: 1.0,
            time: 1.0,
        });
        let v = t.validate(1);
        assert!(v
            .iter()
            .any(|x| matches!(x, TraceViolation::OutOfOrder { .. })));
    }

    #[test]
    fn detects_compute_without_arrival() {
        let mut t = Trace::new();
        t.push(TraceEvent::ComputeStart {
            worker: 0,
            chunk: 1.0,
            time: 0.0,
        });
        let v = t.validate(1);
        assert!(v
            .iter()
            .any(|x| matches!(x, TraceViolation::CausalityViolation { .. })));
    }

    #[test]
    fn detects_overlapping_computation() {
        let mut t = Trace::new();
        t.push(TraceEvent::SendStart {
            worker: 0,
            chunk: 1.0,
            time: 0.0,
        });
        t.push(TraceEvent::SendEnd {
            worker: 0,
            chunk: 1.0,
            time: 0.1,
        });
        t.push(TraceEvent::Arrival {
            worker: 0,
            chunk: 1.0,
            time: 0.1,
        });
        t.push(TraceEvent::SendStart {
            worker: 0,
            chunk: 2.0,
            time: 0.1,
        });
        t.push(TraceEvent::SendEnd {
            worker: 0,
            chunk: 2.0,
            time: 0.2,
        });
        t.push(TraceEvent::Arrival {
            worker: 0,
            chunk: 2.0,
            time: 0.2,
        });
        t.push(TraceEvent::ComputeStart {
            worker: 0,
            chunk: 1.0,
            time: 0.2,
        });
        t.push(TraceEvent::ComputeStart {
            worker: 0,
            chunk: 2.0,
            time: 0.3,
        });
        let v = t.validate(1);
        assert!(v
            .iter()
            .any(|x| matches!(x, TraceViolation::OverlappingComputation { .. })));
    }

    #[test]
    fn detects_workload_mismatch() {
        let mut t = Trace::new();
        t.push(TraceEvent::SendStart {
            worker: 0,
            chunk: 5.0,
            time: 0.0,
        });
        t.push(TraceEvent::SendEnd {
            worker: 0,
            chunk: 5.0,
            time: 1.0,
        });
        t.push(TraceEvent::Arrival {
            worker: 0,
            chunk: 5.0,
            time: 1.0,
        });
        // Never computed.
        let v = t.validate(1);
        assert!(v
            .iter()
            .any(|x| matches!(x, TraceViolation::WorkloadMismatch { .. })));
    }

    #[test]
    fn detects_unterminated_send() {
        let mut t = Trace::new();
        t.push(TraceEvent::SendStart {
            worker: 0,
            chunk: 0.0,
            time: 0.0,
        });
        let v = t.validate(1);
        assert!(v
            .iter()
            .any(|x| matches!(x, TraceViolation::OverlappingSends { .. })));
    }

    #[test]
    fn detects_invalid_values() {
        let mut t = Trace::new();
        t.push(TraceEvent::SendStart {
            worker: 0,
            chunk: f64::NAN,
            time: 0.0,
        });
        assert!(!t.validate(1).is_empty());

        let mut t = Trace::new();
        t.push(TraceEvent::SendStart {
            worker: 5,
            chunk: 1.0,
            time: 0.0,
        });
        assert!(!t.validate(1).is_empty());

        let mut t = Trace::new();
        t.push(TraceEvent::SendStart {
            worker: 0,
            chunk: 1.0,
            time: -1.0,
        });
        assert!(!t.validate(1).is_empty());
    }

    #[test]
    fn csv_export() {
        let csv = valid_trace().to_csv();
        let mut lines = csv.lines();
        assert_eq!(lines.next().unwrap(), "event,worker,chunk,time");
        assert_eq!(lines.next().unwrap(), "send_start,0,5,0");
        assert_eq!(csv.lines().count(), 11);
        assert!(csv.contains("compute_end,1,5,7"));
    }

    #[test]
    fn gantt_renders() {
        let g = valid_trace().gantt(2, 40);
        assert!(g.contains("master"));
        assert!(g.contains('#'));
        assert!(g.contains('='));
        assert!(Trace::new().gantt(2, 40).contains("empty"));
    }

    #[test]
    fn violation_display() {
        for v in [
            TraceViolation::OutOfOrder { index: 1 },
            TraceViolation::OverlappingSends { index: 2 },
            TraceViolation::OverlappingComputation {
                worker: 0,
                index: 3,
            },
            TraceViolation::CausalityViolation {
                worker: 1,
                what: "x",
            },
            TraceViolation::WorkloadMismatch {
                dispatched: 1.0,
                computed: 0.5,
            },
            TraceViolation::InvalidValue { index: 4 },
        ] {
            assert!(!format!("{v}").is_empty());
        }
    }

    /// A crash mid-transfer: worker 1 dies while its chunk is on the wire,
    /// so the SendStart is never matched by a SendEnd.
    fn faulty_trace() -> Trace {
        let mut t = Trace::new();
        t.push(TraceEvent::SendStart {
            worker: 0,
            chunk: 5.0,
            time: 0.0,
        });
        t.push(TraceEvent::SendEnd {
            worker: 0,
            chunk: 5.0,
            time: 1.0,
        });
        t.push(TraceEvent::Arrival {
            worker: 0,
            chunk: 5.0,
            time: 1.0,
        });
        t.push(TraceEvent::ComputeStart {
            worker: 0,
            chunk: 5.0,
            time: 1.0,
        });
        t.push(TraceEvent::SendStart {
            worker: 1,
            chunk: 5.0,
            time: 1.0,
        });
        t.push(TraceEvent::WorkerDown {
            worker: 1,
            time: 1.5,
        });
        t.push(TraceEvent::ChunkLost {
            worker: 1,
            chunk: 5.0,
            stage: LostStage::Sending,
            time: 1.5,
        });
        t.push(TraceEvent::ComputeEnd {
            worker: 0,
            chunk: 5.0,
            time: 6.0,
        });
        t
    }

    #[test]
    fn mid_transfer_loss_validates_cleanly() {
        let t = faulty_trace();
        assert!(t.validate(2).is_empty(), "{:?}", t.validate(2));
        assert!((t.lost_work() - 5.0).abs() < 1e-12);
        // Lost work counts toward conservation: 10 dispatched = 5 + 5.
        assert!((t.dispatched_work() - 10.0).abs() < 1e-12);
    }

    #[test]
    fn down_up_cycle_validates() {
        let mut t = faulty_trace();
        t.push(TraceEvent::WorkerUp {
            worker: 1,
            time: 7.0,
        });
        assert!(t.validate(2).is_empty());
    }

    #[test]
    fn detects_double_down() {
        let mut t = faulty_trace();
        t.push(TraceEvent::WorkerDown {
            worker: 1,
            time: 7.0,
        });
        assert!(t
            .validate(2)
            .iter()
            .any(|v| matches!(v, TraceViolation::CausalityViolation { worker: 1, .. })));
    }

    #[test]
    fn detects_spurious_up() {
        let mut t = valid_trace();
        t.push(TraceEvent::WorkerUp {
            worker: 0,
            time: 8.0,
        });
        assert!(t
            .validate(2)
            .iter()
            .any(|v| matches!(v, TraceViolation::CausalityViolation { worker: 0, .. })));
    }

    #[test]
    fn detects_phantom_chunk_loss() {
        // Claiming a loss in a stage the chunk never reached is a
        // causality violation (here: nothing was ever sent to worker 1).
        let mut t = valid_trace();
        t.push(TraceEvent::ChunkLost {
            worker: 1,
            chunk: 5.0,
            stage: LostStage::Queued,
            time: 8.0,
        });
        assert!(t.validate(2).iter().any(|v| matches!(
            v,
            TraceViolation::CausalityViolation {
                worker: 1,
                what: "chunk lost in a stage it never reached",
            }
        )));
    }

    #[test]
    fn detects_wrong_stage_chunk_loss() {
        // The chunk really was lost mid-send; corrupting the stage to
        // Computing must be flagged.
        let t = faulty_trace();
        let events = t.events().to_vec();
        let mut corrupted = Trace::new();
        for e in events {
            corrupted.push(match e {
                TraceEvent::ChunkLost {
                    worker,
                    chunk,
                    time,
                    ..
                } => TraceEvent::ChunkLost {
                    worker,
                    chunk,
                    stage: LostStage::Computing,
                    time,
                },
                other => other,
            });
        }
        assert!(!corrupted.validate(2).is_empty());
    }

    #[test]
    fn csv_includes_fault_events() {
        let csv = faulty_trace().to_csv();
        assert!(csv.contains("worker_down,1,0,1.5"));
        assert!(csv.contains("chunk_lost,1,5,1.5"));
    }

    #[test]
    fn gantt_marks_downtime() {
        let mut t = faulty_trace();
        t.push(TraceEvent::WorkerUp {
            worker: 1,
            time: 4.0,
        });
        let g = t.gantt(2, 40);
        assert!(g.contains('x'), "{g}");
    }
}
