//! The discrete-event simulation engine.
//!
//! Implements the platform semantics of §3.1 of the RUMR paper:
//!
//! * the master sends one chunk at a time (default); a transfer occupies
//!   the master's interface for `nLat + chunk/B` (perturbed), then the
//!   chunk spends `tLat` (perturbed by the same draw) in flight before
//!   arriving;
//! * workers have a front end: they receive while computing, and buffer
//!   received chunks in FIFO order;
//! * computing a chunk takes `cLat + chunk/S` (perturbed, one independent
//!   draw per chunk).
//!
//! # Concurrent transfers (extension)
//!
//! The paper notes that "it could be beneficial to allow for simultaneous
//! transfers for better throughput in some cases (e.g. WANs)" and leaves
//! the study to future work. [`SimConfig::max_concurrent_sends`] enables
//! that mode: up to `k` transfers may be in flight, each paying its own
//! `nLat` setup concurrently, with the data phases sharing the master's
//! optional uplink capacity by max-min fairness (each stream additionally
//! capped by its own link rate `B_i`). `k = 1` reproduces the paper's
//! serial model exactly.
//!
//! The engine drives a [`Scheduler`] as described in [`crate::scheduler`]
//! and produces a [`SimResult`] (makespan, per-worker accounting, and
//! optionally a full [`Trace`]).

use std::cmp::Ordering;
use std::collections::{BinaryHeap, VecDeque};
use std::fmt;

use crate::error::ErrorInjector;
use crate::platform::Platform;
use crate::scheduler::{Decision, Scheduler, SimView, WorkerView};
use crate::trace::{Trace, TraceEvent};

/// Engine configuration.
#[derive(Debug, Clone)]
pub struct SimConfig {
    /// Record a full [`Trace`] of the run (off by default: the paper's
    /// sweeps run millions of simulations).
    pub record_trace: bool,
    /// Safety valve against runaway schedulers: the simulation aborts with
    /// [`SimError::EventLimitExceeded`] after this many events.
    pub max_events: u64,
    /// Maximum simultaneous master transfers. `1` (default) is the paper's
    /// serial-sends model.
    pub max_concurrent_sends: usize,
    /// Master uplink capacity in workload units/s, shared max-min among
    /// concurrent data transfers. `None` leaves only the per-link rates
    /// `B_i` binding (independent network paths). Irrelevant when
    /// `max_concurrent_sends == 1`.
    pub uplink_capacity: Option<f64>,
    /// Output-data extension: after computing a chunk, the worker returns
    /// `chunk · output_ratio` units of results to the master over the same
    /// interface (returns compete with input sends for the send slots and
    /// the uplink, and are drained with priority). `0` (default) is the
    /// paper's input-only model. The makespan then includes result
    /// collection.
    pub output_ratio: f64,
}

impl Default for SimConfig {
    fn default() -> Self {
        SimConfig {
            record_trace: false,
            max_events: 50_000_000,
            max_concurrent_sends: 1,
            uplink_capacity: None,
            output_ratio: 0.0,
        }
    }
}

/// Why a simulation could not complete.
#[derive(Debug, Clone, PartialEq)]
pub enum SimError {
    /// The scheduler returned `Wait` but no event is pending, so time can
    /// never advance again. Always a scheduler bug.
    Deadlock {
        /// Simulation time at which the deadlock was detected.
        time: f64,
    },
    /// The scheduler dispatched to a nonexistent worker or with a
    /// non-finite / non-positive chunk size.
    InvalidDispatch {
        /// Target worker of the offending dispatch.
        worker: usize,
        /// Chunk size of the offending dispatch.
        chunk: f64,
    },
    /// `SimConfig::max_events` was exceeded.
    EventLimitExceeded,
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::Deadlock { time } => {
                write!(
                    f,
                    "scheduler deadlock: waiting with no pending events at t = {time}"
                )
            }
            SimError::InvalidDispatch { worker, chunk } => {
                write!(f, "invalid dispatch: worker {worker}, chunk {chunk}")
            }
            SimError::EventLimitExceeded => write!(f, "event limit exceeded"),
        }
    }
}

impl std::error::Error for SimError {}

/// Outcome of a completed simulation.
#[derive(Debug, Clone)]
pub struct SimResult {
    /// Application makespan in seconds (time of the last computation end).
    pub makespan: f64,
    /// Total number of chunks dispatched.
    pub num_chunks: usize,
    /// Total workload units dispatched.
    pub dispatched_work: f64,
    /// Total output units returned to the master (0 unless
    /// `SimConfig::output_ratio` is set).
    pub returned_work: f64,
    /// Per-worker workload units completed.
    pub per_worker_work: Vec<f64>,
    /// Per-worker total computing time (seconds).
    pub per_worker_busy: Vec<f64>,
    /// Full event trace when `SimConfig::record_trace` was set.
    pub trace: Option<Trace>,
}

impl SimResult {
    /// Total completed workload across workers.
    pub fn completed_work(&self) -> f64 {
        self.per_worker_work.iter().sum()
    }

    /// Mean worker utilization: busy time / makespan, averaged over workers.
    pub fn mean_utilization(&self) -> f64 {
        if self.makespan <= 0.0 || self.per_worker_busy.is_empty() {
            return 0.0;
        }
        let total: f64 = self.per_worker_busy.iter().sum();
        total / (self.makespan * self.per_worker_busy.len() as f64)
    }
}

#[derive(Debug, Clone, Copy, PartialEq)]
enum Event {
    /// A transfer's fixed `nLat` setup completed; its data phase joins the
    /// shared pool.
    SetupDone {
        worker: usize,
        chunk: f64,
        /// Effective link rate `B_i / comm_factor` for this transfer.
        link_rate: f64,
        /// Perturbed `tLat` still to elapse after the last byte is pushed.
        fly_time: f64,
        /// First workload unit of the chunk (for trace-driven profiles).
        unit_start: f64,
        /// True for output returns (output-data extension).
        is_return: bool,
    },
    /// Progress checkpoint for the transfer pool; stale epochs are ignored.
    PoolCheck {
        epoch: u64,
    },
    Arrival {
        worker: usize,
        chunk: f64,
        unit_start: f64,
    },
    ComputeEnd {
        worker: usize,
        chunk: f64,
    },
}

/// Heap entry ordered by (time, sequence) ascending; `BinaryHeap` is a
/// max-heap, so comparisons are reversed. Sequence numbers make simultaneous
/// events fire in insertion order, which keeps runs fully deterministic.
struct QueuedEvent {
    time: f64,
    seq: u64,
    event: Event,
}

impl PartialEq for QueuedEvent {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl Eq for QueuedEvent {}
impl PartialOrd for QueuedEvent {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for QueuedEvent {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reverse: earliest time (then lowest seq) is the heap maximum.
        other
            .time
            .partial_cmp(&self.time)
            .expect("event times are finite")
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

struct WorkerState {
    view: WorkerView,
    /// Received chunks awaiting computation: (size, first unit).
    queue: VecDeque<(f64, f64)>,
}

/// A transfer in its data phase, sharing the master's uplink.
#[derive(Debug, Clone, Copy)]
struct PoolTransfer {
    worker: usize,
    chunk: f64,
    remaining: f64,
    link_rate: f64,
    /// Currently assigned rate (recomputed whenever the pool changes).
    rate: f64,
    fly_time: f64,
    unit_start: f64,
    /// False for master→worker input sends, true for worker→master output
    /// returns (output-data extension).
    is_return: bool,
}

/// Transfers with less than this much data left are considered complete
/// (guards against floating-point residue in the progress integration).
const POOL_EPS: f64 = 1e-9;

/// The simulation engine. Construct with [`Engine::new`], run with
/// [`Engine::run`]; a fresh engine is needed per run.
pub struct Engine<'a> {
    platform: &'a Platform,
    injector: ErrorInjector,
    config: SimConfig,
    heap: BinaryHeap<QueuedEvent>,
    seq: u64,
    now: f64,
    /// Transfers in flight (setup or data phase).
    sending: usize,
    /// Data-phase transfers sharing the uplink.
    pool: Vec<PoolTransfer>,
    pool_epoch: u64,
    pool_updated: f64,
    workers: Vec<WorkerState>,
    trace: Trace,
    num_chunks: usize,
    dispatched_work: f64,
    per_worker_busy: Vec<f64>,
    events_processed: u64,
    /// Next undispatched workload unit (chunks are carved sequentially).
    next_unit: f64,
    /// Output returns awaiting a free send slot (output-data extension).
    return_queue: VecDeque<(usize, f64)>,
    /// Total output units returned to the master.
    returned_work: f64,
}

impl<'a> Engine<'a> {
    /// Create an engine over `platform` with the given error injector.
    ///
    /// # Panics
    ///
    /// Panics if `config.max_concurrent_sends == 0` or the uplink capacity
    /// is non-positive.
    pub fn new(platform: &'a Platform, injector: ErrorInjector, config: SimConfig) -> Self {
        assert!(
            config.max_concurrent_sends >= 1,
            "need at least one send slot"
        );
        if let Some(c) = config.uplink_capacity {
            assert!(c.is_finite() && c > 0.0, "uplink capacity must be positive");
        }
        assert!(
            config.output_ratio.is_finite() && config.output_ratio >= 0.0,
            "output ratio must be non-negative"
        );
        let n = platform.num_workers();
        Engine {
            platform,
            injector,
            config,
            heap: BinaryHeap::new(),
            seq: 0,
            now: 0.0,
            sending: 0,
            pool: Vec::new(),
            pool_epoch: 0,
            pool_updated: 0.0,
            workers: (0..n)
                .map(|_| WorkerState {
                    view: WorkerView::default(),
                    queue: VecDeque::new(),
                })
                .collect(),
            trace: Trace::new(),
            num_chunks: 0,
            dispatched_work: 0.0,
            per_worker_busy: vec![0.0; n],
            events_processed: 0,
            next_unit: 0.0,
            return_queue: VecDeque::new(),
            returned_work: 0.0,
        }
    }

    fn schedule(&mut self, time: f64, event: Event) {
        debug_assert!(time.is_finite() && time >= self.now - 1e-9);
        self.heap.push(QueuedEvent {
            time: time.max(self.now),
            seq: self.seq,
            event,
        });
        self.seq += 1;
    }

    fn record(&mut self, e: TraceEvent) {
        if self.config.record_trace {
            self.trace.push(e);
        }
    }

    fn views(&self) -> Vec<WorkerView> {
        self.workers.iter().map(|w| w.view).collect()
    }

    fn start_compute(&mut self, worker: usize, scheduler: &mut dyn Scheduler) {
        let (chunk, unit_start) = match self.workers[worker].queue.pop_front() {
            Some(c) => c,
            None => return,
        };
        let w = &mut self.workers[worker];
        w.view.queued_chunks -= 1;
        w.view.queued_work -= chunk;
        w.view.computing = true;
        let predicted = self.platform.worker(worker).comp_time(chunk);
        let effective =
            self.injector
                .effective_compute(worker, predicted, unit_start, unit_start + chunk);
        self.per_worker_busy[worker] += effective;
        self.record(TraceEvent::ComputeStart {
            worker,
            chunk,
            time: self.now,
        });
        scheduler.on_compute_start(worker, chunk, self.now);
        self.schedule(self.now + effective, Event::ComputeEnd { worker, chunk });
    }

    /// Integrate pool progress from the last update to `now`.
    fn update_pool_progress(&mut self) {
        let dt = self.now - self.pool_updated;
        if dt > 0.0 {
            for t in &mut self.pool {
                t.remaining = (t.remaining - t.rate * dt).max(0.0);
            }
        }
        self.pool_updated = self.now;
    }

    /// Max-min fair allocation of the uplink capacity across the pool,
    /// each stream capped by its own link rate.
    fn recompute_pool_rates(&mut self) {
        match self.config.uplink_capacity {
            None => {
                for t in &mut self.pool {
                    t.rate = t.link_rate;
                }
            }
            Some(capacity) => {
                let mut remaining_capacity = capacity;
                let mut unassigned: Vec<usize> = (0..self.pool.len()).collect();
                // Water-filling: streams capped below the fair share get
                // their cap; the rest split what remains.
                loop {
                    if unassigned.is_empty() {
                        break;
                    }
                    let share = remaining_capacity / unassigned.len() as f64;
                    let mut progressed = false;
                    unassigned.retain(|&i| {
                        if self.pool[i].link_rate <= share {
                            self.pool[i].rate = self.pool[i].link_rate;
                            remaining_capacity -= self.pool[i].link_rate;
                            progressed = true;
                            false
                        } else {
                            true
                        }
                    });
                    if !progressed {
                        let share = remaining_capacity / unassigned.len() as f64;
                        for &i in &unassigned {
                            self.pool[i].rate = share;
                        }
                        break;
                    }
                }
            }
        }
    }

    /// Invalidate outstanding pool checks and schedule the next one.
    fn schedule_pool_check(&mut self) {
        self.pool_epoch += 1;
        if self.pool.is_empty() {
            return;
        }
        let eta = self
            .pool
            .iter()
            .map(|t| {
                if t.rate > 0.0 {
                    t.remaining / t.rate
                } else {
                    f64::INFINITY
                }
            })
            .fold(f64::INFINITY, f64::min);
        debug_assert!(eta.is_finite(), "pool transfer with zero rate");
        let epoch = self.pool_epoch;
        self.schedule(self.now + eta, Event::PoolCheck { epoch });
    }

    /// Complete every pool transfer whose data has fully crossed the
    /// master's interface.
    fn drain_completed_transfers(&mut self) {
        let mut i = 0;
        while i < self.pool.len() {
            if self.pool[i].remaining <= POOL_EPS {
                let t = self.pool.remove(i);
                self.sending -= 1;
                if t.is_return {
                    self.returned_work += t.chunk;
                    self.record(TraceEvent::ReturnEnd {
                        worker: t.worker,
                        bytes: t.chunk,
                        time: self.now,
                    });
                } else {
                    self.record(TraceEvent::SendEnd {
                        worker: t.worker,
                        chunk: t.chunk,
                        time: self.now,
                    });
                    self.schedule(
                        self.now + t.fly_time,
                        Event::Arrival {
                            worker: t.worker,
                            chunk: t.chunk,
                            unit_start: t.unit_start,
                        },
                    );
                }
            } else {
                i += 1;
            }
        }
    }

    /// Start queued output returns while send slots are free (returns have
    /// priority over new input dispatches: they complete the application).
    fn start_returns(&mut self) {
        while self.sending < self.config.max_concurrent_sends {
            let Some((worker, bytes)) = self.return_queue.pop_front() else {
                break;
            };
            self.sending += 1;
            let spec = self.platform.worker(worker);
            let factor = self.injector.comm_factor(worker);
            let setup = spec.net_latency * factor;
            let link_rate = spec.bandwidth / factor;
            let fly_time = spec.transfer_latency * factor;
            self.record(TraceEvent::ReturnStart {
                worker,
                bytes,
                time: self.now,
            });
            self.schedule(
                self.now + setup,
                Event::SetupDone {
                    worker,
                    chunk: bytes,
                    link_rate,
                    fly_time,
                    unit_start: 0.0,
                    is_return: true,
                },
            );
        }
    }

    /// Let the scheduler use the free send slots.
    fn try_dispatch(
        &mut self,
        scheduler: &mut dyn Scheduler,
        finished: &mut bool,
    ) -> Result<(), SimError> {
        while !*finished && self.sending < self.config.max_concurrent_sends {
            let views = self.views();
            let decision = scheduler.next_dispatch(&SimView {
                time: self.now,
                workers: &views,
            });
            match decision {
                Decision::Wait => break,
                Decision::Finished => {
                    *finished = true;
                }
                Decision::Dispatch { worker, chunk } => {
                    if worker >= self.workers.len() || !chunk.is_finite() || chunk <= 0.0 {
                        return Err(SimError::InvalidDispatch { worker, chunk });
                    }
                    self.sending += 1;
                    self.num_chunks += 1;
                    self.dispatched_work += chunk;
                    let w = &mut self.workers[worker];
                    w.view.in_flight_chunks += 1;
                    w.view.in_flight_work += chunk;
                    w.view.assigned_work += chunk;

                    // One perturbation draw covers the whole communication
                    // operation: it stretches the setup latency, slows the
                    // effective link rate, and stretches the in-flight
                    // latency alike.
                    let spec = self.platform.worker(worker);
                    let factor = self.injector.comm_factor(worker);
                    let setup = spec.net_latency * factor;
                    let link_rate = spec.bandwidth / factor;
                    let fly_time = spec.transfer_latency * factor;
                    let unit_start = self.next_unit;
                    self.next_unit += chunk;

                    self.record(TraceEvent::SendStart {
                        worker,
                        chunk,
                        time: self.now,
                    });
                    self.schedule(
                        self.now + setup,
                        Event::SetupDone {
                            worker,
                            chunk,
                            link_rate,
                            fly_time,
                            unit_start,
                            is_return: false,
                        },
                    );
                }
            }
        }
        Ok(())
    }

    /// Run the simulation to completion.
    ///
    /// # Errors
    ///
    /// See [`SimError`].
    pub fn run(mut self, scheduler: &mut dyn Scheduler) -> Result<SimResult, SimError> {
        let mut finished = false;
        loop {
            // Returns first (they complete the run), then the scheduler.
            self.start_returns();
            self.try_dispatch(scheduler, &mut finished)?;

            let Some(entry) = self.heap.pop() else {
                if finished {
                    break;
                }
                return Err(SimError::Deadlock { time: self.now });
            };
            self.events_processed += 1;
            if self.events_processed > self.config.max_events {
                return Err(SimError::EventLimitExceeded);
            }
            self.now = entry.time;
            match entry.event {
                Event::SetupDone {
                    worker,
                    chunk,
                    link_rate,
                    fly_time,
                    unit_start,
                    is_return,
                } => {
                    self.update_pool_progress();
                    self.pool.push(PoolTransfer {
                        worker,
                        chunk,
                        remaining: chunk,
                        link_rate,
                        rate: 0.0,
                        fly_time,
                        unit_start,
                        is_return,
                    });
                    self.recompute_pool_rates();
                    // A zero-size... chunks are > 0, but a chunk can finish
                    // instantly only with infinite rate; schedule normally.
                    self.schedule_pool_check();
                }
                Event::PoolCheck { epoch } => {
                    if epoch != self.pool_epoch {
                        continue; // Stale: the pool changed since.
                    }
                    self.update_pool_progress();
                    self.drain_completed_transfers();
                    self.recompute_pool_rates();
                    self.schedule_pool_check();
                }
                Event::Arrival {
                    worker,
                    chunk,
                    unit_start,
                } => {
                    self.record(TraceEvent::Arrival {
                        worker,
                        chunk,
                        time: self.now,
                    });
                    let w = &mut self.workers[worker];
                    w.view.in_flight_chunks -= 1;
                    w.view.in_flight_work -= chunk;
                    w.view.queued_chunks += 1;
                    w.view.queued_work += chunk;
                    w.queue.push_back((chunk, unit_start));
                    scheduler.on_arrival(worker, chunk, self.now);
                    if !self.workers[worker].view.computing {
                        self.start_compute(worker, scheduler);
                    }
                }
                Event::ComputeEnd { worker, chunk } => {
                    self.record(TraceEvent::ComputeEnd {
                        worker,
                        chunk,
                        time: self.now,
                    });
                    let w = &mut self.workers[worker];
                    w.view.computing = false;
                    w.view.completed_chunks += 1;
                    w.view.completed_work += chunk;
                    scheduler.on_compute_end(worker, chunk, self.now);
                    if self.config.output_ratio > 0.0 {
                        self.return_queue
                            .push_back((worker, chunk * self.config.output_ratio));
                    }
                    self.start_compute(worker, scheduler);
                }
            }
        }

        Ok(SimResult {
            makespan: self.now,
            num_chunks: self.num_chunks,
            dispatched_work: self.dispatched_work,
            returned_work: self.returned_work,
            per_worker_work: self.workers.iter().map(|w| w.view.completed_work).collect(),
            per_worker_busy: self.per_worker_busy,
            trace: if self.config.record_trace {
                Some(self.trace)
            } else {
                None
            },
        })
    }
}

/// Convenience wrapper: build an [`Engine`] and run `scheduler` on
/// `platform` with the given injector and config.
pub fn simulate(
    platform: &Platform,
    scheduler: &mut dyn Scheduler,
    injector: ErrorInjector,
    config: SimConfig,
) -> Result<SimResult, SimError> {
    Engine::new(platform, injector, config).run(scheduler)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::error::ErrorModel;
    use crate::platform::{HomogeneousParams, WorkerSpec};

    /// Dispatches a fixed list of (worker, chunk) pairs eagerly.
    struct ListScheduler {
        plan: Vec<(usize, f64)>,
        next: usize,
    }

    impl ListScheduler {
        fn new(plan: Vec<(usize, f64)>) -> Self {
            ListScheduler { plan, next: 0 }
        }
    }

    impl Scheduler for ListScheduler {
        fn name(&self) -> String {
            "list".into()
        }
        fn next_dispatch(&mut self, _view: &SimView<'_>) -> Decision {
            if self.next >= self.plan.len() {
                return Decision::Finished;
            }
            let (worker, chunk) = self.plan[self.next];
            self.next += 1;
            Decision::Dispatch { worker, chunk }
        }
    }

    fn exact(platform: &Platform) -> ErrorInjector {
        let _ = platform;
        ErrorInjector::new(ErrorModel::None, 0)
    }

    fn traced() -> SimConfig {
        SimConfig {
            record_trace: true,
            ..Default::default()
        }
    }

    fn concurrent(k: usize, capacity: Option<f64>) -> SimConfig {
        SimConfig {
            record_trace: true,
            max_concurrent_sends: k,
            uplink_capacity: capacity,
            ..Default::default()
        }
    }

    #[test]
    fn single_worker_single_chunk() {
        // S = 2, B = 10, cLat = 0.5, nLat = 0.1, tLat = 0.05; chunk = 10.
        let platform = Platform::homogeneous(
            1,
            WorkerSpec {
                speed: 2.0,
                bandwidth: 10.0,
                comp_latency: 0.5,
                net_latency: 0.1,
                transfer_latency: 0.05,
            },
        )
        .unwrap();
        let mut s = ListScheduler::new(vec![(0, 10.0)]);
        let r = simulate(&platform, &mut s, exact(&platform), traced()).unwrap();
        // Send: 0.1 + 10/10 = 1.1; arrival at 1.15; compute 0.5 + 5 = 5.5.
        assert!((r.makespan - 6.65).abs() < 1e-9, "makespan {}", r.makespan);
        assert_eq!(r.num_chunks, 1);
        assert!((r.dispatched_work - 10.0).abs() < 1e-12);
        assert!(r.trace.unwrap().validate(1).is_empty());
    }

    #[test]
    fn two_chunks_pipeline_on_one_worker() {
        // Second chunk transfers while the first computes (front-end model).
        let platform = Platform::homogeneous(
            1,
            WorkerSpec {
                speed: 1.0,
                bandwidth: 10.0,
                comp_latency: 0.0,
                net_latency: 0.0,
                transfer_latency: 0.0,
            },
        )
        .unwrap();
        let mut s = ListScheduler::new(vec![(0, 10.0), (0, 10.0)]);
        let r = simulate(&platform, &mut s, exact(&platform), traced()).unwrap();
        // Send1 done at 1, compute1 [1, 11]; send2 done at 2 (overlapped),
        // compute2 [11, 21].
        assert!((r.makespan - 21.0).abs() < 1e-9, "makespan {}", r.makespan);
        let trace = r.trace.unwrap();
        assert!(trace.validate(1).is_empty());
        assert_eq!(trace.num_chunks(), 2);
    }

    #[test]
    fn sends_are_serialized_across_workers() {
        // Two workers, equal chunks: worker 1's transfer starts only after
        // worker 0's completes.
        let platform = Platform::homogeneous(
            2,
            WorkerSpec {
                speed: 1.0,
                bandwidth: 1.0,
                comp_latency: 0.0,
                net_latency: 0.0,
                transfer_latency: 0.0,
            },
        )
        .unwrap();
        let mut s = ListScheduler::new(vec![(0, 5.0), (1, 5.0)]);
        let r = simulate(&platform, &mut s, exact(&platform), traced()).unwrap();
        // w0: recv at 5, compute [5, 10]; w1: recv at 10, compute [10, 15].
        assert!((r.makespan - 15.0).abs() < 1e-9);
        assert!((r.per_worker_work[0] - 5.0).abs() < 1e-12);
        assert!((r.per_worker_work[1] - 5.0).abs() < 1e-12);
        assert!(r.trace.unwrap().validate(2).is_empty());
    }

    #[test]
    fn tlat_overlaps_next_send() {
        // tLat = 10 is huge, but it must not delay the next transfer.
        let platform = Platform::homogeneous(
            2,
            WorkerSpec {
                speed: 1.0,
                bandwidth: 1.0,
                comp_latency: 0.0,
                net_latency: 0.0,
                transfer_latency: 10.0,
            },
        )
        .unwrap();
        let mut s = ListScheduler::new(vec![(0, 1.0), (1, 1.0)]);
        let r = simulate(&platform, &mut s, exact(&platform), traced()).unwrap();
        // Link busy [0,1] and [1,2]; arrivals at 11 and 12; computes end at
        // 12 and 13.
        assert!((r.makespan - 13.0).abs() < 1e-9, "makespan {}", r.makespan);
        assert!(r.trace.unwrap().validate(2).is_empty());
    }

    #[test]
    fn fifo_queue_on_worker() {
        let platform = Platform::homogeneous(
            1,
            WorkerSpec {
                speed: 1.0,
                bandwidth: 100.0,
                comp_latency: 0.0,
                net_latency: 0.0,
                transfer_latency: 0.0,
            },
        )
        .unwrap();
        // Three chunks arrive much faster than they compute; order preserved.
        let mut s = ListScheduler::new(vec![(0, 1.0), (0, 2.0), (0, 3.0)]);
        let r = simulate(&platform, &mut s, exact(&platform), traced()).unwrap();
        let trace = r.trace.unwrap();
        assert!(trace.validate(1).is_empty());
        let compute_order: Vec<f64> = trace
            .events()
            .iter()
            .filter_map(|e| match e {
                TraceEvent::ComputeStart { chunk, .. } => Some(*chunk),
                _ => None,
            })
            .collect();
        assert_eq!(compute_order, vec![1.0, 2.0, 3.0]);
    }

    #[test]
    fn invalid_dispatch_rejected() {
        let platform = HomogeneousParams::table1(2, 1.5, 0.1, 0.1).build().unwrap();
        for bad in [
            (5usize, 1.0),  // bad worker
            (0usize, 0.0),  // zero chunk
            (0usize, -1.0), // negative chunk
            (0usize, f64::NAN),
        ] {
            let mut s = ListScheduler::new(vec![bad]);
            let e =
                simulate(&platform, &mut s, exact(&platform), SimConfig::default()).unwrap_err();
            assert!(matches!(e, SimError::InvalidDispatch { .. }), "{bad:?}");
        }
    }

    #[test]
    fn waiting_forever_is_deadlock() {
        struct Waiter;
        impl Scheduler for Waiter {
            fn name(&self) -> String {
                "waiter".into()
            }
            fn next_dispatch(&mut self, _view: &SimView<'_>) -> Decision {
                Decision::Wait
            }
        }
        let platform = HomogeneousParams::table1(2, 1.5, 0.1, 0.1).build().unwrap();
        let e = simulate(
            &platform,
            &mut Waiter,
            exact(&platform),
            SimConfig::default(),
        )
        .unwrap_err();
        assert!(matches!(e, SimError::Deadlock { .. }));
    }

    #[test]
    fn empty_schedule_is_ok() {
        struct Noop;
        impl Scheduler for Noop {
            fn name(&self) -> String {
                "noop".into()
            }
            fn next_dispatch(&mut self, _view: &SimView<'_>) -> Decision {
                Decision::Finished
            }
        }
        let platform = HomogeneousParams::table1(2, 1.5, 0.1, 0.1).build().unwrap();
        let r = simulate(&platform, &mut Noop, exact(&platform), SimConfig::default()).unwrap();
        assert_eq!(r.makespan, 0.0);
        assert_eq!(r.num_chunks, 0);
    }

    #[test]
    fn event_limit_enforced() {
        let platform = HomogeneousParams::table1(1, 1.5, 0.0, 0.0).build().unwrap();
        let mut s = ListScheduler::new(vec![(0, 1.0); 100]);
        let cfg = SimConfig {
            max_events: 10,
            ..Default::default()
        };
        let e = simulate(&platform, &mut s, exact(&platform), cfg).unwrap_err();
        assert_eq!(e, SimError::EventLimitExceeded);
    }

    #[test]
    fn deterministic_with_errors() {
        let platform = HomogeneousParams::table1(4, 1.5, 0.2, 0.3).build().unwrap();
        let run = |seed| {
            let mut s = ListScheduler::new(vec![(0, 10.0), (1, 10.0), (2, 10.0), (3, 10.0)]);
            let inj = ErrorInjector::new(ErrorModel::TruncatedNormal { error: 0.4 }, seed);
            simulate(&platform, &mut s, inj, SimConfig::default())
                .unwrap()
                .makespan
        };
        assert_eq!(run(1), run(1));
        assert_ne!(run(1), run(2));
    }

    #[test]
    fn perturbed_run_still_valid() {
        let platform = HomogeneousParams::table1(3, 1.4, 0.1, 0.2).build().unwrap();
        let mut plan = Vec::new();
        for round in 0..5 {
            for w in 0..3 {
                plan.push((w, 1.0 + round as f64));
            }
        }
        let mut s = ListScheduler::new(plan);
        let inj = ErrorInjector::new(ErrorModel::TruncatedNormal { error: 0.5 }, 99);
        let r = simulate(&platform, &mut s, inj, traced()).unwrap();
        assert!(r.trace.unwrap().validate(3).is_empty());
        assert!(r.makespan > 0.0);
    }

    #[test]
    fn utilization_and_accounting() {
        let platform = HomogeneousParams::table1(2, 1.5, 0.0, 0.0).build().unwrap();
        let mut s = ListScheduler::new(vec![(0, 500.0), (1, 500.0)]);
        let r = simulate(&platform, &mut s, exact(&platform), SimConfig::default()).unwrap();
        assert!((r.completed_work() - 1000.0).abs() < 1e-9);
        let u = r.mean_utilization();
        assert!(u > 0.5 && u <= 1.0, "utilization {u}");
    }

    // --- Concurrent-transfer extension ---

    #[test]
    fn concurrent_unconstrained_sends_overlap() {
        // Two workers, k = 2, no shared capacity: both transfers run at
        // their full link rates simultaneously.
        let platform = Platform::homogeneous(
            2,
            WorkerSpec {
                speed: 1.0,
                bandwidth: 1.0,
                comp_latency: 0.0,
                net_latency: 0.0,
                transfer_latency: 0.0,
            },
        )
        .unwrap();
        let mut s = ListScheduler::new(vec![(0, 5.0), (1, 5.0)]);
        let r = simulate(&platform, &mut s, exact(&platform), concurrent(2, None)).unwrap();
        // Both receive at t = 5 and compute [5, 10] — vs 15 serially.
        assert!((r.makespan - 10.0).abs() < 1e-9, "makespan {}", r.makespan);
        assert!(r.trace.unwrap().validate_with_concurrency(2, 2).is_empty());
    }

    #[test]
    fn concurrent_shared_capacity_is_fair() {
        // k = 2, shared capacity 1.0 = each link's rate: two equal streams
        // each get 0.5, so overlapping them buys nothing — same finish as
        // serial for the pair, but both arrive at t = 10.
        let platform = Platform::homogeneous(
            2,
            WorkerSpec {
                speed: 1.0,
                bandwidth: 1.0,
                comp_latency: 0.0,
                net_latency: 0.0,
                transfer_latency: 0.0,
            },
        )
        .unwrap();
        let mut s = ListScheduler::new(vec![(0, 5.0), (1, 5.0)]);
        let r = simulate(
            &platform,
            &mut s,
            exact(&platform),
            concurrent(2, Some(1.0)),
        )
        .unwrap();
        // Each stream at 0.5 units/s: arrivals at 10; computes [10, 15].
        assert!((r.makespan - 15.0).abs() < 1e-9, "makespan {}", r.makespan);
    }

    #[test]
    fn concurrent_max_min_respects_link_caps() {
        // Worker 0's link is slow (0.5); worker 1's is fast (4.0). With
        // capacity 2.0, max-min gives w0 its cap 0.5 and w1 the rest (1.5).
        let w0 = WorkerSpec {
            speed: 100.0,
            bandwidth: 0.5,
            comp_latency: 0.0,
            net_latency: 0.0,
            transfer_latency: 0.0,
        };
        let mut w1 = w0;
        w1.bandwidth = 4.0;
        let platform = Platform::new(vec![w0, w1]).unwrap();
        let mut s = ListScheduler::new(vec![(0, 3.0), (1, 3.0)]);
        let r = simulate(
            &platform,
            &mut s,
            exact(&platform),
            concurrent(2, Some(2.0)),
        )
        .unwrap();
        let trace = r.trace.unwrap();
        // w1 finishes its 3 units at 3/1.5 = 2.0 s; w0 at 3/0.5 = 6.0 s.
        // (After w1 completes, w0 is still capped by its link at 0.5.)
        let send_ends: Vec<(usize, f64)> = trace
            .events()
            .iter()
            .filter_map(|e| match e {
                TraceEvent::SendEnd { worker, time, .. } => Some((*worker, *time)),
                _ => None,
            })
            .collect();
        let w1_end = send_ends.iter().find(|(w, _)| *w == 1).unwrap().1;
        let w0_end = send_ends.iter().find(|(w, _)| *w == 0).unwrap().1;
        assert!((w1_end - 2.0).abs() < 1e-9, "w1 end {w1_end}");
        assert!((w0_end - 6.0).abs() < 1e-9, "w0 end {w0_end}");
    }

    #[test]
    fn concurrent_nlat_setups_overlap() {
        // The whole point of the extension: with k = N, the N·nLat serial
        // setup cost collapses to ~nLat.
        let platform = Platform::homogeneous(
            4,
            WorkerSpec {
                speed: 1.0,
                bandwidth: 100.0,
                comp_latency: 0.0,
                net_latency: 1.0,
                transfer_latency: 0.0,
            },
        )
        .unwrap();
        let plan: Vec<(usize, f64)> = (0..4).map(|w| (w, 10.0)).collect();
        let mut serial_s = ListScheduler::new(plan.clone());
        let serial = simulate(&platform, &mut serial_s, exact(&platform), traced()).unwrap();
        let mut conc_s = ListScheduler::new(plan);
        let conc = simulate(
            &platform,
            &mut conc_s,
            exact(&platform),
            concurrent(4, None),
        )
        .unwrap();
        // Serial: worker 3 receives after 4·(1 + 0.1) = 4.4 s; concurrent:
        // after 1.1 s.
        assert!(
            conc.makespan + 3.0 < serial.makespan + 1e-9,
            "concurrent {} vs serial {}",
            conc.makespan,
            serial.makespan
        );
    }

    #[test]
    fn concurrent_conserves_under_error() {
        let platform = HomogeneousParams::table1(5, 1.5, 0.2, 0.3).build().unwrap();
        let plan: Vec<(usize, f64)> = (0..20).map(|i| (i % 5, 50.0)).collect();
        let mut s = ListScheduler::new(plan);
        let inj = ErrorInjector::new(ErrorModel::TruncatedNormal { error: 0.4 }, 17);
        let r = simulate(&platform, &mut s, inj, concurrent(3, Some(40.0))).unwrap();
        assert!((r.completed_work() - 1000.0).abs() < 1e-6);
        assert!(r.trace.unwrap().validate_with_concurrency(5, 3).is_empty());
    }

    #[test]
    fn serial_config_is_paper_model() {
        // k = 1 must behave exactly like the classic serial link.
        let platform = HomogeneousParams::table1(3, 1.5, 0.1, 0.2).build().unwrap();
        let plan: Vec<(usize, f64)> = (0..6).map(|i| (i % 3, 100.0)).collect();
        let mut s = ListScheduler::new(plan);
        let r = simulate(&platform, &mut s, exact(&platform), traced()).unwrap();
        // Strict serial-send validation passes.
        assert!(r.trace.unwrap().validate(3).is_empty());
    }

    // --- Output-data extension ---

    fn with_output(ratio: f64) -> SimConfig {
        SimConfig {
            record_trace: true,
            output_ratio: ratio,
            ..Default::default()
        }
    }

    #[test]
    fn output_returns_extend_the_makespan() {
        // One worker, one chunk, output ratio 0.5: after computing, 5 units
        // of results cross back over the link.
        let platform = Platform::homogeneous(
            1,
            WorkerSpec {
                speed: 1.0,
                bandwidth: 10.0,
                comp_latency: 0.0,
                net_latency: 0.1,
                transfer_latency: 0.0,
            },
        )
        .unwrap();
        let mut s = ListScheduler::new(vec![(0, 10.0)]);
        let r = simulate(&platform, &mut s, exact(&platform), with_output(0.5)).unwrap();
        // Input: 0.1 + 1.0 = 1.1; compute [1.1, 11.1]; return: 0.1 + 0.5.
        assert!((r.makespan - 11.7).abs() < 1e-9, "makespan {}", r.makespan);
        assert!((r.returned_work - 5.0).abs() < 1e-12);
        let trace = r.trace.unwrap();
        assert!(trace.validate(1).is_empty());
        assert!(trace
            .events()
            .iter()
            .any(|e| matches!(e, TraceEvent::ReturnEnd { .. })));
    }

    #[test]
    fn returns_compete_with_input_sends() {
        // Worker 0's return must delay worker 1's second input chunk: the
        // interface is shared.
        let platform = Platform::homogeneous(
            2,
            WorkerSpec {
                speed: 1.0,
                bandwidth: 1.0,
                comp_latency: 0.0,
                net_latency: 0.0,
                transfer_latency: 0.0,
            },
        )
        .unwrap();
        let plan = vec![(0, 2.0), (1, 2.0), (0, 2.0), (1, 2.0)];
        let mut s_no = ListScheduler::new(plan.clone());
        let no_output = simulate(&platform, &mut s_no, exact(&platform), traced()).unwrap();
        let mut s_out = ListScheduler::new(plan);
        let with_out = simulate(&platform, &mut s_out, exact(&platform), with_output(1.0)).unwrap();
        assert!(
            with_out.makespan > no_output.makespan + 1.0,
            "returns should cost link time: {} vs {}",
            with_out.makespan,
            no_output.makespan
        );
        assert!((with_out.returned_work - 8.0).abs() < 1e-9);
        assert!(with_out.trace.unwrap().validate(2).is_empty());
    }

    #[test]
    fn zero_output_ratio_matches_paper_model() {
        let platform = HomogeneousParams::table1(3, 1.5, 0.2, 0.1).build().unwrap();
        let plan: Vec<(usize, f64)> = (0..6).map(|i| (i % 3, 50.0)).collect();
        let mut a = ListScheduler::new(plan.clone());
        let ra = simulate(&platform, &mut a, exact(&platform), SimConfig::default()).unwrap();
        let mut b = ListScheduler::new(plan);
        let rb = simulate(&platform, &mut b, exact(&platform), with_output(0.0)).unwrap();
        assert_eq!(ra.makespan, rb.makespan);
        assert_eq!(rb.returned_work, 0.0);
    }

    #[test]
    fn output_with_concurrency_and_error_conserves() {
        let platform = HomogeneousParams::table1(4, 1.6, 0.2, 0.2).build().unwrap();
        let plan: Vec<(usize, f64)> = (0..12).map(|i| (i % 4, 25.0)).collect();
        let mut s = ListScheduler::new(plan);
        let cfg = SimConfig {
            record_trace: true,
            max_concurrent_sends: 2,
            uplink_capacity: Some(30.0),
            output_ratio: 0.25,
            ..Default::default()
        };
        let inj = ErrorInjector::new(ErrorModel::TruncatedNormal { error: 0.3 }, 5);
        let r = simulate(&platform, &mut s, inj, cfg).unwrap();
        assert!((r.completed_work() - 300.0).abs() < 1e-6);
        assert!((r.returned_work - 75.0).abs() < 1e-6);
        assert!(r.trace.unwrap().validate_with_concurrency(4, 2).is_empty());
    }

    #[test]
    #[should_panic(expected = "output ratio")]
    fn negative_output_ratio_rejected() {
        let platform = HomogeneousParams::table1(2, 1.5, 0.1, 0.1).build().unwrap();
        let cfg = SimConfig {
            output_ratio: -0.5,
            ..Default::default()
        };
        let _ = Engine::new(&platform, ErrorInjector::new(ErrorModel::None, 0), cfg);
    }

    #[test]
    #[should_panic(expected = "send slot")]
    fn zero_send_slots_rejected() {
        let platform = HomogeneousParams::table1(2, 1.5, 0.1, 0.1).build().unwrap();
        let cfg = SimConfig {
            max_concurrent_sends: 0,
            ..Default::default()
        };
        let _ = Engine::new(&platform, ErrorInjector::new(ErrorModel::None, 0), cfg);
    }
}
