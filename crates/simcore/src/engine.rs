//! The discrete-event simulation engine.
//!
//! Implements the platform semantics of §3.1 of the RUMR paper:
//!
//! * the master sends one chunk at a time (default); a transfer occupies
//!   the master's interface for `nLat + chunk/B` (perturbed), then the
//!   chunk spends `tLat` (perturbed by the same draw) in flight before
//!   arriving;
//! * workers have a front end: they receive while computing, and buffer
//!   received chunks in FIFO order;
//! * computing a chunk takes `cLat + chunk/S` (perturbed, one independent
//!   draw per chunk).
//!
//! # Concurrent transfers (extension)
//!
//! The paper notes that "it could be beneficial to allow for simultaneous
//! transfers for better throughput in some cases (e.g. WANs)" and leaves
//! the study to future work. [`SimConfig::max_concurrent_sends`] enables
//! that mode: up to `k` transfers may be in flight, each paying its own
//! `nLat` setup concurrently, with the data phases sharing the master's
//! optional uplink capacity by max-min fairness (each stream additionally
//! capped by its own link rate `B_i`). `k = 1` reproduces the paper's
//! serial model exactly.
//!
//! The engine drives a [`Scheduler`] as described in [`crate::scheduler`]
//! and produces a [`SimResult`] (makespan, per-worker accounting, and
//! optionally a full [`Trace`]).

//! # Fault injection (extension)
//!
//! [`SimConfig::faults`] subjects the platform to worker crashes,
//! recoveries, and transient link failures (see [`crate::faults`]). The
//! engine keeps a per-chunk *work ledger* so that every dispatched unit of
//! workload is provably either completed, lost to a fault, or still
//! outstanding — [`SimResult::conservation_residual`] exposes the identity.
//! With `FaultModel::None` (the default) every fault path is dormant and
//! results are bit-identical to a fault-free build.

use std::collections::VecDeque;
use std::fmt;

use crate::columns::RepColumns;
use crate::error::ErrorInjector;
use crate::faults::{FaultAction, FaultInjector, FaultModel};
use crate::invariants::{InvariantChecker, InvariantFinding, WorkLedger};
use crate::metrics::{EventCounts, MetricsSummary};
use crate::platform::Platform;
use crate::queue::{EventQueue, QueueBackend};
use crate::scheduler::{Decision, Scheduler, SimView, WorkerView};
use crate::speed::{RealizedSpeeds, SpeedModel};
use crate::trace::{LostStage, Trace, TraceEvent};

/// How much per-run observability the engine records.
///
/// The paper's sweeps run millions of simulations and only consume
/// makespans, so everything beyond the plain [`SimResult`] accounting is
/// opt-in. Modes are strictly ordered by cost:
///
/// * [`TraceMode::Off`] — no trace, no summary. The hot path allocates
///   nothing per event.
/// * [`TraceMode::MetricsOnly`] — maintains an incremental
///   [`MetricsSummary`] (event counts, master-link busy time, per-worker
///   idle gaps) without storing any events.
/// * [`TraceMode::Full`] — additionally records every event into a
///   [`Trace`] for validation, Gantt charts, and
///   [`crate::metrics::TraceMetrics`].
///
/// All three modes produce bit-identical makespans, per-worker accounting,
/// and conservation-ledger totals (the equivalence property suite pins
/// this).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum TraceMode {
    /// No per-event recording at all (default; fastest).
    #[default]
    Off,
    /// Aggregate [`MetricsSummary`] only; no event storage.
    MetricsOnly,
    /// Aggregate summary plus the full [`Trace`].
    Full,
}

impl TraceMode {
    /// True when an incremental [`MetricsSummary`] is maintained.
    #[inline]
    pub fn records_summary(self) -> bool {
        !matches!(self, TraceMode::Off)
    }

    /// True when a full [`Trace`] is recorded.
    #[inline]
    pub fn records_trace(self) -> bool {
        matches!(self, TraceMode::Full)
    }
}

/// Engine configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct SimConfig {
    /// Observability level of the run (off by default: the paper's sweeps
    /// run millions of simulations). See [`TraceMode`].
    pub trace_mode: TraceMode,
    /// Safety valve against runaway schedulers: the simulation aborts with
    /// [`SimError::EventLimitExceeded`] after this many events.
    pub max_events: u64,
    /// Maximum simultaneous master transfers. `1` (default) is the paper's
    /// serial-sends model.
    pub max_concurrent_sends: usize,
    /// Master uplink capacity in workload units/s, shared max-min among
    /// concurrent data transfers. `None` leaves only the per-link rates
    /// `B_i` binding (independent network paths). Irrelevant when
    /// `max_concurrent_sends == 1`.
    pub uplink_capacity: Option<f64>,
    /// Output-data extension: after computing a chunk, the worker returns
    /// `chunk · output_ratio` units of results to the master over the same
    /// interface (returns compete with input sends for the send slots and
    /// the uplink, and are drained with priority). `0` (default) is the
    /// paper's input-only model. The makespan then includes result
    /// collection.
    pub output_ratio: f64,
    /// Fault model applied during the run (worker crashes / recoveries /
    /// link drops). [`FaultModel::None`] (default) is the paper's reliable
    /// platform and leaves results bit-identical to a fault-free build.
    pub faults: FaultModel,
    /// Pending-event queue implementation (see [`QueueBackend`]). Both
    /// backends pop the identical event order, so results are byte-for-byte
    /// independent of the choice; only the speed differs.
    pub queue_backend: QueueBackend,
    /// Run the streaming [`InvariantChecker`] alongside the simulation and
    /// return its findings in [`SimResult::audit`]. Works in every trace
    /// mode (the checker consumes events as they are emitted, no stored
    /// trace needed). `false` (default): zero overhead, `audit` is `None`.
    pub audit: bool,
    /// Declared-vs-realized speed revelation (see [`crate::speed`]). The
    /// engine executes at the realized rates while schedulers keep seeing
    /// the declared [`Platform`]. [`SpeedModel::Declared`] (default) is the
    /// paper's trusting regime and leaves results bit-identical to a build
    /// without the speed subsystem.
    pub speeds: SpeedModel,
}

impl Default for SimConfig {
    fn default() -> Self {
        SimConfig {
            trace_mode: TraceMode::Off,
            max_events: 50_000_000,
            max_concurrent_sends: 1,
            uplink_capacity: None,
            output_ratio: 0.0,
            faults: FaultModel::None,
            queue_backend: QueueBackend::default(),
            audit: false,
            speeds: SpeedModel::default(),
        }
    }
}

impl SimConfig {
    /// Default configuration with full trace recording — the common setup
    /// for validation tests and debugging.
    pub fn traced() -> Self {
        SimConfig {
            trace_mode: TraceMode::Full,
            ..Default::default()
        }
    }
}

/// Why a simulation could not complete.
#[derive(Debug, Clone, PartialEq)]
pub enum SimError {
    /// The scheduler returned `Wait` but no event is pending, so time can
    /// never advance again. Always a scheduler bug.
    Deadlock {
        /// Simulation time at which the deadlock was detected.
        time: f64,
    },
    /// The scheduler dispatched to a nonexistent worker or with a
    /// non-finite / non-positive chunk size.
    InvalidDispatch {
        /// Target worker of the offending dispatch.
        worker: usize,
        /// Chunk size of the offending dispatch.
        chunk: f64,
    },
    /// `SimConfig::max_events` was exceeded.
    EventLimitExceeded,
    /// The scheduler returned `WaitUntil` with a non-finite or negative
    /// wake-up time. Always a scheduler bug.
    InvalidTimer {
        /// The offending wake-up time.
        time: f64,
    },
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::Deadlock { time } => {
                write!(
                    f,
                    "scheduler deadlock: waiting with no pending events at t = {time}"
                )
            }
            SimError::InvalidDispatch { worker, chunk } => {
                write!(f, "invalid dispatch: worker {worker}, chunk {chunk}")
            }
            SimError::EventLimitExceeded => write!(f, "event limit exceeded"),
            SimError::InvalidTimer { time } => {
                write!(
                    f,
                    "invalid timer: wake-up time {time} is not a finite non-negative number"
                )
            }
        }
    }
}

impl std::error::Error for SimError {}

/// Outcome of a completed simulation.
#[derive(Debug, Clone)]
pub struct SimResult {
    /// Application makespan in seconds (time of the last computation end).
    pub makespan: f64,
    /// Total number of chunks dispatched.
    pub num_chunks: usize,
    /// Total workload units dispatched.
    pub dispatched_work: f64,
    /// Total output units returned to the master (0 unless
    /// `SimConfig::output_ratio` is set).
    pub returned_work: f64,
    /// Per-worker workload units completed.
    pub per_worker_work: Vec<f64>,
    /// Per-worker total computing time (seconds).
    pub per_worker_busy: Vec<f64>,
    /// Workload units destroyed by faults (summed over every loss: a
    /// redispatched chunk that is lost again counts again). 0 on a
    /// fault-free run.
    pub lost_work: f64,
    /// Number of chunk-loss events.
    pub lost_chunks: usize,
    /// Workload units re-sent via `Decision::Redispatch` (a subset of
    /// `dispatched_work`).
    pub redispatched_work: f64,
    /// Workload units dispatched but neither completed nor lost when the
    /// run ended. 0 for a run that terminated normally; non-zero only when
    /// the fault-mode engine gave up on unreachable work.
    pub outstanding_work: f64,
    /// Unit ranges `(first_unit, length)` lost to faults and never
    /// redispatched — the part of the workload a non-recovering scheduler
    /// simply dropped. Empty when every loss was re-sent.
    pub lost_ranges: Vec<(f64, f64)>,
    /// Number of discrete events the engine processed — the denominator of
    /// the benchmark harness's ns/event metric.
    pub events: u64,
    /// Incremental run metrics when the trace mode was
    /// [`TraceMode::MetricsOnly`] or [`TraceMode::Full`].
    pub metrics: Option<MetricsSummary>,
    /// Full event trace when the trace mode was [`TraceMode::Full`].
    pub trace: Option<Trace>,
    /// Streaming invariant findings when [`SimConfig::audit`] was set
    /// (`Some(vec![])` = audited and clean); `None` when auditing was off.
    pub audit: Option<Vec<InvariantFinding>>,
}

impl SimResult {
    /// Total completed workload across workers.
    pub fn completed_work(&self) -> f64 {
        self.per_worker_work.iter().sum()
    }

    /// Work-conservation residual of the run's ledger:
    /// `dispatched − (completed + lost + outstanding)`. Always ≈ 0 (up to
    /// floating-point accumulation); the engine debug-asserts this before
    /// returning.
    pub fn conservation_residual(&self) -> f64 {
        self.dispatched_work - (self.completed_work() + self.lost_work + self.outstanding_work)
    }

    /// Mean worker utilization: busy time / makespan, averaged over workers.
    pub fn mean_utilization(&self) -> f64 {
        if self.makespan <= 0.0 || self.per_worker_busy.is_empty() {
            return 0.0;
        }
        let total: f64 = self.per_worker_busy.iter().sum();
        total / (self.makespan * self.per_worker_busy.len() as f64)
    }
}

#[derive(Debug, Clone, Copy, PartialEq)]
enum Event {
    /// A transfer's fixed `nLat` setup completed; its data phase joins the
    /// shared pool.
    SetupDone {
        worker: usize,
        chunk: f64,
        /// Effective link rate `B_i / comm_factor` for this transfer.
        link_rate: f64,
        /// Perturbed `tLat` still to elapse after the last byte is pushed.
        fly_time: f64,
        /// First workload unit of the chunk (for trace-driven profiles).
        unit_start: f64,
        /// True for output returns (output-data extension).
        is_return: bool,
        /// Ledger id of the chunk ([`RETURN_ID`] for output returns).
        id: usize,
    },
    /// Progress checkpoint for the transfer pool; stale epochs are ignored.
    PoolCheck { epoch: u64 },
    Arrival {
        worker: usize,
        chunk: f64,
        unit_start: f64,
        id: usize,
    },
    ComputeEnd {
        worker: usize,
        chunk: f64,
        id: usize,
    },
    /// A fault strikes (fault-injection extension). The next fault is
    /// queued into the heap only when this one fires, so the fault-free
    /// path allocates no event sequence numbers to faults.
    Fault { worker: usize, action: FaultAction },
    /// Scheduler-requested wake-up from [`Decision::WaitUntil`]
    /// (multi-load extension). Only emitted when a scheduler actually
    /// returns `WaitUntil`, so single-load runs consume no event sequence
    /// numbers for timers and remain bit-identical.
    Timer,
}

/// Sentinel ledger id for output returns, which carry no workload units and
/// are not tracked by the work ledger.
const RETURN_ID: usize = usize::MAX;

/// Lifecycle of one dispatched chunk in the work ledger. The state machine
/// doubles as stale-event invalidation: an `Arrival` or `ComputeEnd` whose
/// chunk is already [`ChunkState::Lost`] is ignored.
#[derive(Debug, Clone, Copy, PartialEq)]
enum ChunkState {
    /// Occupying a send slot: `nLat` setup or the shared data phase.
    Sending,
    /// Fully pushed; spending `tLat` in flight.
    InFlight,
    /// Arrived; waiting in the worker's FIFO queue.
    Queued,
    /// Being computed.
    Computing,
    /// Computation finished.
    Completed,
    /// Destroyed by a fault.
    Lost,
}

impl ChunkState {
    /// Still holds workload units that are neither completed nor lost.
    fn is_outstanding(self) -> bool {
        matches!(
            self,
            ChunkState::Sending | ChunkState::InFlight | ChunkState::Queued | ChunkState::Computing
        )
    }
}

/// One dispatched chunk's ledger record.
#[derive(Debug, Clone, Copy)]
struct ChunkRecord {
    worker: usize,
    size: f64,
    unit_start: f64,
    state: ChunkState,
}

struct WorkerState {
    view: WorkerView,
    /// Received chunks awaiting computation: (ledger id, size, first unit).
    queue: VecDeque<(usize, f64, f64)>,
}

/// A transfer in its data phase, sharing the master's uplink.
#[derive(Debug, Clone, Copy)]
struct PoolTransfer {
    worker: usize,
    chunk: f64,
    remaining: f64,
    link_rate: f64,
    /// Currently assigned rate (recomputed whenever the pool changes).
    rate: f64,
    fly_time: f64,
    unit_start: f64,
    /// False for master→worker input sends, true for worker→master output
    /// returns (output-data extension).
    is_return: bool,
    /// Ledger id ([`RETURN_ID`] for output returns).
    id: usize,
}

/// Transfers with less than this much data left are considered complete
/// (guards against floating-point residue in the progress integration).
const POOL_EPS: f64 = 1e-9;

/// The simulation engine. Construct with [`Engine::new`], run with
/// [`Engine::run`].
///
/// For repeated runs over the same platform (sweeps, benchmarks), keep one
/// engine alive and alternate [`Engine::reset`] / [`Engine::run_reusing`]:
/// every internal buffer — event heap, work ledger, worker queues, transfer
/// pool, scheduler-view snapshot — retains its allocation across runs, so
/// steady-state repetitions allocate almost nothing.
pub struct Engine<'a> {
    platform: &'a Platform,
    injector: ErrorInjector,
    config: SimConfig,
    queue: EventQueue<Event>,
    seq: u64,
    now: f64,
    /// Transfers in flight (setup or data phase).
    sending: usize,
    /// Data-phase transfers sharing the uplink.
    pool: Vec<PoolTransfer>,
    pool_epoch: u64,
    pool_updated: f64,
    workers: Vec<WorkerState>,
    trace: Trace,
    num_chunks: usize,
    dispatched_work: f64,
    per_worker_busy: Vec<f64>,
    events_processed: u64,
    /// Next undispatched workload unit (chunks are carved sequentially).
    next_unit: f64,
    /// Output returns awaiting a free send slot (output-data extension).
    return_queue: VecDeque<(usize, f64)>,
    /// Total output units returned to the master.
    returned_work: f64,
    /// Work ledger: one record per dispatched chunk, indexed by chunk id.
    ledger: Vec<ChunkRecord>,
    /// Remaining faults, fed into the heap one at a time.
    fault_injector: FaultInjector,
    /// True when `config.faults` can produce faults; gates every semantic
    /// change relative to the fault-free engine.
    fault_mode: bool,
    /// Realized speed factors, `Some` only when `config.speeds` is active;
    /// gates every semantic change relative to the declared-rate engine.
    /// Fixed per configuration (the revelation is part of the machine, not
    /// of a repetition), so `reset` leaves it untouched.
    speeds: Option<RealizedSpeeds>,
    /// Per-worker current computation: (ledger id, scheduled end time).
    /// Needed to refund pre-credited busy time when a crash kills the
    /// computation.
    current_compute: Vec<Option<(usize, f64)>>,
    /// Lost unit ranges `(first_unit, length)` awaiting redispatch, FIFO.
    /// Exactly adjacent ranges are coalesced on insert, so a burst of
    /// losses from one fault occupies one entry instead of one per chunk.
    lost_units: VecDeque<(f64, f64)>,
    /// Reused scratch for `apply_fault`'s doomed-chunk scan (a fresh `Vec`
    /// per fault used to dominate the fault path's allocations).
    doomed_buf: Vec<usize>,
    lost_work: f64,
    lost_chunks: usize,
    redispatched_work: f64,
    /// Chunks in an outstanding ledger state (dispatched, not yet completed
    /// or lost).
    outstanding_chunks: usize,
    /// Reusable scheduler-view snapshot: filled in place on every dispatch
    /// consultation instead of allocating a fresh `Vec` per decision.
    views_buf: Vec<WorkerView>,
    /// True after `run_reusing` consumed this engine's state; cleared by
    /// `reset`.
    used: bool,
    /// Trace events generated (whether or not they were stored).
    trace_events: u64,
    /// Master-interface busy time (any transfer active) and the instant the
    /// interface last became busy.
    link_busy: f64,
    link_busy_since: f64,
    /// Per-worker end time of the last completed computation (`NAN` before
    /// the first), for incremental gap accounting.
    last_compute_end: Vec<f64>,
    /// Per-worker idle time between consecutive computations.
    gap_time: Vec<f64>,
    num_gaps: usize,
    /// Per-event-type counters, maintained when the trace mode records a
    /// summary.
    counts: EventCounts,
    /// Streaming invariant checker, present when `config.audit` is set.
    checker: Option<InvariantChecker>,
    /// Wake-up times of [`Event::Timer`]s currently in the queue
    /// ([`Decision::WaitUntil`]). Used to dedupe repeated `WaitUntil`
    /// requests and to terminate the run without letting a stale timer
    /// stretch the makespan. Tiny (at most one per pending job release),
    /// so a linear scan beats a heap.
    pending_timers: Vec<f64>,
}

impl<'a> Engine<'a> {
    /// Create an engine over `platform` with the given error injector.
    ///
    /// # Panics
    ///
    /// Panics if `config.max_concurrent_sends == 0` or the uplink capacity
    /// is non-positive.
    pub fn new(platform: &'a Platform, injector: ErrorInjector, config: SimConfig) -> Self {
        assert!(
            config.max_concurrent_sends >= 1,
            "need at least one send slot"
        );
        if let Some(c) = config.uplink_capacity {
            assert!(c.is_finite() && c > 0.0, "uplink capacity must be positive");
        }
        assert!(
            config.output_ratio.is_finite() && config.output_ratio >= 0.0,
            "output ratio must be non-negative"
        );
        let n = platform.num_workers();
        let fault_injector = FaultInjector::new(&config.faults, n);
        let fault_mode = config.faults.is_active();
        let speeds = config.speeds.realize(platform.workers());
        // Pre-size the hot collections from the platform shape: a run
        // typically keeps a handful of events per worker pending (one
        // transfer chain plus one computation each), and dispatches at
        // least a few chunks per worker. Reuse via `reset` then holds the
        // high-water capacity across repetitions.
        let event_capacity = 32 + 4 * n;
        let queue = EventQueue::with_capacity(config.queue_backend, event_capacity);
        let checker = config
            .audit
            .then(|| InvariantChecker::new(n, config.max_concurrent_sends));
        Engine {
            platform,
            injector,
            config,
            queue,
            seq: 0,
            now: 0.0,
            sending: 0,
            pool: Vec::new(),
            pool_epoch: 0,
            pool_updated: 0.0,
            workers: (0..n)
                .map(|_| WorkerState {
                    view: WorkerView::default(),
                    queue: VecDeque::new(),
                })
                .collect(),
            trace: Trace::new(),
            num_chunks: 0,
            dispatched_work: 0.0,
            per_worker_busy: vec![0.0; n],
            events_processed: 0,
            next_unit: 0.0,
            return_queue: VecDeque::new(),
            returned_work: 0.0,
            ledger: Vec::with_capacity(event_capacity),
            fault_injector,
            fault_mode,
            speeds,
            current_compute: vec![None; n],
            lost_units: VecDeque::new(),
            doomed_buf: Vec::new(),
            lost_work: 0.0,
            lost_chunks: 0,
            redispatched_work: 0.0,
            outstanding_chunks: 0,
            views_buf: Vec::with_capacity(n),
            used: false,
            trace_events: 0,
            link_busy: 0.0,
            link_busy_since: 0.0,
            last_compute_end: vec![f64::NAN; n],
            gap_time: vec![0.0; n],
            num_gaps: 0,
            counts: EventCounts::default(),
            checker,
            pending_timers: Vec::new(),
        }
    }

    /// Restore the engine to its just-constructed state for another run,
    /// keeping every buffer's allocation. `injector` replaces the previous
    /// run's error injector (each repetition uses a fresh seed); the fault
    /// injector rewinds to the start of its materialized sequence (the
    /// fault model is part of the engine's fixed configuration, so the
    /// sequence is identical every repetition and need not be regenerated).
    pub fn reset(&mut self, injector: ErrorInjector) {
        let n = self.platform.num_workers();
        self.injector = injector;
        self.queue.clear();
        self.seq = 0;
        self.now = 0.0;
        self.sending = 0;
        self.pool.clear();
        self.pool_epoch = 0;
        self.pool_updated = 0.0;
        for w in &mut self.workers {
            w.view = WorkerView::default();
            w.queue.clear();
        }
        self.trace = Trace::new();
        self.num_chunks = 0;
        self.dispatched_work = 0.0;
        self.per_worker_busy.clear();
        self.per_worker_busy.resize(n, 0.0);
        self.events_processed = 0;
        self.next_unit = 0.0;
        self.return_queue.clear();
        self.returned_work = 0.0;
        self.ledger.clear();
        self.fault_injector.rewind();
        self.current_compute.clear();
        self.current_compute.resize(n, None);
        self.lost_units.clear();
        self.lost_work = 0.0;
        self.lost_chunks = 0;
        self.redispatched_work = 0.0;
        self.outstanding_chunks = 0;
        self.used = false;
        self.trace_events = 0;
        self.link_busy = 0.0;
        self.link_busy_since = 0.0;
        self.last_compute_end.clear();
        self.last_compute_end.resize(n, f64::NAN);
        self.gap_time.clear();
        self.gap_time.resize(n, 0.0);
        self.num_gaps = 0;
        self.counts = EventCounts::default();
        if let Some(c) = &mut self.checker {
            c.reset();
        }
        self.pending_timers.clear();
    }

    /// Debug probe: the pending-event queue's allocated capacity (see
    /// `EventQueue::capacity_probe`). Reuse tests assert this stops
    /// growing across `reset`/`run_reusing` repetitions.
    #[doc(hidden)]
    pub fn debug_queue_capacity(&self) -> usize {
        self.queue.capacity_probe()
    }

    fn schedule(&mut self, time: f64, event: Event) {
        debug_assert!(time.is_finite() && time >= self.now - 1e-9);
        self.queue.push(time.max(self.now), self.seq, event);
        self.seq += 1;
    }

    fn record(&mut self, e: TraceEvent) {
        self.trace_events += 1;
        if self.config.trace_mode.records_summary() {
            self.counts.count(&e);
        }
        if let Some(c) = &mut self.checker {
            c.observe(&e);
        }
        if self.config.trace_mode.records_trace() {
            self.trace.push(e);
        }
    }

    /// A transfer started occupying the master's interface. Tracks the
    /// interface's busy time across the 0↔non-zero transitions.
    #[inline]
    fn inc_sending(&mut self) {
        if self.sending == 0 {
            self.link_busy_since = self.now;
        }
        self.sending += 1;
    }

    /// A transfer released the master's interface.
    #[inline]
    fn dec_sending(&mut self) {
        self.sending -= 1;
        if self.sending == 0 {
            self.link_busy += self.now - self.link_busy_since;
        }
    }

    /// Predicted computation time of `chunk` on `worker` at *realized*
    /// rates (Eq. 1 with the revealed speed). Identical to the declared
    /// prediction when the speed model is inactive.
    #[inline]
    fn realized_comp_time(&self, worker: usize, chunk: f64) -> f64 {
        let spec = self.platform.worker(worker);
        match &self.speeds {
            Some(s) => spec.comp_latency + chunk / (spec.speed * s.compute[worker]),
            None => spec.comp_time(chunk),
        }
    }

    /// Realized link rate of `worker` (declared `B_i` when the speed model
    /// is inactive).
    #[inline]
    fn realized_bandwidth(&self, worker: usize) -> f64 {
        let spec = self.platform.worker(worker);
        match &self.speeds {
            Some(s) => spec.bandwidth * s.link[worker],
            None => spec.bandwidth,
        }
    }

    fn start_compute(&mut self, worker: usize, scheduler: &mut dyn Scheduler) {
        let (id, chunk, unit_start) = match self.workers[worker].queue.pop_front() {
            Some(c) => c,
            None => return,
        };
        let w = &mut self.workers[worker];
        w.view.queued_chunks -= 1;
        w.view.queued_work -= chunk;
        w.view.computing = true;
        let last_end = self.last_compute_end[worker];
        if last_end.is_finite() && self.now > last_end + 1e-12 {
            self.gap_time[worker] += self.now - last_end;
            self.num_gaps += 1;
        }
        self.ledger[id].state = ChunkState::Computing;
        let predicted = self.realized_comp_time(worker, chunk);
        let effective =
            self.injector
                .effective_compute(worker, predicted, unit_start, unit_start + chunk);
        self.per_worker_busy[worker] += effective;
        self.current_compute[worker] = Some((id, self.now + effective));
        self.record(TraceEvent::ComputeStart {
            worker,
            chunk,
            time: self.now,
        });
        scheduler.on_compute_start(worker, chunk, self.now);
        self.schedule(
            self.now + effective,
            Event::ComputeEnd { worker, chunk, id },
        );
    }

    /// Integrate pool progress from the last update to `now`.
    fn update_pool_progress(&mut self) {
        let dt = self.now - self.pool_updated;
        if dt > 0.0 {
            for t in &mut self.pool {
                t.remaining = (t.remaining - t.rate * dt).max(0.0);
            }
        }
        self.pool_updated = self.now;
    }

    /// Max-min fair allocation of the uplink capacity across the pool,
    /// each stream capped by its own link rate.
    fn recompute_pool_rates(&mut self) {
        match self.config.uplink_capacity {
            None => {
                for t in &mut self.pool {
                    t.rate = t.link_rate;
                }
            }
            Some(capacity) => {
                let mut remaining_capacity = capacity;
                let mut unassigned: Vec<usize> = (0..self.pool.len()).collect();
                // Water-filling: streams capped below the fair share get
                // their cap; the rest split what remains.
                loop {
                    if unassigned.is_empty() {
                        break;
                    }
                    let share = remaining_capacity / unassigned.len() as f64;
                    let mut progressed = false;
                    unassigned.retain(|&i| {
                        if self.pool[i].link_rate <= share {
                            self.pool[i].rate = self.pool[i].link_rate;
                            remaining_capacity -= self.pool[i].link_rate;
                            progressed = true;
                            false
                        } else {
                            true
                        }
                    });
                    if !progressed {
                        let share = remaining_capacity / unassigned.len() as f64;
                        for &i in &unassigned {
                            self.pool[i].rate = share;
                        }
                        break;
                    }
                }
            }
        }
    }

    /// Invalidate outstanding pool checks and schedule the next one.
    fn schedule_pool_check(&mut self) {
        self.pool_epoch += 1;
        if self.pool.is_empty() {
            return;
        }
        let eta = self
            .pool
            .iter()
            .map(|t| {
                if t.rate > 0.0 {
                    t.remaining / t.rate
                } else {
                    f64::INFINITY
                }
            })
            .fold(f64::INFINITY, f64::min);
        debug_assert!(eta.is_finite(), "pool transfer with zero rate");
        let epoch = self.pool_epoch;
        self.schedule(self.now + eta, Event::PoolCheck { epoch });
    }

    /// Complete every pool transfer whose data has fully crossed the
    /// master's interface.
    fn drain_completed_transfers(&mut self) {
        let mut i = 0;
        while i < self.pool.len() {
            if self.pool[i].remaining <= POOL_EPS {
                let t = self.pool.remove(i);
                self.dec_sending();
                if t.is_return {
                    self.returned_work += t.chunk;
                    self.record(TraceEvent::ReturnEnd {
                        worker: t.worker,
                        bytes: t.chunk,
                        time: self.now,
                    });
                } else {
                    self.ledger[t.id].state = ChunkState::InFlight;
                    self.record(TraceEvent::SendEnd {
                        worker: t.worker,
                        chunk: t.chunk,
                        time: self.now,
                    });
                    self.schedule(
                        self.now + t.fly_time,
                        Event::Arrival {
                            worker: t.worker,
                            chunk: t.chunk,
                            unit_start: t.unit_start,
                            id: t.id,
                        },
                    );
                }
            } else {
                i += 1;
            }
        }
    }

    /// Start queued output returns while send slots are free (returns have
    /// priority over new input dispatches: they complete the application).
    fn start_returns(&mut self) {
        while self.sending < self.config.max_concurrent_sends {
            let Some((worker, bytes)) = self.return_queue.pop_front() else {
                break;
            };
            self.inc_sending();
            let spec = self.platform.worker(worker);
            let factor = self.injector.comm_factor(worker);
            let setup = spec.net_latency * factor;
            let link_rate = self.realized_bandwidth(worker) / factor;
            let fly_time = spec.transfer_latency * factor;
            self.record(TraceEvent::ReturnStart {
                worker,
                bytes,
                time: self.now,
            });
            self.schedule(
                self.now + setup,
                Event::SetupDone {
                    worker,
                    chunk: bytes,
                    link_rate,
                    fly_time,
                    unit_start: 0.0,
                    is_return: true,
                    id: RETURN_ID,
                },
            );
        }
    }

    /// Let the scheduler use the free send slots. The per-worker view
    /// snapshot is rebuilt in place in a reused buffer — the dispatch loop
    /// runs several times per chunk, and a fresh `Vec` per consultation
    /// used to dominate the engine's allocation profile.
    fn try_dispatch(
        &mut self,
        scheduler: &mut dyn Scheduler,
        finished: &mut bool,
    ) -> Result<(), SimError> {
        let mut views = std::mem::take(&mut self.views_buf);
        let mut outcome = Ok(());
        while !*finished && self.sending < self.config.max_concurrent_sends {
            views.clear();
            views.extend(self.workers.iter().map(|w| w.view));
            let decision = scheduler.next_dispatch(&SimView {
                time: self.now,
                workers: &views,
            });
            let step = match decision {
                Decision::Wait => break,
                Decision::WaitUntil { time } => {
                    if !time.is_finite() || time < 0.0 {
                        outcome = Err(SimError::InvalidTimer { time });
                    } else {
                        let due = time.max(self.now);
                        // A pending timer at or before `due` already
                        // guarantees the wake-up; only schedule otherwise.
                        if !self.pending_timers.iter().any(|&t| t <= due) {
                            self.pending_timers.push(due);
                            self.schedule(due, Event::Timer);
                        }
                    }
                    break;
                }
                Decision::Finished => {
                    *finished = true;
                    Ok(())
                }
                Decision::Dispatch { worker, chunk } => self.dispatch_chunk(worker, chunk, false),
                Decision::Redispatch { worker, chunk } => self.dispatch_chunk(worker, chunk, true),
            };
            if let Err(e) = step {
                outcome = Err(e);
                break;
            }
        }
        self.views_buf = views;
        outcome
    }

    /// Validate and start one input transfer; shared by `Dispatch` and
    /// `Redispatch`.
    fn dispatch_chunk(
        &mut self,
        worker: usize,
        chunk: f64,
        redispatch: bool,
    ) -> Result<(), SimError> {
        if worker >= self.workers.len() || !chunk.is_finite() || chunk <= 0.0 {
            return Err(SimError::InvalidDispatch { worker, chunk });
        }
        self.inc_sending();
        self.num_chunks += 1;
        self.dispatched_work += chunk;
        let w = &mut self.workers[worker];
        w.view.in_flight_chunks += 1;
        w.view.in_flight_work += chunk;
        w.view.assigned_work += chunk;

        // One perturbation draw covers the whole communication
        // operation: it stretches the setup latency, slows the
        // effective link rate, and stretches the in-flight
        // latency alike.
        let spec = self.platform.worker(worker);
        let factor = self.injector.comm_factor(worker);
        let setup = spec.net_latency * factor;
        let link_rate = self.realized_bandwidth(worker) / factor;
        let fly_time = spec.transfer_latency * factor;
        let unit_start = if redispatch {
            self.redispatched_work += chunk;
            self.record(TraceEvent::Redispatch {
                worker,
                chunk,
                time: self.now,
            });
            self.take_lost_units(chunk)
        } else {
            let u = self.next_unit;
            self.next_unit += chunk;
            u
        };
        let id = self.ledger.len();
        self.ledger.push(ChunkRecord {
            worker,
            size: chunk,
            unit_start,
            state: ChunkState::Sending,
        });
        self.outstanding_chunks += 1;

        self.record(TraceEvent::SendStart {
            worker,
            chunk,
            time: self.now,
        });
        self.schedule(
            self.now + setup,
            Event::SetupDone {
                worker,
                chunk,
                link_rate,
                fly_time,
                unit_start,
                is_return: false,
                id,
            },
        );
        Ok(())
    }

    /// Carve `chunk` units for a redispatch from the lost-unit pool, FIFO.
    ///
    /// Returns the first unit of the re-sent range. A redispatch no larger
    /// than the front lost range stays exactly contiguous (the common case:
    /// recovery schedulers split lost ranges, never merge them); a larger
    /// one greedily consumes several ranges and is tagged with the first —
    /// an approximation that only matters to trace-driven cost profiles.
    /// If the pool is empty (scheduler re-sent more than was lost), fresh
    /// units are carved instead.
    fn take_lost_units(&mut self, chunk: f64) -> f64 {
        let Some(&(start, len)) = self.lost_units.front() else {
            let u = self.next_unit;
            self.next_unit += chunk;
            return u;
        };
        if chunk < len - POOL_EPS {
            self.lost_units[0] = (start + chunk, len - chunk);
            return start;
        }
        self.lost_units.pop_front();
        let mut covered = len;
        while covered < chunk - POOL_EPS {
            let Some((s2, l2)) = self.lost_units.pop_front() else {
                break;
            };
            let needed = chunk - covered;
            if l2 > needed + POOL_EPS {
                self.lost_units.push_front((s2 + needed, l2 - needed));
                covered = chunk;
            } else {
                covered += l2;
            }
        }
        start
    }

    /// Destroy a dispatched chunk (fault semantics). Handles the per-state
    /// bookkeeping, marks the ledger record lost, and notifies the
    /// scheduler. Returns true when a data-phase pool transfer was removed
    /// (the caller must then recompute pool rates).
    fn lose_chunk(&mut self, id: usize, scheduler: &mut dyn Scheduler) -> bool {
        let rec = self.ledger[id];
        debug_assert!(rec.state.is_outstanding(), "losing a settled chunk");
        let worker = rec.worker;
        let mut pool_touched = false;
        match rec.state {
            ChunkState::Sending => {
                // Data phase: abort the transfer and free the slot now.
                // Setup phase: the slot stays busy until its `SetupDone`
                // fires, which sees the Lost state and frees it.
                if let Some(pos) = self.pool.iter().position(|t| !t.is_return && t.id == id) {
                    self.pool.remove(pos);
                    self.dec_sending();
                    pool_touched = true;
                }
                let v = &mut self.workers[worker].view;
                v.in_flight_chunks -= 1;
                v.in_flight_work -= rec.size;
            }
            ChunkState::InFlight => {
                let v = &mut self.workers[worker].view;
                v.in_flight_chunks -= 1;
                v.in_flight_work -= rec.size;
            }
            ChunkState::Queued => {
                let ws = &mut self.workers[worker];
                if let Some(pos) = ws.queue.iter().position(|&(qid, _, _)| qid == id) {
                    ws.queue.remove(pos);
                }
                ws.view.queued_chunks -= 1;
                ws.view.queued_work -= rec.size;
            }
            ChunkState::Computing => {
                self.workers[worker].view.computing = false;
                if let Some((cid, end)) = self.current_compute[worker].take() {
                    debug_assert_eq!(cid, id, "current-compute ledger mismatch");
                    // Refund the pre-credited busy time the worker will
                    // never spend; its stale `ComputeEnd` is ignored later.
                    self.per_worker_busy[worker] -= end - self.now;
                }
            }
            ChunkState::Completed | ChunkState::Lost => unreachable!("settled chunk"),
        }
        let stage = match rec.state {
            ChunkState::Sending => LostStage::Sending,
            ChunkState::InFlight => LostStage::InFlight,
            ChunkState::Queued => LostStage::Queued,
            ChunkState::Computing => LostStage::Computing,
            ChunkState::Completed | ChunkState::Lost => unreachable!("settled chunk"),
        };
        self.workers[worker].view.assigned_work -= rec.size;
        self.ledger[id].state = ChunkState::Lost;
        self.outstanding_chunks -= 1;
        self.lost_work += rec.size;
        self.lost_chunks += 1;
        // Coalesce exactly adjacent ranges in place: one fault typically
        // destroys a worker's whole contiguous backlog, which would
        // otherwise enter the pool as one entry per chunk. Unit starts are
        // carved by exact f64 accumulation, so adjacency is an exact `==`.
        match self.lost_units.back_mut() {
            Some((start, len)) if *start + *len == rec.unit_start => *len += rec.size,
            _ => self.lost_units.push_back((rec.unit_start, rec.size)),
        }
        self.record(TraceEvent::ChunkLost {
            worker,
            chunk: rec.size,
            stage,
            time: self.now,
        });
        scheduler.on_chunk_lost(worker, rec.size, self.now);
        pool_touched
    }

    /// Apply one fault. Sets `*finished = false` whenever the fault may
    /// give the scheduler new work to do (losses to re-queue, a recovered
    /// worker to use), so the engine resumes consulting it.
    fn apply_fault(
        &mut self,
        worker: usize,
        action: FaultAction,
        scheduler: &mut dyn Scheduler,
        finished: &mut bool,
    ) {
        match action {
            FaultAction::Down => {
                if !self.workers[worker].view.alive {
                    return; // already down
                }
                self.workers[worker].view.alive = false;
                self.record(TraceEvent::WorkerDown {
                    worker,
                    time: self.now,
                });
                scheduler.on_worker_failed(worker, self.now);
                // Lost now: queued + computing chunks (the worker's memory)
                // and transfers occupying the master (setup or data phase).
                // Fly-phase chunks keep flying and die on arrival only if
                // the worker is still down then.
                let mut doomed = std::mem::take(&mut self.doomed_buf);
                doomed.clear();
                doomed.extend(self.ledger.iter().enumerate().filter_map(|(i, r)| {
                    (r.worker == worker
                        && matches!(
                            r.state,
                            ChunkState::Sending | ChunkState::Queued | ChunkState::Computing
                        ))
                    .then_some(i)
                }));
                self.destroy_chunks(&doomed, scheduler, finished);
                self.doomed_buf = doomed;
            }
            FaultAction::Up => {
                if self.workers[worker].view.alive {
                    return; // already up
                }
                debug_assert!(self.workers[worker].queue.is_empty(), "dead worker queue");
                self.workers[worker].view.alive = true;
                self.record(TraceEvent::WorkerUp {
                    worker,
                    time: self.now,
                });
                scheduler.on_worker_recovered(worker, self.now);
                // The recovered worker is new capacity: re-consult the
                // scheduler even if it had declared itself finished.
                *finished = false;
            }
            FaultAction::LinkDrop => {
                // Everything currently in transit to the worker dies; its
                // queued/computing chunks already crossed the link safely.
                let mut doomed = std::mem::take(&mut self.doomed_buf);
                doomed.clear();
                doomed.extend(self.ledger.iter().enumerate().filter_map(|(i, r)| {
                    (r.worker == worker
                        && matches!(r.state, ChunkState::Sending | ChunkState::InFlight))
                    .then_some(i)
                }));
                self.destroy_chunks(&doomed, scheduler, finished);
                self.doomed_buf = doomed;
            }
        }
    }

    /// Lose a batch of chunks at the current time, fixing up the transfer
    /// pool once at the end.
    fn destroy_chunks(
        &mut self,
        ids: &[usize],
        scheduler: &mut dyn Scheduler,
        finished: &mut bool,
    ) {
        if ids.is_empty() {
            return;
        }
        self.update_pool_progress();
        let mut pool_touched = false;
        for &id in ids {
            pool_touched |= self.lose_chunk(id, scheduler);
        }
        if pool_touched {
            self.recompute_pool_rates();
            self.schedule_pool_check();
        }
        *finished = false;
    }

    /// Run the simulation to completion, consuming the engine.
    ///
    /// # Errors
    ///
    /// See [`SimError`].
    pub fn run(mut self, scheduler: &mut dyn Scheduler) -> Result<SimResult, SimError> {
        self.run_reusing(scheduler)
    }

    /// Run the simulation to completion without consuming the engine, so
    /// its buffers can be reused for the next run after [`Engine::reset`].
    ///
    /// # Errors
    ///
    /// See [`SimError`].
    ///
    /// # Panics
    ///
    /// Panics if called again without an intervening [`Engine::reset`].
    pub fn run_reusing(&mut self, scheduler: &mut dyn Scheduler) -> Result<SimResult, SimError> {
        let outstanding_work = self.run_core(scheduler)?;
        let audit = self.finalize_audit(outstanding_work);
        let metrics = self.take_metrics();
        Ok(SimResult {
            makespan: self.now,
            num_chunks: self.num_chunks,
            dispatched_work: self.dispatched_work,
            returned_work: self.returned_work,
            per_worker_work: self.workers.iter().map(|w| w.view.completed_work).collect(),
            per_worker_busy: std::mem::take(&mut self.per_worker_busy),
            lost_work: self.lost_work,
            lost_chunks: self.lost_chunks,
            redispatched_work: self.redispatched_work,
            outstanding_work,
            lost_ranges: self.lost_units.drain(..).collect(),
            events: self.events_processed,
            metrics,
            trace: self.take_trace(),
            audit,
        })
    }

    /// Run the simulation to completion and append the outcome to `cols`
    /// instead of building an owned [`SimResult`] — the batched-repetition
    /// primitive. Per-repetition vector fields land in the batch's reused
    /// column buffers, so a warm batch allocates nothing per repetition.
    /// Field for field, row `i` of `cols` holds exactly what the `i`-th
    /// sequential [`Engine::run_reusing`] would have returned.
    ///
    /// # Errors
    ///
    /// See [`SimError`]. On error nothing is appended.
    ///
    /// # Panics
    ///
    /// Panics if called again without an intervening [`Engine::reset`], or
    /// when `cols` already holds repetitions of a different worker count.
    pub fn run_reusing_into(
        &mut self,
        scheduler: &mut dyn Scheduler,
        cols: &mut RepColumns,
    ) -> Result<(), SimError> {
        let n = self.platform.num_workers();
        if cols.is_empty() {
            cols.num_workers = n;
            if cols.lost_offsets.is_empty() {
                cols.lost_offsets.push(0);
            }
        }
        assert_eq!(
            cols.num_workers, n,
            "column batch is for a different platform shape"
        );
        let outstanding_work = self.run_core(scheduler)?;
        let audit = self.finalize_audit(outstanding_work);
        let metrics = self.take_metrics();
        cols.makespan.push(self.now);
        cols.num_chunks.push(self.num_chunks);
        cols.dispatched_work.push(self.dispatched_work);
        cols.returned_work.push(self.returned_work);
        cols.completed_work
            .push(self.workers.iter().map(|w| w.view.completed_work).sum());
        cols.lost_work.push(self.lost_work);
        cols.lost_chunks.push(self.lost_chunks);
        cols.redispatched_work.push(self.redispatched_work);
        cols.outstanding_work.push(outstanding_work);
        cols.events.push(self.events_processed);
        cols.per_worker_work
            .extend(self.workers.iter().map(|w| w.view.completed_work));
        cols.per_worker_busy
            .extend_from_slice(&self.per_worker_busy);
        cols.lost_ranges.extend(self.lost_units.drain(..));
        cols.lost_offsets.push(cols.lost_ranges.len());
        cols.metrics.push(metrics);
        cols.trace.push(self.take_trace());
        cols.audit.push(audit);
        Ok(())
    }

    /// The event loop plus work-ledger close-out shared by both run
    /// tails ([`Engine::run_reusing`] / [`Engine::run_reusing_into`]).
    /// Returns the run's outstanding (dispatched but unsettled) work.
    fn run_core(&mut self, scheduler: &mut dyn Scheduler) -> Result<f64, SimError> {
        assert!(!self.used, "engine already ran; call reset() first");
        self.used = true;
        let mut finished = false;
        // Seed the first fault; each fault event enqueues its successor, so
        // exactly one is pending at a time and `FaultModel::None` consumes
        // no event sequence numbers (bit-identical fault-free runs).
        if let Some(f) = self.fault_injector.pop() {
            self.schedule(
                f.time,
                Event::Fault {
                    worker: f.worker,
                    action: f.action,
                },
            );
        }
        loop {
            // Returns first (they complete the run), then the scheduler.
            self.start_returns();
            self.try_dispatch(scheduler, &mut finished)?;

            // In fault mode, stop as soon as all work is settled: pending
            // fault events must not stretch the makespan, and with
            // crash-stop losses the heap can drain with work undone —
            // partial completion, not a scheduler deadlock. The same early
            // exit applies when scheduler timers are pending
            // (`Decision::WaitUntil`): a leftover wake-up after the last
            // real event must not stretch the makespan either.
            if (self.fault_mode || !self.pending_timers.is_empty())
                && finished
                && self.outstanding_chunks == 0
                && self.sending == 0
                && self.return_queue.is_empty()
            {
                break;
            }

            let Some((time, _seq, event)) = self.queue.pop() else {
                if finished || self.fault_mode {
                    break;
                }
                return Err(SimError::Deadlock { time: self.now });
            };
            self.events_processed += 1;
            if self.events_processed > self.config.max_events {
                return Err(SimError::EventLimitExceeded);
            }
            self.now = time;
            match event {
                Event::SetupDone {
                    worker,
                    chunk,
                    link_rate,
                    fly_time,
                    unit_start,
                    is_return,
                    id,
                } => {
                    if !is_return && self.ledger[id].state == ChunkState::Lost {
                        // Destroyed during setup by a fault; the loss was
                        // accounted then — just free the send slot.
                        self.dec_sending();
                        continue;
                    }
                    self.update_pool_progress();
                    self.pool.push(PoolTransfer {
                        worker,
                        chunk,
                        remaining: chunk,
                        link_rate,
                        rate: 0.0,
                        fly_time,
                        unit_start,
                        is_return,
                        id,
                    });
                    self.recompute_pool_rates();
                    // A zero-size... chunks are > 0, but a chunk can finish
                    // instantly only with infinite rate; schedule normally.
                    self.schedule_pool_check();
                }
                Event::PoolCheck { epoch } => {
                    if epoch != self.pool_epoch {
                        continue; // Stale: the pool changed since.
                    }
                    self.update_pool_progress();
                    self.drain_completed_transfers();
                    self.recompute_pool_rates();
                    self.schedule_pool_check();
                }
                Event::Arrival {
                    worker,
                    chunk,
                    unit_start,
                    id,
                } => {
                    if self.ledger[id].state != ChunkState::InFlight {
                        continue; // Destroyed mid-flight by a link drop.
                    }
                    if !self.workers[worker].view.alive {
                        // Delivered to a crashed worker: destroyed on
                        // arrival (no Arrival is recorded — the worker
                        // never received it).
                        self.lose_chunk(id, scheduler);
                        finished = false;
                        continue;
                    }
                    self.ledger[id].state = ChunkState::Queued;
                    self.record(TraceEvent::Arrival {
                        worker,
                        chunk,
                        time: self.now,
                    });
                    let w = &mut self.workers[worker];
                    w.view.in_flight_chunks -= 1;
                    w.view.in_flight_work -= chunk;
                    w.view.queued_chunks += 1;
                    w.view.queued_work += chunk;
                    w.queue.push_back((id, chunk, unit_start));
                    scheduler.on_arrival(worker, chunk, self.now);
                    if !self.workers[worker].view.computing {
                        self.start_compute(worker, scheduler);
                    }
                }
                Event::ComputeEnd { worker, chunk, id } => {
                    if self.ledger[id].state != ChunkState::Computing {
                        continue; // Stale: the chunk died with its worker.
                    }
                    self.ledger[id].state = ChunkState::Completed;
                    self.outstanding_chunks -= 1;
                    self.current_compute[worker] = None;
                    self.last_compute_end[worker] = self.now;
                    self.record(TraceEvent::ComputeEnd {
                        worker,
                        chunk,
                        time: self.now,
                    });
                    let w = &mut self.workers[worker];
                    w.view.computing = false;
                    w.view.completed_chunks += 1;
                    w.view.completed_work += chunk;
                    scheduler.on_compute_end(worker, chunk, self.now);
                    if self.config.output_ratio > 0.0 {
                        self.return_queue
                            .push_back((worker, chunk * self.config.output_ratio));
                    }
                    self.start_compute(worker, scheduler);
                }
                Event::Fault { worker, action } => {
                    self.apply_fault(worker, action, scheduler, &mut finished);
                    if let Some(f) = self.fault_injector.pop() {
                        self.schedule(
                            f.time,
                            Event::Fault {
                                worker: f.worker,
                                action: f.action,
                            },
                        );
                    }
                }
                Event::Timer => {
                    // The wake-up itself is the whole effect: the loop's
                    // next iteration consults the scheduler at the new
                    // `now`. Drop the bookkeeping entry (timers pop in
                    // time order relative to each other, but earlier
                    // same-time entries may remain, so remove by value).
                    if let Some(i) = self.pending_timers.iter().position(|&t| t <= self.now) {
                        self.pending_timers.swap_remove(i);
                    }
                }
            }
        }

        let outstanding_work: f64 = self
            .ledger
            .iter()
            .filter(|r| r.state.is_outstanding())
            .map(|r| r.size)
            .sum();
        debug_assert!(
            {
                let residual = self.dispatched_work
                    - (self
                        .workers
                        .iter()
                        .map(|w| w.view.completed_work)
                        .sum::<f64>()
                        + self.lost_work
                        + outstanding_work);
                residual.abs() <= 1e-6 * self.dispatched_work.abs().max(1.0)
            },
            "work-ledger conservation violated"
        );
        // Close a still-open interface-busy interval (fault-mode runs can
        // terminate while a doomed transfer nominally holds the link).
        if self.sending > 0 {
            self.link_busy += self.now - self.link_busy_since;
            self.link_busy_since = self.now;
        }
        Ok(outstanding_work)
    }

    /// Finalize the streaming invariant checker against the run's work
    /// ledger (when auditing was on).
    fn finalize_audit(&mut self, outstanding_work: f64) -> Option<Vec<InvariantFinding>> {
        let completed_work: f64 = self.workers.iter().map(|w| w.view.completed_work).sum();
        let dispatched = self.dispatched_work;
        let lost = self.lost_work;
        self.checker.as_mut().map(|c| {
            c.finalize(WorkLedger {
                dispatched,
                completed: completed_work,
                lost,
                outstanding: outstanding_work,
            })
        })
    }

    /// Detach the run's metrics summary (when the trace mode records one).
    fn take_metrics(&mut self) -> Option<MetricsSummary> {
        self.config
            .trace_mode
            .records_summary()
            .then(|| MetricsSummary {
                trace_events: self.trace_events,
                link_busy: self.link_busy,
                per_worker_gap: std::mem::take(&mut self.gap_time),
                num_gaps: self.num_gaps,
                event_counts: std::mem::take(&mut self.counts),
                realized_speed_factors: self.speeds.as_ref().map(|s| {
                    s.compute
                        .iter()
                        .zip(&s.link)
                        .map(|(&c, &l)| (c, l))
                        .collect()
                }),
            })
    }

    /// Detach the run's full trace (when the trace mode records one).
    fn take_trace(&mut self) -> Option<Trace> {
        if self.config.trace_mode.records_trace() {
            Some(std::mem::take(&mut self.trace))
        } else {
            None
        }
    }
}

/// Convenience wrapper: build an [`Engine`] and run `scheduler` on
/// `platform` with the given injector and config.
pub fn simulate(
    platform: &Platform,
    scheduler: &mut dyn Scheduler,
    injector: ErrorInjector,
    config: SimConfig,
) -> Result<SimResult, SimError> {
    Engine::new(platform, injector, config).run(scheduler)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::error::ErrorModel;
    use crate::platform::{HomogeneousParams, WorkerSpec};

    /// Dispatches a fixed list of (worker, chunk) pairs eagerly.
    struct ListScheduler {
        plan: Vec<(usize, f64)>,
        next: usize,
    }

    impl ListScheduler {
        fn new(plan: Vec<(usize, f64)>) -> Self {
            ListScheduler { plan, next: 0 }
        }
    }

    impl Scheduler for ListScheduler {
        fn name(&self) -> String {
            "list".into()
        }
        fn next_dispatch(&mut self, _view: &SimView<'_>) -> Decision {
            if self.next >= self.plan.len() {
                return Decision::Finished;
            }
            let (worker, chunk) = self.plan[self.next];
            self.next += 1;
            Decision::Dispatch { worker, chunk }
        }
    }

    fn exact(platform: &Platform) -> ErrorInjector {
        let _ = platform;
        ErrorInjector::new(ErrorModel::None, 0)
    }

    fn traced() -> SimConfig {
        SimConfig {
            trace_mode: TraceMode::Full,
            ..Default::default()
        }
    }

    fn concurrent(k: usize, capacity: Option<f64>) -> SimConfig {
        SimConfig {
            trace_mode: TraceMode::Full,
            max_concurrent_sends: k,
            uplink_capacity: capacity,
            ..Default::default()
        }
    }

    #[test]
    fn single_worker_single_chunk() {
        // S = 2, B = 10, cLat = 0.5, nLat = 0.1, tLat = 0.05; chunk = 10.
        let platform = Platform::homogeneous(
            1,
            WorkerSpec {
                speed: 2.0,
                bandwidth: 10.0,
                comp_latency: 0.5,
                net_latency: 0.1,
                transfer_latency: 0.05,
            },
        )
        .unwrap();
        let mut s = ListScheduler::new(vec![(0, 10.0)]);
        let r = simulate(&platform, &mut s, exact(&platform), traced()).unwrap();
        // Send: 0.1 + 10/10 = 1.1; arrival at 1.15; compute 0.5 + 5 = 5.5.
        assert!((r.makespan - 6.65).abs() < 1e-9, "makespan {}", r.makespan);
        assert_eq!(r.num_chunks, 1);
        assert!((r.dispatched_work - 10.0).abs() < 1e-12);
        assert!(r.trace.unwrap().validate(1).is_empty());
    }

    #[test]
    fn two_chunks_pipeline_on_one_worker() {
        // Second chunk transfers while the first computes (front-end model).
        let platform = Platform::homogeneous(
            1,
            WorkerSpec {
                speed: 1.0,
                bandwidth: 10.0,
                comp_latency: 0.0,
                net_latency: 0.0,
                transfer_latency: 0.0,
            },
        )
        .unwrap();
        let mut s = ListScheduler::new(vec![(0, 10.0), (0, 10.0)]);
        let r = simulate(&platform, &mut s, exact(&platform), traced()).unwrap();
        // Send1 done at 1, compute1 [1, 11]; send2 done at 2 (overlapped),
        // compute2 [11, 21].
        assert!((r.makespan - 21.0).abs() < 1e-9, "makespan {}", r.makespan);
        let trace = r.trace.unwrap();
        assert!(trace.validate(1).is_empty());
        assert_eq!(trace.num_chunks(), 2);
    }

    #[test]
    fn sends_are_serialized_across_workers() {
        // Two workers, equal chunks: worker 1's transfer starts only after
        // worker 0's completes.
        let platform = Platform::homogeneous(
            2,
            WorkerSpec {
                speed: 1.0,
                bandwidth: 1.0,
                comp_latency: 0.0,
                net_latency: 0.0,
                transfer_latency: 0.0,
            },
        )
        .unwrap();
        let mut s = ListScheduler::new(vec![(0, 5.0), (1, 5.0)]);
        let r = simulate(&platform, &mut s, exact(&platform), traced()).unwrap();
        // w0: recv at 5, compute [5, 10]; w1: recv at 10, compute [10, 15].
        assert!((r.makespan - 15.0).abs() < 1e-9);
        assert!((r.per_worker_work[0] - 5.0).abs() < 1e-12);
        assert!((r.per_worker_work[1] - 5.0).abs() < 1e-12);
        assert!(r.trace.unwrap().validate(2).is_empty());
    }

    #[test]
    fn tlat_overlaps_next_send() {
        // tLat = 10 is huge, but it must not delay the next transfer.
        let platform = Platform::homogeneous(
            2,
            WorkerSpec {
                speed: 1.0,
                bandwidth: 1.0,
                comp_latency: 0.0,
                net_latency: 0.0,
                transfer_latency: 10.0,
            },
        )
        .unwrap();
        let mut s = ListScheduler::new(vec![(0, 1.0), (1, 1.0)]);
        let r = simulate(&platform, &mut s, exact(&platform), traced()).unwrap();
        // Link busy [0,1] and [1,2]; arrivals at 11 and 12; computes end at
        // 12 and 13.
        assert!((r.makespan - 13.0).abs() < 1e-9, "makespan {}", r.makespan);
        assert!(r.trace.unwrap().validate(2).is_empty());
    }

    #[test]
    fn fifo_queue_on_worker() {
        let platform = Platform::homogeneous(
            1,
            WorkerSpec {
                speed: 1.0,
                bandwidth: 100.0,
                comp_latency: 0.0,
                net_latency: 0.0,
                transfer_latency: 0.0,
            },
        )
        .unwrap();
        // Three chunks arrive much faster than they compute; order preserved.
        let mut s = ListScheduler::new(vec![(0, 1.0), (0, 2.0), (0, 3.0)]);
        let r = simulate(&platform, &mut s, exact(&platform), traced()).unwrap();
        let trace = r.trace.unwrap();
        assert!(trace.validate(1).is_empty());
        let compute_order: Vec<f64> = trace
            .events()
            .iter()
            .filter_map(|e| match e {
                TraceEvent::ComputeStart { chunk, .. } => Some(*chunk),
                _ => None,
            })
            .collect();
        assert_eq!(compute_order, vec![1.0, 2.0, 3.0]);
    }

    #[test]
    fn invalid_dispatch_rejected() {
        let platform = HomogeneousParams::table1(2, 1.5, 0.1, 0.1).build().unwrap();
        for bad in [
            (5usize, 1.0),  // bad worker
            (0usize, 0.0),  // zero chunk
            (0usize, -1.0), // negative chunk
            (0usize, f64::NAN),
        ] {
            let mut s = ListScheduler::new(vec![bad]);
            let e =
                simulate(&platform, &mut s, exact(&platform), SimConfig::default()).unwrap_err();
            assert!(matches!(e, SimError::InvalidDispatch { .. }), "{bad:?}");
        }
    }

    #[test]
    fn waiting_forever_is_deadlock() {
        struct Waiter;
        impl Scheduler for Waiter {
            fn name(&self) -> String {
                "waiter".into()
            }
            fn next_dispatch(&mut self, _view: &SimView<'_>) -> Decision {
                Decision::Wait
            }
        }
        let platform = HomogeneousParams::table1(2, 1.5, 0.1, 0.1).build().unwrap();
        let e = simulate(
            &platform,
            &mut Waiter,
            exact(&platform),
            SimConfig::default(),
        )
        .unwrap_err();
        assert!(matches!(e, SimError::Deadlock { .. }));
    }

    #[test]
    fn empty_schedule_is_ok() {
        struct Noop;
        impl Scheduler for Noop {
            fn name(&self) -> String {
                "noop".into()
            }
            fn next_dispatch(&mut self, _view: &SimView<'_>) -> Decision {
                Decision::Finished
            }
        }
        let platform = HomogeneousParams::table1(2, 1.5, 0.1, 0.1).build().unwrap();
        let r = simulate(&platform, &mut Noop, exact(&platform), SimConfig::default()).unwrap();
        assert_eq!(r.makespan, 0.0);
        assert_eq!(r.num_chunks, 0);
    }

    #[test]
    fn event_limit_enforced() {
        let platform = HomogeneousParams::table1(1, 1.5, 0.0, 0.0).build().unwrap();
        let mut s = ListScheduler::new(vec![(0, 1.0); 100]);
        let cfg = SimConfig {
            max_events: 10,
            ..Default::default()
        };
        let e = simulate(&platform, &mut s, exact(&platform), cfg).unwrap_err();
        assert_eq!(e, SimError::EventLimitExceeded);
    }

    #[test]
    fn deterministic_with_errors() {
        let platform = HomogeneousParams::table1(4, 1.5, 0.2, 0.3).build().unwrap();
        let run = |seed| {
            let mut s = ListScheduler::new(vec![(0, 10.0), (1, 10.0), (2, 10.0), (3, 10.0)]);
            let inj = ErrorInjector::new(ErrorModel::TruncatedNormal { error: 0.4 }, seed);
            simulate(&platform, &mut s, inj, SimConfig::default())
                .unwrap()
                .makespan
        };
        assert_eq!(run(1), run(1));
        assert_ne!(run(1), run(2));
    }

    #[test]
    fn perturbed_run_still_valid() {
        let platform = HomogeneousParams::table1(3, 1.4, 0.1, 0.2).build().unwrap();
        let mut plan = Vec::new();
        for round in 0..5 {
            for w in 0..3 {
                plan.push((w, 1.0 + round as f64));
            }
        }
        let mut s = ListScheduler::new(plan);
        let inj = ErrorInjector::new(ErrorModel::TruncatedNormal { error: 0.5 }, 99);
        let r = simulate(&platform, &mut s, inj, traced()).unwrap();
        assert!(r.trace.unwrap().validate(3).is_empty());
        assert!(r.makespan > 0.0);
    }

    #[test]
    fn utilization_and_accounting() {
        let platform = HomogeneousParams::table1(2, 1.5, 0.0, 0.0).build().unwrap();
        let mut s = ListScheduler::new(vec![(0, 500.0), (1, 500.0)]);
        let r = simulate(&platform, &mut s, exact(&platform), SimConfig::default()).unwrap();
        assert!((r.completed_work() - 1000.0).abs() < 1e-9);
        let u = r.mean_utilization();
        assert!(u > 0.5 && u <= 1.0, "utilization {u}");
    }

    // --- Concurrent-transfer extension ---

    #[test]
    fn concurrent_unconstrained_sends_overlap() {
        // Two workers, k = 2, no shared capacity: both transfers run at
        // their full link rates simultaneously.
        let platform = Platform::homogeneous(
            2,
            WorkerSpec {
                speed: 1.0,
                bandwidth: 1.0,
                comp_latency: 0.0,
                net_latency: 0.0,
                transfer_latency: 0.0,
            },
        )
        .unwrap();
        let mut s = ListScheduler::new(vec![(0, 5.0), (1, 5.0)]);
        let r = simulate(&platform, &mut s, exact(&platform), concurrent(2, None)).unwrap();
        // Both receive at t = 5 and compute [5, 10] — vs 15 serially.
        assert!((r.makespan - 10.0).abs() < 1e-9, "makespan {}", r.makespan);
        assert!(r.trace.unwrap().validate_with_concurrency(2, 2).is_empty());
    }

    #[test]
    fn concurrent_shared_capacity_is_fair() {
        // k = 2, shared capacity 1.0 = each link's rate: two equal streams
        // each get 0.5, so overlapping them buys nothing — same finish as
        // serial for the pair, but both arrive at t = 10.
        let platform = Platform::homogeneous(
            2,
            WorkerSpec {
                speed: 1.0,
                bandwidth: 1.0,
                comp_latency: 0.0,
                net_latency: 0.0,
                transfer_latency: 0.0,
            },
        )
        .unwrap();
        let mut s = ListScheduler::new(vec![(0, 5.0), (1, 5.0)]);
        let r = simulate(
            &platform,
            &mut s,
            exact(&platform),
            concurrent(2, Some(1.0)),
        )
        .unwrap();
        // Each stream at 0.5 units/s: arrivals at 10; computes [10, 15].
        assert!((r.makespan - 15.0).abs() < 1e-9, "makespan {}", r.makespan);
    }

    #[test]
    fn concurrent_max_min_respects_link_caps() {
        // Worker 0's link is slow (0.5); worker 1's is fast (4.0). With
        // capacity 2.0, max-min gives w0 its cap 0.5 and w1 the rest (1.5).
        let w0 = WorkerSpec {
            speed: 100.0,
            bandwidth: 0.5,
            comp_latency: 0.0,
            net_latency: 0.0,
            transfer_latency: 0.0,
        };
        let mut w1 = w0;
        w1.bandwidth = 4.0;
        let platform = Platform::new(vec![w0, w1]).unwrap();
        let mut s = ListScheduler::new(vec![(0, 3.0), (1, 3.0)]);
        let r = simulate(
            &platform,
            &mut s,
            exact(&platform),
            concurrent(2, Some(2.0)),
        )
        .unwrap();
        let trace = r.trace.unwrap();
        // w1 finishes its 3 units at 3/1.5 = 2.0 s; w0 at 3/0.5 = 6.0 s.
        // (After w1 completes, w0 is still capped by its link at 0.5.)
        let send_ends: Vec<(usize, f64)> = trace
            .events()
            .iter()
            .filter_map(|e| match e {
                TraceEvent::SendEnd { worker, time, .. } => Some((*worker, *time)),
                _ => None,
            })
            .collect();
        let w1_end = send_ends.iter().find(|(w, _)| *w == 1).unwrap().1;
        let w0_end = send_ends.iter().find(|(w, _)| *w == 0).unwrap().1;
        assert!((w1_end - 2.0).abs() < 1e-9, "w1 end {w1_end}");
        assert!((w0_end - 6.0).abs() < 1e-9, "w0 end {w0_end}");
    }

    #[test]
    fn concurrent_nlat_setups_overlap() {
        // The whole point of the extension: with k = N, the N·nLat serial
        // setup cost collapses to ~nLat.
        let platform = Platform::homogeneous(
            4,
            WorkerSpec {
                speed: 1.0,
                bandwidth: 100.0,
                comp_latency: 0.0,
                net_latency: 1.0,
                transfer_latency: 0.0,
            },
        )
        .unwrap();
        let plan: Vec<(usize, f64)> = (0..4).map(|w| (w, 10.0)).collect();
        let mut serial_s = ListScheduler::new(plan.clone());
        let serial = simulate(&platform, &mut serial_s, exact(&platform), traced()).unwrap();
        let mut conc_s = ListScheduler::new(plan);
        let conc = simulate(
            &platform,
            &mut conc_s,
            exact(&platform),
            concurrent(4, None),
        )
        .unwrap();
        // Serial: worker 3 receives after 4·(1 + 0.1) = 4.4 s; concurrent:
        // after 1.1 s.
        assert!(
            conc.makespan + 3.0 < serial.makespan + 1e-9,
            "concurrent {} vs serial {}",
            conc.makespan,
            serial.makespan
        );
    }

    #[test]
    fn concurrent_conserves_under_error() {
        let platform = HomogeneousParams::table1(5, 1.5, 0.2, 0.3).build().unwrap();
        let plan: Vec<(usize, f64)> = (0..20).map(|i| (i % 5, 50.0)).collect();
        let mut s = ListScheduler::new(plan);
        let inj = ErrorInjector::new(ErrorModel::TruncatedNormal { error: 0.4 }, 17);
        let r = simulate(&platform, &mut s, inj, concurrent(3, Some(40.0))).unwrap();
        assert!((r.completed_work() - 1000.0).abs() < 1e-6);
        assert!(r.trace.unwrap().validate_with_concurrency(5, 3).is_empty());
    }

    #[test]
    fn serial_config_is_paper_model() {
        // k = 1 must behave exactly like the classic serial link.
        let platform = HomogeneousParams::table1(3, 1.5, 0.1, 0.2).build().unwrap();
        let plan: Vec<(usize, f64)> = (0..6).map(|i| (i % 3, 100.0)).collect();
        let mut s = ListScheduler::new(plan);
        let r = simulate(&platform, &mut s, exact(&platform), traced()).unwrap();
        // Strict serial-send validation passes.
        assert!(r.trace.unwrap().validate(3).is_empty());
    }

    // --- Output-data extension ---

    fn with_output(ratio: f64) -> SimConfig {
        SimConfig {
            trace_mode: TraceMode::Full,
            output_ratio: ratio,
            ..Default::default()
        }
    }

    #[test]
    fn output_returns_extend_the_makespan() {
        // One worker, one chunk, output ratio 0.5: after computing, 5 units
        // of results cross back over the link.
        let platform = Platform::homogeneous(
            1,
            WorkerSpec {
                speed: 1.0,
                bandwidth: 10.0,
                comp_latency: 0.0,
                net_latency: 0.1,
                transfer_latency: 0.0,
            },
        )
        .unwrap();
        let mut s = ListScheduler::new(vec![(0, 10.0)]);
        let r = simulate(&platform, &mut s, exact(&platform), with_output(0.5)).unwrap();
        // Input: 0.1 + 1.0 = 1.1; compute [1.1, 11.1]; return: 0.1 + 0.5.
        assert!((r.makespan - 11.7).abs() < 1e-9, "makespan {}", r.makespan);
        assert!((r.returned_work - 5.0).abs() < 1e-12);
        let trace = r.trace.unwrap();
        assert!(trace.validate(1).is_empty());
        assert!(trace
            .events()
            .iter()
            .any(|e| matches!(e, TraceEvent::ReturnEnd { .. })));
    }

    #[test]
    fn returns_compete_with_input_sends() {
        // Worker 0's return must delay worker 1's second input chunk: the
        // interface is shared.
        let platform = Platform::homogeneous(
            2,
            WorkerSpec {
                speed: 1.0,
                bandwidth: 1.0,
                comp_latency: 0.0,
                net_latency: 0.0,
                transfer_latency: 0.0,
            },
        )
        .unwrap();
        let plan = vec![(0, 2.0), (1, 2.0), (0, 2.0), (1, 2.0)];
        let mut s_no = ListScheduler::new(plan.clone());
        let no_output = simulate(&platform, &mut s_no, exact(&platform), traced()).unwrap();
        let mut s_out = ListScheduler::new(plan);
        let with_out = simulate(&platform, &mut s_out, exact(&platform), with_output(1.0)).unwrap();
        assert!(
            with_out.makespan > no_output.makespan + 1.0,
            "returns should cost link time: {} vs {}",
            with_out.makespan,
            no_output.makespan
        );
        assert!((with_out.returned_work - 8.0).abs() < 1e-9);
        assert!(with_out.trace.unwrap().validate(2).is_empty());
    }

    #[test]
    fn zero_output_ratio_matches_paper_model() {
        let platform = HomogeneousParams::table1(3, 1.5, 0.2, 0.1).build().unwrap();
        let plan: Vec<(usize, f64)> = (0..6).map(|i| (i % 3, 50.0)).collect();
        let mut a = ListScheduler::new(plan.clone());
        let ra = simulate(&platform, &mut a, exact(&platform), SimConfig::default()).unwrap();
        let mut b = ListScheduler::new(plan);
        let rb = simulate(&platform, &mut b, exact(&platform), with_output(0.0)).unwrap();
        assert_eq!(ra.makespan, rb.makespan);
        assert_eq!(rb.returned_work, 0.0);
    }

    #[test]
    fn output_with_concurrency_and_error_conserves() {
        let platform = HomogeneousParams::table1(4, 1.6, 0.2, 0.2).build().unwrap();
        let plan: Vec<(usize, f64)> = (0..12).map(|i| (i % 4, 25.0)).collect();
        let mut s = ListScheduler::new(plan);
        let cfg = SimConfig {
            trace_mode: TraceMode::Full,
            max_concurrent_sends: 2,
            uplink_capacity: Some(30.0),
            output_ratio: 0.25,
            ..Default::default()
        };
        let inj = ErrorInjector::new(ErrorModel::TruncatedNormal { error: 0.3 }, 5);
        let r = simulate(&platform, &mut s, inj, cfg).unwrap();
        assert!((r.completed_work() - 300.0).abs() < 1e-6);
        assert!((r.returned_work - 75.0).abs() < 1e-6);
        assert!(r.trace.unwrap().validate_with_concurrency(4, 2).is_empty());
    }

    #[test]
    #[should_panic(expected = "output ratio")]
    fn negative_output_ratio_rejected() {
        let platform = HomogeneousParams::table1(2, 1.5, 0.1, 0.1).build().unwrap();
        let cfg = SimConfig {
            output_ratio: -0.5,
            ..Default::default()
        };
        let _ = Engine::new(&platform, ErrorInjector::new(ErrorModel::None, 0), cfg);
    }

    #[test]
    #[should_panic(expected = "send slot")]
    fn zero_send_slots_rejected() {
        let platform = HomogeneousParams::table1(2, 1.5, 0.1, 0.1).build().unwrap();
        let cfg = SimConfig {
            max_concurrent_sends: 0,
            ..Default::default()
        };
        let _ = Engine::new(&platform, ErrorInjector::new(ErrorModel::None, 0), cfg);
    }

    // ---- fault injection ----

    use crate::faults::{FaultModel, FaultPlan, PoissonFaults};

    /// A unit platform: speed 1, bandwidth 1, no latencies.
    fn unit_platform(n: usize) -> Platform {
        Platform::homogeneous(
            n,
            WorkerSpec {
                speed: 1.0,
                bandwidth: 1.0,
                comp_latency: 0.0,
                net_latency: 0.0,
                transfer_latency: 0.0,
            },
        )
        .unwrap()
    }

    fn faulty(plan: FaultPlan) -> SimConfig {
        SimConfig {
            trace_mode: TraceMode::Full,
            faults: FaultModel::Plan(plan),
            ..Default::default()
        }
    }

    #[test]
    fn audit_is_clean_on_clean_runs_and_none_when_off() {
        let platform = unit_platform(2);
        // Off by default.
        let mut s = ListScheduler::new(vec![(0, 5.0), (1, 5.0)]);
        let r = simulate(&platform, &mut s, exact(&platform), SimConfig::default()).unwrap();
        assert!(r.audit.is_none());
        // Audited, trace mode Off: checker runs without any stored trace.
        let mut s = ListScheduler::new(vec![(0, 5.0), (1, 5.0)]);
        let cfg = SimConfig {
            audit: true,
            ..Default::default()
        };
        let r = simulate(&platform, &mut s, exact(&platform), cfg).unwrap();
        assert!(r.trace.is_none());
        assert_eq!(r.audit, Some(Vec::new()));
    }

    #[test]
    fn audit_is_clean_across_fault_lifecycle() {
        // Crash mid-computation with outstanding = 0: the streaming
        // checker must accept the loss-directed retirement exactly like
        // the post-hoc validator does.
        let platform = unit_platform(2);
        let mut s = ListScheduler::new(vec![(0, 5.0), (1, 5.0)]);
        let cfg = SimConfig {
            audit: true,
            ..faulty(FaultPlan::new().crash(12.0, 1))
        };
        let r = simulate(&platform, &mut s, exact(&platform), cfg).unwrap();
        assert!((r.lost_work - 5.0).abs() < 1e-12);
        assert_eq!(r.audit, Some(Vec::new()));
        // And it agrees with the post-hoc validator.
        assert!(r.trace.unwrap().validate(2).is_empty());
    }

    #[test]
    fn audit_survives_engine_reuse() {
        let platform = unit_platform(1);
        let cfg = SimConfig {
            audit: true,
            ..Default::default()
        };
        let mut engine = Engine::new(&platform, exact(&platform), cfg);
        for _ in 0..3 {
            let mut s = ListScheduler::new(vec![(0, 4.0), (0, 6.0)]);
            let r = engine.run_reusing(&mut s).unwrap();
            assert_eq!(r.audit, Some(Vec::new()));
            engine.reset(exact(&platform));
        }
    }

    #[test]
    fn crash_stop_loses_computing_chunk() {
        // w0: send [0,5], compute [5,10]. w1: send [5,10], compute [10,15],
        // crashed at 12 — its chunk is lost mid-computation.
        let platform = unit_platform(2);
        let mut s = ListScheduler::new(vec![(0, 5.0), (1, 5.0)]);
        let cfg = faulty(FaultPlan::new().crash(12.0, 1));
        let r = simulate(&platform, &mut s, exact(&platform), cfg).unwrap();
        assert!((r.completed_work() - 5.0).abs() < 1e-12);
        assert!((r.lost_work - 5.0).abs() < 1e-12);
        assert_eq!(r.lost_chunks, 1);
        assert!((r.outstanding_work).abs() < 1e-12);
        assert!(r.conservation_residual().abs() < 1e-9);
        // Worker 1's chunk covered units [5, 10) — never redispatched.
        assert_eq!(r.lost_ranges, vec![(5.0, 5.0)]);
        assert!((r.makespan - 12.0).abs() < 1e-9, "makespan {}", r.makespan);
        assert!(r.trace.unwrap().validate(2).is_empty());
    }

    #[test]
    fn crash_loses_queued_chunks_too() {
        // Fast link: both chunks are on the worker when it crashes at 0.5
        // (one computing, one queued). Everything dies with it.
        let platform = Platform::homogeneous(
            1,
            WorkerSpec {
                speed: 1.0,
                bandwidth: 100.0,
                comp_latency: 0.0,
                net_latency: 0.0,
                transfer_latency: 0.0,
            },
        )
        .unwrap();
        let mut s = ListScheduler::new(vec![(0, 1.0), (0, 3.0)]);
        let cfg = faulty(FaultPlan::new().crash(0.5, 0));
        let r = simulate(&platform, &mut s, exact(&platform), cfg).unwrap();
        assert_eq!(r.completed_work(), 0.0);
        assert!((r.lost_work - 4.0).abs() < 1e-12);
        assert_eq!(r.lost_chunks, 2);
        assert!(r.conservation_residual().abs() < 1e-9);
        assert!(r.trace.unwrap().validate(1).is_empty());
    }

    #[test]
    fn fly_phase_chunk_dies_on_arrival_at_dead_worker() {
        // tLat = 2: the chunk leaves the master at t=5 and is in its fly
        // phase when the worker crashes at 6; it is destroyed on arrival
        // (t=7), not at crash time.
        let platform = Platform::homogeneous(
            1,
            WorkerSpec {
                speed: 1.0,
                bandwidth: 1.0,
                comp_latency: 0.0,
                net_latency: 0.0,
                transfer_latency: 2.0,
            },
        )
        .unwrap();
        let mut s = ListScheduler::new(vec![(0, 5.0)]);
        let cfg = faulty(FaultPlan::new().crash(6.0, 0));
        let r = simulate(&platform, &mut s, exact(&platform), cfg).unwrap();
        assert_eq!(r.completed_work(), 0.0);
        assert!((r.lost_work - 5.0).abs() < 1e-12);
        assert!((r.makespan - 7.0).abs() < 1e-9, "makespan {}", r.makespan);
        let trace = r.trace.unwrap();
        // The loss happened at arrival time, after the crash.
        let lost_at = trace
            .events()
            .iter()
            .find_map(|e| match e {
                TraceEvent::ChunkLost { time, .. } => Some(*time),
                _ => None,
            })
            .unwrap();
        assert!((lost_at - 7.0).abs() < 1e-9);
        assert!(trace.validate(1).is_empty());
    }

    #[test]
    fn recovered_worker_computes_again() {
        // Crash at 2.5 kills the computing chunk and the one on the wire;
        // recovery at 3.0 lets the third chunk (dispatched at 2.5 when the
        // send slot freed) arrive at a live worker and complete.
        let platform = unit_platform(1);
        let mut s = ListScheduler::new(vec![(0, 2.0), (0, 2.0), (0, 2.0)]);
        let cfg = faulty(FaultPlan::new().crash_recover(2.5, 0, 0.5));
        let r = simulate(&platform, &mut s, exact(&platform), cfg).unwrap();
        assert!((r.completed_work() - 2.0).abs() < 1e-12);
        assert!((r.lost_work - 4.0).abs() < 1e-12);
        assert!(r.conservation_residual().abs() < 1e-9);
        let trace = r.trace.unwrap();
        assert!(trace
            .events()
            .iter()
            .any(|e| matches!(e, TraceEvent::WorkerUp { worker: 0, .. })));
        assert!(trace.validate(1).is_empty());
    }

    #[test]
    fn link_drop_spares_worker_memory() {
        // At t=3 chunk 1 computes on the worker (safe) while chunk 2 is on
        // the wire (destroyed). The worker itself never goes down.
        let platform = unit_platform(1);
        let mut s = ListScheduler::new(vec![(0, 2.0), (0, 2.0)]);
        let cfg = faulty(FaultPlan::new().link_drop(3.0, 0));
        let r = simulate(&platform, &mut s, exact(&platform), cfg).unwrap();
        assert!((r.completed_work() - 2.0).abs() < 1e-12);
        assert!((r.lost_work - 2.0).abs() < 1e-12);
        let trace = r.trace.unwrap();
        assert!(!trace
            .events()
            .iter()
            .any(|e| matches!(e, TraceEvent::WorkerDown { .. })));
        assert!(trace.validate(1).is_empty());
    }

    /// Dispatches one chunk, then re-sends anything reported lost.
    struct RedispatchOnLoss {
        sent: bool,
        pending: Option<f64>,
    }

    impl Scheduler for RedispatchOnLoss {
        fn name(&self) -> String {
            "redispatch-on-loss".into()
        }
        fn next_dispatch(&mut self, _view: &SimView<'_>) -> Decision {
            if !self.sent {
                self.sent = true;
                return Decision::Dispatch {
                    worker: 0,
                    chunk: 4.0,
                };
            }
            match self.pending.take() {
                Some(chunk) => Decision::Redispatch { worker: 0, chunk },
                None => Decision::Finished,
            }
        }
        fn on_chunk_lost(&mut self, _worker: usize, chunk: f64, _time: f64) {
            self.pending = Some(chunk);
        }
    }

    #[test]
    fn redispatch_recovers_lost_units() {
        // The link drop at t=1 destroys the send in progress; the scheduler
        // re-sends the same units and the run completes fully.
        let platform = unit_platform(1);
        let mut s = RedispatchOnLoss {
            sent: false,
            pending: None,
        };
        let cfg = faulty(FaultPlan::new().link_drop(1.0, 0));
        let r = simulate(&platform, &mut s, exact(&platform), cfg).unwrap();
        assert!((r.completed_work() - 4.0).abs() < 1e-12);
        assert!((r.lost_work - 4.0).abs() < 1e-12);
        assert!((r.redispatched_work - 4.0).abs() < 1e-12);
        assert!((r.dispatched_work - 8.0).abs() < 1e-12);
        // The lost unit range was consumed by the redispatch.
        assert!(r.lost_ranges.is_empty(), "{:?}", r.lost_ranges);
        assert!(r.conservation_residual().abs() < 1e-9);
        let trace = r.trace.unwrap();
        assert!(trace
            .events()
            .iter()
            .any(|e| matches!(e, TraceEvent::Redispatch { .. })));
        assert!(trace.validate(1).is_empty());
    }

    #[test]
    fn invalid_redispatch_rejected() {
        struct Bad(Option<Decision>);
        impl Scheduler for Bad {
            fn name(&self) -> String {
                "bad".into()
            }
            fn next_dispatch(&mut self, _view: &SimView<'_>) -> Decision {
                self.0.take().unwrap_or(Decision::Finished)
            }
        }
        let platform = HomogeneousParams::table1(2, 1.5, 0.1, 0.1).build().unwrap();
        for bad in [
            Decision::Redispatch {
                worker: 9,
                chunk: 1.0,
            },
            Decision::Redispatch {
                worker: 0,
                chunk: f64::NAN,
            },
            Decision::Redispatch {
                worker: 0,
                chunk: f64::INFINITY,
            },
            Decision::Redispatch {
                worker: 0,
                chunk: -2.0,
            },
            Decision::Dispatch {
                worker: 0,
                chunk: f64::INFINITY,
            },
        ] {
            let mut s = Bad(Some(bad));
            let e =
                simulate(&platform, &mut s, exact(&platform), SimConfig::default()).unwrap_err();
            assert!(matches!(e, SimError::InvalidDispatch { .. }), "{bad:?}");
        }
    }

    #[test]
    fn duplicate_down_and_up_are_no_ops() {
        // The second chunk (dispatched at 0.5 when the crash frees the send
        // slot) keeps the run alive across all four fault events.
        let platform = unit_platform(1);
        let mut s = ListScheduler::new(vec![(0, 2.0), (0, 2.0)]);
        let plan = FaultPlan::new()
            .crash(0.5, 0)
            .crash(0.6, 0) // already down
            .add(0.7, 0, crate::faults::FaultAction::Up)
            .add(0.8, 0, crate::faults::FaultAction::Up); // already up
        let r = simulate(&platform, &mut s, exact(&platform), faulty(plan)).unwrap();
        let trace = r.trace.unwrap();
        let downs = trace
            .events()
            .iter()
            .filter(|e| matches!(e, TraceEvent::WorkerDown { .. }))
            .count();
        let ups = trace
            .events()
            .iter()
            .filter(|e| matches!(e, TraceEvent::WorkerUp { .. }))
            .count();
        assert_eq!((downs, ups), (1, 1));
        assert!(trace.validate(1).is_empty());
    }

    #[test]
    fn poisson_fault_runs_are_reproducible() {
        let platform = HomogeneousParams::table1(4, 1.5, 0.2, 0.2).build().unwrap();
        let run = || {
            let plan: Vec<(usize, f64)> = (0..12).map(|i| (i % 4, 25.0)).collect();
            let mut s = ListScheduler::new(plan);
            let cfg = SimConfig {
                trace_mode: TraceMode::Full,
                faults: FaultModel::Poisson(PoissonFaults::crash_recovery(40.0, 10.0, 1000.0, 7)),
                ..Default::default()
            };
            let inj = ErrorInjector::new(ErrorModel::TruncatedNormal { error: 0.3 }, 5);
            simulate(&platform, &mut s, inj, cfg).unwrap()
        };
        let a = run();
        let b = run();
        assert_eq!(a.makespan.to_bits(), b.makespan.to_bits());
        assert_eq!(a.lost_work.to_bits(), b.lost_work.to_bits());
        assert_eq!(a.lost_chunks, b.lost_chunks);
        assert!(a.conservation_residual().abs() < 1e-9);
        assert!(a.trace.unwrap().validate(4).is_empty());
    }

    #[test]
    fn fault_mode_partial_completion_is_not_deadlock() {
        // Crash-stop with no recovery scheduler: the run ends with work
        // lost, but that is a partial result, not a deadlock error.
        let platform = unit_platform(2);
        let mut s = ListScheduler::new(vec![(0, 5.0), (1, 5.0)]);
        let cfg = SimConfig {
            faults: FaultModel::Plan(FaultPlan::new().crash(6.0, 1)),
            ..Default::default()
        };
        let r = simulate(&platform, &mut s, exact(&platform), cfg).unwrap();
        assert!(r.lost_work > 0.0);
        assert!(r.completed_work() < r.dispatched_work);
    }
}
