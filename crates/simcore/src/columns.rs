//! Structure-of-arrays result storage for batched repetition runs.
//!
//! A repetition sweep produces `reps` [`SimResult`]-shaped records whose
//! vector fields (`per_worker_work`, `per_worker_busy`, `lost_ranges`)
//! would otherwise each be a fresh heap allocation per repetition. A
//! [`RepColumns`] lays the same data out as columns — one flat buffer per
//! field, sized once for the whole batch and reused across batches — so
//! [`crate::Engine::run_reusing_into`] appends a repetition without
//! allocating. Per-worker vectors become a `reps × num_workers` row-major
//! matrix; the variable-length `lost_ranges` lists are CSR-flattened
//! (`lost_offsets[i]..lost_offsets[i + 1]` delimits repetition `i`).
//!
//! Every scalar a [`SimResult`] carries is preserved, so a batched run
//! loses no information relative to the sequential loop; the equivalence
//! tests assert bit-identity field by field.
//!
//! [`SimResult`]: crate::SimResult

use crate::invariants::InvariantFinding;
use crate::metrics::MetricsSummary;
use crate::trace::Trace;

/// Column-major storage for a batch of repetition results.
///
/// Indexing is by repetition order of insertion: the `i`-th call to
/// [`crate::Engine::run_reusing_into`] fills row `i` of every column.
#[derive(Debug, Clone, Default)]
pub struct RepColumns {
    /// Workers per repetition (fixed across the batch; 0 until the first
    /// repetition lands).
    pub num_workers: usize,
    /// Application makespan of each repetition.
    pub makespan: Vec<f64>,
    /// Chunks dispatched per repetition.
    pub num_chunks: Vec<usize>,
    /// Workload units dispatched per repetition.
    pub dispatched_work: Vec<f64>,
    /// Output units returned to the master per repetition.
    pub returned_work: Vec<f64>,
    /// Total completed workload per repetition (row sum of
    /// [`RepColumns::per_worker_work`], accumulated engine-side).
    pub completed_work: Vec<f64>,
    /// Workload units destroyed by faults per repetition.
    pub lost_work: Vec<f64>,
    /// Chunk-loss events per repetition.
    pub lost_chunks: Vec<usize>,
    /// Workload units re-sent via redispatch per repetition.
    pub redispatched_work: Vec<f64>,
    /// Dispatched-but-unsettled workload per repetition.
    pub outstanding_work: Vec<f64>,
    /// Engine events processed per repetition.
    pub events: Vec<u64>,
    /// `reps × num_workers` row-major matrix of per-worker completed work.
    pub per_worker_work: Vec<f64>,
    /// `reps × num_workers` row-major matrix of per-worker busy seconds.
    pub per_worker_busy: Vec<f64>,
    /// CSR-flattened lost unit ranges of every repetition.
    pub lost_ranges: Vec<(f64, f64)>,
    /// CSR row offsets into [`RepColumns::lost_ranges`]; `len() + 1`
    /// entries once rows exist (leading 0 is lazily inserted).
    pub lost_offsets: Vec<usize>,
    /// Per-repetition metrics summary (when the trace mode records one).
    pub metrics: Vec<Option<MetricsSummary>>,
    /// Per-repetition full trace (when the trace mode records one).
    pub trace: Vec<Option<Trace>>,
    /// Per-repetition audit findings (when auditing was on).
    pub audit: Vec<Option<Vec<InvariantFinding>>>,
}

impl RepColumns {
    /// Empty columns.
    pub fn new() -> Self {
        Self::default()
    }

    /// Empty columns pre-sized for `reps` repetitions on `num_workers`
    /// workers — the batch runner calls this once per batch so appends
    /// never reallocate.
    pub fn with_capacity(reps: usize, num_workers: usize) -> Self {
        let mut c = Self::new();
        c.reserve(reps, num_workers);
        c
    }

    /// Grow every column's capacity for `reps` further repetitions.
    pub fn reserve(&mut self, reps: usize, num_workers: usize) {
        self.makespan.reserve(reps);
        self.num_chunks.reserve(reps);
        self.dispatched_work.reserve(reps);
        self.returned_work.reserve(reps);
        self.completed_work.reserve(reps);
        self.lost_work.reserve(reps);
        self.lost_chunks.reserve(reps);
        self.redispatched_work.reserve(reps);
        self.outstanding_work.reserve(reps);
        self.events.reserve(reps);
        self.per_worker_work.reserve(reps * num_workers);
        self.per_worker_busy.reserve(reps * num_workers);
        self.lost_offsets.reserve(reps + 1);
        self.metrics.reserve(reps);
        self.trace.reserve(reps);
        self.audit.reserve(reps);
    }

    /// Forget every repetition but keep the allocations, ready for the
    /// next batch.
    pub fn clear(&mut self) {
        self.num_workers = 0;
        self.makespan.clear();
        self.num_chunks.clear();
        self.dispatched_work.clear();
        self.returned_work.clear();
        self.completed_work.clear();
        self.lost_work.clear();
        self.lost_chunks.clear();
        self.redispatched_work.clear();
        self.outstanding_work.clear();
        self.events.clear();
        self.per_worker_work.clear();
        self.per_worker_busy.clear();
        self.lost_ranges.clear();
        self.lost_offsets.clear();
        self.metrics.clear();
        self.trace.clear();
        self.audit.clear();
    }

    /// Number of repetitions stored.
    pub fn len(&self) -> usize {
        self.makespan.len()
    }

    /// True when no repetition has landed yet.
    pub fn is_empty(&self) -> bool {
        self.makespan.is_empty()
    }

    /// Mean makespan over the stored repetitions (0 when empty). Sums in
    /// insertion order, so it is bit-identical to the sequential
    /// accumulate-and-divide loop it replaces.
    pub fn mean_makespan(&self) -> f64 {
        if self.makespan.is_empty() {
            return 0.0;
        }
        self.makespan.iter().sum::<f64>() / self.makespan.len() as f64
    }

    /// Total engine events over the stored repetitions.
    pub fn total_events(&self) -> u64 {
        self.events.iter().sum()
    }

    /// Per-worker completed work of repetition `rep`.
    pub fn per_worker_work_of(&self, rep: usize) -> &[f64] {
        &self.per_worker_work[rep * self.num_workers..(rep + 1) * self.num_workers]
    }

    /// Per-worker busy seconds of repetition `rep`.
    pub fn per_worker_busy_of(&self, rep: usize) -> &[f64] {
        &self.per_worker_busy[rep * self.num_workers..(rep + 1) * self.num_workers]
    }

    /// Lost unit ranges of repetition `rep`.
    pub fn lost_ranges_of(&self, rep: usize) -> &[(f64, f64)] {
        &self.lost_ranges[self.lost_offsets[rep]..self.lost_offsets[rep + 1]]
    }

    /// Work-conservation residual of repetition `rep` (see
    /// [`crate::SimResult::conservation_residual`]).
    pub fn conservation_residual(&self, rep: usize) -> f64 {
        self.dispatched_work[rep]
            - (self.completed_work[rep] + self.lost_work[rep] + self.outstanding_work[rep])
    }

    /// Mean worker utilization of repetition `rep` (see
    /// [`crate::SimResult::mean_utilization`]).
    pub fn mean_utilization(&self, rep: usize) -> f64 {
        if self.makespan[rep] <= 0.0 || self.num_workers == 0 {
            return 0.0;
        }
        let total: f64 = self.per_worker_busy_of(rep).iter().sum();
        total / (self.makespan[rep] * self.num_workers as f64)
    }
}
