//! Trace-driven workload cost profiles.
//!
//! The paper's error model abstracts data-dependent execution times into a
//! ratio distribution; its conclusion (§6) plans to "use traces from real
//! applications" instead. A [`CostProfile`] is exactly that: the per-unit
//! computation costs of a concrete workload (e.g. the pixel-block costs of
//! an image, the sequence lengths of a dictionary), normalized to mean 1.
//!
//! The simulation engine carves the workload into chunks *in dispatch
//! order*; a chunk covering units `[a, b)` takes
//! `predicted · relative_cost(a, b)` to compute (optionally still perturbed
//! by a ratio distribution on top, modelling platform noise over and above
//! the data-dependence). Prefix sums make range queries O(1) with linear
//! interpolation at fractional unit boundaries — the workload is
//! continuously divisible, per the divisible-load model.

/// Per-unit cost profile with O(1) range-cost queries.
#[derive(Debug, Clone, PartialEq)]
pub struct CostProfile {
    /// `prefix[i]` = total normalized cost of units `[0, i)`;
    /// `prefix.len() == units + 1`.
    prefix: Vec<f64>,
}

impl CostProfile {
    /// Build a profile from raw per-unit costs (any positive scale); the
    /// costs are normalized so the mean unit cost is exactly 1, which keeps
    /// the platform's `S` (units/second) calibration meaningful.
    ///
    /// # Panics
    ///
    /// Panics if `costs` is empty or contains a non-finite or negative
    /// value, or if all costs are zero.
    pub fn from_unit_costs(costs: &[f64]) -> Self {
        assert!(!costs.is_empty(), "profile needs at least one unit");
        let total: f64 = costs
            .iter()
            .map(|&c| {
                assert!(c.is_finite() && c >= 0.0, "invalid unit cost {c}");
                c
            })
            .sum();
        assert!(total > 0.0, "all unit costs are zero");
        let scale = costs.len() as f64 / total;
        let mut prefix = Vec::with_capacity(costs.len() + 1);
        let mut acc = 0.0;
        prefix.push(0.0);
        for &c in costs {
            acc += c * scale;
            prefix.push(acc);
        }
        CostProfile { prefix }
    }

    /// Number of workload units covered by the profile.
    pub fn total_units(&self) -> f64 {
        (self.prefix.len() - 1) as f64
    }

    /// Total normalized cost of the continuous unit range `[start, end)`,
    /// linearly interpolating inside units. Ranges beyond the profile's end
    /// are costed at the mean rate (1 per unit).
    pub fn range_cost(&self, start: f64, end: f64) -> f64 {
        if end <= start {
            return 0.0;
        }
        self.cumulative(end) - self.cumulative(start)
    }

    /// Mean cost per unit over `[start, end)` — the factor by which this
    /// range is more (> 1) or less (< 1) expensive than the workload
    /// average.
    pub fn relative_cost(&self, start: f64, end: f64) -> f64 {
        if end <= start {
            return 1.0;
        }
        self.range_cost(start, end) / (end - start)
    }

    /// Interpolated prefix cost of `[0, x)`.
    fn cumulative(&self, x: f64) -> f64 {
        let units = self.total_units();
        if x <= 0.0 {
            return 0.0;
        }
        if x >= units {
            // Extrapolate past the end at the mean rate.
            return self.prefix[self.prefix.len() - 1] + (x - units);
        }
        let i = x.floor() as usize;
        let frac = x - i as f64;
        self.prefix[i] + (self.prefix[i + 1] - self.prefix[i]) * frac
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_profile_is_identity() {
        let p = CostProfile::from_unit_costs(&[3.0, 3.0, 3.0, 3.0]);
        assert_eq!(p.total_units(), 4.0);
        assert!((p.range_cost(0.0, 4.0) - 4.0).abs() < 1e-12);
        assert!((p.relative_cost(1.0, 3.0) - 1.0).abs() < 1e-12);
        assert!((p.relative_cost(0.5, 1.5) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn normalization_to_mean_one() {
        let p = CostProfile::from_unit_costs(&[1.0, 2.0, 3.0]);
        assert!((p.range_cost(0.0, 3.0) - 3.0).abs() < 1e-12);
        // Unit 2 costs 3 of the raw total 6 → normalized 1.5 per unit.
        assert!((p.relative_cost(2.0, 3.0) - 1.5).abs() < 1e-12);
        assert!((p.relative_cost(0.0, 1.0) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn fractional_interpolation() {
        let p = CostProfile::from_unit_costs(&[1.0, 3.0]);
        // Normalized costs: 0.5 and 1.5 per unit.
        assert!((p.range_cost(0.0, 0.5) - 0.25).abs() < 1e-12);
        assert!((p.range_cost(0.5, 1.5) - (0.25 + 0.75)).abs() < 1e-12);
        assert!((p.range_cost(1.5, 2.0) - 0.75).abs() < 1e-12);
    }

    #[test]
    fn extrapolates_past_end_at_mean_rate() {
        let p = CostProfile::from_unit_costs(&[2.0, 2.0]);
        assert!((p.range_cost(1.0, 3.0) - 2.0).abs() < 1e-12);
        assert!((p.relative_cost(2.0, 5.0) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn degenerate_ranges() {
        let p = CostProfile::from_unit_costs(&[1.0, 2.0]);
        assert_eq!(p.range_cost(1.0, 1.0), 0.0);
        assert_eq!(p.range_cost(2.0, 1.0), 0.0);
        assert_eq!(p.relative_cost(1.0, 1.0), 1.0);
    }

    #[test]
    fn zero_cost_units_allowed() {
        let p = CostProfile::from_unit_costs(&[0.0, 2.0]);
        assert!((p.range_cost(0.0, 1.0) - 0.0).abs() < 1e-12);
        assert!((p.range_cost(1.0, 2.0) - 2.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "at least one unit")]
    fn rejects_empty() {
        let _ = CostProfile::from_unit_costs(&[]);
    }

    #[test]
    #[should_panic(expected = "invalid unit cost")]
    fn rejects_negative() {
        let _ = CostProfile::from_unit_costs(&[1.0, -1.0]);
    }

    #[test]
    #[should_panic(expected = "all unit costs are zero")]
    fn rejects_all_zero() {
        let _ = CostProfile::from_unit_costs(&[0.0, 0.0]);
    }
}
