//! Fault injection: worker crashes, recoveries, and transient link failures.
//!
//! The RUMR paper evaluates robustness against *performance-prediction
//! errors* only; real platforms also lose resources outright. This module
//! adds a failure model on top of the §3.1 platform:
//!
//! * **Crash-stop / crash-recovery workers** — a worker goes down at some
//!   time, instantly losing its queued and in-progress chunks; with a
//!   recovery time it later comes back up with an empty queue (its memory
//!   is wiped — chunks must be re-sent).
//! * **Transient link failures** — a link drop destroys every chunk
//!   currently in transit to a worker (setup, data, or fly phase) without
//!   taking the worker itself down.
//!
//! Fault times come either from a hand-written deterministic [`FaultPlan`]
//! (reproducible unit tests, examples) or from seeded Poisson processes
//! ([`PoissonFaults`]) for statistical sweeps. Either way the whole fault
//! sequence is materialized up front, so a simulation remains a pure
//! function of (platform, scheduler, error seed, fault model).
//!
//! What a fault does to in-flight work is defined by the engine (see
//! `docs/PLATFORM.md`, "Fault model"); this module only decides *when*
//! faults happen and *to whom*.

use rand::{rngs::StdRng, Rng, SeedableRng};

/// What happens to a worker at a fault instant.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultAction {
    /// The worker crashes: queued and computing chunks are lost, transfers
    /// to it are aborted, and it accepts no work until a matching
    /// [`FaultAction::Up`].
    Down,
    /// The worker comes back up with an empty queue.
    Up,
    /// The link to the worker drops momentarily, destroying every chunk
    /// currently in transit to it. The worker itself stays up.
    LinkDrop,
}

/// One scheduled fault.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultEvent {
    /// Simulation time at which the fault strikes (s).
    pub time: f64,
    /// Affected worker (0-based).
    pub worker: usize,
    /// What happens.
    pub action: FaultAction,
}

/// A deterministic, hand-written fault schedule.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct FaultPlan {
    events: Vec<FaultEvent>,
}

impl FaultPlan {
    /// An empty plan (no faults).
    pub fn new() -> Self {
        FaultPlan::default()
    }

    /// Add a fault; events may be added in any order.
    ///
    /// # Panics
    ///
    /// Panics on a non-finite or negative time.
    pub fn add(mut self, time: f64, worker: usize, action: FaultAction) -> Self {
        assert!(
            time.is_finite() && time >= 0.0,
            "fault time must be finite and non-negative"
        );
        self.events.push(FaultEvent {
            time,
            worker,
            action,
        });
        self
    }

    /// Crash `worker` at `time` and never recover it (crash-stop).
    pub fn crash(self, time: f64, worker: usize) -> Self {
        self.add(time, worker, FaultAction::Down)
    }

    /// Crash `worker` at `time` and bring it back up at `time + downtime`.
    pub fn crash_recover(self, time: f64, worker: usize, downtime: f64) -> Self {
        assert!(downtime > 0.0, "downtime must be positive");
        self.add(time, worker, FaultAction::Down)
            .add(time + downtime, worker, FaultAction::Up)
    }

    /// Drop the link to `worker` at `time`.
    pub fn link_drop(self, time: f64, worker: usize) -> Self {
        self.add(time, worker, FaultAction::LinkDrop)
    }

    /// The scheduled events (unsorted, as added).
    pub fn events(&self) -> &[FaultEvent] {
        &self.events
    }
}

/// Seeded stochastic fault model: per-worker Poisson failure processes.
///
/// Each worker independently alternates up/down periods: time-to-failure is
/// exponential with mean `mttf`, and (when `mttr` is set) time-to-repair is
/// exponential with mean `mttr`. `mttr = None` makes every failure
/// crash-stop. Optionally, an independent Poisson process of transient link
/// drops with mean inter-arrival `link_mtbf` runs per worker. Events are
/// generated up to `horizon` at injector construction, deterministically
/// from `seed`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PoissonFaults {
    /// Mean time to failure per worker (s). Must be finite and positive.
    pub mttf: f64,
    /// Mean time to repair (s); `None` = crash-stop (no recovery).
    pub mttr: Option<f64>,
    /// Mean time between transient link drops per worker (s); `None`
    /// disables link faults.
    pub link_mtbf: Option<f64>,
    /// Generation horizon (s): no fault is generated past this time. Pick
    /// comfortably above the expected makespan.
    pub horizon: f64,
    /// RNG seed for the fault processes (independent of the error seed).
    pub seed: u64,
}

impl PoissonFaults {
    /// Crash-stop failures with the given mean time to failure.
    pub fn crash_stop(mttf: f64, horizon: f64, seed: u64) -> Self {
        PoissonFaults {
            mttf,
            mttr: None,
            link_mtbf: None,
            horizon,
            seed,
        }
    }

    /// Crash-recovery failures.
    pub fn crash_recovery(mttf: f64, mttr: f64, horizon: f64, seed: u64) -> Self {
        PoissonFaults {
            mttf,
            mttr: Some(mttr),
            link_mtbf: None,
            horizon,
            seed,
        }
    }

    /// Materialize the fault sequence for `num_workers` workers.
    fn generate(&self, num_workers: usize) -> Vec<FaultEvent> {
        assert!(
            self.mttf.is_finite() && self.mttf > 0.0,
            "mttf must be finite and positive"
        );
        assert!(
            self.horizon.is_finite() && self.horizon >= 0.0,
            "horizon must be finite and non-negative"
        );
        if let Some(mttr) = self.mttr {
            assert!(
                mttr.is_finite() && mttr > 0.0,
                "mttr must be finite and positive"
            );
        }
        if let Some(mtbf) = self.link_mtbf {
            assert!(
                mtbf.is_finite() && mtbf > 0.0,
                "link_mtbf must be finite and positive"
            );
        }
        let mut events = Vec::new();
        for w in 0..num_workers {
            // One independent stream per (worker, process); the SplitMix-style
            // mixing in `seed_from_u64` decorrelates the consecutive seeds.
            let mut rng =
                StdRng::seed_from_u64(self.seed ^ (w as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15));
            let mut t = 0.0;
            loop {
                t += exponential(&mut rng, self.mttf);
                if t > self.horizon {
                    break;
                }
                events.push(FaultEvent {
                    time: t,
                    worker: w,
                    action: FaultAction::Down,
                });
                match self.mttr {
                    None => break, // crash-stop: down forever
                    Some(mttr) => {
                        t += exponential(&mut rng, mttr);
                        if t > self.horizon {
                            break;
                        }
                        events.push(FaultEvent {
                            time: t,
                            worker: w,
                            action: FaultAction::Up,
                        });
                    }
                }
            }
            if let Some(mtbf) = self.link_mtbf {
                let mut rng = StdRng::seed_from_u64(
                    self.seed ^ (w as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ 0x5D15_D00D,
                );
                let mut t = 0.0;
                loop {
                    t += exponential(&mut rng, mtbf);
                    if t > self.horizon {
                        break;
                    }
                    events.push(FaultEvent {
                        time: t,
                        worker: w,
                        action: FaultAction::LinkDrop,
                    });
                }
            }
        }
        events
    }
}

/// Exponential variate with the given mean (inverse-CDF method).
fn exponential<R: Rng + ?Sized>(rng: &mut R, mean: f64) -> f64 {
    let u: f64 = rng.gen(); // [0, 1)
    -mean * (1.0 - u).ln()
}

/// The fault model of a simulation run.
#[derive(Debug, Clone, Default, PartialEq)]
pub enum FaultModel {
    /// No faults — the paper's reliable platform. The engine's behavior is
    /// bit-identical to a build without fault support.
    #[default]
    None,
    /// A deterministic, hand-written schedule.
    Plan(FaultPlan),
    /// Seeded per-worker Poisson failure processes.
    Poisson(PoissonFaults),
}

impl FaultModel {
    /// True when the model can produce at least the *possibility* of a
    /// fault (the engine enables its fault paths on this).
    pub fn is_active(&self) -> bool {
        !matches!(self, FaultModel::None)
    }
}

/// Iterator over a run's fault sequence, in time order (engine use).
///
/// The sequence is materialized and sorted once at construction; `pop`
/// only advances a cursor, and [`FaultInjector::rewind`] restarts it.
/// Repetition loops (`Engine::reset`) therefore replay the identical
/// sequence without re-generating or re-sorting it — for Poisson models
/// that regeneration used to be a measurable share of every faulty
/// repetition.
#[derive(Debug, Clone)]
pub struct FaultInjector {
    /// The full materialized sequence, chronological.
    events: Vec<FaultEvent>,
    /// Index of the next event to pop.
    next: usize,
}

impl FaultInjector {
    /// Materialize `model` for a platform of `num_workers` workers.
    ///
    /// Events are sorted by time (ties: worker index, then `Down` before
    /// `Up` before `LinkDrop` as added), and events targeting workers
    /// outside `0..num_workers` are dropped.
    pub fn new(model: &FaultModel, num_workers: usize) -> Self {
        let mut events = match model {
            FaultModel::None => Vec::new(),
            FaultModel::Plan(plan) => plan.events().to_vec(),
            FaultModel::Poisson(p) => p.generate(num_workers),
        };
        events.retain(|e| e.worker < num_workers);
        // Stable sort keeps insertion order among exact ties.
        events.sort_by(|a, b| a.time.partial_cmp(&b.time).expect("fault times are finite"));
        FaultInjector { events, next: 0 }
    }

    /// Time of the next fault, if any.
    pub fn peek_time(&self) -> Option<f64> {
        self.events.get(self.next).map(|e| e.time)
    }

    /// Return the next fault and advance the cursor.
    pub fn pop(&mut self) -> Option<FaultEvent> {
        let e = self.events.get(self.next).copied();
        self.next += usize::from(e.is_some());
        e
    }

    /// True when no faults remain.
    pub fn is_empty(&self) -> bool {
        self.next >= self.events.len()
    }

    /// Restart the sequence from the beginning (engine reuse across
    /// repetitions).
    pub fn rewind(&mut self) {
        self.next = 0;
    }

    /// The not-yet-popped tail of the sequence, chronological.
    pub fn remaining(&self) -> &[FaultEvent] {
        &self.events[self.next..]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plan_builders() {
        let plan = FaultPlan::new()
            .crash(5.0, 1)
            .crash_recover(2.0, 0, 3.0)
            .link_drop(4.0, 2);
        let mut inj = FaultInjector::new(&FaultModel::Plan(plan), 3);
        let order: Vec<(f64, usize, FaultAction)> = std::iter::from_fn(|| inj.pop())
            .map(|e| (e.time, e.worker, e.action))
            .collect();
        assert_eq!(
            order,
            vec![
                (2.0, 0, FaultAction::Down),
                (4.0, 2, FaultAction::LinkDrop),
                // Tie at t=5: stable sort keeps insertion order, and the
                // crash of worker 1 was added before worker 0's recovery.
                (5.0, 1, FaultAction::Down),
                (5.0, 0, FaultAction::Up),
            ]
        );
    }

    #[test]
    fn plan_tie_keeps_insertion_order() {
        let plan = FaultPlan::new().crash(1.0, 5).crash(1.0, 2);
        let mut inj = FaultInjector::new(&FaultModel::Plan(plan), 8);
        assert_eq!(inj.pop().unwrap().worker, 5);
        assert_eq!(inj.pop().unwrap().worker, 2);
    }

    #[test]
    fn out_of_range_workers_dropped() {
        let plan = FaultPlan::new().crash(1.0, 9);
        let inj = FaultInjector::new(&FaultModel::Plan(plan), 3);
        assert!(inj.is_empty());
    }

    #[test]
    fn none_model_is_empty() {
        assert!(FaultInjector::new(&FaultModel::None, 10).is_empty());
        assert!(!FaultModel::None.is_active());
        assert!(FaultModel::Plan(FaultPlan::new()).is_active());
    }

    #[test]
    fn poisson_is_deterministic_and_sorted() {
        let p = PoissonFaults::crash_recovery(50.0, 10.0, 500.0, 7);
        let a = FaultInjector::new(&FaultModel::Poisson(p), 6);
        let b = FaultInjector::new(&FaultModel::Poisson(p), 6);
        assert_eq!(a.remaining(), b.remaining());
        assert!(!a.is_empty(), "mttf 50 over horizon 500 should fault");
        let times: Vec<f64> = a.remaining().iter().map(|e| e.time).collect();
        assert!(times.windows(2).all(|w| w[0] <= w[1]), "sorted by time");
        assert!(times.iter().all(|&t| t <= 500.0));

        let c = FaultInjector::new(
            &FaultModel::Poisson(PoissonFaults::crash_recovery(50.0, 10.0, 500.0, 8)),
            6,
        );
        assert_ne!(a.remaining(), c.remaining(), "seed must matter");
    }

    #[test]
    fn poisson_crash_stop_has_one_down_per_worker() {
        let p = PoissonFaults::crash_stop(10.0, 10_000.0, 3);
        let inj = FaultInjector::new(&FaultModel::Poisson(p), 4);
        for w in 0..4 {
            let downs = inj
                .remaining()
                .iter()
                .filter(|e| e.worker == w && e.action == FaultAction::Down)
                .count();
            assert_eq!(downs, 1, "crash-stop: exactly one Down for worker {w}");
        }
        assert!(inj
            .remaining()
            .iter()
            .all(|e| e.action == FaultAction::Down));
    }

    #[test]
    fn poisson_alternates_down_up() {
        let p = PoissonFaults::crash_recovery(20.0, 5.0, 2_000.0, 11);
        let mut inj = FaultInjector::new(&FaultModel::Poisson(p), 1);
        let mut down = false;
        while let Some(e) = inj.pop() {
            match e.action {
                FaultAction::Down => {
                    assert!(!down, "Down while already down");
                    down = true;
                }
                FaultAction::Up => {
                    assert!(down, "Up while already up");
                    down = false;
                }
                FaultAction::LinkDrop => unreachable!("no link faults configured"),
            }
        }
    }

    #[test]
    fn poisson_link_drops_generated() {
        let p = PoissonFaults {
            mttf: 1e12, // effectively never crash
            mttr: None,
            link_mtbf: Some(30.0),
            horizon: 1_000.0,
            seed: 5,
        };
        let inj = FaultInjector::new(&FaultModel::Poisson(p), 3);
        assert!(inj
            .remaining()
            .iter()
            .any(|e| e.action == FaultAction::LinkDrop));
        assert!(inj
            .remaining()
            .iter()
            .all(|e| e.action == FaultAction::LinkDrop));
    }

    #[test]
    #[should_panic(expected = "fault time")]
    fn plan_rejects_bad_time() {
        let _ = FaultPlan::new().crash(f64::NAN, 0);
    }
}
