//! Declared-vs-realized worker speeds (speed-robust scheduling extension).
//!
//! The RUMR paper perturbs *operation durations* with i.i.d. noise but
//! still trusts the platform description: planners and engine agree on
//! every `S_i` and `B_i`. Speed-robust scheduling (Minařík & Sgall 2024)
//! studies the harder regime where a schedule is committed against
//! *declared* rates and the *realized* rates are revealed only at
//! execution time. This module implements that revelation step:
//!
//! * a [`SpeedModel`] describes how realized rates derive from declared
//!   ones — identity ([`SpeedModel::Declared`]), i.i.d. multiplicative
//!   noise ([`SpeedModel::Stochastic`]), a random subset of workers
//!   under-delivering ([`SpeedModel::Sandbagged`]), or a deterministic
//!   worst-case-within-budget adversary ([`SpeedModel::Adversarial`]);
//! * [`SpeedModel::realize`] materializes per-worker compute and link
//!   factors, deterministically from the model's own seed (one fixed
//!   realization per configuration, like [`crate::PoissonFaults`] — reps
//!   vary the *error* seed, not the revealed machine);
//! * the engine multiplies realized factors into its effective compute
//!   and transfer rates at dispatch time, while schedulers keep planning
//!   on the declared [`crate::Platform`].
//!
//! With [`SpeedModel::Declared`] (the default) every path in the engine is
//! dormant: no RNG draws, no event reordering — results stay bit-identical
//! to a build without this module (the pinned golden traces enforce it).

use rand::{rngs::StdRng, Rng, SeedableRng};

use crate::platform::{Platform, PlatformError, WorkerSpec};

/// Floor applied to every realized factor so rates stay strictly positive
/// (a zero rate would stall the simulation rather than model a slow
/// machine).
pub const MIN_FACTOR: f64 = 1e-3;

/// How realized worker rates derive from the declared [`Platform`].
///
/// Factors are *multiplicative on rates*: a compute factor `f` turns a
/// declared speed `S_i` into a realized `f · S_i` (so `f < 1` means the
/// machine under-delivers), and likewise for link bandwidth. Latencies are
/// unchanged — they are contractual protocol costs, not rates.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub enum SpeedModel {
    /// Realized == declared (the paper's trusting regime; default). The
    /// engine applies no factors, draws no randomness, and produces
    /// bit-identical results to a build without the speed subsystem.
    #[default]
    Declared,
    /// Every worker's compute and link rates are independently scaled by
    /// a uniform factor in `[1 − spread, 1 + spread]`, drawn once per
    /// worker from `seed` (SplitMix-decorrelated per worker, like the
    /// fault process). `spread` must lie in `[0, 1)`.
    Stochastic {
        /// Half-width of the uniform factor interval.
        spread: f64,
        /// Seed of the revelation (independent of run/error seeds).
        seed: u64,
    },
    /// A seeded random subset of `ceil(fraction · N)` workers delivers
    /// only `1/slowdown` of its declared compute rate ("sandbagging":
    /// machines that overstated their benchmark). Links are honest.
    Sandbagged {
        /// Fraction of workers that under-deliver, in `[0, 1]`.
        fraction: f64,
        /// Declared-to-realized compute ratio of a sandbagger (≥ 1).
        slowdown: f64,
        /// Seed selecting which workers sandbag.
        seed: u64,
    },
    /// Deterministic worst case within a budget: the `ceil(fraction · N)`
    /// workers with the *highest declared speed* (ties broken toward the
    /// lower index) deliver `1/slowdown` of both their declared compute
    /// and link rates. Hitting the fastest machines maximizes the damage
    /// a fixed `(fraction, slowdown)` budget can do to a plan that loaded
    /// them proportionally to declared speed. No randomness.
    Adversarial {
        /// Fraction of workers the adversary may degrade, in `[0, 1]`.
        fraction: f64,
        /// Degradation applied to each chosen worker (≥ 1).
        slowdown: f64,
    },
}

impl SpeedModel {
    /// True when realized rates can differ from declared ones. Gates every
    /// engine change, exactly like [`crate::FaultModel::is_active`].
    #[inline]
    pub fn is_active(&self) -> bool {
        !matches!(self, SpeedModel::Declared)
    }

    /// Panic with a descriptive message on out-of-range parameters.
    /// Called by [`crate::Engine::new`] so a bad model fails loudly at
    /// construction, mirroring the fault-model asserts.
    pub fn validate(&self) {
        match *self {
            SpeedModel::Declared => {}
            SpeedModel::Stochastic { spread, .. } => {
                assert!(
                    spread.is_finite() && (0.0..1.0).contains(&spread),
                    "stochastic speed spread must lie in [0, 1), got {spread}"
                );
            }
            SpeedModel::Sandbagged {
                fraction, slowdown, ..
            }
            | SpeedModel::Adversarial { fraction, slowdown } => {
                assert!(
                    fraction.is_finite() && (0.0..=1.0).contains(&fraction),
                    "speed-model fraction must lie in [0, 1], got {fraction}"
                );
                assert!(
                    slowdown.is_finite() && slowdown >= 1.0,
                    "speed-model slowdown must be >= 1, got {slowdown}"
                );
            }
        }
    }

    /// Materialize the per-worker realized factors for `workers`.
    ///
    /// Deterministic: the same model over the same platform always reveals
    /// the same machine. Returns `None` for [`SpeedModel::Declared`] so
    /// the engine can gate on `Option` exactly like the fault injector.
    pub fn realize(&self, workers: &[WorkerSpec]) -> Option<RealizedSpeeds> {
        self.validate();
        let n = workers.len();
        match *self {
            SpeedModel::Declared => None,
            SpeedModel::Stochastic { spread, seed } => {
                let mut compute = Vec::with_capacity(n);
                let mut link = Vec::with_capacity(n);
                for w in 0..n {
                    // One independent stream per worker; SplitMix-style
                    // mixing decorrelates consecutive seeds (same idiom as
                    // the Poisson fault process).
                    let mut rng = StdRng::seed_from_u64(
                        seed ^ (w as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15),
                    );
                    let mut draw = || {
                        let u: f64 = rng.gen();
                        (1.0 - spread + 2.0 * spread * u).max(MIN_FACTOR)
                    };
                    compute.push(draw());
                    link.push(draw());
                }
                Some(RealizedSpeeds { compute, link })
            }
            SpeedModel::Sandbagged {
                fraction,
                slowdown,
                seed,
            } => {
                let mut compute = vec![1.0; n];
                let link = vec![1.0; n];
                let k = budget_count(fraction, n);
                // Partial Fisher–Yates: the first k slots of a seeded
                // shuffle are a uniform k-subset.
                let mut order: Vec<usize> = (0..n).collect();
                let mut rng = StdRng::seed_from_u64(seed);
                for i in 0..k.min(n.saturating_sub(1)) {
                    let j = rng.gen_range(i..n);
                    order.swap(i, j);
                }
                for &w in order.iter().take(k) {
                    compute[w] = (1.0 / slowdown).max(MIN_FACTOR);
                }
                Some(RealizedSpeeds { compute, link })
            }
            SpeedModel::Adversarial { fraction, slowdown } => {
                let mut compute = vec![1.0; n];
                let mut link = vec![1.0; n];
                let k = budget_count(fraction, n);
                let mut by_speed: Vec<usize> = (0..n).collect();
                // Highest declared speed first; ties toward the lower
                // index (sort_by is stable).
                by_speed.sort_by(|&a, &b| {
                    workers[b]
                        .speed
                        .partial_cmp(&workers[a].speed)
                        .expect("platform speeds are finite")
                });
                let factor = (1.0 / slowdown).max(MIN_FACTOR);
                for &w in by_speed.iter().take(k) {
                    compute[w] = factor;
                    link[w] = factor;
                }
                Some(RealizedSpeeds { compute, link })
            }
        }
    }

    /// The platform a clairvoyant scheduler would plan on: declared specs
    /// with realized rates substituted in (latencies unchanged).
    ///
    /// # Errors
    ///
    /// Propagates [`PlatformError`] from re-validation; unreachable for
    /// factors ≥ [`MIN_FACTOR`] over a valid platform.
    pub fn realized_platform(&self, platform: &Platform) -> Result<Platform, PlatformError> {
        match self.realize(platform.workers()) {
            None => Ok(platform.clone()),
            Some(realized) => {
                let workers = platform
                    .workers()
                    .iter()
                    .enumerate()
                    .map(|(w, spec)| WorkerSpec {
                        speed: spec.speed * realized.compute[w],
                        bandwidth: spec.bandwidth * realized.link[w],
                        ..*spec
                    })
                    .collect();
                Platform::new(workers)
            }
        }
    }

    /// Stable label for tables and reports.
    pub fn label(&self) -> String {
        match *self {
            SpeedModel::Declared => "declared".into(),
            SpeedModel::Stochastic { spread, seed } => {
                format!("stochastic(spread={spread},seed={seed})")
            }
            SpeedModel::Sandbagged {
                fraction,
                slowdown,
                seed,
            } => format!("sandbag(fraction={fraction},slowdown={slowdown},seed={seed})"),
            SpeedModel::Adversarial { fraction, slowdown } => {
                format!("adversarial(fraction={fraction},slowdown={slowdown})")
            }
        }
    }

    /// Parse a CLI spec:
    ///
    /// * `declared` (or `identity`)
    /// * `stochastic:SPREAD[:SEED]`
    /// * `sandbag:FRACTION:SLOWDOWN[:SEED]`
    /// * `adversarial:FRACTION:SLOWDOWN`
    ///
    /// Omitted seeds default to 0. Returns `None` on malformed input.
    pub fn parse(s: &str) -> Option<SpeedModel> {
        let mut parts = s.split(':');
        let head = parts.next()?;
        let nums: Vec<&str> = parts.collect();
        let f = |i: usize| nums.get(i).and_then(|t| t.parse::<f64>().ok());
        let u = |i: usize| nums.get(i).and_then(|t| t.parse::<u64>().ok());
        let model = match head {
            "declared" | "identity" if nums.is_empty() => SpeedModel::Declared,
            "stochastic" if nums.len() <= 2 => SpeedModel::Stochastic {
                spread: f(0)?,
                seed: if nums.len() > 1 { u(1)? } else { 0 },
            },
            "sandbag" if (2..=3).contains(&nums.len()) => SpeedModel::Sandbagged {
                fraction: f(0)?,
                slowdown: f(1)?,
                seed: if nums.len() > 2 { u(2)? } else { 0 },
            },
            "adversarial" if nums.len() == 2 => SpeedModel::Adversarial {
                fraction: f(0)?,
                slowdown: f(1)?,
            },
            _ => return None,
        };
        // Reject out-of-range parameters here (Option, not panic): CLI
        // input is untrusted.
        let ok = match model {
            SpeedModel::Declared => true,
            SpeedModel::Stochastic { spread, .. } => {
                spread.is_finite() && (0.0..1.0).contains(&spread)
            }
            SpeedModel::Sandbagged {
                fraction, slowdown, ..
            }
            | SpeedModel::Adversarial { fraction, slowdown } => {
                fraction.is_finite()
                    && (0.0..=1.0).contains(&fraction)
                    && slowdown.is_finite()
                    && slowdown >= 1.0
            }
        };
        ok.then_some(model)
    }
}

/// How many workers a `fraction` budget covers: `ceil(fraction · n)`,
/// clamped to `n`.
fn budget_count(fraction: f64, n: usize) -> usize {
    ((fraction * n as f64).ceil() as usize).min(n)
}

/// The materialized revelation: per-worker multiplicative factors on the
/// declared compute and link rates.
#[derive(Debug, Clone, PartialEq)]
pub struct RealizedSpeeds {
    /// Realized/declared compute-rate ratio per worker.
    pub compute: Vec<f64>,
    /// Realized/declared link-rate ratio per worker.
    pub link: Vec<f64>,
}

impl RealizedSpeeds {
    /// `(compute, link)` factor pair of one worker.
    #[inline]
    pub fn factors(&self, worker: usize) -> (f64, f64) {
        (self.compute[worker], self.link[worker])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::platform::HomogeneousParams;

    fn specs(n: usize) -> Vec<WorkerSpec> {
        (0..n)
            .map(|i| WorkerSpec {
                speed: 1.0 + i as f64,
                bandwidth: 10.0,
                comp_latency: 0.1,
                net_latency: 0.1,
                transfer_latency: 0.0,
            })
            .collect()
    }

    #[test]
    fn declared_is_inactive_and_realizes_none() {
        let m = SpeedModel::Declared;
        assert!(!m.is_active());
        assert!(m.realize(&specs(4)).is_none());
    }

    #[test]
    fn stochastic_is_deterministic_and_bounded() {
        let m = SpeedModel::Stochastic {
            spread: 0.4,
            seed: 7,
        };
        let a = m.realize(&specs(8)).unwrap();
        let b = m.realize(&specs(8)).unwrap();
        assert_eq!(a, b, "same seed must reveal the same machine");
        for w in 0..8 {
            let (c, l) = a.factors(w);
            assert!((0.6 - 1e-12..=1.4 + 1e-12).contains(&c), "compute {c}");
            assert!((0.6 - 1e-12..=1.4 + 1e-12).contains(&l), "link {l}");
        }
        let other = SpeedModel::Stochastic {
            spread: 0.4,
            seed: 8,
        }
        .realize(&specs(8))
        .unwrap();
        assert_ne!(a, other, "different seeds must differ");
    }

    #[test]
    fn sandbag_hits_exactly_the_budgeted_count() {
        let m = SpeedModel::Sandbagged {
            fraction: 0.3,
            slowdown: 2.0,
            seed: 3,
        };
        let r = m.realize(&specs(10)).unwrap();
        let slowed = r.compute.iter().filter(|&&f| f < 1.0).count();
        assert_eq!(slowed, 3, "ceil(0.3 * 10)");
        assert!(r
            .compute
            .iter()
            .all(|&f| f == 1.0 || (f - 0.5).abs() < 1e-12));
        assert!(r.link.iter().all(|&f| f == 1.0), "sandbag links are honest");
        assert_eq!(r, m.realize(&specs(10)).unwrap());
    }

    #[test]
    fn adversary_targets_fastest_workers() {
        let m = SpeedModel::Adversarial {
            fraction: 0.25,
            slowdown: 4.0,
        };
        // specs(8): speeds 1..8, fastest are workers 7 and 6.
        let r = m.realize(&specs(8)).unwrap();
        for w in 0..8 {
            let expect = if w >= 6 { 0.25 } else { 1.0 };
            assert!((r.compute[w] - expect).abs() < 1e-12, "worker {w}");
            assert!((r.link[w] - expect).abs() < 1e-12, "worker {w}");
        }
    }

    #[test]
    fn adversary_ties_break_toward_lower_index() {
        let m = SpeedModel::Adversarial {
            fraction: 0.5,
            slowdown: 2.0,
        };
        let specs = vec![
            WorkerSpec {
                speed: 1.0,
                bandwidth: 5.0,
                comp_latency: 0.0,
                net_latency: 0.0,
                transfer_latency: 0.0,
            };
            4
        ];
        let r = m.realize(&specs).unwrap();
        assert_eq!(r.compute, vec![0.5, 0.5, 1.0, 1.0]);
    }

    #[test]
    fn realized_platform_scales_rates_only() {
        let platform = HomogeneousParams::table1(4, 1.5, 0.2, 0.3).build().unwrap();
        let m = SpeedModel::Adversarial {
            fraction: 0.5,
            slowdown: 2.0,
        };
        let realized = m.realized_platform(&platform).unwrap();
        assert_eq!(realized.num_workers(), 4);
        // Homogeneous speeds tie; workers 0 and 1 take the hit.
        assert!((realized.worker(0).speed - 0.5).abs() < 1e-12);
        assert!((realized.worker(0).bandwidth - 3.0).abs() < 1e-12);
        assert!((realized.worker(3).speed - 1.0).abs() < 1e-12);
        assert_eq!(realized.worker(0).comp_latency, 0.2);
        assert_eq!(realized.worker(0).net_latency, 0.3);
        // Identity model clones the platform.
        assert_eq!(
            SpeedModel::Declared.realized_platform(&platform).unwrap(),
            platform
        );
    }

    #[test]
    fn parse_round_trips_the_profiles() {
        assert_eq!(SpeedModel::parse("declared"), Some(SpeedModel::Declared));
        assert_eq!(SpeedModel::parse("identity"), Some(SpeedModel::Declared));
        assert_eq!(
            SpeedModel::parse("stochastic:0.3"),
            Some(SpeedModel::Stochastic {
                spread: 0.3,
                seed: 0
            })
        );
        assert_eq!(
            SpeedModel::parse("stochastic:0.3:42"),
            Some(SpeedModel::Stochastic {
                spread: 0.3,
                seed: 42
            })
        );
        assert_eq!(
            SpeedModel::parse("sandbag:0.25:2.0:9"),
            Some(SpeedModel::Sandbagged {
                fraction: 0.25,
                slowdown: 2.0,
                seed: 9
            })
        );
        assert_eq!(
            SpeedModel::parse("adversarial:0.25:2"),
            Some(SpeedModel::Adversarial {
                fraction: 0.25,
                slowdown: 2.0
            })
        );
        for bad in [
            "",
            "nope",
            "stochastic",
            "stochastic:1.5",
            "stochastic:nan",
            "sandbag:0.5",
            "sandbag:2.0:2.0",
            "adversarial:0.5:0.5",
            "adversarial:0.5:2:extra",
            "declared:1",
        ] {
            assert_eq!(SpeedModel::parse(bad), None, "{bad:?} must not parse");
        }
    }

    #[test]
    fn labels_are_stable() {
        assert_eq!(SpeedModel::Declared.label(), "declared");
        assert!(SpeedModel::Stochastic {
            spread: 0.2,
            seed: 1
        }
        .label()
        .contains("stochastic"));
    }

    #[test]
    fn factor_floor_holds() {
        let m = SpeedModel::Sandbagged {
            fraction: 1.0,
            slowdown: 1e9,
            seed: 0,
        };
        let r = m.realize(&specs(3)).unwrap();
        assert!(r.compute.iter().all(|&f| f >= MIN_FACTOR));
    }
}
