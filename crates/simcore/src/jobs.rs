//! Multi-load job sets: online arrivals of divisible loads.
//!
//! The RUMR paper schedules exactly one divisible load on a dedicated
//! platform. A scheduling *service* faces many: jobs arrive online, each
//! with a release time and a total size, and they contend for the shared
//! master interface. This module defines the arrival model — [`JobSpec`]
//! and [`JobSet`] with deterministic seeded generators (Poisson, bursty,
//! adversarial simultaneous release) — plus the per-job analytic lower
//! bounds every multi-load policy must dominate.
//!
//! The arbitration itself lives in the `dls-sched` crate
//! (`MultiLoadScheduler`); this module only describes *what* arrives and
//! *when*, keeping a multi-load run a pure function of
//! (platform, job set, policy, seed), exactly like the single-load path.

use rand::{rngs::StdRng, Rng, SeedableRng};

use crate::platform::Platform;

/// One divisible load in a multi-load run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct JobSpec {
    /// Simulation time at which the job becomes known to the scheduler.
    /// No chunk of the job may be dispatched earlier. Finite, `>= 0`.
    pub release: f64,
    /// Total workload units of the job. Finite, `> 0`.
    pub size: f64,
}

impl JobSpec {
    /// A job of `size` workload units released at time `release`.
    pub fn new(release: f64, size: f64) -> Self {
        JobSpec { release, size }
    }
}

/// Why a [`JobSet`] could not be constructed.
#[derive(Debug, Clone, PartialEq)]
pub enum JobSetError {
    /// The job list was empty.
    Empty,
    /// A job's release time was non-finite or negative.
    InvalidRelease {
        /// Index of the offending job.
        job: usize,
        /// The offending release time.
        release: f64,
    },
    /// A job's size was non-finite or non-positive.
    InvalidSize {
        /// Index of the offending job.
        job: usize,
        /// The offending size.
        size: f64,
    },
}

impl std::fmt::Display for JobSetError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            JobSetError::Empty => write!(f, "job set is empty"),
            JobSetError::InvalidRelease { job, release } => {
                write!(
                    f,
                    "job {job}: release time {release} must be finite and non-negative"
                )
            }
            JobSetError::InvalidSize { job, size } => {
                write!(f, "job {job}: size {size} must be finite and positive")
            }
        }
    }
}

impl std::error::Error for JobSetError {}

/// A validated, ordered collection of jobs for one multi-load run.
///
/// Job indices are stable: job `j` of the set is job `j` in every report,
/// metric, and audit finding downstream. FIFO-exclusive arbitration serves
/// jobs in set order, so generators emit jobs sorted by release time
/// (ties keep insertion order).
#[derive(Debug, Clone, PartialEq)]
pub struct JobSet {
    jobs: Vec<JobSpec>,
}

/// Mixing constant for per-stream seed decorrelation (SplitMix64 increment),
/// the same idiom `PoissonFaults` uses for per-worker streams.
const SEED_MIX: u64 = 0x9E37_79B9_7F4A_7C15;

/// Draw from Exp(mean) by inversion; uses `1 - u` so `u = 0` is safe.
fn exponential(rng: &mut StdRng, mean: f64) -> f64 {
    let u: f64 = rng.gen();
    -mean * (1.0 - u).ln()
}

impl JobSet {
    /// Validate and wrap an explicit job list.
    pub fn new(jobs: Vec<JobSpec>) -> Result<Self, JobSetError> {
        if jobs.is_empty() {
            return Err(JobSetError::Empty);
        }
        for (j, job) in jobs.iter().enumerate() {
            if !job.release.is_finite() || job.release < 0.0 {
                return Err(JobSetError::InvalidRelease {
                    job: j,
                    release: job.release,
                });
            }
            if !job.size.is_finite() || job.size <= 0.0 {
                return Err(JobSetError::InvalidSize {
                    job: j,
                    size: job.size,
                });
            }
        }
        Ok(JobSet { jobs })
    }

    /// A single job of `size` units released at time 0 — the degenerate
    /// set that must reproduce the single-load path bit-for-bit.
    pub fn single(size: f64) -> Result<Self, JobSetError> {
        JobSet::new(vec![JobSpec::new(0.0, size)])
    }

    /// Adversarial simultaneous release: every job arrives at time 0.
    /// This maximizes contention for the master interface and is the
    /// worst case for fairness (every policy choice is visible at once).
    pub fn simultaneous(sizes: &[f64]) -> Result<Self, JobSetError> {
        JobSet::new(sizes.iter().map(|&s| JobSpec::new(0.0, s)).collect())
    }

    /// Poisson arrivals: `n` jobs with Exp(`mean_interarrival`) gaps
    /// starting from time 0, and Exp(`mean_size`) sizes floored at 1% of
    /// the mean (a divisible load of size ~0 is a degenerate job, not an
    /// interesting arrival). Deterministic per `seed`; arrival and size
    /// streams are decorrelated SplitMix64-style so changing `n` never
    /// reshuffles earlier jobs.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0` or either mean is non-finite or non-positive.
    pub fn poisson(n: usize, mean_interarrival: f64, mean_size: f64, seed: u64) -> Self {
        assert!(n > 0, "need at least one job");
        assert!(
            mean_interarrival.is_finite() && mean_interarrival > 0.0,
            "mean interarrival must be positive"
        );
        assert!(
            mean_size.is_finite() && mean_size > 0.0,
            "mean size must be positive"
        );
        let mut arrivals = StdRng::seed_from_u64(seed);
        let mut sizes = StdRng::seed_from_u64(seed ^ SEED_MIX);
        let floor = mean_size * 0.01;
        let mut t = 0.0;
        let jobs = (0..n)
            .map(|_| {
                t += exponential(&mut arrivals, mean_interarrival);
                let size = exponential(&mut sizes, mean_size).max(floor);
                JobSpec::new(t, size)
            })
            .collect();
        JobSet { jobs }
    }

    /// Bursty arrivals: `bursts` groups of `jobs_per_burst` simultaneous
    /// jobs, consecutive bursts separated by `gap` seconds, sizes
    /// Exp(`mean_size`) floored at 1% of the mean. Deterministic per
    /// `seed`. Models the "everyone submits at the top of the hour"
    /// pattern that FIFO handles worst.
    ///
    /// # Panics
    ///
    /// Panics if any count is zero or `gap`/`mean_size` is non-finite or
    /// non-positive.
    pub fn bursty(
        bursts: usize,
        jobs_per_burst: usize,
        gap: f64,
        mean_size: f64,
        seed: u64,
    ) -> Self {
        assert!(bursts > 0 && jobs_per_burst > 0, "need at least one job");
        assert!(gap.is_finite() && gap > 0.0, "burst gap must be positive");
        assert!(
            mean_size.is_finite() && mean_size > 0.0,
            "mean size must be positive"
        );
        let mut sizes = StdRng::seed_from_u64(seed ^ SEED_MIX);
        let floor = mean_size * 0.01;
        let mut jobs = Vec::with_capacity(bursts * jobs_per_burst);
        for b in 0..bursts {
            let release = b as f64 * gap;
            for _ in 0..jobs_per_burst {
                let size = exponential(&mut sizes, mean_size).max(floor);
                jobs.push(JobSpec::new(release, size));
            }
        }
        JobSet { jobs }
    }

    /// The jobs, in set order.
    pub fn jobs(&self) -> &[JobSpec] {
        &self.jobs
    }

    /// Number of jobs.
    pub fn len(&self) -> usize {
        self.jobs.len()
    }

    /// Always false: construction rejects empty sets.
    pub fn is_empty(&self) -> bool {
        self.jobs.is_empty()
    }

    /// Total workload units across all jobs.
    pub fn total_work(&self) -> f64 {
        self.jobs.iter().map(|j| j.size).sum()
    }

    /// Universal per-job lower bound on *response time* (completion −
    /// release): even a job alone on an idle platform cannot beat the
    /// single-load analytic bound for its size. Every multi-load policy's
    /// per-job response must dominate this, which makes
    /// `stretch = response / bound >= 1` for every job.
    pub fn response_lower_bound(&self, platform: &Platform, job: usize) -> f64 {
        platform.makespan_lower_bound(self.jobs[job].size)
    }

    /// Oracle-style lower bound on the whole run's makespan: the latest
    /// per-job completion floor `release_j + bound(size_j)`, and — since
    /// the master and workers are shared — the bound for the aggregate
    /// workload released at the earliest release. Every policy's makespan
    /// must dominate this.
    pub fn makespan_lower_bound(&self, platform: &Platform) -> f64 {
        let per_job = self
            .jobs
            .iter()
            .map(|j| j.release + platform.makespan_lower_bound(j.size))
            .fold(0.0_f64, f64::max);
        let first = self
            .jobs
            .iter()
            .map(|j| j.release)
            .fold(f64::INFINITY, f64::min);
        let aggregate = first + platform.makespan_lower_bound(self.total_work());
        per_job.max(aggregate)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::platform::HomogeneousParams;

    #[test]
    fn validation_rejects_bad_jobs() {
        assert_eq!(JobSet::new(vec![]), Err(JobSetError::Empty));
        let bad_release = JobSet::new(vec![JobSpec::new(-1.0, 10.0)]);
        assert!(matches!(
            bad_release,
            Err(JobSetError::InvalidRelease { job: 0, .. })
        ));
        let bad_size = JobSet::new(vec![JobSpec::new(0.0, 10.0), JobSpec::new(1.0, 0.0)]);
        assert!(matches!(
            bad_size,
            Err(JobSetError::InvalidSize { job: 1, .. })
        ));
        let nan = JobSet::new(vec![JobSpec::new(f64::NAN, 10.0)]);
        assert!(matches!(nan, Err(JobSetError::InvalidRelease { .. })));
    }

    #[test]
    fn single_job_is_release_zero() {
        let set = JobSet::single(500.0).unwrap();
        assert_eq!(set.len(), 1);
        assert_eq!(set.jobs()[0], JobSpec::new(0.0, 500.0));
        assert!((set.total_work() - 500.0).abs() < 1e-12);
    }

    #[test]
    fn generators_are_deterministic_and_sorted() {
        let a = JobSet::poisson(8, 5.0, 200.0, 42);
        let b = JobSet::poisson(8, 5.0, 200.0, 42);
        assert_eq!(a, b);
        let c = JobSet::poisson(8, 5.0, 200.0, 43);
        assert_ne!(a, c);
        for w in a.jobs().windows(2) {
            assert!(w[0].release <= w[1].release);
        }
        for j in a.jobs() {
            assert!(j.release.is_finite() && j.release >= 0.0);
            assert!(j.size.is_finite() && j.size >= 200.0 * 0.01);
        }

        let burst = JobSet::bursty(3, 4, 10.0, 100.0, 7);
        assert_eq!(burst.len(), 12);
        assert_eq!(burst, JobSet::bursty(3, 4, 10.0, 100.0, 7));
        assert!((burst.jobs()[4].release - 10.0).abs() < 1e-12);
        assert!((burst.jobs()[11].release - 20.0).abs() < 1e-12);

        let sim = JobSet::simultaneous(&[100.0, 50.0]).unwrap();
        assert!(sim.jobs().iter().all(|j| j.release == 0.0));
    }

    #[test]
    fn poisson_prefix_stable_in_n() {
        let short = JobSet::poisson(3, 5.0, 200.0, 42);
        let long = JobSet::poisson(6, 5.0, 200.0, 42);
        assert_eq!(short.jobs(), &long.jobs()[..3]);
    }

    #[test]
    fn lower_bounds() {
        let platform = HomogeneousParams::table1(4, 1.5, 0.2, 0.2).build().unwrap();
        let set = JobSet::new(vec![JobSpec::new(0.0, 300.0), JobSpec::new(50.0, 100.0)]).unwrap();
        let lb0 = set.response_lower_bound(&platform, 0);
        let lb1 = set.response_lower_bound(&platform, 1);
        assert!(lb0 > lb1, "bigger job has the bigger bound");
        let mk = set.makespan_lower_bound(&platform);
        // Dominates both the latest per-job floor and the aggregate floor.
        assert!(mk >= 50.0 + lb1 - 1e-12);
        assert!(mk >= platform.makespan_lower_bound(400.0) - 1e-12);
    }
}
