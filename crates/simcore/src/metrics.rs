//! Post-run trace analytics.
//!
//! The paper reasons about schedules in terms of *overlap* (is the master's
//! dispatching hidden under computation?) and *gaps* (does a worker idle
//! because its next chunk isn't there yet — §4.2(ii))? This module computes
//! those quantities from an execution [`Trace`]:
//!
//! * per-worker computation gaps (idle intervals between consecutive
//!   computations after the first arrival),
//! * master-link utilization,
//! * the chunk-size timeline (the increase-then-decrease signature of
//!   RUMR is directly visible in it).

use crate::trace::{Trace, TraceEvent};

/// Per-event-type counters, maintained incrementally under
/// [`crate::TraceMode::MetricsOnly`] and [`crate::TraceMode::Full`].
///
/// The benchmark harness uses these to attribute an ns/event regression to
/// an event class (did the run dispatch more? lose more? redispatch more?)
/// without re-running in `Full` mode and scanning a stored trace. A
/// transient link drop surfaces only as its `chunk_losses` — it has no
/// worker up/down marker of its own.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct EventCounts {
    /// Input dispatches started (`SendStart`), redispatches included.
    pub dispatches: u64,
    /// Chunks delivered to a worker's front end (`Arrival`).
    pub arrivals: u64,
    /// Computations finished (`ComputeEnd`).
    pub computes: u64,
    /// Output returns completed (`ReturnEnd`; output-data extension).
    pub returns: u64,
    /// Worker state transitions (`WorkerDown` + `WorkerUp`).
    pub faults: u64,
    /// Chunks destroyed by faults (`ChunkLost`).
    pub chunk_losses: u64,
    /// Lost work re-sent (`Redispatch` markers).
    pub redispatches: u64,
}

impl EventCounts {
    /// Fold one trace event into the counters (engine use).
    pub fn count(&mut self, e: &TraceEvent) {
        match e {
            TraceEvent::SendStart { .. } => self.dispatches += 1,
            TraceEvent::Arrival { .. } => self.arrivals += 1,
            TraceEvent::ComputeEnd { .. } => self.computes += 1,
            TraceEvent::ReturnEnd { .. } => self.returns += 1,
            TraceEvent::WorkerDown { .. } | TraceEvent::WorkerUp { .. } => self.faults += 1,
            TraceEvent::ChunkLost { .. } => self.chunk_losses += 1,
            TraceEvent::Redispatch { .. } => self.redispatches += 1,
            _ => {}
        }
    }
}

/// Cheap aggregate metrics the engine maintains *incrementally* during a
/// run under [`crate::TraceMode::MetricsOnly`] or
/// [`crate::TraceMode::Full`] — no event storage, no post-run scan.
///
/// These cover the quantities sweeps actually consume (link utilization and
/// worker idle gaps, §4.2(ii) of the paper) at a fraction of the cost of
/// recording a full [`Trace`] and running [`TraceMetrics::from_trace`].
#[derive(Debug, Clone, PartialEq)]
pub struct MetricsSummary {
    /// Number of trace events the run generated (whether or not a full
    /// trace stored them).
    pub trace_events: u64,
    /// Total time the master's interface had at least one active transfer.
    pub link_busy: f64,
    /// Per-worker idle time between consecutive computations.
    pub per_worker_gap: Vec<f64>,
    /// Number of distinct idle gaps across all workers.
    pub num_gaps: usize,
    /// Per-event-type counter table (see [`EventCounts`]).
    pub event_counts: EventCounts,
    /// Per-worker `(compute, link)` realized/declared rate factors the run
    /// executed under, when a [`crate::SpeedModel`] other than `Declared`
    /// was active; `None` in the trusting regime. Lets metric consumers
    /// attribute a makespan to the machine that was actually revealed.
    pub realized_speed_factors: Option<Vec<(f64, f64)>>,
}

impl MetricsSummary {
    /// Fraction of the makespan the master's interface spent busy.
    pub fn link_utilization(&self, makespan: f64) -> f64 {
        if makespan <= 0.0 {
            return 0.0;
        }
        self.link_busy / makespan
    }

    /// Total idle-gap time summed over workers.
    pub fn total_gap_time(&self) -> f64 {
        self.per_worker_gap.iter().sum()
    }
}

/// An idle interval on a worker between two computations.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Gap {
    /// Worker that idled.
    pub worker: usize,
    /// Gap start (end of the previous computation).
    pub start: f64,
    /// Gap end (start of the next computation).
    pub end: f64,
}

impl Gap {
    /// Gap length in seconds.
    pub fn duration(&self) -> f64 {
        self.end - self.start
    }
}

/// Aggregated metrics of one simulated run.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceMetrics {
    /// Application makespan (time of the last event).
    pub makespan: f64,
    /// Fraction of the makespan the master's interface spent sending.
    pub link_utilization: f64,
    /// Mean fraction of the post-first-arrival window each worker spent
    /// computing (1 = perfectly gap-free, the UMR design goal).
    pub mean_compute_density: f64,
    /// Every idle gap between consecutive computations on a worker.
    pub gaps: Vec<Gap>,
    /// Chunk sizes in dispatch order.
    pub chunk_timeline: Vec<f64>,
    /// Workload units destroyed by faults (sum over `ChunkLost` events).
    pub work_lost: f64,
    /// Workload units re-sent after a loss (sum over `Redispatch` markers).
    pub work_redispatched: f64,
    /// Seconds each worker spent crashed. Down intervals still open at the
    /// end of the trace are counted up to the makespan.
    pub per_worker_downtime: Vec<f64>,
}

impl TraceMetrics {
    /// Compute metrics from a trace over `num_workers` workers.
    pub fn from_trace(trace: &Trace, num_workers: usize) -> Self {
        let makespan = trace
            .events()
            .iter()
            .map(TraceEvent::time)
            .fold(0.0_f64, f64::max);

        let mut link_busy = 0.0;
        let mut send_start: Option<f64> = None;
        let mut chunk_timeline = Vec::new();

        let mut first_compute: Vec<Option<f64>> = vec![None; num_workers];
        let mut last_compute_end: Vec<Option<f64>> = vec![None; num_workers];
        let mut busy: Vec<f64> = vec![0.0; num_workers];
        let mut current_start: Vec<Option<f64>> = vec![None; num_workers];
        let mut gaps = Vec::new();

        let mut work_lost = 0.0;
        let mut work_redispatched = 0.0;
        let mut per_worker_downtime = vec![0.0; num_workers];
        let mut down_since: Vec<Option<f64>> = vec![None; num_workers];

        for event in trace.events() {
            match *event {
                TraceEvent::SendStart { chunk, time, .. } => {
                    send_start = Some(time);
                    chunk_timeline.push(chunk);
                }
                TraceEvent::SendEnd { time, .. } => {
                    if let Some(s) = send_start.take() {
                        link_busy += time - s;
                    }
                }
                TraceEvent::ComputeStart { worker, time, .. } if worker < num_workers => {
                    if first_compute[worker].is_none() {
                        first_compute[worker] = Some(time);
                    }
                    if let Some(prev_end) = last_compute_end[worker] {
                        if time > prev_end + 1e-12 {
                            gaps.push(Gap {
                                worker,
                                start: prev_end,
                                end: time,
                            });
                        }
                    }
                    current_start[worker] = Some(time);
                }
                TraceEvent::ComputeEnd { worker, time, .. } if worker < num_workers => {
                    if let Some(s) = current_start[worker].take() {
                        busy[worker] += time - s;
                    }
                    last_compute_end[worker] = Some(time);
                }
                TraceEvent::ChunkLost { chunk, .. } => {
                    work_lost += chunk;
                }
                TraceEvent::Redispatch { chunk, .. } => {
                    work_redispatched += chunk;
                }
                TraceEvent::WorkerDown { worker, time } if worker < num_workers => {
                    down_since[worker] = Some(time);
                }
                TraceEvent::WorkerUp { worker, time } if worker < num_workers => {
                    if let Some(s) = down_since[worker].take() {
                        per_worker_downtime[worker] += time - s;
                    }
                }
                _ => {}
            }
        }
        for (w, since) in down_since.iter().enumerate() {
            if let Some(s) = since {
                per_worker_downtime[w] += makespan - s;
            }
        }

        let mut density_sum = 0.0;
        let mut density_count = 0usize;
        for w in 0..num_workers {
            if let (Some(first), Some(last)) = (first_compute[w], last_compute_end[w]) {
                let window = last - first;
                if window > 0.0 {
                    density_sum += busy[w] / window;
                    density_count += 1;
                }
            }
        }

        TraceMetrics {
            makespan,
            link_utilization: if makespan > 0.0 {
                link_busy / makespan
            } else {
                0.0
            },
            mean_compute_density: if density_count > 0 {
                density_sum / density_count as f64
            } else {
                0.0
            },
            gaps,
            chunk_timeline,
            work_lost,
            work_redispatched,
            per_worker_downtime,
        }
    }

    /// Total idle time across all gaps.
    pub fn total_gap_time(&self) -> f64 {
        self.gaps.iter().map(Gap::duration).sum()
    }

    /// Index of the largest chunk in the dispatch timeline, if any — for an
    /// original RUMR run this marks the phase-1/phase-2 boundary.
    pub fn peak_chunk_index(&self) -> Option<usize> {
        let mut best: Option<(usize, f64)> = None;
        for (i, &c) in self.chunk_timeline.iter().enumerate() {
            if best.map(|(_, b)| c > b).unwrap_or(true) {
                best = Some((i, c));
            }
        }
        best.map(|(i, _)| i)
    }
}

/// Completion metrics for one job of a multi-load run.
///
/// Optional fields are `None` when the job never finished — possible only
/// under faults without recovery (lost work is never re-sent, so the job
/// under-completes). Fault-free multi-load runs always complete every job.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct JobMetrics {
    /// Job index in the submitted set.
    pub job: usize,
    /// Release time of the job.
    pub release: f64,
    /// Total workload units of the job.
    pub size: f64,
    /// Time of the job's first dispatch, `None` if nothing was sent.
    pub first_dispatch: Option<f64>,
    /// Time the job's last workload unit finished computing.
    pub completion: Option<f64>,
    /// `completion - release`.
    pub response: Option<f64>,
    /// `response / lower_bound`; `>= 1` for every correct policy.
    pub stretch: Option<f64>,
    /// Universal single-load analytic lower bound on this job's response
    /// time (idle dedicated platform; see `JobSet::response_lower_bound`).
    pub lower_bound: f64,
    /// Workload units dispatched on the job's behalf (redispatches
    /// included).
    pub dispatched: f64,
    /// Workload units whose computation completed.
    pub completed: f64,
    /// Workload units destroyed by faults.
    pub lost: f64,
}

/// Cross-job fairness summary of a multi-load run.
///
/// Stretch (response time over the job's analytic lower bound) is the
/// standard size-normalized responsiveness measure; Jain's index
/// `(Σx)² / (n·Σx²)` over per-job stretches is 1 when all jobs are slowed
/// equally and approaches `1/n` when one job absorbs all the delay.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FairnessSummary {
    /// Jobs that completed (and so have a stretch).
    pub completed_jobs: usize,
    /// Largest per-job stretch, `NaN` when no job completed.
    pub max_stretch: f64,
    /// Mean per-job stretch, `NaN` when no job completed.
    pub mean_stretch: f64,
    /// Jain's fairness index over per-job stretches, `NaN` when no job
    /// completed.
    pub jain_index: f64,
}

impl FairnessSummary {
    /// Summarize a run from its per-job metrics; jobs without a stretch
    /// (never completed) are excluded.
    pub fn from_jobs(jobs: &[JobMetrics]) -> Self {
        let stretches: Vec<f64> = jobs.iter().filter_map(|j| j.stretch).collect();
        if stretches.is_empty() {
            return FairnessSummary {
                completed_jobs: 0,
                max_stretch: f64::NAN,
                mean_stretch: f64::NAN,
                jain_index: f64::NAN,
            };
        }
        let n = stretches.len() as f64;
        let sum: f64 = stretches.iter().sum();
        let sum_sq: f64 = stretches.iter().map(|s| s * s).sum();
        FairnessSummary {
            completed_jobs: stretches.len(),
            max_stretch: stretches.iter().fold(f64::NEG_INFINITY, |a, &b| a.max(b)),
            mean_stretch: sum / n,
            jain_index: (sum * sum) / (n * sum_sq),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::Trace;

    fn trace_two_workers() -> Trace {
        let mut t = Trace::new();
        let mut push = |e| t.push(e);
        // Worker 0: computes [1,3] and [5,6] — a gap [3,5].
        push(TraceEvent::SendStart {
            worker: 0,
            chunk: 2.0,
            time: 0.0,
        });
        push(TraceEvent::SendEnd {
            worker: 0,
            chunk: 2.0,
            time: 1.0,
        });
        push(TraceEvent::Arrival {
            worker: 0,
            chunk: 2.0,
            time: 1.0,
        });
        push(TraceEvent::ComputeStart {
            worker: 0,
            chunk: 2.0,
            time: 1.0,
        });
        push(TraceEvent::ComputeEnd {
            worker: 0,
            chunk: 2.0,
            time: 3.0,
        });
        push(TraceEvent::SendStart {
            worker: 0,
            chunk: 1.0,
            time: 4.0,
        });
        push(TraceEvent::SendEnd {
            worker: 0,
            chunk: 1.0,
            time: 5.0,
        });
        push(TraceEvent::Arrival {
            worker: 0,
            chunk: 1.0,
            time: 5.0,
        });
        push(TraceEvent::ComputeStart {
            worker: 0,
            chunk: 1.0,
            time: 5.0,
        });
        push(TraceEvent::ComputeEnd {
            worker: 0,
            chunk: 1.0,
            time: 6.0,
        });
        t
    }

    #[test]
    fn gap_detection() {
        let m = TraceMetrics::from_trace(&trace_two_workers(), 2);
        assert_eq!(m.gaps.len(), 1);
        let gap = m.gaps[0];
        assert_eq!(gap.worker, 0);
        assert!((gap.start - 3.0).abs() < 1e-12);
        assert!((gap.end - 5.0).abs() < 1e-12);
        assert!((gap.duration() - 2.0).abs() < 1e-12);
        assert!((m.total_gap_time() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn link_utilization_and_density() {
        let m = TraceMetrics::from_trace(&trace_two_workers(), 2);
        assert!((m.makespan - 6.0).abs() < 1e-12);
        // Link busy [0,1] and [4,5] of 6 s.
        assert!((m.link_utilization - 2.0 / 6.0).abs() < 1e-12);
        // Worker 0 computes 3 s in window [1,6]: density 0.6.
        assert!((m.mean_compute_density - 0.6).abs() < 1e-12);
    }

    #[test]
    fn chunk_timeline() {
        let m = TraceMetrics::from_trace(&trace_two_workers(), 2);
        assert_eq!(m.chunk_timeline, vec![2.0, 1.0]);
        assert_eq!(m.peak_chunk_index(), Some(0));
    }

    #[test]
    fn empty_trace() {
        let m = TraceMetrics::from_trace(&Trace::new(), 3);
        assert_eq!(m.makespan, 0.0);
        assert_eq!(m.link_utilization, 0.0);
        assert_eq!(m.mean_compute_density, 0.0);
        assert!(m.gaps.is_empty());
        assert!(m.peak_chunk_index().is_none());
    }

    #[test]
    fn gapless_run_has_density_one() {
        let mut t = Trace::new();
        t.push(TraceEvent::SendStart {
            worker: 0,
            chunk: 1.0,
            time: 0.0,
        });
        t.push(TraceEvent::SendEnd {
            worker: 0,
            chunk: 1.0,
            time: 0.5,
        });
        t.push(TraceEvent::Arrival {
            worker: 0,
            chunk: 1.0,
            time: 0.5,
        });
        t.push(TraceEvent::ComputeStart {
            worker: 0,
            chunk: 1.0,
            time: 0.5,
        });
        t.push(TraceEvent::ComputeEnd {
            worker: 0,
            chunk: 1.0,
            time: 1.5,
        });
        t.push(TraceEvent::SendStart {
            worker: 0,
            chunk: 1.0,
            time: 0.5,
        });
        t.push(TraceEvent::SendEnd {
            worker: 0,
            chunk: 1.0,
            time: 1.0,
        });
        t.push(TraceEvent::Arrival {
            worker: 0,
            chunk: 1.0,
            time: 1.0,
        });
        t.push(TraceEvent::ComputeStart {
            worker: 0,
            chunk: 1.0,
            time: 1.5,
        });
        t.push(TraceEvent::ComputeEnd {
            worker: 0,
            chunk: 1.0,
            time: 2.5,
        });
        let m = TraceMetrics::from_trace(&t, 1);
        assert!(m.gaps.is_empty());
        assert!((m.mean_compute_density - 1.0).abs() < 1e-12);
    }

    #[test]
    fn fault_accounting() {
        let mut t = trace_two_workers();
        t.push(TraceEvent::WorkerDown {
            worker: 1,
            time: 2.0,
        });
        t.push(TraceEvent::ChunkLost {
            worker: 1,
            chunk: 3.0,
            stage: crate::trace::LostStage::Computing,
            time: 2.0,
        });
        t.push(TraceEvent::WorkerUp {
            worker: 1,
            time: 4.5,
        });
        t.push(TraceEvent::Redispatch {
            worker: 0,
            chunk: 3.0,
            time: 5.0,
        });
        // Worker 0 goes down at 5.5 and never recovers: open interval
        // counts up to the makespan (6.0).
        t.push(TraceEvent::WorkerDown {
            worker: 0,
            time: 5.5,
        });
        let m = TraceMetrics::from_trace(&t, 2);
        assert!((m.work_lost - 3.0).abs() < 1e-12);
        assert!((m.work_redispatched - 3.0).abs() < 1e-12);
        assert!((m.per_worker_downtime[1] - 2.5).abs() < 1e-12);
        assert!((m.per_worker_downtime[0] - 0.5).abs() < 1e-12);
    }

    #[test]
    fn fault_free_trace_has_zero_fault_metrics() {
        let m = TraceMetrics::from_trace(&trace_two_workers(), 2);
        assert_eq!(m.work_lost, 0.0);
        assert_eq!(m.work_redispatched, 0.0);
        assert!(m.per_worker_downtime.iter().all(|&d| d == 0.0));
    }

    fn job(job: usize, stretch: Option<f64>) -> JobMetrics {
        JobMetrics {
            job,
            release: 0.0,
            size: 100.0,
            first_dispatch: Some(0.0),
            completion: stretch.map(|s| s * 10.0),
            response: stretch.map(|s| s * 10.0),
            stretch,
            lower_bound: 10.0,
            dispatched: 100.0,
            completed: if stretch.is_some() { 100.0 } else { 50.0 },
            lost: 0.0,
        }
    }

    #[test]
    fn fairness_equal_stretches_is_perfectly_fair() {
        let jobs = vec![job(0, Some(2.0)), job(1, Some(2.0)), job(2, Some(2.0))];
        let f = FairnessSummary::from_jobs(&jobs);
        assert_eq!(f.completed_jobs, 3);
        assert!((f.max_stretch - 2.0).abs() < 1e-12);
        assert!((f.mean_stretch - 2.0).abs() < 1e-12);
        assert!((f.jain_index - 1.0).abs() < 1e-12);
    }

    #[test]
    fn fairness_skewed_stretches_lower_jain() {
        let jobs = vec![job(0, Some(1.0)), job(1, Some(9.0))];
        let f = FairnessSummary::from_jobs(&jobs);
        assert!((f.max_stretch - 9.0).abs() < 1e-12);
        assert!((f.mean_stretch - 5.0).abs() < 1e-12);
        // Jain = (10)^2 / (2 * 82) ≈ 0.6098 — far from fair.
        assert!((f.jain_index - 100.0 / 164.0).abs() < 1e-12);
        assert!(f.jain_index < 0.75);
    }

    #[test]
    fn fairness_excludes_incomplete_jobs() {
        let jobs = vec![job(0, Some(3.0)), job(1, None)];
        let f = FairnessSummary::from_jobs(&jobs);
        assert_eq!(f.completed_jobs, 1);
        assert!((f.jain_index - 1.0).abs() < 1e-12);

        let none = FairnessSummary::from_jobs(&[job(0, None)]);
        assert_eq!(none.completed_jobs, 0);
        assert!(none.max_stretch.is_nan());
        assert!(none.mean_stretch.is_nan());
        assert!(none.jain_index.is_nan());
    }
}
