//! The computing-platform model of the RUMR paper (§3.1, Figures 1–2).
//!
//! A single *master* holds all application input data and is connected to
//! `N` *workers* by dedicated links. The master sends to one worker at a
//! time; workers have a "front end" and can receive data while computing.
//!
//! Per-worker cost model, for a chunk of `chunk` workload units:
//!
//! * computation (Eq. 1): `Tcomp_i = cLat_i + chunk / S_i`
//! * communication (Eq. 2): `Tcomm_i = nLat_i + chunk / B_i + tLat_i`,
//!   where `nLat_i + chunk / B_i` occupies the master's network interface
//!   serially (no two transfers overlap in that portion) while `tLat_i`
//!   (the "time of flight" of the last byte) is overlappable.
//!
//! These are the *predicted* costs used by schedulers; the simulation engine
//! perturbs them with the error model when executing.

use std::fmt;

/// Static description of one worker and its link from the master.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WorkerSpec {
    /// Computation speed `S_i` in workload units per second.
    pub speed: f64,
    /// Link transfer rate `B_i` in workload units per second.
    pub bandwidth: f64,
    /// Fixed computation start-up latency `cLat_i` in seconds.
    pub comp_latency: f64,
    /// Fixed transfer initiation overhead `nLat_i` in seconds (occupies the
    /// master serially).
    pub net_latency: f64,
    /// Pipeline latency `tLat_i` in seconds (overlappable with other
    /// transfers and with computation).
    pub transfer_latency: f64,
}

impl WorkerSpec {
    /// Predicted computation time for `chunk` units on this worker (Eq. 1).
    #[inline]
    pub fn comp_time(&self, chunk: f64) -> f64 {
        self.comp_latency + chunk / self.speed
    }

    /// Predicted time the master's interface is occupied sending `chunk`
    /// units to this worker (the non-overlappable part of Eq. 2).
    #[inline]
    pub fn link_occupancy(&self, chunk: f64) -> f64 {
        self.net_latency + chunk / self.bandwidth
    }

    /// Predicted end-to-end communication time (full Eq. 2).
    #[inline]
    pub fn comm_time(&self, chunk: f64) -> f64 {
        self.link_occupancy(chunk) + self.transfer_latency
    }

    fn validate(&self, index: usize) -> Result<(), PlatformError> {
        let checks = [
            ("speed", self.speed, true),
            ("bandwidth", self.bandwidth, true),
            ("comp_latency", self.comp_latency, false),
            ("net_latency", self.net_latency, false),
            ("transfer_latency", self.transfer_latency, false),
        ];
        for (what, v, strictly_positive) in checks {
            if !v.is_finite() || v < 0.0 || (strictly_positive && v == 0.0) {
                return Err(PlatformError::InvalidParameter {
                    worker: index,
                    what,
                    value: v,
                });
            }
        }
        Ok(())
    }
}

/// Error building or validating a [`Platform`].
#[derive(Debug, Clone, PartialEq)]
pub enum PlatformError {
    /// The platform must have at least one worker.
    NoWorkers,
    /// A worker parameter is non-finite, negative, or zero where a positive
    /// value is required.
    InvalidParameter {
        /// Index of the offending worker.
        worker: usize,
        /// Name of the offending parameter.
        what: &'static str,
        /// The offending value.
        value: f64,
    },
}

impl fmt::Display for PlatformError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PlatformError::NoWorkers => write!(f, "platform has no workers"),
            PlatformError::InvalidParameter {
                worker,
                what,
                value,
            } => write!(f, "worker {worker}: invalid {what} = {value}"),
        }
    }
}

impl std::error::Error for PlatformError {}

/// A master–worker platform: the star topology of Fig. 1.
#[derive(Debug, Clone, PartialEq)]
pub struct Platform {
    workers: Vec<WorkerSpec>,
}

impl Platform {
    /// Build a platform from explicit worker specs.
    ///
    /// # Errors
    ///
    /// [`PlatformError::NoWorkers`] on an empty list and
    /// [`PlatformError::InvalidParameter`] for non-finite/negative values
    /// (speed and bandwidth must be strictly positive).
    pub fn new(workers: Vec<WorkerSpec>) -> Result<Self, PlatformError> {
        if workers.is_empty() {
            return Err(PlatformError::NoWorkers);
        }
        for (i, w) in workers.iter().enumerate() {
            w.validate(i)?;
        }
        Ok(Platform { workers })
    }

    /// Build the homogeneous platform of the paper's experiments: `n`
    /// identical workers.
    pub fn homogeneous(n: usize, spec: WorkerSpec) -> Result<Self, PlatformError> {
        Platform::new(vec![spec; n])
    }

    /// Number of workers `N`.
    #[inline]
    pub fn num_workers(&self) -> usize {
        self.workers.len()
    }

    /// Spec of worker `i` (0-based; the paper numbers workers from 1).
    ///
    /// # Panics
    ///
    /// Panics if `i >= num_workers()`.
    #[inline]
    pub fn worker(&self, i: usize) -> &WorkerSpec {
        &self.workers[i]
    }

    /// All worker specs.
    #[inline]
    pub fn workers(&self) -> &[WorkerSpec] {
        &self.workers
    }

    /// True when every worker has identical parameters.
    pub fn is_homogeneous(&self) -> bool {
        self.workers.windows(2).all(|w| w[0] == w[1])
    }

    /// Aggregate compute speed `Σ S_i`.
    pub fn total_speed(&self) -> f64 {
        self.workers.iter().map(|w| w.speed).sum()
    }

    /// A simple lower bound on the makespan of dispatching and processing
    /// `w_total` units: every byte must cross the master's interface
    /// (serial), and the workload cannot be processed faster than the
    /// aggregate speed allows even with perfect overlap.
    ///
    /// `max( Σ_i per-byte-send-time lower bound, nLat_min + W/ΣS_i )`
    ///
    /// This is deliberately conservative (no latency accounting beyond one
    /// transfer initiation) — used as a sanity floor in tests.
    pub fn makespan_lower_bound(&self, w_total: f64) -> f64 {
        let max_bandwidth = self
            .workers
            .iter()
            .map(|w| w.bandwidth)
            .fold(f64::NEG_INFINITY, f64::max);
        let min_nlat = self
            .workers
            .iter()
            .map(|w| w.net_latency)
            .fold(f64::INFINITY, f64::min);
        let comm_floor = min_nlat + w_total / max_bandwidth;
        let comp_floor = min_nlat + w_total / self.total_speed();
        comm_floor.max(comp_floor)
    }
}

/// Convenience parameters for the paper's homogeneous experiments
/// (Table 1): `S = 1`, `B = r·N`, `cLat`, `nLat` swept, `tLat = 0`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HomogeneousParams {
    /// Number of workers `N`.
    pub n: usize,
    /// Worker speed `S` (units/s). Table 1 uses 1.
    pub speed: f64,
    /// Link rate `B` (units/s). Table 1 uses `r·N` with `r ∈ [1.2, 2.0]`.
    pub bandwidth: f64,
    /// Computation latency `cLat` (s).
    pub comp_latency: f64,
    /// Communication latency `nLat` (s).
    pub net_latency: f64,
    /// Pipeline latency `tLat` (s). Table 1 experiments use 0.
    pub transfer_latency: f64,
}

impl HomogeneousParams {
    /// The Table 1 instantiation: `S = 1`, `B = ratio·n`, `tLat = 0`.
    pub fn table1(n: usize, ratio: f64, comp_latency: f64, net_latency: f64) -> Self {
        HomogeneousParams {
            n,
            speed: 1.0,
            bandwidth: ratio * n as f64,
            comp_latency,
            net_latency,
            transfer_latency: 0.0,
        }
    }

    /// Build the [`Platform`].
    pub fn build(&self) -> Result<Platform, PlatformError> {
        Platform::homogeneous(
            self.n,
            WorkerSpec {
                speed: self.speed,
                bandwidth: self.bandwidth,
                comp_latency: self.comp_latency,
                net_latency: self.net_latency,
                transfer_latency: self.transfer_latency,
            },
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec() -> WorkerSpec {
        WorkerSpec {
            speed: 2.0,
            bandwidth: 10.0,
            comp_latency: 0.5,
            net_latency: 0.1,
            transfer_latency: 0.05,
        }
    }

    #[test]
    fn cost_model_equations() {
        let w = spec();
        // Eq. 1: cLat + chunk/S
        assert!((w.comp_time(4.0) - (0.5 + 2.0)).abs() < 1e-12);
        // Eq. 2 link part: nLat + chunk/B
        assert!((w.link_occupancy(5.0) - (0.1 + 0.5)).abs() < 1e-12);
        // Eq. 2 full: + tLat
        assert!((w.comm_time(5.0) - (0.1 + 0.5 + 0.05)).abs() < 1e-12);
    }

    #[test]
    fn zero_chunk_costs_latency_only() {
        let w = spec();
        assert!((w.comp_time(0.0) - 0.5).abs() < 1e-12);
        assert!((w.comm_time(0.0) - 0.15).abs() < 1e-12);
    }

    #[test]
    fn homogeneous_builder() {
        let p = Platform::homogeneous(5, spec()).unwrap();
        assert_eq!(p.num_workers(), 5);
        assert!(p.is_homogeneous());
        assert!((p.total_speed() - 10.0).abs() < 1e-12);
    }

    #[test]
    fn heterogeneous_detected() {
        let mut s2 = spec();
        s2.speed = 3.0;
        let p = Platform::new(vec![spec(), s2]).unwrap();
        assert!(!p.is_homogeneous());
    }

    #[test]
    fn empty_platform_rejected() {
        assert_eq!(Platform::new(vec![]).unwrap_err(), PlatformError::NoWorkers);
    }

    #[test]
    fn invalid_parameters_rejected() {
        let mut bad = spec();
        bad.speed = 0.0;
        assert!(matches!(
            Platform::new(vec![bad]),
            Err(PlatformError::InvalidParameter { what: "speed", .. })
        ));

        let mut bad = spec();
        bad.bandwidth = -1.0;
        assert!(matches!(
            Platform::new(vec![spec(), bad]),
            Err(PlatformError::InvalidParameter {
                worker: 1,
                what: "bandwidth",
                ..
            })
        ));

        let mut bad = spec();
        bad.comp_latency = f64::NAN;
        assert!(Platform::new(vec![bad]).is_err());

        // Zero latencies are fine.
        let mut ok = spec();
        ok.comp_latency = 0.0;
        ok.net_latency = 0.0;
        ok.transfer_latency = 0.0;
        assert!(Platform::new(vec![ok]).is_ok());
    }

    #[test]
    fn table1_parameters() {
        let p = HomogeneousParams::table1(20, 1.8, 0.3, 0.9);
        assert_eq!(p.n, 20);
        assert!((p.bandwidth - 36.0).abs() < 1e-12);
        assert_eq!(p.speed, 1.0);
        assert_eq!(p.transfer_latency, 0.0);
        let plat = p.build().unwrap();
        assert_eq!(plat.num_workers(), 20);
        assert!((plat.worker(0).bandwidth - 36.0).abs() < 1e-12);
    }

    #[test]
    fn lower_bound_sane() {
        let p = HomogeneousParams::table1(10, 1.5, 0.1, 0.1)
            .build()
            .unwrap();
        let lb = p.makespan_lower_bound(1000.0);
        // 1000 units over B = 15 takes 66.7 s; over ΣS = 10 takes 100 s.
        assert!(lb >= 100.0);
        assert!(lb <= 101.0);
    }

    #[test]
    fn error_display() {
        assert!(format!("{}", PlatformError::NoWorkers).contains("no workers"));
        let e = PlatformError::InvalidParameter {
            worker: 2,
            what: "speed",
            value: -1.0,
        };
        assert!(format!("{e}").contains("worker 2"));
    }
}
