//! The online scheduling interface between algorithms and the engine.
//!
//! All algorithms in the suite — including the "precalculated" ones like UMR
//! and multi-installment — are expressed as *online policies*: whenever the
//! master's network interface is free, the engine asks the scheduler what to
//! send next. Precalculated schedules simply replay a fixed list; reactive
//! schedulers (Factoring, RUMR's greedy components) inspect the live
//! [`SimView`] to make demand-driven decisions. This uniform interface is
//! what lets the paper's robustness experiments compare both families under
//! identical prediction errors.

/// What the scheduler wants the master to do now.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Decision {
    /// Send `chunk` workload units to `worker` (0-based) immediately.
    Dispatch {
        /// Destination worker.
        worker: usize,
        /// Chunk size in workload units; must be finite and > 0.
        chunk: f64,
    },
    /// Like [`Decision::Dispatch`], but flags the chunk as *redispatched*
    /// work — a re-send of workload that was previously lost to a fault.
    /// The engine treats it identically to a dispatch for platform
    /// semantics, but accounts it separately (`SimResult::redispatched_work`,
    /// `TraceEvent::Redispatch`) so degradation studies can distinguish
    /// first-pass from recovery traffic.
    Redispatch {
        /// Destination worker.
        worker: usize,
        /// Chunk size in workload units; must be finite and > 0.
        chunk: f64,
    },
    /// Nothing to send right now; ask again after the next simulation event.
    Wait,
    /// Nothing to send before the given simulation time. Like
    /// [`Decision::Wait`], but the engine additionally guarantees a wake-up
    /// consultation no later than `time` (it may still consult earlier,
    /// after any intervening event). Multi-load schedulers use this to
    /// sleep until the next job release without deadlocking the engine
    /// when no other event is pending; `time` must be finite and
    /// non-negative, and a `time` in the past behaves exactly like
    /// [`Decision::Wait`] with an immediate wake-up.
    WaitUntil {
        /// Absolute simulation time of the requested wake-up.
        time: f64,
    },
    /// The whole workload has been dispatched; never ask again — unless
    /// work is later lost to a fault, in which case the engine resumes
    /// consulting the scheduler (recovery-aware schedulers then re-queue
    /// the lost work; plain schedulers just return `Finished` again).
    Finished,
}

/// Live per-worker state visible to schedulers.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WorkerView {
    /// False while the worker is crashed (fault injection). Dead workers
    /// accept no computation; chunks sent to them are lost on arrival.
    /// Always `true` when fault injection is disabled.
    pub alive: bool,
    /// True while a chunk's computation is in progress.
    pub computing: bool,
    /// Chunks received but not yet started.
    pub queued_chunks: usize,
    /// Workload units received but not yet started.
    pub queued_work: f64,
    /// Chunks dispatched (including one currently being sent) but not yet
    /// arrived at the worker.
    pub in_flight_chunks: usize,
    /// Workload units in flight.
    pub in_flight_work: f64,
    /// Total workload units ever dispatched to this worker.
    pub assigned_work: f64,
    /// Total workload units whose computation completed.
    pub completed_work: f64,
    /// Number of chunks whose computation completed.
    pub completed_chunks: usize,
}

impl Default for WorkerView {
    /// A fresh, idle, *alive* worker.
    fn default() -> Self {
        WorkerView {
            alive: true,
            computing: false,
            queued_chunks: 0,
            queued_work: 0.0,
            in_flight_chunks: 0,
            in_flight_work: 0.0,
            assigned_work: 0.0,
            completed_work: 0.0,
            completed_chunks: 0,
        }
    }
}

impl WorkerView {
    /// A worker is *hungry* when it is alive and has nothing to do and
    /// nothing on the way: not computing, an empty local queue, and no
    /// in-flight transfer. RUMR's out-of-order dispatch and all pull-based
    /// schedulers key off this predicate, which makes every pull-based
    /// policy avoid crashed workers automatically.
    #[inline]
    pub fn is_hungry(&self) -> bool {
        self.alive && !self.computing && self.queued_chunks == 0 && self.in_flight_chunks == 0
    }

    /// Workload units dispatched to this worker whose computation has not
    /// completed yet (in flight + queued + currently computing).
    #[inline]
    pub fn outstanding_work(&self) -> f64 {
        self.assigned_work - self.completed_work
    }
}

/// Read-only snapshot handed to the scheduler on every decision point.
#[derive(Debug)]
pub struct SimView<'a> {
    /// Current simulation time in seconds.
    pub time: f64,
    /// Per-worker live state, indexed by worker id.
    pub workers: &'a [WorkerView],
}

impl SimView<'_> {
    /// Index of the first hungry worker, if any.
    pub fn first_hungry(&self) -> Option<usize> {
        self.workers.iter().position(WorkerView::is_hungry)
    }

    /// Among hungry workers, the one with the least assigned work
    /// (deterministic tie-break: lowest index). `None` when nobody is
    /// hungry.
    pub fn least_loaded_hungry(&self) -> Option<usize> {
        self.workers
            .iter()
            .enumerate()
            .filter(|(_, w)| w.is_hungry())
            .min_by(|(i, a), (j, b)| {
                a.assigned_work
                    .partial_cmp(&b.assigned_work)
                    .expect("finite work totals")
                    .then(i.cmp(j))
            })
            .map(|(i, _)| i)
    }
}

/// An online scheduling policy driven by the simulation engine.
///
/// The engine calls [`Scheduler::next_dispatch`] whenever the master's
/// interface is free — at time 0, after every `SendEnd`, and after any other
/// event following a [`Decision::Wait`]. Once a scheduler returns
/// [`Decision::Finished`] it is never consulted again.
pub trait Scheduler {
    /// Human-readable algorithm name (used in reports).
    fn name(&self) -> String;

    /// Decide the master's next action. See [`Decision`].
    fn next_dispatch(&mut self, view: &SimView<'_>) -> Decision;

    /// Notification: a chunk's computation started on `worker` at `time`.
    ///
    /// Together with [`Scheduler::on_compute_end`] this lets reactive
    /// schedulers *measure* effective computation times and compare them to
    /// the platform's predictions — the basis of the online error
    /// estimation the paper's §6 sketches as future work (implemented in
    /// this suite as the adaptive RUMR variant).
    fn on_compute_start(&mut self, worker: usize, chunk: f64, time: f64) {
        let _ = (worker, chunk, time);
    }

    /// Notification: a chunk's computation completed on `worker` at `time`.
    fn on_compute_end(&mut self, worker: usize, chunk: f64, time: f64) {
        let _ = (worker, chunk, time);
    }

    /// Notification: a chunk fully arrived at `worker` at `time`.
    fn on_arrival(&mut self, worker: usize, chunk: f64, time: f64) {
        let _ = (worker, chunk, time);
    }

    /// Notification: `worker` crashed at `time` (fault injection). Any
    /// work it held is reported separately through
    /// [`Scheduler::on_chunk_lost`], once per lost chunk, immediately after
    /// this call.
    fn on_worker_failed(&mut self, worker: usize, time: f64) {
        let _ = (worker, time);
    }

    /// Notification: `worker` came back up at `time` with an empty queue
    /// (crash-recovery fault model).
    fn on_worker_recovered(&mut self, worker: usize, time: f64) {
        let _ = (worker, time);
    }

    /// Notification: a dispatched chunk of `chunk` units bound for (or held
    /// by) `worker` was destroyed at `time` by a fault. Recovery-aware
    /// schedulers re-queue the work (see `Decision::Redispatch`); plain
    /// schedulers ignore it and simply under-complete.
    fn on_chunk_lost(&mut self, worker: usize, chunk: f64, time: f64) {
        let _ = (worker, chunk, time);
    }
}

/// Boxed schedulers are schedulers, so wrappers like a recovery layer can
/// compose with `Box<dyn Scheduler>` produced by scheduler factories.
impl<S: Scheduler + ?Sized> Scheduler for Box<S> {
    fn name(&self) -> String {
        (**self).name()
    }
    fn next_dispatch(&mut self, view: &SimView<'_>) -> Decision {
        (**self).next_dispatch(view)
    }
    fn on_compute_start(&mut self, worker: usize, chunk: f64, time: f64) {
        (**self).on_compute_start(worker, chunk, time)
    }
    fn on_compute_end(&mut self, worker: usize, chunk: f64, time: f64) {
        (**self).on_compute_end(worker, chunk, time)
    }
    fn on_arrival(&mut self, worker: usize, chunk: f64, time: f64) {
        (**self).on_arrival(worker, chunk, time)
    }
    fn on_worker_failed(&mut self, worker: usize, time: f64) {
        (**self).on_worker_failed(worker, time)
    }
    fn on_worker_recovered(&mut self, worker: usize, time: f64) {
        (**self).on_worker_recovered(worker, time)
    }
    fn on_chunk_lost(&mut self, worker: usize, chunk: f64, time: f64) {
        (**self).on_chunk_lost(worker, chunk, time)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hungry_predicate() {
        let mut w = WorkerView::default();
        assert!(w.is_hungry());
        w.computing = true;
        assert!(!w.is_hungry());
        w.computing = false;
        w.queued_chunks = 1;
        assert!(!w.is_hungry());
        w.queued_chunks = 0;
        w.in_flight_chunks = 1;
        assert!(!w.is_hungry());
    }

    #[test]
    fn outstanding_work() {
        let w = WorkerView {
            assigned_work: 10.0,
            completed_work: 4.0,
            ..Default::default()
        };
        assert!((w.outstanding_work() - 6.0).abs() < 1e-12);
    }

    #[test]
    fn view_helpers() {
        let workers = vec![
            WorkerView {
                computing: true,
                ..Default::default()
            },
            WorkerView {
                assigned_work: 5.0,
                ..Default::default()
            },
            WorkerView {
                assigned_work: 2.0,
                ..Default::default()
            },
        ];
        let view = SimView {
            time: 0.0,
            workers: &workers,
        };
        assert_eq!(view.first_hungry(), Some(1));
        assert_eq!(view.least_loaded_hungry(), Some(2));

        let busy = vec![WorkerView {
            computing: true,
            ..Default::default()
        }];
        let view = SimView {
            time: 0.0,
            workers: &busy,
        };
        assert_eq!(view.first_hungry(), None);
        assert_eq!(view.least_loaded_hungry(), None);
    }

    #[test]
    fn least_loaded_tie_break_is_lowest_index() {
        let workers = vec![WorkerView::default(), WorkerView::default()];
        let view = SimView {
            time: 0.0,
            workers: &workers,
        };
        assert_eq!(view.least_loaded_hungry(), Some(0));
    }
}
