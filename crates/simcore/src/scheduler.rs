//! The online scheduling interface between algorithms and the engine.
//!
//! All algorithms in the suite — including the "precalculated" ones like UMR
//! and multi-installment — are expressed as *online policies*: whenever the
//! master's network interface is free, the engine asks the scheduler what to
//! send next. Precalculated schedules simply replay a fixed list; reactive
//! schedulers (Factoring, RUMR's greedy components) inspect the live
//! [`SimView`] to make demand-driven decisions. This uniform interface is
//! what lets the paper's robustness experiments compare both families under
//! identical prediction errors.

/// What the scheduler wants the master to do now.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Decision {
    /// Send `chunk` workload units to `worker` (0-based) immediately.
    Dispatch {
        /// Destination worker.
        worker: usize,
        /// Chunk size in workload units; must be finite and > 0.
        chunk: f64,
    },
    /// Nothing to send right now; ask again after the next simulation event.
    Wait,
    /// The whole workload has been dispatched; never ask again.
    Finished,
}

/// Live per-worker state visible to schedulers.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct WorkerView {
    /// True while a chunk's computation is in progress.
    pub computing: bool,
    /// Chunks received but not yet started.
    pub queued_chunks: usize,
    /// Workload units received but not yet started.
    pub queued_work: f64,
    /// Chunks dispatched (including one currently being sent) but not yet
    /// arrived at the worker.
    pub in_flight_chunks: usize,
    /// Workload units in flight.
    pub in_flight_work: f64,
    /// Total workload units ever dispatched to this worker.
    pub assigned_work: f64,
    /// Total workload units whose computation completed.
    pub completed_work: f64,
    /// Number of chunks whose computation completed.
    pub completed_chunks: usize,
}

impl WorkerView {
    /// A worker is *hungry* when it has nothing to do and nothing on the
    /// way: not computing, an empty local queue, and no in-flight transfer.
    /// RUMR's out-of-order dispatch and all pull-based schedulers key off
    /// this predicate.
    #[inline]
    pub fn is_hungry(&self) -> bool {
        !self.computing && self.queued_chunks == 0 && self.in_flight_chunks == 0
    }

    /// Workload units dispatched to this worker whose computation has not
    /// completed yet (in flight + queued + currently computing).
    #[inline]
    pub fn outstanding_work(&self) -> f64 {
        self.assigned_work - self.completed_work
    }
}

/// Read-only snapshot handed to the scheduler on every decision point.
#[derive(Debug)]
pub struct SimView<'a> {
    /// Current simulation time in seconds.
    pub time: f64,
    /// Per-worker live state, indexed by worker id.
    pub workers: &'a [WorkerView],
}

impl SimView<'_> {
    /// Index of the first hungry worker, if any.
    pub fn first_hungry(&self) -> Option<usize> {
        self.workers.iter().position(WorkerView::is_hungry)
    }

    /// Among hungry workers, the one with the least assigned work
    /// (deterministic tie-break: lowest index). `None` when nobody is
    /// hungry.
    pub fn least_loaded_hungry(&self) -> Option<usize> {
        self.workers
            .iter()
            .enumerate()
            .filter(|(_, w)| w.is_hungry())
            .min_by(|(i, a), (j, b)| {
                a.assigned_work
                    .partial_cmp(&b.assigned_work)
                    .expect("finite work totals")
                    .then(i.cmp(j))
            })
            .map(|(i, _)| i)
    }
}

/// An online scheduling policy driven by the simulation engine.
///
/// The engine calls [`Scheduler::next_dispatch`] whenever the master's
/// interface is free — at time 0, after every `SendEnd`, and after any other
/// event following a [`Decision::Wait`]. Once a scheduler returns
/// [`Decision::Finished`] it is never consulted again.
pub trait Scheduler {
    /// Human-readable algorithm name (used in reports).
    fn name(&self) -> String;

    /// Decide the master's next action. See [`Decision`].
    fn next_dispatch(&mut self, view: &SimView<'_>) -> Decision;

    /// Notification: a chunk's computation started on `worker` at `time`.
    ///
    /// Together with [`Scheduler::on_compute_end`] this lets reactive
    /// schedulers *measure* effective computation times and compare them to
    /// the platform's predictions — the basis of the online error
    /// estimation the paper's §6 sketches as future work (implemented in
    /// this suite as the adaptive RUMR variant).
    fn on_compute_start(&mut self, worker: usize, chunk: f64, time: f64) {
        let _ = (worker, chunk, time);
    }

    /// Notification: a chunk's computation completed on `worker` at `time`.
    fn on_compute_end(&mut self, worker: usize, chunk: f64, time: f64) {
        let _ = (worker, chunk, time);
    }

    /// Notification: a chunk fully arrived at `worker` at `time`.
    fn on_arrival(&mut self, worker: usize, chunk: f64, time: f64) {
        let _ = (worker, chunk, time);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hungry_predicate() {
        let mut w = WorkerView::default();
        assert!(w.is_hungry());
        w.computing = true;
        assert!(!w.is_hungry());
        w.computing = false;
        w.queued_chunks = 1;
        assert!(!w.is_hungry());
        w.queued_chunks = 0;
        w.in_flight_chunks = 1;
        assert!(!w.is_hungry());
    }

    #[test]
    fn outstanding_work() {
        let w = WorkerView {
            assigned_work: 10.0,
            completed_work: 4.0,
            ..Default::default()
        };
        assert!((w.outstanding_work() - 6.0).abs() < 1e-12);
    }

    #[test]
    fn view_helpers() {
        let workers = vec![
            WorkerView {
                computing: true,
                ..Default::default()
            },
            WorkerView {
                assigned_work: 5.0,
                ..Default::default()
            },
            WorkerView {
                assigned_work: 2.0,
                ..Default::default()
            },
        ];
        let view = SimView {
            time: 0.0,
            workers: &workers,
        };
        assert_eq!(view.first_hungry(), Some(1));
        assert_eq!(view.least_loaded_hungry(), Some(2));

        let busy = vec![WorkerView {
            computing: true,
            ..Default::default()
        }];
        let view = SimView {
            time: 0.0,
            workers: &busy,
        };
        assert_eq!(view.first_hungry(), None);
        assert_eq!(view.least_loaded_hungry(), None);
    }

    #[test]
    fn least_loaded_tie_break_is_lowest_index() {
        let workers = vec![WorkerView::default(), WorkerView::default()];
        let view = SimView {
            time: 0.0,
            workers: &workers,
        };
        assert_eq!(view.least_loaded_hungry(), Some(0));
    }
}
