//! Pluggable pending-event queues for the simulation engine.
//!
//! The engine needs one operation pair — insert an event keyed by
//! `(time, seq)` and remove the smallest such key — and its determinism
//! contract requires the *exact* `(time, seq)` ascending total order, so
//! simultaneous events fire in insertion (`seq`) order. Two backends
//! provide it:
//!
//! * [`QueueBackend::Heap`] — a plain binary heap. `O(log n)` per
//!   operation, no tuning, the reference implementation.
//! * [`QueueBackend::Calendar`] — a calendar queue (Brown '88): events
//!   hash into time buckets of width `w`, the dequeue cursor walks the
//!   buckets in time order, and events beyond the bucket window wait in a
//!   sorted overflow rung. Amortized `O(1)` per operation for the
//!   near-monotone, bounded-horizon timestamps a DES produces. The bucket
//!   width re-tunes itself from the observed event rate whenever the queue
//!   is cleared ([`EventQueue::clear`]), so repetition loops that reuse
//!   the queue run with a width fitted to the previous run.
//!
//! Both backends pop the identical sequence for any push history — the
//! bucketing only ever *partitions* the key order (all keys in bucket `d`
//! sort strictly before all keys in bucket `d + 1`), never reorders it —
//! so simulation results are byte-identical across backends. The
//! equivalence proptests in `tests/queue_backend_equivalence.rs` pin this.

/// Which pending-event queue implementation a run uses.
///
/// Selected per run via `SimConfig::queue_backend`. The calendar queue is
/// the default: it is at least as fast as the heap on the benchmark's
/// pinned cases and strictly faster on fault-heavy runs, where far-future
/// fault events would otherwise churn the heap. See
/// `docs/BENCHMARKS.md` ("Queue backends") for when each wins.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum QueueBackend {
    /// Binary min-heap on `(time, seq)` — the reference backend.
    Heap,
    /// Calendar queue with dynamic bucket width and a sorted overflow
    /// rung (default).
    #[default]
    Calendar,
}

impl QueueBackend {
    /// Parse a backend name as used by CLI flags (`"heap"` / `"calendar"`).
    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "heap" => Some(QueueBackend::Heap),
            "calendar" => Some(QueueBackend::Calendar),
            _ => None,
        }
    }

    /// The CLI/JSON name of the backend (`"heap"` / `"calendar"`).
    pub fn name(self) -> &'static str {
        match self {
            QueueBackend::Heap => "heap",
            QueueBackend::Calendar => "calendar",
        }
    }
}

impl std::fmt::Display for QueueBackend {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// One queued entry: the ordering key plus the caller's payload.
type Entry<T> = (f64, u64, T);

#[inline]
fn key<T>(e: &Entry<T>) -> (f64, u64) {
    (e.0, e.1)
}

/// Compare two `(time, seq)` keys; times must be finite (the engine
/// asserts this on every push).
#[inline]
fn key_lt(a: (f64, u64), b: (f64, u64)) -> bool {
    match a.0.partial_cmp(&b.0).expect("event times are finite") {
        std::cmp::Ordering::Less => true,
        std::cmp::Ordering::Greater => false,
        std::cmp::Ordering::Equal => a.1 < b.1,
    }
}

/// A pending-event priority queue over `(time, seq)` keys with a
/// selectable backend. `pop` always returns the entry with the smallest
/// key; keys are unique because the engine never reuses a sequence number
/// within a run.
#[derive(Debug)]
pub struct EventQueue<T> {
    imp: Imp<T>,
}

#[derive(Debug)]
enum Imp<T> {
    Heap(HeapQueue<T>),
    Calendar(CalendarQueue<T>),
}

impl<T> EventQueue<T> {
    /// Create a queue of the given backend, pre-sized for roughly
    /// `capacity` simultaneously pending events.
    pub fn with_capacity(backend: QueueBackend, capacity: usize) -> Self {
        let imp = match backend {
            QueueBackend::Heap => Imp::Heap(HeapQueue::with_capacity(capacity)),
            QueueBackend::Calendar => Imp::Calendar(CalendarQueue::with_capacity(capacity)),
        };
        EventQueue { imp }
    }

    /// The backend this queue runs on.
    pub fn backend(&self) -> QueueBackend {
        match self.imp {
            Imp::Heap(_) => QueueBackend::Heap,
            Imp::Calendar(_) => QueueBackend::Calendar,
        }
    }

    /// Insert an entry. `time` must be finite and non-negative.
    #[inline]
    pub fn push(&mut self, time: f64, seq: u64, item: T) {
        debug_assert!(time.is_finite() && time >= 0.0, "event time {time}");
        match &mut self.imp {
            Imp::Heap(q) => q.push(time, seq, item),
            Imp::Calendar(q) => q.push(time, seq, item),
        }
    }

    /// Remove and return the entry with the smallest `(time, seq)` key.
    #[inline]
    pub fn pop(&mut self) -> Option<(f64, u64, T)> {
        match &mut self.imp {
            Imp::Heap(q) => q.pop(),
            Imp::Calendar(q) => q.pop(),
        }
    }

    /// Number of pending entries.
    pub fn len(&self) -> usize {
        match &self.imp {
            Imp::Heap(q) => q.heap.len(),
            Imp::Calendar(q) => q.len,
        }
    }

    /// True when no entries are pending.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Empty the queue, keeping every buffer's allocation for reuse. The
    /// calendar backend additionally re-tunes its bucket width from the
    /// finished run's observed event rate, so the next run over the same
    /// scenario starts fitted.
    pub fn clear(&mut self) {
        match &mut self.imp {
            Imp::Heap(q) => q.heap.clear(),
            Imp::Calendar(q) => q.clear(),
        }
    }

    /// Debug probe: total allocated capacity (entries) across the queue's
    /// internal buffers, plus the bucket count for the calendar backend.
    /// Used by the reuse tests to assert that repetition loops stop
    /// growing allocations; not part of the stable API.
    #[doc(hidden)]
    pub fn capacity_probe(&self) -> usize {
        match &self.imp {
            Imp::Heap(q) => q.heap.capacity(),
            Imp::Calendar(q) => {
                q.buckets.len()
                    + q.buckets.iter().map(Vec::capacity).sum::<usize>()
                    + q.overflow.capacity()
            }
        }
    }
}

/// Binary-heap backend. `std`'s `BinaryHeap` is a max-heap, so the entry
/// ordering is reversed: the earliest `(time, seq)` compares greatest.
#[derive(Debug)]
struct HeapQueue<T> {
    heap: std::collections::BinaryHeap<HeapEntry<T>>,
}

struct HeapEntry<T> {
    time: f64,
    seq: u64,
    item: T,
}

impl<T> std::fmt::Debug for HeapEntry<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("HeapEntry")
            .field("time", &self.time)
            .field("seq", &self.seq)
            .finish()
    }
}

impl<T> PartialEq for HeapEntry<T> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl<T> Eq for HeapEntry<T> {}
impl<T> PartialOrd for HeapEntry<T> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<T> Ord for HeapEntry<T> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // Reverse: earliest time (then lowest seq) is the heap maximum.
        other
            .time
            .partial_cmp(&self.time)
            .expect("event times are finite")
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

impl<T> HeapQueue<T> {
    fn with_capacity(capacity: usize) -> Self {
        HeapQueue {
            heap: std::collections::BinaryHeap::with_capacity(capacity),
        }
    }

    #[inline]
    fn push(&mut self, time: f64, seq: u64, item: T) {
        self.heap.push(HeapEntry { time, seq, item });
    }

    #[inline]
    fn pop(&mut self) -> Option<(f64, u64, T)> {
        self.heap.pop().map(|e| (e.time, e.seq, e.item))
    }
}

/// Smallest and largest bucket widths the tuner may pick. The lower bound
/// keeps `time / width` well inside `u64` range for any simulation-scale
/// timestamp; the upper bound keeps day indices meaningful.
const MIN_WIDTH: f64 = 1e-9;
const MAX_WIDTH: f64 = 1e12;

/// Largest day index [`CalendarQueue::day`] may return. The raw `f64 → u64`
/// cast saturates at `u64::MAX` for `time/width ≳ 1.8e19`, which pinned the
/// dequeue window against the integer ceiling: after the overflow jump set
/// `cur_day` to a saturated day, `day < cur_day.saturating_add(nbuckets)`
/// was unsatisfiable and `pop` spun forever. Clamping one bit lower keeps
/// the window arithmetic exact; all days this large collapse into a single
/// sorted bucket, which still preserves the `(time, seq)` order.
const MAX_DAY: u64 = u64::MAX >> 1;

/// Target mean entries per bucket when re-tuning the width: a couple of
/// entries keeps the sorted-insert cheap while the cursor rarely walks an
/// empty bucket.
const WIDTH_EVENTS_PER_BUCKET: f64 = 3.0;

/// Calendar-queue backend (Brown '88, simplified to a sliding window).
///
/// Time is divided into *days* of width `width`; day `d` covers
/// `[d·width, (d+1)·width)`. The queue keeps a window of `buckets.len()`
/// (a power of two) consecutive days starting at `cur_day`, mapping day
/// `d` to bucket `d % buckets.len()`; entries beyond the window sit in
/// the sorted `overflow` rung and migrate into buckets as the cursor
/// advances. Each bucket is kept sorted *descending* by `(time, seq)`, so
/// the minimum is a `Vec::pop` from the back.
///
/// Correctness does not depend on the width: bucketing by
/// `floor(time / width)` preserves the key order between buckets, each
/// in-window day owns exactly one bucket, and overflow entries are by
/// construction later than every in-window entry. Width only moves cost
/// between empty-bucket cursor walks (too small) and long sorted inserts
/// (too large).
#[derive(Debug)]
struct CalendarQueue<T> {
    buckets: Vec<Vec<Entry<T>>>,
    /// `buckets.len() - 1`; bucket index is `day & day_mask`.
    day_mask: u64,
    width: f64,
    inv_width: f64,
    /// Day the dequeue cursor is on. Never decreases within a run.
    cur_day: u64,
    len: usize,
    /// Entries with `day >= cur_day + buckets.len()`, sorted descending by
    /// `(time, seq)` (minimum at the back).
    overflow: Vec<Entry<T>>,
    /// Pop statistics of the current run, for the width re-tune on
    /// `clear`.
    pops: u64,
    first_pop_time: f64,
    last_pop_time: f64,
}

impl<T> CalendarQueue<T> {
    fn with_capacity(capacity: usize) -> Self {
        let nbuckets = capacity.max(64).next_power_of_two();
        CalendarQueue {
            buckets: (0..nbuckets).map(|_| Vec::new()).collect(),
            day_mask: nbuckets as u64 - 1,
            width: 0.25,
            inv_width: 4.0,
            cur_day: 0,
            len: 0,
            overflow: Vec::new(),
            pops: 0,
            first_pop_time: 0.0,
            last_pop_time: 0.0,
        }
    }

    #[inline]
    fn day(&self, time: f64) -> u64 {
        // Saturating cast: negative → 0 (cannot occur; the engine clamps
        // times to `now ≥ 0`), and times are finite by the push contract.
        // The `MAX_DAY` clamp keeps extreme `time/width` ratios off the
        // u64 ceiling — see the constant's doc for the failure mode.
        ((time * self.inv_width) as u64).min(MAX_DAY)
    }

    /// Insert into the bucket owning `day`, keeping it sorted descending.
    #[inline]
    fn insert_bucket(&mut self, day: u64, entry: Entry<T>) {
        let bucket = &mut self.buckets[(day & self.day_mask) as usize];
        let k = key(&entry);
        // Descending: everything greater than the new key stays in front.
        let pos = bucket.partition_point(|e| key_lt(k, key(e)));
        bucket.insert(pos, entry);
    }

    #[inline]
    fn push(&mut self, time: f64, seq: u64, item: T) {
        let d = self.day(time);
        self.len += 1;
        if d >= self.cur_day.saturating_add(self.buckets.len() as u64) {
            let entry = (time, seq, item);
            let k = key(&entry);
            let pos = self.overflow.partition_point(|e| key_lt(k, key(e)));
            self.overflow.insert(pos, entry);
        } else {
            // A day before the cursor (possible right after a resize
            // re-based the window) clamps onto the cursor's bucket; the
            // sorted bucket still pops it first, so order is preserved.
            self.insert_bucket(d.max(self.cur_day), (time, seq, item));
            if self.len - self.overflow.len() > 4 * self.buckets.len() {
                self.grow();
            }
        }
    }

    fn pop(&mut self) -> Option<(f64, u64, T)> {
        if self.len == 0 {
            return None;
        }
        loop {
            // Migrate overflow entries whose day has entered the window.
            while let Some(e) = self.overflow.last() {
                let d = self.day(e.0);
                if d < self.cur_day.saturating_add(self.buckets.len() as u64) {
                    let entry = self.overflow.pop().expect("just peeked");
                    self.insert_bucket(d.max(self.cur_day), entry);
                } else {
                    break;
                }
            }
            if self.len == self.overflow.len() {
                // Every remaining entry is beyond the window: jump the
                // cursor to the earliest one instead of walking day by day.
                let t = self.overflow.last().expect("len > 0").0;
                self.cur_day = self.day(t);
                continue;
            }
            let slot = (self.cur_day & self.day_mask) as usize;
            if let Some(entry) = self.buckets[slot].pop() {
                self.len -= 1;
                if self.pops == 0 {
                    self.first_pop_time = entry.0;
                }
                self.last_pop_time = entry.0;
                self.pops += 1;
                return Some((entry.0, entry.1, entry.2));
            }
            self.cur_day += 1;
        }
    }

    /// Double the bucket count and re-base the window on the earliest
    /// pending entry. `O(len)`; triggered only when occupancy exceeds
    /// four entries per bucket, so the cost amortizes.
    fn grow(&mut self) {
        let mut entries: Vec<Entry<T>> = Vec::with_capacity(self.len);
        for bucket in &mut self.buckets {
            entries.append(bucket);
        }
        entries.append(&mut self.overflow);
        let nbuckets = (self.buckets.len() * 2).max(64);
        self.buckets.resize_with(nbuckets, Vec::new);
        self.day_mask = nbuckets as u64 - 1;
        let tmin = entries.iter().map(|e| e.0).fold(f64::INFINITY, f64::min);
        if tmin.is_finite() {
            self.cur_day = self.day(tmin);
        }
        let total = std::mem::replace(&mut self.len, 0);
        for (time, seq, item) in entries {
            self.push(time, seq, item);
        }
        debug_assert_eq!(self.len, total);
    }

    fn clear(&mut self) {
        for bucket in &mut self.buckets {
            bucket.clear();
        }
        self.overflow.clear();
        self.len = 0;
        self.cur_day = 0;
        // Re-tune the width to the finished run's mean event spacing, so
        // the next run over the same scenario starts with ~3 entries per
        // occupied bucket instead of the construction-time guess.
        if self.pops >= 64 {
            let span = self.last_pop_time - self.first_pop_time;
            if span > 0.0 {
                let mean_gap = span / self.pops as f64;
                self.set_width(mean_gap * WIDTH_EVENTS_PER_BUCKET);
            }
        }
        self.pops = 0;
        self.first_pop_time = 0.0;
        self.last_pop_time = 0.0;
    }

    fn set_width(&mut self, width: f64) {
        let w = width.clamp(MIN_WIDTH, MAX_WIDTH);
        self.width = w;
        self.inv_width = 1.0 / w;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn drain<T>(q: &mut EventQueue<T>) -> Vec<(f64, u64)> {
        std::iter::from_fn(|| q.pop().map(|(t, s, _)| (t, s))).collect()
    }

    fn both_backends() -> [EventQueue<u32>; 2] {
        [
            EventQueue::with_capacity(QueueBackend::Heap, 8),
            EventQueue::with_capacity(QueueBackend::Calendar, 8),
        ]
    }

    #[test]
    fn backend_names_round_trip() {
        for b in [QueueBackend::Heap, QueueBackend::Calendar] {
            assert_eq!(QueueBackend::parse(b.name()), Some(b));
            assert_eq!(format!("{b}"), b.name());
        }
        assert_eq!(QueueBackend::parse("nope"), None);
        assert_eq!(QueueBackend::default(), QueueBackend::Calendar);
    }

    #[test]
    fn pops_in_time_then_seq_order() {
        for mut q in both_backends() {
            assert_eq!(q.pop(), None);
            q.push(3.0, 0, 0);
            q.push(1.0, 1, 1);
            q.push(2.0, 2, 2);
            q.push(1.0, 3, 3); // same time as seq 1: seq breaks the tie
            assert_eq!(
                drain(&mut q),
                vec![(1.0, 1), (1.0, 3), (2.0, 2), (3.0, 0)],
                "{:?}",
                q.backend()
            );
        }
    }

    #[test]
    fn interleaved_push_pop_matches_heap() {
        // A deterministic near-monotone workload with simultaneous events,
        // far-future outliers (fault-style) and mid-run insertions.
        let mut heap = EventQueue::with_capacity(QueueBackend::Heap, 4);
        let mut cal = EventQueue::with_capacity(QueueBackend::Calendar, 4);
        let mut seq = 0u64;
        let mut now = 0.0f64;
        let mut x = 0x2545_F491_4F6C_DD1Du64;
        let mut rand = move || {
            // xorshift: deterministic pseudo-random stream, no RNG dep.
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            x
        };
        for round in 0..5000 {
            let n_push = (rand() % 4) as usize;
            for _ in 0..n_push {
                let r = rand();
                let dt = match r % 10 {
                    0 => 0.0,                           // simultaneous
                    1..=7 => (r % 1000) as f64 / 997.0, // near future
                    _ => 50.0 + (r % 5000) as f64,      // far future
                };
                heap.push(now + dt, seq, round);
                cal.push(now + dt, seq, round);
                seq += 1;
            }
            if rand() % 3 != 0 {
                let a = heap.pop();
                let b = cal.pop();
                match (a, b) {
                    (None, None) => {}
                    (Some((ta, sa, _)), Some((tb, sb, _))) => {
                        assert_eq!((ta.to_bits(), sa), (tb.to_bits(), sb), "round {round}");
                        assert!(ta >= now);
                        now = ta;
                    }
                    (a, b) => panic!("backend divergence: {a:?} vs {b:?}"),
                }
            }
            assert_eq!(heap.len(), cal.len());
        }
        let (a, b) = (drain(&mut heap), drain(&mut cal));
        assert_eq!(a, b);
    }

    #[test]
    fn grow_preserves_order() {
        let mut q = EventQueue::with_capacity(QueueBackend::Calendar, 1);
        // Push far more entries than buckets, all clustered: forces grow().
        for i in 0..5000u64 {
            q.push((i % 7) as f64 * 1e-3, i, ());
        }
        let order = drain(&mut q);
        let mut expect: Vec<(f64, u64)> =
            (0..5000u64).map(|i| ((i % 7) as f64 * 1e-3, i)).collect();
        expect.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap().then(a.1.cmp(&b.1)));
        assert_eq!(order, expect);
    }

    #[test]
    fn clear_retains_capacity_and_retunes() {
        let mut q = EventQueue::with_capacity(QueueBackend::Calendar, 8);
        for rep in 0..5 {
            for i in 0..500u64 {
                q.push(i as f64 * 0.01, i, ());
            }
            assert_eq!(drain(&mut q).len(), 500, "rep {rep}");
            q.clear();
            assert!(q.is_empty());
        }
        let probe_after_warm = q.capacity_probe();
        for _ in 0..20 {
            for i in 0..500u64 {
                q.push(i as f64 * 0.01, i, ());
            }
            while q.pop().is_some() {}
            q.clear();
        }
        assert_eq!(
            q.capacity_probe(),
            probe_after_warm,
            "steady-state repetitions must not grow the calendar's buffers"
        );
    }

    #[test]
    fn heap_capacity_probe_reports_heap_capacity() {
        let q: EventQueue<()> = EventQueue::with_capacity(QueueBackend::Heap, 100);
        assert!(q.capacity_probe() >= 100);
    }

    #[test]
    fn extreme_timestamps_match_heap() {
        // Regression: before the MAX_DAY clamp, any timestamp with
        // `time/width` beyond u64 range saturated to day u64::MAX; the
        // overflow jump then set `cur_day` to the saturated day, the
        // migration window `day < cur_day + nbuckets` became unsatisfiable,
        // and pop() looped forever. The backends must agree (and terminate)
        // at any representable timestamp.
        let mut heap = EventQueue::with_capacity(QueueBackend::Heap, 8);
        let mut cal = EventQueue::with_capacity(QueueBackend::Calendar, 8);
        let times = [0.0, 1.0, 4.7e18, 1e19, 2.5e19, 1e300, f64::MAX];
        for (i, &t) in times.iter().enumerate() {
            heap.push(t, i as u64, ());
            cal.push(t, i as u64, ());
        }
        assert_eq!(drain(&mut heap), drain(&mut cal));
        // Interleaved variant: advance the cursor first, then force the
        // overflow jump straight to a saturating day.
        heap.push(0.5, 100, ());
        cal.push(0.5, 100, ());
        heap.push(9.9e18, 101, ());
        cal.push(9.9e18, 101, ());
        assert_eq!(heap.pop(), cal.pop());
        heap.push(8.8e18, 102, ());
        cal.push(8.8e18, 102, ());
        assert_eq!(drain(&mut heap), drain(&mut cal));
    }

    #[test]
    fn overflow_jump_skips_empty_days() {
        let mut q = EventQueue::with_capacity(QueueBackend::Calendar, 8);
        q.push(0.0, 0, ());
        q.push(1e6, 1, ()); // far beyond the initial window
        q.push(2e6, 2, ());
        assert_eq!(drain(&mut q), vec![(0.0, 0), (1e6, 1), (2e6, 2)]);
    }
}
