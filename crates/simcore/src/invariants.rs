//! Streaming invariant checking: the physical platform model, asserted
//! while the engine runs.
//!
//! [`Trace::validate`](crate::Trace::validate) checks the same invariants
//! post-hoc, but needs a [`TraceMode::Full`](crate::TraceMode::Full) trace
//! held in memory. The [`InvariantChecker`] here consumes each
//! [`TraceEvent`] as the engine emits it — the engine calls it from its
//! event recorder, which fires in **every** trace mode — so audits run
//! under `MetricsOnly` (or even `Off`) with O(live chunks) memory instead
//! of O(events).
//!
//! Checked while streaming:
//!
//! * **Monotone event time** — no event may fire before its predecessor.
//! * **Serial master occupation** — at most `max_sends` transfers
//!   (`nLat + chunk/B` intervals, and output returns) open at once.
//! * **Per-worker serial compute** — one computation at a time, consuming
//!   arrived chunks in FIFO order.
//! * **Causality** — arrival only after a completed send, compute only
//!   after arrival, fault events alternate sanely, a lost chunk is retired
//!   from exactly the lifecycle stage it occupied.
//! * **Value sanity** — finite, non-negative times and chunk sizes.
//!
//! At the end of the run, [`InvariantChecker::finalize`] closes the books:
//! structural end-state (no dangling transfers or computations — skipped
//! when the engine legitimately gave up on unreachable work after faults)
//! and **work conservation against the engine's own ledger**: the sums of
//! chunk sizes observed in the event stream must reproduce the
//! dispatched/completed/lost totals the engine reports.
//!
//! Enable via [`SimConfig::audit`](crate::SimConfig); findings are returned
//! in [`SimResult::audit`](crate::SimResult).

use std::fmt;

use crate::trace::{LostStage, TraceEvent};

/// Float tolerance for matching chunk sizes and comparing event times,
/// identical to the post-hoc validator's.
const TIME_EPS: f64 = 1e-9;

/// Findings kept verbatim before the checker starts counting instead of
/// storing (one engine bug typically violates an invariant at every event,
/// and an audit report needs the first few, not millions).
const MAX_FINDINGS: usize = 32;

/// The invariant class a finding violates.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum InvariantKind {
    /// An event fired earlier than its predecessor.
    NonMonotoneTime,
    /// The master had more simultaneous transfers open than the platform
    /// allows (or a transfer ended that was never started).
    MasterOccupation,
    /// A worker computed two chunks at once, or a computation ended that
    /// never started.
    SerialCompute,
    /// A causal edge was violated (arrival without send, compute without
    /// arrival, fault-event misordering, loss from a wrong stage).
    Causality,
    /// A non-finite or negative time or chunk size.
    InvalidValue,
    /// The event stream's work sums disagree with the engine's ledger, or
    /// dispatched work is not fully accounted as computed + lost.
    LedgerMismatch,
    /// Multi-load arbitration violated a job's release time: work was
    /// dispatched on a job's behalf before the job arrived.
    JobRelease,
}

impl fmt::Display for InvariantKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            InvariantKind::NonMonotoneTime => "non-monotone event time",
            InvariantKind::MasterOccupation => "master occupation violated",
            InvariantKind::SerialCompute => "serial compute violated",
            InvariantKind::Causality => "causality violated",
            InvariantKind::InvalidValue => "invalid value",
            InvariantKind::LedgerMismatch => "ledger mismatch",
            InvariantKind::JobRelease => "dispatch before job release",
        })
    }
}

/// One invariant violation caught by the streaming checker.
#[derive(Debug, Clone, PartialEq)]
pub struct InvariantFinding {
    /// Which invariant class was violated.
    pub kind: InvariantKind,
    /// 0-based index of the offending event in the run's event stream
    /// (`usize::MAX` for end-of-run findings).
    pub event_index: usize,
    /// Simulation time of the offending event (end-of-run findings carry
    /// the final event's time).
    pub time: f64,
    /// Worker involved, if the violation is worker-local.
    pub worker: Option<usize>,
    /// Human-readable description of what exactly went wrong.
    pub detail: String,
}

impl fmt::Display for InvariantFinding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}] ", self.kind)?;
        if self.event_index != usize::MAX {
            write!(f, "event {} ", self.event_index)?;
        }
        write!(f, "t={:.6}: {}", self.time, self.detail)?;
        if let Some(w) = self.worker {
            write!(f, " (worker {w})")?;
        }
        Ok(())
    }
}

/// The engine's end-of-run work ledger, handed to
/// [`InvariantChecker::finalize`] for cross-checking against the event
/// stream.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WorkLedger {
    /// Workload units the engine dispatched (sum over send starts).
    pub dispatched: f64,
    /// Workload units the engine recorded as completed.
    pub completed: f64,
    /// Workload units the engine recorded as destroyed by faults.
    pub lost: f64,
    /// Workload units the engine reports as dispatched-but-unaccounted at
    /// termination (non-zero only when a faulty run gave up on unreachable
    /// work; structural end-state checks are skipped in that case).
    pub outstanding: f64,
}

/// Streaming checker of the platform model's physical invariants.
///
/// Mirrors [`Trace::validate`](crate::Trace::validate)'s state machine
/// event-for-event, but runs *inside* the engine with no stored trace.
/// Feed every emitted [`TraceEvent`] to [`InvariantChecker::observe`], then
/// call [`InvariantChecker::finalize`] with the engine's [`WorkLedger`].
#[derive(Debug, Clone)]
pub struct InvariantChecker {
    num_workers: usize,
    max_sends: usize,
    event_index: usize,
    last_time: f64,
    // Mirror of the validator's chunk-lifecycle state.
    open_sends: Vec<Vec<f64>>,
    open_returns: Vec<Vec<f64>>,
    open_send_count: usize,
    sent_not_arrived: Vec<std::collections::VecDeque<f64>>,
    queued: Vec<std::collections::VecDeque<f64>>,
    computing: Vec<Option<f64>>,
    alive: Vec<bool>,
    // Observed work sums for the ledger cross-check.
    seen_dispatched: f64,
    seen_computed: f64,
    seen_lost: f64,
    findings: Vec<InvariantFinding>,
    suppressed: usize,
}

impl InvariantChecker {
    /// A checker for a platform with `num_workers` workers and at most
    /// `max_sends` concurrent master transfers (1 = the paper's serial
    /// link).
    pub fn new(num_workers: usize, max_sends: usize) -> Self {
        InvariantChecker {
            num_workers,
            max_sends,
            event_index: 0,
            last_time: 0.0,
            open_sends: vec![Vec::new(); num_workers],
            open_returns: vec![Vec::new(); num_workers],
            open_send_count: 0,
            sent_not_arrived: vec![Default::default(); num_workers],
            queued: vec![Default::default(); num_workers],
            computing: vec![None; num_workers],
            alive: vec![true; num_workers],
            seen_dispatched: 0.0,
            seen_computed: 0.0,
            seen_lost: 0.0,
            findings: Vec::new(),
            suppressed: 0,
        }
    }

    /// Reset to the initial state (engine reuse between repetitions).
    pub fn reset(&mut self) {
        *self = InvariantChecker::new(self.num_workers, self.max_sends);
    }

    /// Findings recorded so far.
    pub fn findings(&self) -> &[InvariantFinding] {
        &self.findings
    }

    /// Violations dropped after the findings cap was reached.
    pub fn suppressed(&self) -> usize {
        self.suppressed
    }

    fn report(
        &mut self,
        kind: InvariantKind,
        time: f64,
        worker: Option<usize>,
        detail: impl Into<String>,
    ) {
        if self.findings.len() >= MAX_FINDINGS {
            self.suppressed += 1;
            return;
        }
        self.findings.push(InvariantFinding {
            kind,
            event_index: self.event_index,
            time,
            worker,
            detail: detail.into(),
        });
    }

    /// Feed one emitted event through the state machine.
    pub fn observe(&mut self, e: &TraceEvent) {
        let t = e.time();
        let w = e.worker();
        if !t.is_finite() || t < 0.0 {
            self.report(
                InvariantKind::InvalidValue,
                t,
                Some(w),
                format!("event time {t} is not a finite non-negative number"),
            );
            self.event_index += 1;
            return;
        }
        if w >= self.num_workers {
            self.report(
                InvariantKind::InvalidValue,
                t,
                Some(w),
                format!("worker index {w} out of range (< {})", self.num_workers),
            );
            self.event_index += 1;
            return;
        }
        if t < self.last_time - TIME_EPS {
            self.report(
                InvariantKind::NonMonotoneTime,
                t,
                Some(w),
                format!("time {t} precedes previous event at {}", self.last_time),
            );
        }
        self.last_time = self.last_time.max(t);

        let near = |a: f64, b: f64| (a - b).abs() < TIME_EPS;
        match *e {
            TraceEvent::SendStart { worker, chunk, .. } => {
                if !chunk.is_finite() || chunk < 0.0 {
                    self.report(
                        InvariantKind::InvalidValue,
                        t,
                        Some(worker),
                        format!("chunk size {chunk} is not a finite non-negative number"),
                    );
                }
                if self.open_send_count >= self.max_sends {
                    self.report(
                        InvariantKind::MasterOccupation,
                        t,
                        Some(worker),
                        format!(
                            "send of {chunk} started with {} transfer(s) already open (max {})",
                            self.open_send_count, self.max_sends
                        ),
                    );
                }
                self.seen_dispatched += chunk;
                self.open_sends[worker].push(chunk);
                self.open_send_count += 1;
            }
            TraceEvent::SendEnd { worker, chunk, .. } => {
                match self.open_sends[worker]
                    .iter()
                    .position(|&sc| near(sc, chunk))
                {
                    Some(pos) => {
                        self.open_sends[worker].remove(pos);
                        self.open_send_count -= 1;
                        self.sent_not_arrived[worker].push_back(chunk);
                    }
                    None => self.report(
                        InvariantKind::MasterOccupation,
                        t,
                        Some(worker),
                        format!("send of {chunk} ended but was never started"),
                    ),
                }
            }
            TraceEvent::Arrival { worker, chunk, .. } => {
                match self.sent_not_arrived[worker].pop_front() {
                    Some(sc) if near(sc, chunk) => self.queued[worker].push_back(chunk),
                    _ => self.report(
                        InvariantKind::Causality,
                        t,
                        Some(worker),
                        format!("chunk {chunk} arrived without a completed send"),
                    ),
                }
            }
            TraceEvent::ComputeStart { worker, chunk, .. } => {
                if let Some(busy) = self.computing[worker] {
                    self.report(
                        InvariantKind::SerialCompute,
                        t,
                        Some(worker),
                        format!("compute of {chunk} started while {busy} still computing"),
                    );
                }
                match self.queued[worker].pop_front() {
                    Some(qc) if near(qc, chunk) => self.computing[worker] = Some(chunk),
                    _ => self.report(
                        InvariantKind::Causality,
                        t,
                        Some(worker),
                        format!("compute of {chunk} started before the chunk arrived"),
                    ),
                }
            }
            TraceEvent::ComputeEnd { worker, chunk, .. } => {
                self.seen_computed += chunk;
                match self.computing[worker].take() {
                    Some(cc) if near(cc, chunk) => {}
                    _ => self.report(
                        InvariantKind::SerialCompute,
                        t,
                        Some(worker),
                        format!("compute of {chunk} ended but was not running"),
                    ),
                }
            }
            TraceEvent::ReturnStart { worker, bytes, .. } => {
                if !bytes.is_finite() || bytes < 0.0 {
                    self.report(
                        InvariantKind::InvalidValue,
                        t,
                        Some(worker),
                        format!("return size {bytes} is not a finite non-negative number"),
                    );
                }
                if self.open_send_count >= self.max_sends {
                    self.report(
                        InvariantKind::MasterOccupation,
                        t,
                        Some(worker),
                        format!(
                            "return of {bytes} started with {} transfer(s) already open (max {})",
                            self.open_send_count, self.max_sends
                        ),
                    );
                }
                self.open_returns[worker].push(bytes);
                self.open_send_count += 1;
            }
            TraceEvent::ReturnEnd { worker, bytes, .. } => {
                match self.open_returns[worker]
                    .iter()
                    .position(|&b| near(b, bytes))
                {
                    Some(pos) => {
                        self.open_returns[worker].remove(pos);
                        self.open_send_count -= 1;
                    }
                    None => self.report(
                        InvariantKind::Causality,
                        t,
                        Some(worker),
                        format!("return of {bytes} completed without a matching start"),
                    ),
                }
            }
            TraceEvent::WorkerDown { worker, .. } => {
                if !self.alive[worker] {
                    self.report(
                        InvariantKind::Causality,
                        t,
                        Some(worker),
                        "worker went down while already down",
                    );
                }
                self.alive[worker] = false;
            }
            TraceEvent::WorkerUp { worker, .. } => {
                if self.alive[worker] {
                    self.report(
                        InvariantKind::Causality,
                        t,
                        Some(worker),
                        "worker recovered while already up",
                    );
                }
                self.alive[worker] = true;
            }
            TraceEvent::ChunkLost {
                worker,
                chunk,
                stage,
                ..
            } => {
                if !chunk.is_finite() || chunk < 0.0 {
                    self.report(
                        InvariantKind::InvalidValue,
                        t,
                        Some(worker),
                        format!("lost chunk size {chunk} is not a finite non-negative number"),
                    );
                    self.event_index += 1;
                    return;
                }
                self.seen_lost += chunk;
                let found = match stage {
                    LostStage::Computing => self.computing[worker]
                        .filter(|&c| near(c, chunk))
                        .map(|_| self.computing[worker] = None)
                        .is_some(),
                    LostStage::Queued => self.queued[worker]
                        .iter()
                        .position(|&c| near(c, chunk))
                        .map(|pos| {
                            self.queued[worker].remove(pos);
                        })
                        .is_some(),
                    LostStage::InFlight => self.sent_not_arrived[worker]
                        .iter()
                        .position(|&c| near(c, chunk))
                        .map(|pos| {
                            self.sent_not_arrived[worker].remove(pos);
                        })
                        .is_some(),
                    LostStage::Sending => self.open_sends[worker]
                        .iter()
                        .position(|&c| near(c, chunk))
                        .map(|pos| {
                            self.open_sends[worker].remove(pos);
                            self.open_send_count -= 1;
                        })
                        .is_some(),
                };
                if !found {
                    self.report(
                        InvariantKind::Causality,
                        t,
                        Some(worker),
                        format!("chunk {chunk} lost in stage {stage:?} it never reached"),
                    );
                }
            }
            TraceEvent::Redispatch { .. } => {
                // Accounting marker; the transfer is the SendStart after it.
            }
        }
        self.event_index += 1;
    }

    /// Close the books: structural end-state plus conservation against the
    /// engine's ledger. Returns all findings (streamed + final), leaving
    /// the checker in a consumed state; a suppression notice is appended
    /// when more than [`MAX_FINDINGS`] violations occurred.
    ///
    /// When `ledger.outstanding` is materially non-zero the run ended with
    /// the engine giving up on unreachable work (faulty run), so dangling
    /// transfers/computations are expected and the structural checks are
    /// skipped; the ledger identity `dispatched = completed + lost +
    /// outstanding` is checked regardless.
    pub fn finalize(&mut self, ledger: WorkLedger) -> Vec<InvariantFinding> {
        self.event_index = usize::MAX;
        let t = self.last_time;
        let scale = ledger.dispatched.abs().max(1.0);
        let gave_up = ledger.outstanding.abs() > 1e-6 * scale;

        if !gave_up {
            if self.open_send_count > 0 {
                self.report(
                    InvariantKind::MasterOccupation,
                    t,
                    None,
                    format!(
                        "{} transfer(s) still open at end of run",
                        self.open_send_count
                    ),
                );
            }
            for w in 0..self.num_workers {
                if let Some(c) = self.computing[w] {
                    self.report(
                        InvariantKind::SerialCompute,
                        t,
                        Some(w),
                        format!("chunk {c} still computing at end of run"),
                    );
                }
            }
        }

        // The event stream must reproduce the engine's own ledger …
        for (what, seen, reported) in [
            ("dispatched", self.seen_dispatched, ledger.dispatched),
            ("completed", self.seen_computed, ledger.completed),
            ("lost", self.seen_lost, ledger.lost),
        ] {
            if (seen - reported).abs() > 1e-6 * scale {
                self.report(
                    InvariantKind::LedgerMismatch,
                    t,
                    None,
                    format!("event stream saw {seen} {what} work, ledger reports {reported}"),
                );
            }
        }
        // … and the ledger itself must balance.
        let accounted = ledger.completed + ledger.lost + ledger.outstanding;
        if (ledger.dispatched - accounted).abs() > 1e-6 * scale {
            self.report(
                InvariantKind::LedgerMismatch,
                t,
                None,
                format!(
                    "dispatched {} but completed {} + lost {} + outstanding {} = {accounted}",
                    ledger.dispatched, ledger.completed, ledger.lost, ledger.outstanding
                ),
            );
        }

        if self.suppressed > 0 {
            let n = self.suppressed;
            self.findings.push(InvariantFinding {
                kind: InvariantKind::LedgerMismatch,
                event_index: usize::MAX,
                time: t,
                worker: None,
                detail: format!("…and {n} further violation(s) suppressed"),
            });
        }
        std::mem::take(&mut self.findings)
    }
}

/// One job's end-of-run work totals, handed to
/// [`MultiJobChecker::finalize`] by the multi-load arbitration layer.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct JobLedgerEntry {
    /// Workload units dispatched on the job's behalf (redispatches
    /// included).
    pub dispatched: f64,
    /// Workload units whose computation completed.
    pub completed: f64,
    /// Workload units destroyed by faults.
    pub lost: f64,
}

/// Multi-load companion to [`InvariantChecker`]: per-job ledger and
/// cross-job master-exclusivity checks.
///
/// The engine-level checker audits the *physics* (serial master, serial
/// compute, global work conservation) but is blind to job identity — a
/// multi-load run that charged job A's chunk to job B, or served a job
/// before its release, passes it cleanly. This checker consumes the
/// arbitration layer's job-attributed observations instead:
///
/// * [`observe_dispatch`](MultiJobChecker::observe_dispatch) — every
///   dispatch, checked against the job's release time, accumulated into
///   the per-job dispatched sum.
/// * [`observe_send_interval`](MultiJobChecker::observe_send_interval) —
///   the master-occupation interval of each send in dispatch order;
///   intervals of *different* jobs must not overlap on a serial master
///   (same-job overlap is already the engine checker's
///   `MasterOccupation`).
/// * [`finalize`](MultiJobChecker::finalize) — per-job work conservation:
///   the dispatches seen must reproduce each job's reported ledger, and
///   each ledger must balance (`dispatched = completed + lost` up to the
///   job's declared outstanding remainder).
#[derive(Debug, Clone)]
pub struct MultiJobChecker {
    releases: Vec<f64>,
    seen_dispatched: Vec<f64>,
    last_send: Option<(usize, f64)>,
    findings: Vec<InvariantFinding>,
    suppressed: usize,
}

impl MultiJobChecker {
    /// A checker for jobs with the given release times.
    pub fn new(releases: Vec<f64>) -> Self {
        let n = releases.len();
        MultiJobChecker {
            releases,
            seen_dispatched: vec![0.0; n],
            last_send: None,
            findings: Vec::new(),
            suppressed: 0,
        }
    }

    fn report(&mut self, kind: InvariantKind, time: f64, detail: String) {
        if self.findings.len() >= MAX_FINDINGS {
            self.suppressed += 1;
            return;
        }
        self.findings.push(InvariantFinding {
            kind,
            event_index: usize::MAX,
            time,
            worker: None,
            detail,
        });
    }

    /// Record one dispatch attributed to `job` at `time` for `chunk`
    /// units. Flags dispatches before the job's release and unknown job
    /// indices.
    pub fn observe_dispatch(&mut self, job: usize, time: f64, chunk: f64) {
        let Some(&release) = self.releases.get(job) else {
            self.report(
                InvariantKind::JobRelease,
                time,
                format!("dispatch attributed to unknown job {job}"),
            );
            return;
        };
        if time < release - TIME_EPS {
            self.report(
                InvariantKind::JobRelease,
                time,
                format!("job {job} dispatched at t={time} before its release {release}"),
            );
        }
        self.seen_dispatched[job] += chunk;
    }

    /// Record one master-occupation interval `[start, end]` attributed to
    /// `job`, in dispatch order. Two consecutive intervals belonging to
    /// different jobs must not overlap.
    pub fn observe_send_interval(&mut self, job: usize, start: f64, end: f64) {
        if let Some((prev_job, prev_end)) = self.last_send {
            if prev_job != job && start < prev_end - TIME_EPS {
                self.report(
                    InvariantKind::MasterOccupation,
                    start,
                    format!(
                        "job {job}'s send starts at t={start} while job {prev_job}'s \
                         send is still open until t={prev_end}"
                    ),
                );
            }
        }
        self.last_send = Some((job, end.max(start)));
    }

    /// Close the books: each job's observed dispatches must reproduce its
    /// reported ledger, and each ledger must balance. `gave_up` skips the
    /// balance check (faulty runs without recovery legitimately leave
    /// lost work unaccounted as completed). Returns all findings and
    /// resets the checker.
    pub fn finalize(&mut self, per_job: &[JobLedgerEntry], gave_up: bool) -> Vec<InvariantFinding> {
        if per_job.len() != self.releases.len() {
            let (got, want) = (per_job.len(), self.releases.len());
            self.report(
                InvariantKind::LedgerMismatch,
                0.0,
                format!("{got} job ledgers reported for {want} jobs"),
            );
        }
        for (j, entry) in per_job.iter().enumerate() {
            let seen = self.seen_dispatched.get(j).copied().unwrap_or(0.0);
            let scale = entry.dispatched.abs().max(1.0);
            if (seen - entry.dispatched).abs() > 1e-6 * scale {
                self.report(
                    InvariantKind::LedgerMismatch,
                    0.0,
                    format!(
                        "job {j}: dispatch stream saw {seen} units, ledger reports {}",
                        entry.dispatched
                    ),
                );
            }
            let accounted = entry.completed + entry.lost;
            if !gave_up && (entry.dispatched - accounted).abs() > 1e-6 * scale {
                self.report(
                    InvariantKind::LedgerMismatch,
                    0.0,
                    format!(
                        "job {j}: dispatched {} but completed {} + lost {} = {accounted}",
                        entry.dispatched, entry.completed, entry.lost
                    ),
                );
            }
        }
        if self.suppressed > 0 {
            let n = self.suppressed;
            self.findings.push(InvariantFinding {
                kind: InvariantKind::LedgerMismatch,
                event_index: usize::MAX,
                time: 0.0,
                worker: None,
                detail: format!("…and {n} further violation(s) suppressed"),
            });
        }
        self.last_send = None;
        self.seen_dispatched.iter_mut().for_each(|d| *d = 0.0);
        self.suppressed = 0;
        std::mem::take(&mut self.findings)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn clean_ledger(dispatched: f64, completed: f64, lost: f64) -> WorkLedger {
        WorkLedger {
            dispatched,
            completed,
            lost,
            outstanding: dispatched - completed - lost,
        }
    }

    /// Replay of the trace-module's valid fixture through the streaming
    /// checker: two chunks, serial sends, serial computes.
    fn feed_valid(checker: &mut InvariantChecker) {
        let events = [
            TraceEvent::SendStart {
                worker: 0,
                chunk: 5.0,
                time: 0.0,
            },
            TraceEvent::SendEnd {
                worker: 0,
                chunk: 5.0,
                time: 1.0,
            },
            TraceEvent::Arrival {
                worker: 0,
                chunk: 5.0,
                time: 1.0,
            },
            TraceEvent::SendStart {
                worker: 1,
                chunk: 5.0,
                time: 1.0,
            },
            TraceEvent::ComputeStart {
                worker: 0,
                chunk: 5.0,
                time: 1.0,
            },
            TraceEvent::SendEnd {
                worker: 1,
                chunk: 5.0,
                time: 2.0,
            },
            TraceEvent::Arrival {
                worker: 1,
                chunk: 5.0,
                time: 2.0,
            },
            TraceEvent::ComputeStart {
                worker: 1,
                chunk: 5.0,
                time: 2.0,
            },
            TraceEvent::ComputeEnd {
                worker: 0,
                chunk: 5.0,
                time: 6.0,
            },
            TraceEvent::ComputeEnd {
                worker: 1,
                chunk: 5.0,
                time: 7.0,
            },
        ];
        for e in &events {
            checker.observe(e);
        }
    }

    #[test]
    fn clean_run_has_no_findings() {
        let mut c = InvariantChecker::new(2, 1);
        feed_valid(&mut c);
        let findings = c.finalize(clean_ledger(10.0, 10.0, 0.0));
        assert!(findings.is_empty(), "{findings:?}");
    }

    #[test]
    fn detects_overlapping_sends() {
        let mut c = InvariantChecker::new(2, 1);
        c.observe(&TraceEvent::SendStart {
            worker: 0,
            chunk: 1.0,
            time: 0.0,
        });
        c.observe(&TraceEvent::SendStart {
            worker: 1,
            chunk: 1.0,
            time: 0.5,
        });
        assert!(c
            .findings()
            .iter()
            .any(|f| f.kind == InvariantKind::MasterOccupation));
    }

    #[test]
    fn respects_concurrency_limit() {
        let mut c = InvariantChecker::new(2, 2);
        c.observe(&TraceEvent::SendStart {
            worker: 0,
            chunk: 1.0,
            time: 0.0,
        });
        c.observe(&TraceEvent::SendStart {
            worker: 1,
            chunk: 1.0,
            time: 0.5,
        });
        assert!(c.findings().is_empty(), "two opens allowed at max_sends=2");
    }

    #[test]
    fn detects_non_monotone_time() {
        let mut c = InvariantChecker::new(1, 1);
        c.observe(&TraceEvent::SendStart {
            worker: 0,
            chunk: 1.0,
            time: 5.0,
        });
        c.observe(&TraceEvent::SendEnd {
            worker: 0,
            chunk: 1.0,
            time: 1.0,
        });
        assert!(c
            .findings()
            .iter()
            .any(|f| f.kind == InvariantKind::NonMonotoneTime));
    }

    #[test]
    fn detects_compute_without_arrival() {
        let mut c = InvariantChecker::new(1, 1);
        c.observe(&TraceEvent::ComputeStart {
            worker: 0,
            chunk: 1.0,
            time: 0.0,
        });
        assert!(c
            .findings()
            .iter()
            .any(|f| f.kind == InvariantKind::Causality));
    }

    #[test]
    fn detects_overlapping_computation() {
        let mut c = InvariantChecker::new(1, 1);
        for e in [
            TraceEvent::SendStart {
                worker: 0,
                chunk: 1.0,
                time: 0.0,
            },
            TraceEvent::SendEnd {
                worker: 0,
                chunk: 1.0,
                time: 0.1,
            },
            TraceEvent::Arrival {
                worker: 0,
                chunk: 1.0,
                time: 0.1,
            },
            TraceEvent::SendStart {
                worker: 0,
                chunk: 2.0,
                time: 0.1,
            },
            TraceEvent::SendEnd {
                worker: 0,
                chunk: 2.0,
                time: 0.2,
            },
            TraceEvent::Arrival {
                worker: 0,
                chunk: 2.0,
                time: 0.2,
            },
            TraceEvent::ComputeStart {
                worker: 0,
                chunk: 1.0,
                time: 0.2,
            },
            TraceEvent::ComputeStart {
                worker: 0,
                chunk: 2.0,
                time: 0.3,
            },
        ] {
            c.observe(&e);
        }
        assert!(c
            .findings()
            .iter()
            .any(|f| f.kind == InvariantKind::SerialCompute));
    }

    #[test]
    fn detects_invalid_values() {
        let mut c = InvariantChecker::new(1, 1);
        c.observe(&TraceEvent::SendStart {
            worker: 0,
            chunk: f64::NAN,
            time: 0.0,
        });
        c.observe(&TraceEvent::SendStart {
            worker: 7,
            chunk: 1.0,
            time: 0.0,
        });
        c.observe(&TraceEvent::ComputeEnd {
            worker: 0,
            chunk: 1.0,
            time: f64::INFINITY,
        });
        let kinds: Vec<_> = c.findings().iter().map(|f| f.kind).collect();
        assert_eq!(
            kinds
                .iter()
                .filter(|&&k| k == InvariantKind::InvalidValue)
                .count(),
            3,
            "{kinds:?}"
        );
    }

    #[test]
    fn detects_dangling_state_at_end() {
        let mut c = InvariantChecker::new(1, 1);
        c.observe(&TraceEvent::SendStart {
            worker: 0,
            chunk: 5.0,
            time: 0.0,
        });
        let findings = c.finalize(WorkLedger {
            dispatched: 5.0,
            completed: 0.0,
            lost: 0.0,
            outstanding: 0.0,
        });
        assert!(findings
            .iter()
            .any(|f| f.kind == InvariantKind::MasterOccupation));
        // dispatched ≠ completed + lost + outstanding too:
        assert!(findings
            .iter()
            .any(|f| f.kind == InvariantKind::LedgerMismatch));
    }

    #[test]
    fn gave_up_run_skips_structural_checks() {
        let mut c = InvariantChecker::new(1, 1);
        c.observe(&TraceEvent::SendStart {
            worker: 0,
            chunk: 5.0,
            time: 0.0,
        });
        // The engine reports 5.0 outstanding: it gave up on unreachable
        // work, so the dangling transfer is expected.
        let findings = c.finalize(WorkLedger {
            dispatched: 5.0,
            completed: 0.0,
            lost: 0.0,
            outstanding: 5.0,
        });
        assert!(findings.is_empty(), "{findings:?}");
    }

    #[test]
    fn detects_ledger_mismatch() {
        let mut c = InvariantChecker::new(2, 1);
        feed_valid(&mut c);
        // Engine claims it completed more than the stream shows.
        let findings = c.finalize(WorkLedger {
            dispatched: 10.0,
            completed: 12.0,
            lost: 0.0,
            outstanding: 0.0,
        });
        assert!(findings
            .iter()
            .any(|f| f.kind == InvariantKind::LedgerMismatch));
    }

    #[test]
    fn fault_lifecycle_is_clean() {
        let mut c = InvariantChecker::new(2, 1);
        for e in [
            TraceEvent::SendStart {
                worker: 0,
                chunk: 5.0,
                time: 0.0,
            },
            TraceEvent::SendEnd {
                worker: 0,
                chunk: 5.0,
                time: 1.0,
            },
            TraceEvent::Arrival {
                worker: 0,
                chunk: 5.0,
                time: 1.0,
            },
            TraceEvent::ComputeStart {
                worker: 0,
                chunk: 5.0,
                time: 1.0,
            },
            TraceEvent::SendStart {
                worker: 1,
                chunk: 5.0,
                time: 1.0,
            },
            TraceEvent::WorkerDown {
                worker: 1,
                time: 1.5,
            },
            TraceEvent::ChunkLost {
                worker: 1,
                chunk: 5.0,
                stage: LostStage::Sending,
                time: 1.5,
            },
            TraceEvent::WorkerUp {
                worker: 1,
                time: 4.0,
            },
            TraceEvent::ComputeEnd {
                worker: 0,
                chunk: 5.0,
                time: 6.0,
            },
        ] {
            c.observe(&e);
        }
        let findings = c.finalize(clean_ledger(10.0, 5.0, 5.0));
        assert!(findings.is_empty(), "{findings:?}");
    }

    #[test]
    fn detects_wrong_stage_loss_and_double_down() {
        let mut c = InvariantChecker::new(1, 1);
        c.observe(&TraceEvent::ChunkLost {
            worker: 0,
            chunk: 5.0,
            stage: LostStage::Queued,
            time: 0.0,
        });
        c.observe(&TraceEvent::WorkerDown {
            worker: 0,
            time: 1.0,
        });
        c.observe(&TraceEvent::WorkerDown {
            worker: 0,
            time: 2.0,
        });
        c.observe(&TraceEvent::WorkerUp {
            worker: 0,
            time: 3.0,
        });
        c.observe(&TraceEvent::WorkerUp {
            worker: 0,
            time: 4.0,
        });
        let causality = c
            .findings()
            .iter()
            .filter(|f| f.kind == InvariantKind::Causality)
            .count();
        assert_eq!(causality, 3, "{:?}", c.findings());
    }

    #[test]
    fn findings_are_capped_with_suppression_notice() {
        let mut c = InvariantChecker::new(1, 1);
        for i in 0..(MAX_FINDINGS + 10) {
            // Every one of these is a causality violation.
            c.observe(&TraceEvent::ComputeStart {
                worker: 0,
                chunk: 1.0,
                time: i as f64,
            });
        }
        assert_eq!(c.findings().len(), MAX_FINDINGS);
        assert!(c.suppressed() > 0);
        let findings = c.finalize(WorkLedger {
            dispatched: 0.0,
            completed: 0.0,
            lost: 0.0,
            outstanding: 0.0,
        });
        assert!(findings.last().unwrap().detail.contains("suppressed"));
    }

    #[test]
    fn reset_clears_state() {
        let mut c = InvariantChecker::new(2, 1);
        c.observe(&TraceEvent::ComputeStart {
            worker: 0,
            chunk: 1.0,
            time: 0.0,
        });
        assert!(!c.findings().is_empty());
        c.reset();
        assert!(c.findings().is_empty());
        feed_valid(&mut c);
        assert!(c.finalize(clean_ledger(10.0, 10.0, 0.0)).is_empty());
    }

    #[test]
    fn findings_display() {
        let f = InvariantFinding {
            kind: InvariantKind::SerialCompute,
            event_index: 3,
            time: 1.5,
            worker: Some(2),
            detail: "x".into(),
        };
        let s = format!("{f}");
        assert!(s.contains("serial compute"), "{s}");
        assert!(s.contains("event 3"), "{s}");
        assert!(s.contains("worker 2"), "{s}");
        for k in [
            InvariantKind::NonMonotoneTime,
            InvariantKind::MasterOccupation,
            InvariantKind::Causality,
            InvariantKind::InvalidValue,
            InvariantKind::LedgerMismatch,
            InvariantKind::JobRelease,
        ] {
            assert!(!format!("{k}").is_empty());
        }
    }

    #[test]
    fn multi_job_clean_run_has_no_findings() {
        let mut c = MultiJobChecker::new(vec![0.0, 10.0]);
        c.observe_dispatch(0, 0.0, 60.0);
        c.observe_send_interval(0, 0.0, 2.0);
        c.observe_dispatch(1, 10.0, 40.0);
        c.observe_send_interval(1, 10.0, 11.0);
        c.observe_dispatch(0, 11.0, 40.0);
        c.observe_send_interval(0, 11.0, 12.0);
        let findings = c.finalize(
            &[
                JobLedgerEntry {
                    dispatched: 100.0,
                    completed: 100.0,
                    lost: 0.0,
                },
                JobLedgerEntry {
                    dispatched: 40.0,
                    completed: 40.0,
                    lost: 0.0,
                },
            ],
            false,
        );
        assert!(findings.is_empty(), "{findings:?}");
    }

    #[test]
    fn multi_job_flags_dispatch_before_release() {
        let mut c = MultiJobChecker::new(vec![0.0, 10.0]);
        c.observe_dispatch(1, 5.0, 40.0);
        let findings = c.finalize(
            &[
                JobLedgerEntry {
                    dispatched: 0.0,
                    completed: 0.0,
                    lost: 0.0,
                },
                JobLedgerEntry {
                    dispatched: 40.0,
                    completed: 40.0,
                    lost: 0.0,
                },
            ],
            false,
        );
        assert!(
            findings.iter().any(|f| f.kind == InvariantKind::JobRelease),
            "{findings:?}"
        );
    }

    #[test]
    fn multi_job_flags_cross_job_overlap() {
        let mut c = MultiJobChecker::new(vec![0.0, 0.0]);
        c.observe_dispatch(0, 0.0, 50.0);
        c.observe_send_interval(0, 0.0, 2.0);
        c.observe_dispatch(1, 1.0, 50.0);
        c.observe_send_interval(1, 1.0, 3.0); // opens before job 0's closes
        let findings = c.finalize(
            &[
                JobLedgerEntry {
                    dispatched: 50.0,
                    completed: 50.0,
                    lost: 0.0,
                },
                JobLedgerEntry {
                    dispatched: 50.0,
                    completed: 50.0,
                    lost: 0.0,
                },
            ],
            false,
        );
        assert!(
            findings
                .iter()
                .any(|f| f.kind == InvariantKind::MasterOccupation),
            "{findings:?}"
        );
    }

    #[test]
    fn multi_job_flags_ledger_mismatch() {
        let mut c = MultiJobChecker::new(vec![0.0]);
        c.observe_dispatch(0, 0.0, 50.0);
        // Stream saw 50 dispatched, ledger claims 70; and 70 != 30 + 0.
        let findings = c.finalize(
            &[JobLedgerEntry {
                dispatched: 70.0,
                completed: 30.0,
                lost: 0.0,
            }],
            false,
        );
        assert_eq!(
            findings
                .iter()
                .filter(|f| f.kind == InvariantKind::LedgerMismatch)
                .count(),
            2,
            "{findings:?}"
        );
        // gave_up skips the balance check but not the stream cross-check.
        let mut c = MultiJobChecker::new(vec![0.0]);
        c.observe_dispatch(0, 0.0, 70.0);
        let findings = c.finalize(
            &[JobLedgerEntry {
                dispatched: 70.0,
                completed: 30.0,
                lost: 0.0,
            }],
            true,
        );
        assert!(findings.is_empty(), "{findings:?}");
    }
}
