//! Discrete-event simulator for master–worker divisible-load platforms.
//!
//! This crate is the substrate on which the RUMR paper's evaluation runs.
//! The paper built its simulator on SimGrid; this crate implements the same
//! platform model (§3.1 of the paper) from scratch:
//!
//! * a master holding all input data, sending to one worker at a time;
//! * heterogeneous workers with computation latency `cLat_i` and speed
//!   `S_i` (Eq. 1), link latency `nLat_i`, bandwidth `B_i` and pipeline
//!   latency `tLat_i` (Eq. 2);
//! * worker front ends: communication and computation overlap, received
//!   chunks queue FIFO;
//! * prediction errors: every operation's effective duration is its
//!   predicted duration divided by a random ratio `X ~ N(1, error)`
//!   (truncated positive), drawn independently per operation (§4.1).
//!
//! Scheduling algorithms implement the [`Scheduler`] trait and are driven
//! online by the [`engine`], which makes both precalculated schedules (UMR,
//! multi-installment) and reactive ones (Factoring, RUMR) first-class.
//!
//! # Example
//!
//! ```
//! use dls_sim::{simulate, Decision, ErrorInjector, ErrorModel, HomogeneousParams,
//!               Scheduler, SimConfig, SimView};
//!
//! /// Sends the whole workload to worker 0 in one chunk.
//! struct OneShot { remaining: Option<f64> }
//! impl Scheduler for OneShot {
//!     fn name(&self) -> String { "one-shot".into() }
//!     fn next_dispatch(&mut self, _view: &SimView<'_>) -> Decision {
//!         match self.remaining.take() {
//!             Some(chunk) => Decision::Dispatch { worker: 0, chunk },
//!             None => Decision::Finished,
//!         }
//!     }
//! }
//!
//! let platform = HomogeneousParams::table1(10, 1.5, 0.1, 0.1).build().unwrap();
//! let injector = ErrorInjector::new(ErrorModel::None, 0);
//! let result = simulate(&platform, &mut OneShot { remaining: Some(1000.0) },
//!                       injector, SimConfig::default()).unwrap();
//! assert!(result.makespan > 0.0);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod columns;
pub mod engine;
pub mod error;
pub mod faults;
pub mod invariants;
pub mod jobs;
pub mod metrics;
pub mod platform;
pub mod profile;
pub mod queue;
pub mod scheduler;
pub mod speed;
pub mod trace;

pub use columns::RepColumns;
pub use engine::{simulate, Engine, SimConfig, SimError, SimResult, TraceMode};
pub use error::{ErrorInjector, ErrorModel, TemporalNoise};
pub use faults::{FaultAction, FaultEvent, FaultModel, FaultPlan, PoissonFaults};
pub use invariants::{
    InvariantChecker, InvariantFinding, InvariantKind, JobLedgerEntry, MultiJobChecker, WorkLedger,
};
pub use jobs::{JobSet, JobSetError, JobSpec};
pub use metrics::{EventCounts, FairnessSummary, Gap, JobMetrics, MetricsSummary, TraceMetrics};
pub use platform::{HomogeneousParams, Platform, PlatformError, WorkerSpec};
pub use profile::CostProfile;
pub use queue::{EventQueue, QueueBackend};
pub use scheduler::{Decision, Scheduler, SimView, WorkerView};
pub use speed::{RealizedSpeeds, SpeedModel};
pub use trace::{LostStage, Trace, TraceEvent, TraceViolation};
