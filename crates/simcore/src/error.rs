//! Prediction-error injection (paper §4.1).
//!
//! Scheduling algorithms plan against the *predicted* costs of
//! [`crate::platform`]; the engine executes *effective* costs obtained by
//! scaling each predicted duration with an independently drawn ratio of
//! mean 1 and standard deviation `error`.
//!
//! # Model choice
//!
//! The paper states the model as "the ratio of predicted execution time to
//! effective execution time is normally distributed with mean 1 and
//! standard deviation *error*, truncated to avoid negative values" — read
//! literally, `eff = pred / X` with `X ~ N(1, error)` truncated at 0. That
//! literal form is statistically ill-behaved: with the density positive
//! near 0, `E[1/X]` diverges, so mean makespans would not converge over the
//! paper's 40 repetitions — it cannot be what produced the paper's smooth
//! averages. This crate therefore defaults to the variance-matched
//! **multiplicative** form `eff = pred · X` (identical mean and standard
//! deviation, identical behaviour to first order in `error`), and offers
//! the literal inverse form as [`ErrorModel::TruncatedNormalInverse`] with
//! a documented ratio floor. The matched-variance uniform model the paper
//! also tried ("results were essentially similar") is provided as well.

use dls_numerics::dist::{MatchedUniform, NoError, Perturbation, TruncatedNormal};
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::profile::CostProfile;

/// Ratio floor used by the inverse (paper-literal) model: slowdowns are
/// capped at 20× so expectations stay finite.
pub const INVERSE_RATIO_FLOOR: f64 = 0.05;

/// Temporally correlated per-worker load noise.
///
/// The paper assumes the error distribution is *stationary and independent
/// per operation* and conjectures RUMR "should still be effective" when it
/// is not (§4.1). This model lets the suite test that conjecture: each
/// worker carries a latent log-load following an AR(1) process over its
/// successive operations,
///
/// ```text
/// l' = ρ·l + √(1 − ρ²)·σ·ξ,   ξ ~ N(0, 1)
/// ```
///
/// and every operation on the worker is scaled by `exp(l − σ²/2)`
/// (mean-one lognormal marginal of log-std `σ`). `ρ = 0` reduces to
/// independent lognormal noise; `ρ → 1` gives each worker a *persistent*
/// speed offset for the whole run — the regime where reactive rebalancing
/// should pay far more than under i.i.d. errors.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TemporalNoise {
    /// Operation-to-operation correlation of a worker's log-load, in
    /// `[0, 1)`.
    pub rho: f64,
    /// Stationary standard deviation of the log-load.
    pub sigma: f64,
}

/// Which distribution the prediction ratio is drawn from and how it is
/// applied.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ErrorModel {
    /// Perfect predictions (ratio always exactly 1). Equivalent to
    /// `TruncatedNormal { error: 0.0 }` but skips the RNG entirely.
    None,
    /// Default model: `eff = pred · X`, `X ~ N(1, error)` truncated
    /// positive.
    TruncatedNormal {
        /// Standard deviation of the ratio distribution.
        error: f64,
    },
    /// The paper's literal reading: `eff = pred / X`, `X ~ N(1, error)`
    /// truncated to `X > INVERSE_RATIO_FLOOR` (see module docs).
    TruncatedNormalInverse {
        /// Standard deviation of the ratio distribution.
        error: f64,
    },
    /// Matched-variance uniform: `eff = pred · X`,
    /// `X ~ U(1 − √3·error, 1 + √3·error)`.
    Uniform {
        /// Standard deviation of the ratio distribution.
        error: f64,
    },
}

impl ErrorModel {
    /// The `error` magnitude (standard deviation of the ratio), 0 for
    /// [`ErrorModel::None`].
    pub fn magnitude(&self) -> f64 {
        match *self {
            ErrorModel::None => 0.0,
            ErrorModel::TruncatedNormal { error }
            | ErrorModel::TruncatedNormalInverse { error }
            | ErrorModel::Uniform { error } => error,
        }
    }
}

enum Sampler {
    None(NoError),
    Normal(TruncatedNormal),
    NormalInverse(TruncatedNormal),
    Uniform(MatchedUniform),
}

/// A seeded source of effective durations.
///
/// Communications and computations draw from the same distribution but the
/// draws are independent per operation, per the paper ("a simple prediction
/// error model both for data transfers and computations").
///
/// Optionally, a trace-driven [`CostProfile`] scales *computation* times by
/// the actual cost of the unit range a chunk covers (the paper's §6 "use
/// traces from real applications"); the distribution then models platform
/// noise on top of the data-dependence.
pub struct ErrorInjector {
    rng: StdRng,
    sampler: Sampler,
    profile: Option<CostProfile>,
    temporal: Option<TemporalState>,
}

struct TemporalState {
    noise: TemporalNoise,
    normal: dls_numerics::dist::Normal,
    /// Per-worker latent log-load, initialized lazily from the stationary
    /// distribution on first use.
    log_load: Vec<Option<f64>>,
}

impl TemporalState {
    /// Advance worker `w`'s AR(1) log-load and return its mean-one
    /// multiplicative factor.
    fn factor<R: rand::Rng + ?Sized>(&mut self, rng: &mut R, worker: usize) -> f64 {
        if worker >= self.log_load.len() {
            self.log_load.resize(worker + 1, None);
        }
        let sigma = self.noise.sigma;
        let rho = self.noise.rho;
        let xi = self.normal.sample(rng);
        let l = match self.log_load[worker] {
            Some(prev) => rho * prev + (1.0 - rho * rho).sqrt() * sigma * xi,
            None => sigma * xi, // stationary initialization
        };
        self.log_load[worker] = Some(l);
        (l - sigma * sigma / 2.0).exp()
    }
}

impl ErrorInjector {
    /// Create an injector for the given model and RNG seed.
    ///
    /// # Panics
    ///
    /// Panics if the model's `error` is negative or non-finite.
    pub fn new(model: ErrorModel, seed: u64) -> Self {
        let sampler = if model.magnitude() == 0.0 {
            Sampler::None(NoError)
        } else {
            match model {
                ErrorModel::None => Sampler::None(NoError),
                ErrorModel::TruncatedNormal { error } => {
                    Sampler::Normal(TruncatedNormal::from_error(error))
                }
                ErrorModel::TruncatedNormalInverse { error } => {
                    Sampler::NormalInverse(TruncatedNormal::new(1.0, error, INVERSE_RATIO_FLOOR))
                }
                ErrorModel::Uniform { error } => {
                    Sampler::Uniform(MatchedUniform::from_error(error))
                }
            }
        };
        ErrorInjector {
            rng: StdRng::seed_from_u64(seed),
            sampler,
            profile: None,
            temporal: None,
        }
    }

    /// Create an injector that additionally scales computation times by a
    /// trace-driven cost profile (see [`CostProfile`]).
    pub fn with_profile(model: ErrorModel, seed: u64, profile: CostProfile) -> Self {
        let mut injector = Self::new(model, seed);
        injector.profile = Some(profile);
        injector
    }

    /// Add temporally correlated per-worker load noise on top of the base
    /// model (see [`TemporalNoise`]).
    ///
    /// # Panics
    ///
    /// Panics if `rho` is outside `[0, 1)` or `sigma` is negative.
    pub fn with_temporal_noise(mut self, noise: TemporalNoise) -> Self {
        assert!(
            (0.0..1.0).contains(&noise.rho),
            "rho must be in [0, 1), got {}",
            noise.rho
        );
        assert!(
            noise.sigma.is_finite() && noise.sigma >= 0.0,
            "sigma must be non-negative"
        );
        self.temporal = Some(TemporalState {
            noise,
            normal: dls_numerics::dist::Normal::new(0.0, 1.0),
            log_load: Vec::new(),
        });
        self
    }

    fn temporal_factor(&mut self, worker: usize) -> f64 {
        match &mut self.temporal {
            Some(state) => state.factor(&mut self.rng, worker),
            None => 1.0,
        }
    }

    /// Draw one multiplicative duration factor (effective / predicted).
    pub fn ratio(&mut self) -> f64 {
        match &mut self.sampler {
            Sampler::None(s) => s.sample_ratio(&mut self.rng),
            Sampler::Normal(s) => s.sample_ratio(&mut self.rng),
            Sampler::NormalInverse(s) => 1.0 / s.sample_ratio(&mut self.rng),
            Sampler::Uniform(s) => s.sample_ratio(&mut self.rng),
        }
    }

    /// Effective duration of an operation predicted to take `predicted`
    /// (no worker context: temporal noise, if any, is not applied).
    pub fn effective(&mut self, predicted: f64) -> f64 {
        predicted * self.ratio()
    }

    /// Multiplicative factor for a *communication* to `worker`: one ratio
    /// draw times the worker's temporal load factor.
    pub fn comm_factor(&mut self, worker: usize) -> f64 {
        self.ratio() * self.temporal_factor(worker)
    }

    /// Effective duration of a *computation* on `worker` over the workload
    /// units `[unit_start, unit_end)`: the prediction is scaled by the
    /// range's relative trace cost (1 without a profile), one ratio draw,
    /// and the worker's temporal load factor.
    pub fn effective_compute(
        &mut self,
        worker: usize,
        predicted: f64,
        unit_start: f64,
        unit_end: f64,
    ) -> f64 {
        let data_factor = self
            .profile
            .as_ref()
            .map(|p| p.relative_cost(unit_start, unit_end))
            .unwrap_or(1.0);
        predicted * data_factor * self.ratio() * self.temporal_factor(worker)
    }
}

impl std::fmt::Debug for ErrorInjector {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let kind = match self.sampler {
            Sampler::None(_) => "none",
            Sampler::Normal(_) => "truncated-normal",
            Sampler::NormalInverse(_) => "truncated-normal-inverse",
            Sampler::Uniform(_) => "uniform",
        };
        f.debug_struct("ErrorInjector")
            .field("model", &kind)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dls_numerics::stats::OnlineStats;

    #[test]
    fn none_is_exact() {
        let mut inj = ErrorInjector::new(ErrorModel::None, 1);
        for _ in 0..100 {
            assert_eq!(inj.effective(3.5), 3.5);
        }
    }

    #[test]
    fn zero_error_collapses_to_none() {
        let mut a = ErrorInjector::new(ErrorModel::TruncatedNormal { error: 0.0 }, 1);
        let mut b = ErrorInjector::new(ErrorModel::Uniform { error: 0.0 }, 1);
        let mut c = ErrorInjector::new(ErrorModel::TruncatedNormalInverse { error: 0.0 }, 1);
        assert_eq!(a.effective(2.0), 2.0);
        assert_eq!(b.effective(2.0), 2.0);
        assert_eq!(c.effective(2.0), 2.0);
    }

    #[test]
    fn normal_ratio_statistics() {
        let mut inj = ErrorInjector::new(ErrorModel::TruncatedNormal { error: 0.2 }, 42);
        let mut stats = OnlineStats::new();
        for _ in 0..100_000 {
            stats.push(inj.ratio());
        }
        assert!((stats.mean() - 1.0).abs() < 0.01);
        assert!((stats.std_dev() - 0.2).abs() < 0.01);
        assert!(stats.min() > 0.0);
    }

    #[test]
    fn uniform_ratio_statistics() {
        let mut inj = ErrorInjector::new(ErrorModel::Uniform { error: 0.2 }, 42);
        let mut stats = OnlineStats::new();
        for _ in 0..100_000 {
            stats.push(inj.ratio());
        }
        assert!((stats.mean() - 1.0).abs() < 0.01);
        assert!((stats.std_dev() - 0.2).abs() < 0.01);
    }

    #[test]
    fn inverse_model_bounded_slowdown() {
        let mut inj = ErrorInjector::new(ErrorModel::TruncatedNormalInverse { error: 0.5 }, 42);
        let mut stats = OnlineStats::new();
        for _ in 0..100_000 {
            let r = inj.ratio();
            assert!(r > 0.0 && r <= 1.0 / INVERSE_RATIO_FLOOR + 1e-9);
            stats.push(r);
        }
        // Jensen: E[1/X] > 1 for a non-degenerate X with mean 1.
        assert!(stats.mean() > 1.0);
    }

    #[test]
    fn effective_durations_positive() {
        for model in [
            ErrorModel::TruncatedNormal { error: 0.5 },
            ErrorModel::TruncatedNormalInverse { error: 0.5 },
            ErrorModel::Uniform { error: 0.5 },
        ] {
            let mut inj = ErrorInjector::new(model, 7);
            for _ in 0..10_000 {
                let d = inj.effective(1.0);
                assert!(d > 0.0 && d.is_finite());
            }
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let mut a = ErrorInjector::new(ErrorModel::TruncatedNormal { error: 0.3 }, 99);
        let mut b = ErrorInjector::new(ErrorModel::TruncatedNormal { error: 0.3 }, 99);
        for _ in 0..100 {
            assert_eq!(a.ratio(), b.ratio());
        }
        let mut c = ErrorInjector::new(ErrorModel::TruncatedNormal { error: 0.3 }, 100);
        let first_a = ErrorInjector::new(ErrorModel::TruncatedNormal { error: 0.3 }, 99).ratio();
        assert_ne!(first_a, c.ratio());
    }

    #[test]
    fn temporal_noise_mean_one_marginal() {
        let mut inj = ErrorInjector::new(ErrorModel::None, 3).with_temporal_noise(TemporalNoise {
            rho: 0.0,
            sigma: 0.3,
        });
        let mut stats = OnlineStats::new();
        for _ in 0..100_000 {
            stats.push(inj.comm_factor(0));
        }
        assert!(
            (stats.mean() - 1.0).abs() < 0.02,
            "lognormal load must be mean-one: {}",
            stats.mean()
        );
        assert!(stats.min() > 0.0);
    }

    #[test]
    fn temporal_noise_persists_at_high_rho() {
        // With rho ~ 1, consecutive factors on one worker barely move, while
        // different workers differ.
        let mut inj = ErrorInjector::new(ErrorModel::None, 9).with_temporal_noise(TemporalNoise {
            rho: 0.999,
            sigma: 0.5,
        });
        let a1 = inj.comm_factor(0);
        let a2 = inj.comm_factor(0);
        let b1 = inj.comm_factor(1);
        assert!(
            (a1.ln() - a2.ln()).abs() < 0.15,
            "consecutive factors should persist: {a1} vs {a2}"
        );
        // Workers are initialized independently: very likely distinct.
        assert!((a1 - b1).abs() > 1e-6);
    }

    #[test]
    fn temporal_noise_composes_with_base_model() {
        let mut inj = ErrorInjector::new(ErrorModel::TruncatedNormal { error: 0.2 }, 5)
            .with_temporal_noise(TemporalNoise {
                rho: 0.5,
                sigma: 0.2,
            });
        for w in 0..4 {
            let d = inj.effective_compute(w, 10.0, 0.0, 5.0);
            assert!(d > 0.0 && d.is_finite());
        }
    }

    #[test]
    fn no_temporal_noise_means_factor_one_baseline() {
        let mut inj = ErrorInjector::new(ErrorModel::None, 1);
        assert_eq!(inj.comm_factor(3), 1.0);
        assert_eq!(inj.effective_compute(3, 7.0, 0.0, 1.0), 7.0);
    }

    #[test]
    #[should_panic(expected = "rho")]
    fn temporal_noise_rejects_bad_rho() {
        let _ = ErrorInjector::new(ErrorModel::None, 1).with_temporal_noise(TemporalNoise {
            rho: 1.0,
            sigma: 0.1,
        });
    }

    #[test]
    fn magnitude_accessor() {
        assert_eq!(ErrorModel::None.magnitude(), 0.0);
        assert_eq!(ErrorModel::TruncatedNormal { error: 0.3 }.magnitude(), 0.3);
        assert_eq!(
            ErrorModel::TruncatedNormalInverse { error: 0.2 }.magnitude(),
            0.2
        );
        assert_eq!(ErrorModel::Uniform { error: 0.1 }.magnitude(), 0.1);
    }
}
