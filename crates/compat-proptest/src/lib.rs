//! Offline stand-in for the `proptest` crate.
//!
//! Implements the subset of the proptest 1.x API used by this workspace's
//! property tests: the [`proptest!`] macro (with `#![proptest_config(..)]`
//! and `pattern in strategy` arguments), range and tuple [`Strategy`]s with
//! `prop_map`, [`prop_assert!`]/[`prop_assert_eq!`], `ProptestConfig`,
//! `TestCaseError`, and `proptest::bool::ANY`.
//!
//! Cases are generated from a fixed seed, so a failing case reproduces
//! exactly on re-run. There is no shrinking: the failure report prints the
//! generated case index and the assertion message instead. Regression files
//! written by upstream proptest are ignored (their `cc` entries encode an
//! upstream-internal RNG state); known regressions are pinned as explicit
//! unit tests in this workspace.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// Strategies: how to generate values of a type.
pub mod strategy {
    use crate::test_runner::TestRng;
    use rand::Rng;
    use std::ops::{Range, RangeInclusive};

    /// A generator of values of type [`Strategy::Value`].
    pub trait Strategy {
        /// The type of the generated values.
        type Value;

        /// Generate one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Map generated values through `f`.
        fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map {
                source: self,
                map: f,
            }
        }
    }

    /// Strategy returned by [`Strategy::prop_map`].
    #[derive(Debug, Clone)]
    pub struct Map<S, F> {
        source: S,
        map: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;

        fn generate(&self, rng: &mut TestRng) -> O {
            (self.map)(self.source.generate(rng))
        }
    }

    impl Strategy for Range<f64> {
        type Value = f64;

        fn generate(&self, rng: &mut TestRng) -> f64 {
            rng.rng.gen_range(self.clone())
        }
    }

    impl Strategy for RangeInclusive<f64> {
        type Value = f64;

        fn generate(&self, rng: &mut TestRng) -> f64 {
            rng.rng.gen_range(self.clone())
        }
    }

    macro_rules! impl_int_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut TestRng) -> $t {
                    rng.rng.gen_range(self.clone())
                }
            }

            impl Strategy for RangeInclusive<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut TestRng) -> $t {
                    rng.rng.gen_range(self.clone())
                }
            }
        )*};
    }

    impl_int_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    macro_rules! impl_tuple_strategy {
        ($($name:ident),+) => {
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);

                #[allow(non_snake_case)]
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.generate(rng),)+)
                }
            }
        };
    }

    impl_tuple_strategy!(A);
    impl_tuple_strategy!(A, B);
    impl_tuple_strategy!(A, B, C);
    impl_tuple_strategy!(A, B, C, D);
    impl_tuple_strategy!(A, B, C, D, E);
    impl_tuple_strategy!(A, B, C, D, E, F);
    impl_tuple_strategy!(A, B, C, D, E, F, G);
    impl_tuple_strategy!(A, B, C, D, E, F, G, H);
}

/// Boolean strategies (`proptest::bool::ANY`).
pub mod bool {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use rand::Rng;

    /// Strategy generating `true`/`false` uniformly.
    #[derive(Debug, Clone, Copy)]
    pub struct Any;

    /// Generates an arbitrary boolean.
    pub const ANY: Any = Any;

    impl Strategy for Any {
        type Value = bool;

        fn generate(&self, rng: &mut TestRng) -> bool {
            rng.rng.gen::<bool>()
        }
    }
}

/// Runner configuration and failure types.
pub mod test_runner {
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// The RNG handed to strategies during generation.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        pub(crate) rng: StdRng,
    }

    impl TestRng {
        /// Deterministically seeded generator for one test case.
        pub fn for_case(case: u32) -> Self {
            // Distinct stream per case; fixed root seed for reproducibility.
            TestRng {
                rng: StdRng::seed_from_u64(
                    0x5EED_CAFE_F00D_0001u64.wrapping_add((case as u64).wrapping_mul(0x9E37_79B9)),
                ),
            }
        }
    }

    /// Subset of proptest's run configuration.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of generated cases per property.
        pub cases: u32,
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 256 }
        }
    }

    impl ProptestConfig {
        /// A config running `cases` cases per property.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    /// A property-test failure.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub enum TestCaseError {
        /// The property does not hold, with an explanation.
        Fail(String),
        /// The generated input should be discarded (unused here, kept for
        /// API parity).
        Reject(String),
    }

    impl TestCaseError {
        /// Construct a failure with a message.
        pub fn fail(reason: impl Into<String>) -> Self {
            TestCaseError::Fail(reason.into())
        }

        /// Construct a rejection with a message.
        pub fn reject(reason: impl Into<String>) -> Self {
            TestCaseError::Reject(reason.into())
        }
    }

    impl std::fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            match self {
                TestCaseError::Fail(m) => write!(f, "{m}"),
                TestCaseError::Reject(m) => write!(f, "input rejected: {m}"),
            }
        }
    }

    /// Result type returned by generated property bodies.
    pub type TestCaseResult = Result<(), TestCaseError>;

    /// Drive `body` over `cases` deterministic cases; panic on first failure.
    pub fn run_cases<F>(config: &ProptestConfig, property: &str, mut body: F)
    where
        F: FnMut(&mut TestRng) -> TestCaseResult,
    {
        for case in 0..config.cases {
            let mut rng = TestRng::for_case(case);
            match body(&mut rng) {
                Ok(()) => {}
                Err(TestCaseError::Reject(_)) => {}
                Err(TestCaseError::Fail(msg)) => {
                    panic!("property `{property}` failed at case {case}: {msg}");
                }
            }
        }
    }
}

/// Assert a boolean condition inside a property, returning a
/// `TestCaseError` (not panicking) on failure.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)*),
            ));
        }
    };
}

/// Assert equality inside a property, returning a `TestCaseError` on
/// failure.
#[macro_export]
macro_rules! prop_assert_eq {
    ($lhs:expr, $rhs:expr) => {{
        let lhs = $lhs;
        let rhs = $rhs;
        $crate::prop_assert!(
            lhs == rhs,
            "assertion failed: `{:?}` == `{:?}`",
            lhs,
            rhs
        );
    }};
    ($lhs:expr, $rhs:expr, $($fmt:tt)*) => {{
        let lhs = $lhs;
        let rhs = $rhs;
        $crate::prop_assert!(lhs == rhs, $($fmt)*);
    }};
}

/// Assert inequality inside a property, returning a `TestCaseError` on
/// failure.
#[macro_export]
macro_rules! prop_assert_ne {
    ($lhs:expr, $rhs:expr) => {{
        let lhs = $lhs;
        let rhs = $rhs;
        $crate::prop_assert!(lhs != rhs, "assertion failed: `{:?}` != `{:?}`", lhs, rhs);
    }};
}

/// Define property tests: each `fn name(pat in strategy, ..) { body }`
/// becomes a `#[test]` that runs the body over generated cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_tests!(($cfg); $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::__proptest_tests!(
            ($crate::test_runner::ProptestConfig::default());
            $($rest)*
        );
    };
}

/// Internal expansion helper for [`proptest!`]; not public API.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_tests {
    (($cfg:expr); $(
        $(#[$meta:meta])*
        fn $name:ident ( $($pat:pat_param in $strat:expr),+ $(,)? ) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let __config: $crate::test_runner::ProptestConfig = $cfg;
            $crate::test_runner::run_cases(&__config, stringify!($name), |__rng| {
                let ($($pat,)+) = (
                    $($crate::strategy::Strategy::generate(&($strat), __rng),)+
                );
                $body
                ::std::result::Result::Ok(())
            });
        }
    )*};
}

/// The glob-importable prelude, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::strategy::Strategy;
    pub use crate::test_runner::{ProptestConfig, TestCaseError, TestCaseResult};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        /// Generated values respect their strategies.
        #[test]
        fn ranges_and_tuples(
            (a, b) in (0usize..=10, 1.0f64..=2.0).prop_map(|(a, b)| (a, b * 2.0)),
            flag in crate::bool::ANY,
            k in 0u64..100,
        ) {
            prop_assert!(a <= 10);
            prop_assert!((2.0..=4.0).contains(&b), "b = {}", b);
            prop_assert!(k < 100);
            prop_assert_eq!(flag, flag);
        }
    }

    #[test]
    fn deterministic_generation() {
        use crate::strategy::Strategy;
        use crate::test_runner::TestRng;
        let strat = (0u64..1000, 0.0f64..1.0);
        let a = strat.generate(&mut TestRng::for_case(3));
        let b = strat.generate(&mut TestRng::for_case(3));
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "failed at case")]
    fn failures_panic_with_case_index() {
        crate::test_runner::run_cases(
            &crate::test_runner::ProptestConfig::with_cases(5),
            "always_fails",
            |_| Err(TestCaseError::fail("nope")),
        );
    }
}
