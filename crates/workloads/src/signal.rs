//! Signal processing: the paper's "recover a signal buried in a large file
//! recording measurements" application.
//!
//! The workload unit is one window of samples to correlate against the
//! target signature. Most windows cost the same (one FFT-sized correlation),
//! but windows overlapping *candidate detections* trigger refinement passes
//! that multiply the cost — producing a spiky, bursty cost profile quite
//! unlike the smooth image map: long uniform stretches punctuated by short
//! expensive bursts.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::DivisibleApp;

/// A synthetic signal-scan workload.
#[derive(Debug, Clone)]
pub struct SignalProcessing {
    costs: Vec<f64>,
}

impl SignalProcessing {
    /// Generate a scan over `windows` windows with `bursts` candidate
    /// detections. Each burst spans a geometric handful of windows and
    /// multiplies their cost by `refine_factor`.
    ///
    /// # Panics
    ///
    /// Panics if `windows == 0` or `refine_factor < 1`.
    pub fn generate(windows: usize, bursts: usize, refine_factor: f64, seed: u64) -> Self {
        assert!(windows > 0, "need at least one window");
        assert!(
            refine_factor >= 1.0 && refine_factor.is_finite(),
            "refine_factor must be >= 1"
        );
        let mut rng = StdRng::seed_from_u64(seed);
        let mut costs = vec![1.0; windows];
        for _ in 0..bursts {
            let start = rng.gen_range(0..windows);
            // Burst length: 1..~2% of the scan, geometric-ish.
            let max_len = (windows / 50).max(1);
            let len = rng.gen_range(1..=max_len);
            for cost in costs.iter_mut().skip(start).take(len) {
                *cost *= refine_factor;
            }
        }
        SignalProcessing { costs }
    }

    /// Number of windows whose cost exceeds the base cost.
    pub fn burst_windows(&self) -> usize {
        self.costs.iter().filter(|&&c| c > 1.0).count()
    }
}

impl DivisibleApp for SignalProcessing {
    fn name(&self) -> &str {
        "signal-processing"
    }

    fn unit_costs(&self) -> &[f64] {
        &self.costs
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quiet_scan_is_uniform() {
        let s = SignalProcessing::generate(1000, 0, 8.0, 1);
        assert_eq!(s.total_units(), 1000.0);
        assert_eq!(s.burst_windows(), 0);
        assert!(s.cost_variability() < 1e-12);
    }

    #[test]
    fn bursts_create_spiky_variability() {
        let s = SignalProcessing::generate(2000, 12, 8.0, 3);
        assert!(s.burst_windows() > 0);
        let cv = s.cost_variability();
        assert!(cv > 0.1, "bursty scan should be variable, got {cv}");
        // Costs are bimodal-ish: baseline exactly 1, bursts >= 8.
        let baseline = s.unit_costs().iter().filter(|&&c| c == 1.0).count();
        assert!(baseline > s.unit_costs().len() / 2, "mostly quiet");
    }

    #[test]
    fn refine_factor_scales_variability() {
        let mild = SignalProcessing::generate(2000, 10, 2.0, 5);
        let hot = SignalProcessing::generate(2000, 10, 16.0, 5);
        assert!(hot.cost_variability() > mild.cost_variability());
    }

    #[test]
    fn deterministic() {
        let a = SignalProcessing::generate(500, 5, 4.0, 9);
        let b = SignalProcessing::generate(500, 5, 4.0, 9);
        assert_eq!(a.unit_costs(), b.unit_costs());
    }

    #[test]
    fn plugs_into_scheduling() {
        use rumr::{RunSpec, SchedulerKind};
        let s = SignalProcessing::generate(1000, 8, 6.0, 2);
        let platform = rumr::HomogeneousParams::table1(8, 1.5, 0.1, 0.1)
            .build()
            .unwrap();
        let scenario = s.scenario_trace_driven(platform, 0.05);
        let kind = SchedulerKind::rumr_known_error(s.cost_variability().min(1.0));
        let r = scenario.execute(&RunSpec::new(kind).seed(1)).unwrap();
        assert!((r.completed_work() - 1000.0).abs() < 1e-6);
    }
}
