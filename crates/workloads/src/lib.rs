//! Synthetic divisible-workload applications.
//!
//! The RUMR paper motivates divisible-load scheduling with three application
//! families (its introduction): *feature extraction* over a segmented
//! image, *signal processing / sequence matching* over a large data file,
//! and *ray tracing*, whose per-pixel cost is strongly data-dependent. This
//! crate provides seeded synthetic generators for those families so the
//! examples and tests can exercise the scheduler stack on
//! realistically-shaped inputs:
//!
//! * each application generates its per-unit computation costs;
//! * the *coefficient of variation* of those costs is the natural estimate
//!   of the paper's `error` parameter (data-dependence is one of the two
//!   error sources named in §4 — the other being resource contention);
//! * [`DivisibleApp::scenario`] packages the application as a
//!   [`rumr::Scenario`] whose error model matches the measured variability,
//!   and [`DivisibleApp::recommended`] applies the paper's algorithm
//!   selection rule.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod image;
pub mod raytrace;
pub mod sequence;
pub mod signal;

pub use image::ImageFeatureExtraction;
pub use raytrace::RayTracing;
pub use sequence::SequenceMatching;
pub use signal::SignalProcessing;

use dls_numerics::stats::OnlineStats;
use rumr::sim::CostProfile;
use rumr::{ErrorModel, Platform, RumrConfig, Scenario, SchedulerKind};

/// A synthetic application that can be scheduled as a divisible workload.
pub trait DivisibleApp {
    /// Human-readable application name.
    fn name(&self) -> &str;

    /// Per-unit computation costs (seconds per unit on a speed-1 worker).
    /// The workload has `unit_costs().len()` units.
    fn unit_costs(&self) -> &[f64];

    /// Total workload in units (the paper's `W_total`).
    fn total_units(&self) -> f64 {
        self.unit_costs().len() as f64
    }

    /// Coefficient of variation (std/mean) of the per-unit costs — the
    /// application-intrinsic component of the paper's `error` parameter.
    fn cost_variability(&self) -> f64 {
        let mut stats = OnlineStats::new();
        for &c in self.unit_costs() {
            stats.push(c);
        }
        if stats.mean() <= 0.0 {
            0.0
        } else {
            stats.std_dev() / stats.mean()
        }
    }

    /// Package the application as a simulation scenario on `platform`,
    /// modelling its data-dependent costs as a truncated-normal prediction
    /// error of magnitude [`DivisibleApp::cost_variability`] — the paper's
    /// abstraction of data-dependence.
    fn scenario(&self, platform: Platform) -> Scenario {
        let error = self.cost_variability();
        Scenario {
            platform,
            w_total: self.total_units(),
            error_model: if error > 0.0 {
                ErrorModel::TruncatedNormal { error }
            } else {
                ErrorModel::None
            },
            cost_profile: None,
            temporal_noise: None,
        }
    }

    /// Package the application as a *trace-driven* scenario: computation
    /// times follow the actual per-unit costs of each chunk's range instead
    /// of a ratio distribution (the paper's §6 "use traces from real
    /// applications"). `platform_noise` adds an optional truncated-normal
    /// ratio on top, modelling resource contention.
    fn scenario_trace_driven(&self, platform: Platform, platform_noise: f64) -> Scenario {
        Scenario {
            platform,
            w_total: self.total_units(),
            error_model: if platform_noise > 0.0 {
                ErrorModel::TruncatedNormal {
                    error: platform_noise,
                }
            } else {
                ErrorModel::None
            },
            cost_profile: Some(CostProfile::from_unit_costs(self.unit_costs())),
            temporal_noise: None,
        }
    }

    /// The paper's algorithm selection rule applied to this application:
    /// RUMR with the measured variability as the known error (which itself
    /// degenerates to pure UMR below the phase-2 threshold and to pure
    /// Factoring above error 1).
    fn recommended(&self) -> SchedulerKind {
        let error = self.cost_variability();
        if error <= 0.0 {
            SchedulerKind::Umr
        } else {
            SchedulerKind::Rumr(RumrConfig::with_known_error(error))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Flat;
    impl DivisibleApp for Flat {
        fn name(&self) -> &str {
            "flat"
        }
        fn unit_costs(&self) -> &[f64] {
            const COSTS: [f64; 4] = [1.0, 1.0, 1.0, 1.0];
            &COSTS
        }
    }

    struct Bumpy {
        costs: Vec<f64>,
    }
    impl DivisibleApp for Bumpy {
        fn name(&self) -> &str {
            "bumpy"
        }
        fn unit_costs(&self) -> &[f64] {
            &self.costs
        }
    }

    #[test]
    fn flat_costs_mean_umr() {
        let app = Flat;
        assert_eq!(app.total_units(), 4.0);
        assert_eq!(app.cost_variability(), 0.0);
        assert_eq!(app.recommended(), SchedulerKind::Umr);
        let platform = rumr::HomogeneousParams::table1(2, 1.5, 0.1, 0.1)
            .build()
            .unwrap();
        let s = app.scenario(platform);
        assert_eq!(s.error_model, ErrorModel::None);
        assert_eq!(s.w_total, 4.0);
    }

    #[test]
    fn variable_costs_mean_rumr() {
        let app = Bumpy {
            costs: vec![1.0, 2.0, 1.0, 2.0],
        };
        let cv = app.cost_variability();
        assert!((cv - (0.5 / 1.5)).abs() < 1e-12);
        match app.recommended() {
            SchedulerKind::Rumr(cfg) => {
                assert!((cfg.error_estimate.unwrap() - cv).abs() < 1e-12)
            }
            other => panic!("expected RUMR, got {other:?}"),
        }
    }
}
