//! Sequence matching: the paper's BLAST-style motivating application.
//!
//! "A single sequence is compared to a big dictionary file, and the running
//! time is proportional to the letters in that dictionary." The workload
//! unit is one dictionary entry; its cost is proportional to the entry's
//! length, which we draw from a log-normal distribution (the classic shape
//! of biological sequence-length distributions).

use dls_numerics::dist::Normal;
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::DivisibleApp;

/// A synthetic sequence-matching workload.
#[derive(Debug, Clone)]
pub struct SequenceMatching {
    costs: Vec<f64>,
    total_letters: f64,
}

impl SequenceMatching {
    /// Generate a dictionary of `entries` sequences with log-normal lengths
    /// (`median_length` letters median, `spread` the σ of the underlying
    /// normal — 0 gives identical lengths). Costs are normalized so one
    /// median-length sequence costs 1 unit.
    ///
    /// # Panics
    ///
    /// Panics if `entries == 0`, `median_length <= 0`, or `spread` is
    /// negative.
    pub fn generate(entries: usize, median_length: f64, spread: f64, seed: u64) -> Self {
        assert!(entries > 0, "dictionary must be non-empty");
        assert!(
            median_length > 0.0 && median_length.is_finite(),
            "median length must be positive"
        );
        assert!(spread >= 0.0 && spread.is_finite(), "spread must be >= 0");
        let mut rng = StdRng::seed_from_u64(seed);
        let mut normal = Normal::new(0.0, spread);
        let mut costs = Vec::with_capacity(entries);
        let mut total_letters = 0.0;
        for _ in 0..entries {
            let length = median_length * normal.sample(&mut rng).exp();
            total_letters += length;
            costs.push(length / median_length);
        }
        SequenceMatching {
            costs,
            total_letters,
        }
    }

    /// Number of dictionary entries.
    pub fn entries(&self) -> usize {
        self.costs.len()
    }

    /// Total number of letters in the dictionary.
    pub fn total_letters(&self) -> f64 {
        self.total_letters
    }
}

impl DivisibleApp for SequenceMatching {
    fn name(&self) -> &str {
        "sequence-matching"
    }

    fn unit_costs(&self) -> &[f64] {
        &self.costs
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_shape() {
        let d = SequenceMatching::generate(2000, 350.0, 0.4, 5);
        assert_eq!(d.entries(), 2000);
        assert!(d.total_letters() > 0.0);
        // Median cost should be near 1 (median-normalized).
        let mut sorted = d.unit_costs().to_vec();
        sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let median = sorted[1000];
        assert!((median - 1.0).abs() < 0.1, "median {median}");
    }

    #[test]
    fn zero_spread_is_uniform() {
        let d = SequenceMatching::generate(100, 350.0, 0.0, 5);
        assert!(d.cost_variability() < 1e-12);
        for &c in d.unit_costs() {
            assert!((c - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn spread_increases_variability() {
        let narrow = SequenceMatching::generate(5000, 350.0, 0.1, 5);
        let wide = SequenceMatching::generate(5000, 350.0, 0.6, 5);
        assert!(wide.cost_variability() > narrow.cost_variability());
        // Log-normal CV for σ=0.1 is ~0.1.
        assert!((narrow.cost_variability() - 0.1).abs() < 0.02);
    }

    #[test]
    fn costs_positive() {
        let d = SequenceMatching::generate(1000, 200.0, 0.8, 9);
        assert!(d.unit_costs().iter().all(|&c| c > 0.0));
    }

    #[test]
    fn deterministic() {
        let a = SequenceMatching::generate(100, 350.0, 0.4, 5);
        let b = SequenceMatching::generate(100, 350.0, 0.4, 5);
        assert_eq!(a.unit_costs(), b.unit_costs());
    }
}
