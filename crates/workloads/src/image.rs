//! Image feature extraction: the paper's first motivating application.
//!
//! "A big image is segmented, and each segment is transferred to a worker
//! and processed locally." The workload unit is one block of pixels; the
//! cost of extracting features from a block depends on how much structure
//! it contains, which we model with a smooth synthetic "detail map" (a sum
//! of randomly placed 2-D Gaussian feature clusters over a uniform base
//! cost).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::DivisibleApp;

/// A synthetic image-processing workload.
#[derive(Debug, Clone)]
pub struct ImageFeatureExtraction {
    width: usize,
    height: usize,
    costs: Vec<f64>,
}

impl ImageFeatureExtraction {
    /// Generate an image of `width × height` blocks containing `clusters`
    /// feature clusters. `detail_strength` scales how much more expensive a
    /// cluster center is than featureless background (0 = uniform cost).
    ///
    /// # Panics
    ///
    /// Panics on a zero-sized image or negative `detail_strength`.
    pub fn generate(
        width: usize,
        height: usize,
        clusters: usize,
        detail_strength: f64,
        seed: u64,
    ) -> Self {
        assert!(width > 0 && height > 0, "image must be non-empty");
        assert!(
            detail_strength >= 0.0 && detail_strength.is_finite(),
            "detail_strength must be non-negative"
        );
        let mut rng = StdRng::seed_from_u64(seed);
        let centers: Vec<(f64, f64, f64)> = (0..clusters)
            .map(|_| {
                (
                    rng.gen_range(0.0..width as f64),
                    rng.gen_range(0.0..height as f64),
                    // Cluster radius: 2–12 % of the image diagonal.
                    rng.gen_range(0.02..0.12) * ((width * width + height * height) as f64).sqrt(),
                )
            })
            .collect();

        let mut costs = Vec::with_capacity(width * height);
        for y in 0..height {
            for x in 0..width {
                let mut detail = 0.0;
                for &(cx, cy, r) in &centers {
                    let dx = x as f64 - cx;
                    let dy = y as f64 - cy;
                    detail += (-(dx * dx + dy * dy) / (2.0 * r * r)).exp();
                }
                costs.push(1.0 + detail_strength * detail);
            }
        }
        ImageFeatureExtraction {
            width,
            height,
            costs,
        }
    }

    /// Image width in blocks.
    pub fn width(&self) -> usize {
        self.width
    }

    /// Image height in blocks.
    pub fn height(&self) -> usize {
        self.height
    }

    /// Cost of the block at `(x, y)`.
    pub fn block_cost(&self, x: usize, y: usize) -> f64 {
        self.costs[y * self.width + x]
    }
}

impl DivisibleApp for ImageFeatureExtraction {
    fn name(&self) -> &str {
        "image-feature-extraction"
    }

    fn unit_costs(&self) -> &[f64] {
        &self.costs
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dimensions_and_units() {
        let img = ImageFeatureExtraction::generate(40, 25, 5, 2.0, 1);
        assert_eq!(img.width(), 40);
        assert_eq!(img.height(), 25);
        assert_eq!(img.unit_costs().len(), 1000);
        assert_eq!(img.total_units(), 1000.0);
    }

    #[test]
    fn uniform_image_has_zero_variability() {
        let img = ImageFeatureExtraction::generate(20, 20, 0, 2.0, 1);
        assert!(img.cost_variability() < 1e-12);
        let flat = ImageFeatureExtraction::generate(20, 20, 5, 0.0, 1);
        assert!(flat.cost_variability() < 1e-12);
    }

    #[test]
    fn clusters_create_variability() {
        let img = ImageFeatureExtraction::generate(40, 40, 8, 3.0, 7);
        let cv = img.cost_variability();
        assert!(cv > 0.05, "expected visible variability, got {cv}");
        // Stronger detail, more variability.
        let strong = ImageFeatureExtraction::generate(40, 40, 8, 9.0, 7);
        assert!(strong.cost_variability() > cv);
    }

    #[test]
    fn costs_positive_and_bounded_below_by_base() {
        let img = ImageFeatureExtraction::generate(30, 30, 4, 5.0, 3);
        for y in 0..30 {
            for x in 0..30 {
                assert!(img.block_cost(x, y) >= 1.0);
            }
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let a = ImageFeatureExtraction::generate(16, 16, 3, 2.0, 42);
        let b = ImageFeatureExtraction::generate(16, 16, 3, 2.0, 42);
        assert_eq!(a.unit_costs(), b.unit_costs());
        let c = ImageFeatureExtraction::generate(16, 16, 3, 2.0, 43);
        assert_ne!(a.unit_costs(), c.unit_costs());
    }
}
