//! Ray tracing: the paper's example of strongly data-dependent costs.
//!
//! "In a ray-tracing application the time taken to trace through one pixel
//! depends greatly on the complexity of the scene" (§4). The workload unit
//! is one pixel tile; its cost models primary-ray hits plus recursive
//! reflection depth: tiles covering reflective/refractive objects cost a
//! multiple of background tiles, producing much larger variability than the
//! image-processing workload.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::DivisibleApp;

/// A synthetic ray-tracing workload over a tiled screen.
#[derive(Debug, Clone)]
pub struct RayTracing {
    costs: Vec<f64>,
    tiles_x: usize,
    tiles_y: usize,
}

impl RayTracing {
    /// Generate a `tiles_x × tiles_y` screen over a scene with `objects`
    /// objects. Each object covers a disc of tiles; tiles hit by an object
    /// pay a cost multiplied by the object's recursive depth (1–`max_depth`
    /// reflection bounces). Costs are in background-tile units.
    ///
    /// # Panics
    ///
    /// Panics on an empty screen or `max_depth == 0`.
    pub fn generate(
        tiles_x: usize,
        tiles_y: usize,
        objects: usize,
        max_depth: u32,
        seed: u64,
    ) -> Self {
        assert!(tiles_x > 0 && tiles_y > 0, "screen must be non-empty");
        assert!(max_depth > 0, "max_depth must be at least 1");
        let mut rng = StdRng::seed_from_u64(seed);
        let mut costs = vec![1.0; tiles_x * tiles_y];
        for _ in 0..objects {
            let cx = rng.gen_range(0.0..tiles_x as f64);
            let cy = rng.gen_range(0.0..tiles_y as f64);
            let radius = rng.gen_range(1.0..(tiles_x.min(tiles_y) as f64 / 3.0).max(1.5));
            let depth = rng.gen_range(1..=max_depth);
            // Each reflection bounce multiplies the per-ray work; cap the
            // factor so a single pathological object cannot dominate W.
            let factor = (1.5_f64).powi(depth as i32).min(20.0);
            for ty in 0..tiles_y {
                for tx in 0..tiles_x {
                    let dx = tx as f64 - cx;
                    let dy = ty as f64 - cy;
                    if dx * dx + dy * dy <= radius * radius {
                        costs[ty * tiles_x + tx] += factor;
                    }
                }
            }
        }
        RayTracing {
            costs,
            tiles_x,
            tiles_y,
        }
    }

    /// Screen width in tiles.
    pub fn tiles_x(&self) -> usize {
        self.tiles_x
    }

    /// Screen height in tiles.
    pub fn tiles_y(&self) -> usize {
        self.tiles_y
    }
}

impl DivisibleApp for RayTracing {
    fn name(&self) -> &str {
        "ray-tracing"
    }

    fn unit_costs(&self) -> &[f64] {
        &self.costs
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shape() {
        let r = RayTracing::generate(40, 25, 12, 5, 3);
        assert_eq!(r.tiles_x(), 40);
        assert_eq!(r.tiles_y(), 25);
        assert_eq!(r.unit_costs().len(), 1000);
    }

    #[test]
    fn empty_scene_is_uniform() {
        let r = RayTracing::generate(20, 20, 0, 5, 3);
        assert!(r.cost_variability() < 1e-12);
    }

    #[test]
    fn complex_scene_is_highly_variable() {
        let r = RayTracing::generate(40, 40, 15, 8, 11);
        assert!(
            r.cost_variability() > 0.3,
            "ray tracing should be strongly data-dependent, got {}",
            r.cost_variability()
        );
    }

    #[test]
    fn costs_at_least_background() {
        let r = RayTracing::generate(30, 30, 10, 6, 2);
        assert!(r.unit_costs().iter().all(|&c| c >= 1.0));
    }

    #[test]
    fn deterministic() {
        let a = RayTracing::generate(16, 16, 5, 4, 1);
        let b = RayTracing::generate(16, 16, 5, 4, 1);
        assert_eq!(a.unit_costs(), b.unit_costs());
    }
}
