//! UMR — Uniform Multi-Round scheduling (Yang & Casanova, IPDPS'03).
//!
//! UMR dispatches the workload in `M` rounds; within a round every worker
//! receives the same chunk size, and chunk sizes grow between rounds so that
//! per-round latencies (`nLat`, `cLat`) are paid while the workers are busy
//! computing the previous round.
//!
//! # Derivation implemented here (homogeneous platform)
//!
//! The *uniform round* condition — computing round `j` exactly hides the
//! dispatch of round `j+1` to all `N` workers:
//!
//! ```text
//! cLat + chunk_j/S = N·(nLat + chunk_{j+1}/B)
//! ⇒ chunk_{j+1} = θ·chunk_j + η,   θ = B/(N·S),   η = B·cLat/N − B·nLat
//! ```
//!
//! With the fixed point `h = η/(1−θ)` (θ ≠ 1): `chunk_j = θ^j(chunk_0−h) + h`.
//!
//! Constraint (all chunks cover the workload): `Σ_{j<M} chunk_j = W/N`.
//!
//! Makespan model (worker `N` receives last and finishes last):
//!
//! ```text
//! F(M, chunk_0) = N(nLat + chunk_0/B) + tLat + M·cLat + W/(N·S)
//! ```
//!
//! Minimizing `F` subject to the constraint via a Lagrange multiplier yields
//! a single scalar equation in `M` which the paper solves "numerically by
//! bisection"; [`UmrSchedule::solve_lagrange`] reproduces that.
//! [`UmrSchedule::solve`] instead scans integer round counts directly —
//! equally fast at these sizes, immune to the degenerate cases (θ = 1,
//! `cLat = 0`), and used as ground truth in tests, which assert that both
//! solvers agree wherever the Lagrange path applies.

use dls_sim::{Decision, Platform, Scheduler, SimView};

use crate::plan::{DispatchPlan, PlanReplayer};

/// Hard cap on the number of rounds considered.
///
/// With `cLat = nLat = 0` the model has no per-round overhead and the
/// optimum degenerates to infinitely many rounds; beyond a few dozen rounds
/// the predicted gain (the `N·chunk_0/B` start-up term shrinking
/// geometrically) is far below any realistic measurement noise, while
/// simulation cost grows linearly with the round count.
pub const MAX_ROUNDS: usize = 64;

/// Chunks smaller than this fraction of the per-worker workload are treated
/// as numerically zero when checking schedule feasibility.
const CHUNK_EPS_FRACTION: f64 = 1e-12;

/// `f(x) = 1/expm1(x) − 1/x`, the smooth part of the geometric-sum
/// reciprocal (`x/(e^x−1)` is the Bernoulli generating function, so
/// `f(x) = −1/2 + x/12 − x³/720 + …`). Continuous through `x = 0`; the
/// series is used below `|x| = 10⁻²` where the direct difference of two
/// near-equal `1/x` terms would cancel.
fn inv_expm1_minus_inv(x: f64) -> f64 {
    if x.abs() < 1e-2 {
        // Next omitted term is x⁵/30240 < 4e-16 on this range.
        -0.5 + x / 12.0 - x * x * x / 720.0
    } else {
        1.0 / x.exp_m1() - 1.0 / x
    }
}

/// Inputs to the UMR solver: a homogeneous platform plus total workload.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct UmrInputs {
    /// Number of workers `N`.
    pub n: usize,
    /// Worker speed `S` (units/s).
    pub speed: f64,
    /// Link rate `B` (units/s).
    pub bandwidth: f64,
    /// Computation latency `cLat` (s).
    pub comp_latency: f64,
    /// Communication latency `nLat` (s).
    pub net_latency: f64,
    /// Pipeline latency `tLat` (s).
    pub transfer_latency: f64,
    /// Total workload `W_total` (units).
    pub w_total: f64,
}

/// Errors from the UMR solver.
#[derive(Debug, Clone, PartialEq)]
pub enum UmrError {
    /// The closed-form homogeneous solver requires identical workers; use
    /// [`crate::umr_het`] for heterogeneous platforms.
    NotHomogeneous,
    /// Workload must be finite and strictly positive.
    InvalidWorkload {
        /// The offending workload value.
        w_total: f64,
    },
    /// No round count in `1..=MAX_ROUNDS` yields strictly positive chunks.
    NoFeasibleSchedule,
}

impl std::fmt::Display for UmrError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            UmrError::NotHomogeneous => {
                write!(f, "homogeneous UMR solver given a heterogeneous platform")
            }
            UmrError::InvalidWorkload { w_total } => write!(f, "invalid workload {w_total}"),
            UmrError::NoFeasibleSchedule => write!(f, "no feasible UMR schedule"),
        }
    }
}

impl std::error::Error for UmrError {}

/// Which solver produced a schedule.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SolverPath {
    /// Lagrange-multiplier stationarity condition + root finding (the
    /// paper's method).
    Lagrange,
    /// Exhaustive scan over integer round counts.
    IntegerScan,
}

impl UmrInputs {
    /// Extract solver inputs from a homogeneous [`Platform`].
    ///
    /// # Errors
    ///
    /// [`UmrError::NotHomogeneous`] if workers differ,
    /// [`UmrError::InvalidWorkload`] for a non-positive or non-finite `w_total`.
    pub fn from_platform(platform: &Platform, w_total: f64) -> Result<Self, UmrError> {
        if !platform.is_homogeneous() {
            return Err(UmrError::NotHomogeneous);
        }
        if !w_total.is_finite() || w_total <= 0.0 {
            return Err(UmrError::InvalidWorkload { w_total });
        }
        let w = platform.worker(0);
        Ok(UmrInputs {
            n: platform.num_workers(),
            speed: w.speed,
            bandwidth: w.bandwidth,
            comp_latency: w.comp_latency,
            net_latency: w.net_latency,
            transfer_latency: w.transfer_latency,
            w_total,
        })
    }

    /// Chunk growth factor `θ = B/(N·S)`.
    pub fn theta(&self) -> f64 {
        self.bandwidth / (self.n as f64 * self.speed)
    }

    /// Affine term `η = B·cLat/N − B·nLat` of the round recursion.
    pub fn eta(&self) -> f64 {
        self.bandwidth * self.comp_latency / self.n as f64 - self.bandwidth * self.net_latency
    }

    /// Per-worker workload `W/N`.
    pub fn w_per_worker(&self) -> f64 {
        self.w_total / self.n as f64
    }

    /// The first-round chunk size that makes `M` rounds sum to `W/N`, or
    /// `None` when the value is not finite.
    ///
    /// The textbook form `h + (W/N − M·h)·(θ−1)/(θ^M−1)` cancels
    /// catastrophically as θ → 1 (`h = η/(1−θ)` and `θ^M − 1` both lose all
    /// significance), so it is rearranged into
    ///
    /// ```text
    /// chunk_0 = (W/N)·(θ−1)/(θ^M−1) + η·(M·f(M·lnθ) − f(lnθ)),
    /// f(x)    = 1/expm1(x) − 1/x
    /// ```
    ///
    /// where the two `1/x` poles of `M/(θ^M−1)` and `1/(θ−1)` cancel
    /// *analytically* inside `f`, which is smooth through 0 (value −1/2).
    /// Every factor is evaluated via `ln_1p`/`exp_m1`, so the function is
    /// continuous through θ = 1 with no branch cutoff.
    fn chunk0_for(&self, m: f64) -> Option<f64> {
        let eta = self.eta();
        let w_per = self.w_per_worker();
        let d = self.theta() - 1.0;
        let u = d.ln_1p(); // ln θ, accurate near θ = 1
        let geom = if d == 0.0 {
            1.0 / m // limit of (θ−1)/(θ^M−1)
        } else {
            d / (m * u).exp_m1()
        };
        let chunk0 = w_per * geom + eta * (m * inv_expm1_minus_inv(m * u) - inv_expm1_minus_inv(u));
        chunk0.is_finite().then_some(chunk0)
    }

    /// Generate the `m` per-round chunk sizes starting from `chunk0` via the
    /// recursion (numerically stabler than powers for large `m`).
    fn chunks_from(&self, chunk0: f64, m: usize) -> Vec<f64> {
        let theta = self.theta();
        let eta = self.eta();
        let mut chunks = Vec::with_capacity(m);
        let mut c = chunk0;
        for _ in 0..m {
            chunks.push(c);
            c = theta * c + eta;
        }
        chunks
    }

    /// Predicted makespan of an `m`-round schedule starting at `chunk0`.
    fn makespan(&self, chunk0: f64, m: usize) -> f64 {
        self.n as f64 * (self.net_latency + chunk0 / self.bandwidth)
            + self.transfer_latency
            + m as f64 * self.comp_latency
            + self.w_per_worker() / self.speed
    }

    fn chunks_feasible(&self, chunks: &[f64]) -> bool {
        let floor = CHUNK_EPS_FRACTION * self.w_per_worker();
        chunks.iter().all(|&c| c.is_finite() && c > floor)
    }
}

/// A solved UMR schedule.
#[derive(Debug, Clone, PartialEq)]
pub struct UmrSchedule {
    inputs: UmrInputs,
    /// Per-round, per-worker chunk sizes (`round_chunks.len() == M`).
    round_chunks: Vec<f64>,
    predicted_makespan: f64,
    solver: SolverPath,
}

impl UmrSchedule {
    /// Solve for the optimal round count and chunk sizes by scanning integer
    /// round counts (robust reference method).
    pub fn solve(inputs: UmrInputs) -> Result<Self, UmrError> {
        Self::validate(&inputs)?;
        let (m, chunk0) = Self::scan_best(&inputs).ok_or(UmrError::NoFeasibleSchedule)?;
        Ok(Self::build(inputs, m, chunk0, SolverPath::IntegerScan))
    }

    /// Solve with the paper's Lagrange-multiplier + root-finding method,
    /// falling back to the integer scan in the degenerate cases the
    /// stationarity condition cannot handle (`θ ≈ 1`, `cLat = 0`, no
    /// interior stationary point).
    pub fn solve_lagrange(inputs: UmrInputs) -> Result<Self, UmrError> {
        Self::validate(&inputs)?;
        if let Some((m, chunk0)) = Self::lagrange_best(&inputs) {
            return Ok(Self::build(inputs, m, chunk0, SolverPath::Lagrange));
        }
        let (m, chunk0) = Self::scan_best(&inputs).ok_or(UmrError::NoFeasibleSchedule)?;
        Ok(Self::build(inputs, m, chunk0, SolverPath::IntegerScan))
    }

    /// Solve with resource selection: consider using only `n ≤ N` workers
    /// and keep whichever predicted makespan is smallest. (The paper applies
    /// this when the full-utilization condition fails; with Table 1's
    /// `B = r·N`, `r ≥ 1.2` it rarely reduces the worker count.)
    pub fn solve_with_selection(inputs: UmrInputs) -> Result<Self, UmrError> {
        Self::validate(&inputs)?;
        let mut best: Option<UmrSchedule> = None;
        for n in 1..=inputs.n {
            let sub = UmrInputs { n, ..inputs };
            if let Ok(s) = Self::solve(sub) {
                if best
                    .as_ref()
                    .map(|b| s.predicted_makespan < b.predicted_makespan)
                    .unwrap_or(true)
                {
                    best = Some(s);
                }
            }
        }
        best.ok_or(UmrError::NoFeasibleSchedule)
    }

    fn validate(inputs: &UmrInputs) -> Result<(), UmrError> {
        if !inputs.w_total.is_finite() || inputs.w_total <= 0.0 {
            return Err(UmrError::InvalidWorkload {
                w_total: inputs.w_total,
            });
        }
        Ok(())
    }

    fn build(inputs: UmrInputs, m: usize, chunk0: f64, solver: SolverPath) -> Self {
        let mut round_chunks = inputs.chunks_from(chunk0, m);
        // Absorb the floating-point residual into the last round so the
        // schedule covers the workload exactly.
        let sum: f64 = round_chunks.iter().sum::<f64>() * inputs.n as f64;
        let residual = (inputs.w_total - sum) / inputs.n as f64;
        if let Some(last) = round_chunks.last_mut() {
            *last += residual;
        }
        let predicted_makespan = inputs.makespan(round_chunks[0], m);
        UmrSchedule {
            inputs,
            round_chunks,
            predicted_makespan,
            solver,
        }
    }

    /// Best (M, chunk0) by integer scan.
    fn scan_best(inputs: &UmrInputs) -> Option<(usize, f64)> {
        let mut best: Option<(usize, f64, f64)> = None;
        let mut stale = 0usize;
        for m in 1..=MAX_ROUNDS {
            let Some(chunk0) = inputs.chunk0_for(m as f64) else {
                continue;
            };
            let chunks = inputs.chunks_from(chunk0, m);
            if !inputs.chunks_feasible(&chunks) {
                // Once feasibility is lost after having found a solution it
                // does not come back for larger M in practice; allow slack.
                if best.is_some() {
                    stale += 1;
                    if stale > 64 {
                        break;
                    }
                }
                continue;
            }
            let f = inputs.makespan(chunk0, m);
            match &mut best {
                Some((_, _, best_f)) if f < *best_f - 1e-12 => {
                    best = Some((m, chunk0, f));
                    stale = 0;
                }
                Some(_) => {
                    stale += 1;
                    if stale > 64 {
                        break;
                    }
                }
                None => best = Some((m, chunk0, f)),
            }
        }
        best.map(|(m, c, _)| (m, c))
    }

    /// Best (M, chunk0) via the Lagrange stationarity condition:
    ///
    /// `(N/B)·∂G/∂M = cLat·∂G/∂chunk0`, with `chunk0(M)` substituted from
    /// the workload constraint, solved for continuous `M` by Brent/bisection.
    fn lagrange_best(inputs: &UmrInputs) -> Option<(usize, f64)> {
        let theta = inputs.theta();
        let clat = inputs.comp_latency;
        if (theta - 1.0).abs() < 1e-9 || clat <= 0.0 {
            return None; // Degenerate: no interior stationary point.
        }
        let eta = inputs.eta();
        let h = eta / (1.0 - theta);
        let n_over_b = inputs.n as f64 / inputs.bandwidth;
        let ln_theta = theta.ln();

        let phi = |m: f64| -> f64 {
            let chunk0 = match inputs.chunk0_for(m) {
                Some(c) => c,
                None => return f64::NAN,
            };
            // θ^M and (θ^M−1)/(θ−1) via exp/expm1 of M·lnθ: stable where
            // powf-then-subtract would cancel as θ approaches 1.
            let q = (m * ln_theta).exp();
            let dg_dm = (chunk0 - h) * q * ln_theta / (theta - 1.0) + h;
            let dg_dc0 = (m * ln_theta).exp_m1() / (theta - 1.0);
            n_over_b * dg_dm - clat * dg_dc0
        };

        // Bracket a sign change over a geometric grid of round counts.
        let mut prev_m = 1.0;
        let mut prev_phi = phi(prev_m);
        if !prev_phi.is_finite() {
            return None;
        }
        let mut bracket = None;
        let mut m = 1.5;
        while m <= MAX_ROUNDS as f64 {
            let p = phi(m);
            if !p.is_finite() {
                return None;
            }
            if p == 0.0 {
                bracket = Some((m, m));
                break;
            }
            if prev_phi.signum() != p.signum() {
                bracket = Some((prev_m, m));
                break;
            }
            prev_m = m;
            prev_phi = p;
            m *= 1.5;
        }
        let (lo, hi) = bracket?;
        let m_star = if lo == hi {
            lo
        } else {
            dls_numerics::brent(phi, lo, hi, 1e-10, 200)
                .or_else(|_| dls_numerics::bisect(phi, lo, hi, 1e-10, 200))
                .ok()?
        };

        // Round to the best feasible neighboring integer.
        let candidates = [
            m_star.floor().max(1.0) as usize,
            m_star.ceil().max(1.0) as usize,
        ];
        let mut best: Option<(usize, f64, f64)> = None;
        for m in candidates {
            let m = m.clamp(1, MAX_ROUNDS);
            let Some(chunk0) = inputs.chunk0_for(m as f64) else {
                continue;
            };
            let chunks = inputs.chunks_from(chunk0, m);
            if !inputs.chunks_feasible(&chunks) {
                continue;
            }
            let f = inputs.makespan(chunk0, m);
            if best.map(|(_, _, bf)| f < bf).unwrap_or(true) {
                best = Some((m, chunk0, f));
            }
        }
        best.map(|(m, c, _)| (m, c))
    }

    /// Number of rounds `M`.
    pub fn num_rounds(&self) -> usize {
        self.round_chunks.len()
    }

    /// Per-round, per-worker chunk sizes.
    pub fn round_chunks(&self) -> &[f64] {
        &self.round_chunks
    }

    /// Predicted makespan `F(M, chunk_0)`.
    pub fn predicted_makespan(&self) -> f64 {
        self.predicted_makespan
    }

    /// Which solver produced this schedule.
    pub fn solver(&self) -> SolverPath {
        self.solver
    }

    /// The solver inputs.
    pub fn inputs(&self) -> &UmrInputs {
        &self.inputs
    }

    /// Materialize the dispatch plan: rounds in order, workers `0..n` within
    /// each round.
    pub fn plan(&self) -> DispatchPlan {
        let mut sends = Vec::with_capacity(self.round_chunks.len() * self.inputs.n);
        for &chunk in &self.round_chunks {
            for worker in 0..self.inputs.n {
                sends.push((worker, chunk));
            }
        }
        DispatchPlan { sends }
    }
}

/// The UMR scheduler: replays the precalculated schedule fire-and-forget
/// (under exact predictions the master's interface is continuously busy, so
/// eager replay *is* the planned timeline).
#[derive(Debug, Clone)]
pub struct Umr {
    replayer: PlanReplayer,
    schedule: UmrSchedule,
}

impl Umr {
    /// Solve and wrap a scheduler for `platform` and `w_total`.
    pub fn new(platform: &Platform, w_total: f64) -> Result<Self, UmrError> {
        let schedule = UmrSchedule::solve(UmrInputs::from_platform(platform, w_total)?)?;
        Ok(Self::from_schedule(schedule))
    }

    /// Wrap an already-solved schedule.
    pub fn from_schedule(schedule: UmrSchedule) -> Self {
        Umr {
            replayer: PlanReplayer::new(schedule.plan()),
            schedule,
        }
    }

    /// The underlying schedule.
    pub fn schedule(&self) -> &UmrSchedule {
        &self.schedule
    }
}

impl Scheduler for Umr {
    fn name(&self) -> String {
        "UMR".into()
    }

    fn next_dispatch(&mut self, _view: &SimView<'_>) -> Decision {
        self.replayer.next_decision()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dls_sim::{simulate, ErrorInjector, ErrorModel, HomogeneousParams, SimConfig};

    fn table1(n: usize, r: f64, clat: f64, nlat: f64) -> UmrInputs {
        let platform = HomogeneousParams::table1(n, r, clat, nlat).build().unwrap();
        UmrInputs::from_platform(&platform, 1000.0).unwrap()
    }

    #[test]
    fn theta_eta() {
        let i = table1(10, 1.5, 0.4, 0.2);
        assert!((i.theta() - 1.5).abs() < 1e-12);
        // η = B·cLat/N − B·nLat = 15·0.4/10 − 15·0.2 = 0.6 − 3.0 = −2.4
        assert!((i.eta() + 2.4).abs() < 1e-12);
        assert!((i.w_per_worker() - 100.0).abs() < 1e-12);
    }

    #[test]
    fn recursion_satisfies_uniform_condition() {
        let i = table1(10, 1.5, 0.4, 0.2);
        let s = UmrSchedule::solve(i).unwrap();
        let chunks = s.round_chunks();
        assert!(chunks.len() >= 2, "expected multiple rounds");
        for w in chunks.windows(2) {
            // cLat + chunk_j/S == N(nLat + chunk_{j+1}/B)
            let lhs = i.comp_latency + w[0] / i.speed;
            let rhs = i.n as f64 * (i.net_latency + w[1] / i.bandwidth);
            assert!(
                (lhs - rhs).abs() < 1e-6,
                "uniform condition violated: {lhs} vs {rhs}"
            );
        }
    }

    #[test]
    fn chunks_sum_to_workload() {
        for (n, r, clat, nlat) in [
            (10, 1.2, 0.0, 0.0),
            (10, 1.5, 0.4, 0.2),
            (20, 1.8, 0.3, 0.9),
            (50, 2.0, 1.0, 1.0),
            (15, 1.3, 0.1, 0.7),
        ] {
            let i = table1(n, r, clat, nlat);
            let s = UmrSchedule::solve(i).unwrap();
            let total: f64 = s.round_chunks().iter().sum::<f64>() * n as f64;
            assert!(
                (total - 1000.0).abs() < 1e-6,
                "sum {total} for n={n} r={r} clat={clat} nlat={nlat}"
            );
            assert!((s.plan().total_work() - 1000.0).abs() < 1e-6);
        }
    }

    #[test]
    fn chunks_increase_in_low_latency_regimes() {
        // With modest per-round latencies the optimizer ramps chunk sizes up
        // toward the fixed point: the sequence must be non-decreasing.
        let i = table1(20, 1.8, 0.3, 0.1);
        let s = UmrSchedule::solve(i).unwrap();
        assert!(s.num_rounds() >= 2);
        for w in s.round_chunks().windows(2) {
            assert!(w[1] >= w[0] - 1e-9, "chunks decreased: {:?}", w);
        }
    }

    #[test]
    fn high_nlat_regime_uses_few_rounds() {
        // nLat = 0.9 per send makes rounds expensive: the paper notes UMR
        // "often uses only one round" here. Our optimizer may keep a couple
        // of rounds (the makespan model stays exact either way — see
        // simulated_makespan_matches_prediction_without_error), but the
        // round count must collapse to a small number.
        let s = UmrSchedule::solve(table1(20, 1.8, 0.3, 0.9)).unwrap();
        assert!(
            s.num_rounds() <= 3,
            "expected few rounds, got {}",
            s.num_rounds()
        );
    }

    #[test]
    fn simulated_makespan_matches_prediction_without_error() {
        // The analytic makespan model must agree with the DES at error = 0.
        for (n, r, clat, nlat) in [
            (10, 1.5, 0.4, 0.2),
            (20, 1.8, 0.3, 0.9),
            (10, 1.2, 0.0, 0.5),
            (30, 2.0, 0.7, 0.1),
        ] {
            let platform = HomogeneousParams::table1(n, r, clat, nlat).build().unwrap();
            let mut umr = Umr::new(&platform, 1000.0).unwrap();
            let predicted = umr.schedule().predicted_makespan();
            let result = simulate(
                &platform,
                &mut umr,
                ErrorInjector::new(ErrorModel::None, 0),
                SimConfig::default(),
            )
            .unwrap();
            assert!(
                (result.makespan - predicted).abs() < 1e-6 * predicted,
                "n={n} r={r} clat={clat} nlat={nlat}: sim {} vs predicted {}",
                result.makespan,
                predicted
            );
        }
    }

    #[test]
    fn single_round_when_latency_dominates() {
        // Huge per-round cost: one round must win.
        let i = table1(10, 1.2, 10.0, 10.0);
        let s = UmrSchedule::solve(i).unwrap();
        assert_eq!(s.num_rounds(), 1);
        assert!((s.round_chunks()[0] - 100.0).abs() < 1e-9);
    }

    #[test]
    fn more_rounds_when_latency_vanishes() {
        let cheap = UmrSchedule::solve(table1(10, 1.5, 0.01, 0.01)).unwrap();
        let pricey = UmrSchedule::solve(table1(10, 1.5, 1.0, 1.0)).unwrap();
        assert!(
            cheap.num_rounds() > pricey.num_rounds(),
            "cheap {} vs pricey {}",
            cheap.num_rounds(),
            pricey.num_rounds()
        );
    }

    #[test]
    fn zero_latency_hits_round_cap_gracefully() {
        let s = UmrSchedule::solve(table1(10, 1.5, 0.0, 0.0)).unwrap();
        assert!(s.num_rounds() <= MAX_ROUNDS);
        assert!(s.num_rounds() > 10);
        let total: f64 = s.round_chunks().iter().sum::<f64>() * 10.0;
        assert!((total - 1000.0).abs() < 1e-6);
    }

    #[test]
    fn lagrange_agrees_with_scan() {
        // Wherever the stationarity condition applies, both solvers must
        // produce (near-)identical predicted makespans.
        let mut checked = 0;
        for n in [10usize, 20, 40] {
            for r in [1.2, 1.6, 2.0] {
                for clat in [0.1, 0.5, 1.0] {
                    for nlat in [0.0, 0.3, 0.9] {
                        let i = table1(n, r, clat, nlat);
                        let scan = UmrSchedule::solve(i).unwrap();
                        let lag = UmrSchedule::solve_lagrange(i).unwrap();
                        let fs = scan.predicted_makespan();
                        let fl = lag.predicted_makespan();
                        assert!(
                            fl <= fs * 1.001 + 1e-9,
                            "lagrange worse: n={n} r={r} clat={clat} nlat={nlat}: {fl} vs {fs}"
                        );
                        assert!(
                            fs <= fl * 1.001 + 1e-9,
                            "scan worse: n={n} r={r} clat={clat} nlat={nlat}: {fs} vs {fl}"
                        );
                        if lag.solver() == SolverPath::Lagrange {
                            checked += 1;
                            let dm = (lag.num_rounds() as i64 - scan.num_rounds() as i64).abs();
                            assert!(
                                dm <= 1,
                                "round counts diverge: {} vs {}",
                                lag.num_rounds(),
                                scan.num_rounds()
                            );
                        }
                    }
                }
            }
        }
        assert!(checked > 20, "Lagrange path exercised only {checked} times");
    }

    #[test]
    fn chunk0_is_continuous_through_theta_one() {
        // Regression: the old implementation switched at |θ−1| < 1e-9 from a
        // linearized branch to `h + (W/N − M·h)·(θ−1)/(θ^M−1)`, which near
        // the cutoff loses ~all significance (h ≈ η/1e-9, θ^M−1 ≈ M·1e-9):
        // chunk0 jumped by O(η·ε/δ²) ≈ tens of units across the threshold.
        // The expm1 form must be smooth: sweep θ through 1 (crossing the old
        // cutoff from both sides) and require every value to sit within
        // 1e-6 of the exact θ = 1 limit.
        let base = UmrInputs {
            n: 4,
            speed: 1.0,
            bandwidth: 4.0,
            comp_latency: 0.4,
            net_latency: 0.05,
            transfer_latency: 0.0,
            w_total: 1000.0,
        };
        for m in [2.0, 3.0, 7.0, 31.0] {
            let at_one = base.chunk0_for(m).expect("θ = 1 value");
            // Exact arithmetic-series limit as an independent cross-check.
            let expected = (base.w_per_worker() - base.eta() * m * (m - 1.0) / 2.0) / m;
            assert!(
                (at_one - expected).abs() < 1e-9,
                "θ = 1 limit off: {at_one} vs {expected}"
            );
            for mag in [1e-12, 1e-10, 0.99e-9, 1.01e-9, 1e-8, 1e-7, 1e-6] {
                for sign in [-1.0, 1.0] {
                    let mut i = base;
                    // θ = B/(N·S): perturb the bandwidth to move θ off 1.
                    i.bandwidth = 4.0 * (1.0 + sign * mag);
                    let c = i.chunk0_for(m).expect("perturbed value");
                    // chunk0 genuinely varies with θ (slope up to ~1e4 per
                    // unit θ at these m), so the window scales with the
                    // perturbation; the old code's noise near the cutoff
                    // was O(10) absolute, far outside it.
                    let tol = 1e-7 + 2e5 * mag;
                    assert!(
                        (c - at_one).abs() < tol,
                        "discontinuity at θ = 1{sign:+}·{mag:e}, m = {m}: \
                         {c} vs {at_one}"
                    );
                }
            }
        }
    }

    #[test]
    fn selection_never_worse_than_full_platform() {
        for (n, r, clat, nlat) in [(10, 1.2, 0.0, 1.0), (50, 2.0, 1.0, 1.0)] {
            let i = table1(n, r, clat, nlat);
            let plain = UmrSchedule::solve(i).unwrap();
            let sel = UmrSchedule::solve_with_selection(i).unwrap();
            assert!(sel.predicted_makespan() <= plain.predicted_makespan() + 1e-9);
        }
    }

    #[test]
    fn rejects_bad_workload() {
        let platform = HomogeneousParams::table1(4, 1.5, 0.1, 0.1).build().unwrap();
        assert!(matches!(
            UmrInputs::from_platform(&platform, 0.0),
            Err(UmrError::InvalidWorkload { .. })
        ));
        assert!(matches!(
            UmrInputs::from_platform(&platform, f64::NAN),
            Err(UmrError::InvalidWorkload { .. })
        ));
    }

    #[test]
    fn rejects_heterogeneous_platform() {
        use dls_sim::{Platform, WorkerSpec};
        let a = WorkerSpec {
            speed: 1.0,
            bandwidth: 10.0,
            comp_latency: 0.0,
            net_latency: 0.0,
            transfer_latency: 0.0,
        };
        let mut b = a;
        b.speed = 2.0;
        let platform = Platform::new(vec![a, b]).unwrap();
        assert_eq!(
            UmrInputs::from_platform(&platform, 100.0).unwrap_err(),
            UmrError::NotHomogeneous
        );
    }

    #[test]
    fn error_display() {
        assert!(!format!("{}", UmrError::NotHomogeneous).is_empty());
        assert!(!format!("{}", UmrError::InvalidWorkload { w_total: -1.0 }).is_empty());
        assert!(!format!("{}", UmrError::NoFeasibleSchedule).is_empty());
    }
}
