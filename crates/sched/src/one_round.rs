//! Latency-aware one-round scheduling (the "one-round algorithm in \[11\]",
//! Rosenberg 2001, that the UMR paper used as its second competitor).
//!
//! Unlike MI-1, which plans with a latency-free model, this planner solves
//! the classic single-round divisible-load problem *with* the platform's
//! latencies: chunk sizes `c_0 ≥ c_1 ≥ …` such that all workers finish
//! simultaneously. With sequential sends, equating worker `i`'s and
//! `i+1`'s finish times gives the affine recursion
//!
//! ```text
//! c_{i+1} = κ·(c_i − nLat·S),    κ = B/(B + S)
//! ```
//!
//! (`cLat` and `tLat` shift every worker equally and drop out). The first
//! chunk follows from `Σ c_i = W`. With `nLat = 0` the recursion is purely
//! geometric and the schedule coincides with MI-1 — a property the tests
//! assert. Large `N·nLat` can make trailing chunks negative, i.e. the
//! platform cannot usefully feed all workers in one round; the solver then
//! reduces the worker count (the "resource selection" the divisible-load
//! literature prescribes).

use dls_sim::{Decision, Platform, Scheduler, SimView};

use crate::plan::{DispatchPlan, PlanReplayer};
use crate::umr::UmrError;

/// A solved latency-aware one-round schedule.
#[derive(Debug, Clone, PartialEq)]
pub struct OneRoundSchedule {
    chunks: Vec<f64>,
    predicted_makespan: f64,
}

impl OneRoundSchedule {
    /// Solve for a homogeneous platform, reducing the worker count if the
    /// equal-finish condition forces non-positive chunks.
    ///
    /// # Errors
    ///
    /// [`UmrError::NotHomogeneous`] / [`UmrError::InvalidWorkload`] on bad
    /// inputs; [`UmrError::NoFeasibleSchedule`] if not even one worker
    /// works (cannot happen for positive workloads).
    pub fn solve(platform: &Platform, w_total: f64) -> Result<Self, UmrError> {
        if !platform.is_homogeneous() {
            return Err(UmrError::NotHomogeneous);
        }
        if !w_total.is_finite() || w_total <= 0.0 {
            return Err(UmrError::InvalidWorkload { w_total });
        }
        let w = platform.worker(0);
        for n in (1..=platform.num_workers()).rev() {
            if let Some(chunks) = Self::chunks_for(n, w.speed, w.bandwidth, w.net_latency, w_total)
            {
                let predicted_makespan = w.net_latency
                    + chunks[0] / w.bandwidth
                    + w.comp_latency
                    + chunks[0] / w.speed
                    + w.transfer_latency;
                return Ok(OneRoundSchedule {
                    chunks,
                    predicted_makespan,
                });
            }
        }
        Err(UmrError::NoFeasibleSchedule)
    }

    /// Chunk sizes for `n` workers, or `None` if any chunk would be
    /// non-positive.
    fn chunks_for(n: usize, s: f64, b: f64, nlat: f64, w_total: f64) -> Option<Vec<f64>> {
        // c_{i+1} = κ·c_i + λ with κ = B/(B+S), λ = −κ·nLat·S.
        let kappa = b / (b + s);
        let lambda = -kappa * nlat * s;
        // Σ_{i<n} c_i = c_0·g_n + λ·t_n = W, where g_n = Σ κ^i and
        // t_n = Σ_{i<n} (g_i) (prefix sums of the affine recursion).
        let mut g = 0.0; // Σ κ^i for i < n
        let mut t = 0.0; // Σ of partial geometric sums
        let mut kpow = 1.0;
        let mut gi = 0.0; // Σ κ^j for j < i
        for _ in 0..n {
            t += gi;
            g += kpow;
            gi += kpow;
            kpow *= kappa;
        }
        let c0 = (w_total - lambda * t) / g;
        let mut chunks = Vec::with_capacity(n);
        let mut c = c0;
        for _ in 0..n {
            if !(c.is_finite() && c > 0.0) {
                return None;
            }
            chunks.push(c);
            c = kappa * c + lambda;
        }
        // Absorb the floating-point residual into the first (largest) chunk.
        let sum: f64 = chunks.iter().sum();
        chunks[0] += w_total - sum;
        if chunks[0] <= 0.0 {
            return None;
        }
        Some(chunks)
    }

    /// Per-worker chunk sizes (workers beyond `chunks().len()` are unused).
    pub fn chunks(&self) -> &[f64] {
        &self.chunks
    }

    /// Predicted makespan (all workers finish simultaneously).
    pub fn predicted_makespan(&self) -> f64 {
        self.predicted_makespan
    }

    /// The dispatch plan: worker `i` gets `chunks()[i]`, in order.
    pub fn plan(&self) -> DispatchPlan {
        DispatchPlan {
            sends: self.chunks.iter().copied().enumerate().collect(),
        }
    }
}

/// The one-round scheduler (eager replay).
#[derive(Debug, Clone)]
pub struct OneRound {
    replayer: PlanReplayer,
    schedule: OneRoundSchedule,
}

impl OneRound {
    /// Solve and wrap.
    pub fn new(platform: &Platform, w_total: f64) -> Result<Self, UmrError> {
        let schedule = OneRoundSchedule::solve(platform, w_total)?;
        Ok(OneRound {
            replayer: PlanReplayer::new(schedule.plan()),
            schedule,
        })
    }

    /// The underlying schedule.
    pub fn schedule(&self) -> &OneRoundSchedule {
        &self.schedule
    }
}

impl Scheduler for OneRound {
    fn name(&self) -> String {
        "OneRound".into()
    }

    fn next_dispatch(&mut self, _view: &SimView<'_>) -> Decision {
        self.replayer.next_decision()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mi::MiSchedule;
    use dls_sim::{simulate, ErrorInjector, ErrorModel, HomogeneousParams, SimConfig, WorkerSpec};

    #[test]
    fn reduces_to_mi1_without_latencies() {
        let platform = HomogeneousParams::table1(6, 1.5, 0.0, 0.0).build().unwrap();
        let one = OneRoundSchedule::solve(&platform, 500.0).unwrap();
        let mi1 = MiSchedule::solve(&platform, 500.0, 1).unwrap();
        assert_eq!(one.chunks().len(), 6);
        for (a, b) in one.chunks().iter().zip(&mi1.chunks()[0]) {
            assert!((a - b).abs() < 1e-6, "{a} vs {b}");
        }
    }

    #[test]
    fn chunks_decrease_and_conserve() {
        let platform = HomogeneousParams::table1(10, 1.5, 0.3, 0.2)
            .build()
            .unwrap();
        let s = OneRoundSchedule::solve(&platform, 1000.0).unwrap();
        let total: f64 = s.chunks().iter().sum();
        assert!((total - 1000.0).abs() < 1e-6);
        for pair in s.chunks().windows(2) {
            assert!(
                pair[1] < pair[0],
                "one-round chunks must decrease: {pair:?}"
            );
        }
    }

    #[test]
    fn equal_finish_in_simulation() {
        // At error 0 every used worker must finish at the same instant
        // (that is the defining property of the optimal single round).
        let platform = HomogeneousParams::table1(8, 1.6, 0.4, 0.3).build().unwrap();
        let mut s = OneRound::new(&platform, 1000.0).unwrap();
        let predicted = s.schedule().predicted_makespan();
        let r = simulate(
            &platform,
            &mut s,
            ErrorInjector::new(ErrorModel::None, 0),
            SimConfig {
                trace_mode: dls_sim::TraceMode::Full,
                ..Default::default()
            },
        )
        .unwrap();
        let trace = r.trace.unwrap();
        assert!(trace.validate(8).is_empty());
        // All ComputeEnd events coincide with the makespan.
        let ends: Vec<f64> = trace
            .events()
            .iter()
            .filter_map(|e| match e {
                dls_sim::TraceEvent::ComputeEnd { time, .. } => Some(*time),
                _ => None,
            })
            .collect();
        for t in &ends {
            assert!(
                (t - r.makespan).abs() < 1e-6,
                "finish times not equal: {t} vs {}",
                r.makespan
            );
        }
        assert!((r.makespan - predicted).abs() < 1e-6 * predicted);
    }

    #[test]
    fn beats_latency_blind_mi1_under_latency() {
        let platform = HomogeneousParams::table1(10, 1.4, 0.2, 0.6)
            .build()
            .unwrap();
        let run = |s: &mut dyn Scheduler| {
            simulate(
                &platform,
                s,
                ErrorInjector::new(ErrorModel::None, 0),
                SimConfig::default(),
            )
            .unwrap()
            .makespan
        };
        let mut one = OneRound::new(&platform, 1000.0).unwrap();
        let mut mi1 = crate::mi::MultiInstallment::new(&platform, 1000.0, 1).unwrap();
        let a = run(&mut one);
        let b = run(&mut mi1);
        assert!(a < b, "latency-aware one-round {a} should beat MI-1 {b}");
    }

    #[test]
    fn drops_workers_when_nlat_is_prohibitive() {
        // Tiny workload, huge nLat: feeding everyone costs more than the
        // work is worth; the solver must use fewer workers.
        let platform = dls_sim::Platform::homogeneous(
            10,
            WorkerSpec {
                speed: 1.0,
                bandwidth: 10.0,
                comp_latency: 0.0,
                net_latency: 5.0,
                transfer_latency: 0.0,
            },
        )
        .unwrap();
        let s = OneRoundSchedule::solve(&platform, 20.0).unwrap();
        assert!(
            s.chunks().len() < 10,
            "expected worker reduction, got {}",
            s.chunks().len()
        );
        let total: f64 = s.chunks().iter().sum();
        assert!((total - 20.0).abs() < 1e-6);
    }

    #[test]
    fn input_validation() {
        let platform = HomogeneousParams::table1(4, 1.5, 0.1, 0.1).build().unwrap();
        assert!(matches!(
            OneRoundSchedule::solve(&platform, -1.0),
            Err(UmrError::InvalidWorkload { .. })
        ));
    }
}
