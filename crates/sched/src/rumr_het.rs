//! Heterogeneous RUMR: the two-phase robust scheduler generalized to
//! heterogeneous platforms.
//!
//! The paper develops RUMR "both for homogeneous and heterogeneous
//! platforms" but only presents homogeneous results; this module supplies
//! the heterogeneous variant the library needs in practice:
//!
//! * **Phase split**: the §4.2(i) rule with the heterogeneous round
//!   overhead `max_i cLat_i + Σ_i nLat_i` (the non-hidden latencies of
//!   dispatching one round of empty chunks to every worker).
//! * **Phase 1**: the heterogeneous UMR plan of [`crate::umr_het`] over
//!   `W1`, with RUMR's out-of-order rerouting.
//! * **Phase 2**: speed-weighted continuous factoring — when worker `i`
//!   pulls, it receives `chunk_i = S_i·R/(f·ΣS)` (its speed-proportional
//!   share of `1/f` of the remaining work), bounded below by the
//!   speed-scaled minimum `S_i·(max cLat + Σ nLat)/error` so slow workers
//!   get proportionally smaller end-game chunks. On a homogeneous platform
//!   this reduces to per-pull factoring with the paper's bound.

use dls_sim::{Decision, Platform, Scheduler, SimView, WorkerSpec};

use crate::factoring::UNIT_FLOOR;
use crate::plan::PlanReplayer;
use crate::rumr::RumrConfig;
use crate::umr::UmrError;
use crate::umr_het::HetUmrSchedule;

/// Heterogeneous two-phase robust scheduler.
#[derive(Debug, Clone)]
pub struct HetRumr {
    workers: Vec<WorkerSpec>,
    config: RumrConfig,
    phase1: Option<PlanReplayer>,
    w2_remaining: f64,
    min_chunks: Vec<f64>,
    s_sum: f64,
    /// Workers participating in the schedule (resource selection may drop
    /// starved ones); phase 2 only dispatches within this set.
    selected: Vec<usize>,
    finished: bool,
}

impl HetRumr {
    /// Build for any platform. Uses the same [`RumrConfig`] surface as the
    /// homogeneous scheduler (the phase-1 fraction override and
    /// out-of-order flag apply unchanged).
    ///
    /// # Errors
    ///
    /// Propagates [`UmrError`] from the heterogeneous phase-1 planner.
    pub fn new(platform: &Platform, w_total: f64, config: RumrConfig) -> Result<Self, UmrError> {
        if !w_total.is_finite() || w_total <= 0.0 {
            return Err(UmrError::InvalidWorkload { w_total });
        }
        let workers: Vec<WorkerSpec> = platform.workers().to_vec();

        // Resource selection over the *full* workload decides who
        // participates at all; both phases stay within that set, otherwise
        // phase 2 would greedily feed exactly the starved workers the
        // planner dropped.
        let selected = HetUmrSchedule::solve_with_selection(platform, w_total)?
            .worker_ids()
            .to_vec();
        let n = selected.len();
        let s_sum: f64 = selected.iter().map(|&i| workers[i].speed).sum();
        let round_overhead = selected
            .iter()
            .map(|&i| workers[i].comp_latency)
            .fold(0.0_f64, f64::max)
            + selected
                .iter()
                .map(|&i| workers[i].net_latency)
                .sum::<f64>();

        // Phase split: the §4.2(i) rule with the heterogeneous overhead.
        let w2 = if let Some(p) = config.phase1_fraction {
            (1.0 - p.clamp(0.0, 1.0)) * w_total
        } else {
            match config.error_estimate {
                Some(e) if e <= 0.0 => 0.0,
                Some(e) if e >= 1.0 => w_total,
                Some(e) => {
                    let candidate = e * w_total;
                    if candidate / n as f64 / (s_sum / n as f64) < round_overhead {
                        // Per-worker phase-2 *time* below the overhead.
                        0.0
                    } else {
                        candidate
                    }
                }
                None => (1.0 - crate::rumr::DEFAULT_PHASE1_FRACTION) * w_total,
            }
        };
        let w1 = w_total - w2;

        let phase1 = if w1 > 0.0 {
            let schedule = HetUmrSchedule::solve_subset(platform, &selected, w1)?;
            Some(PlanReplayer::new(schedule.plan()))
        } else {
            None
        };

        // Speed-scaled minimum chunk bounds.
        let bound_time = match config.error_estimate {
            Some(e) if e > 0.0 && config.error_aware_bound => round_overhead / e,
            _ => round_overhead,
        };
        let min_chunks = workers
            .iter()
            .map(|w| (w.speed * bound_time).max(UNIT_FLOOR))
            .collect();

        Ok(HetRumr {
            workers,
            config,
            phase1,
            w2_remaining: w2,
            min_chunks,
            s_sum,
            selected,
            finished: false,
        })
    }

    /// Among the *selected* workers, the hungry one with the least assigned
    /// work (phase 2 must not feed workers resource selection excluded).
    fn hungry_selected(&self, view: &SimView<'_>) -> Option<usize> {
        self.selected
            .iter()
            .copied()
            .filter(|&i| view.workers[i].is_hungry())
            .min_by(|&a, &b| {
                view.workers[a]
                    .assigned_work
                    .partial_cmp(&view.workers[b].assigned_work)
                    .expect("finite work totals")
                    .then(a.cmp(&b))
            })
    }

    /// Remaining phase-2 workload.
    pub fn phase2_remaining(&self) -> f64 {
        self.w2_remaining
    }

    /// True if a phase 2 was planned.
    pub fn uses_phase2(&self) -> bool {
        self.w2_remaining > 0.0 || (self.finished && self.phase1.is_none())
    }
}

impl Scheduler for HetRumr {
    fn name(&self) -> String {
        "RUMR-het".into()
    }

    fn next_dispatch(&mut self, view: &SimView<'_>) -> Decision {
        // Phase 1: planned chunks, demand-driven destinations.
        if let Some((planned, chunk)) = self.phase1.as_ref().and_then(PlanReplayer::peek) {
            let worker = if !self.config.out_of_order || view.workers[planned].is_hungry() {
                planned
            } else {
                // Reroute within the selected set only.
                self.hungry_selected(view).unwrap_or(planned)
            };
            self.phase1.as_mut().expect("phase 1 present").take_next();
            return Decision::Dispatch { worker, chunk };
        }
        // Phase 2: speed-weighted continuous factoring over the selected
        // workers.
        if self.w2_remaining > 0.0 {
            let Some(worker) = self.hungry_selected(view) else {
                return Decision::Wait;
            };
            let speed = self.workers[worker].speed;
            let factor = self.config.factor;
            let ideal = speed * self.w2_remaining / (factor * self.s_sum);
            let mut chunk = ideal.max(self.min_chunks[worker]);
            if chunk >= self.w2_remaining {
                chunk = self.w2_remaining;
            }
            self.w2_remaining -= chunk;
            return Decision::Dispatch { worker, chunk };
        }
        self.finished = true;
        Decision::Finished
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::umr_het::HetUmr;
    use dls_sim::{simulate, ErrorInjector, ErrorModel, HomogeneousParams, SimConfig};

    fn het_platform() -> Platform {
        Platform::new(vec![
            WorkerSpec {
                speed: 3.0,
                bandwidth: 30.0,
                comp_latency: 0.1,
                net_latency: 0.05,
                transfer_latency: 0.0,
            },
            WorkerSpec {
                speed: 2.0,
                bandwidth: 20.0,
                comp_latency: 0.2,
                net_latency: 0.1,
                transfer_latency: 0.0,
            },
            WorkerSpec {
                speed: 1.0,
                bandwidth: 12.0,
                comp_latency: 0.3,
                net_latency: 0.1,
                transfer_latency: 0.0,
            },
        ])
        .unwrap()
    }

    fn run(
        platform: &Platform,
        s: &mut dyn Scheduler,
        error: f64,
        seed: u64,
    ) -> dls_sim::SimResult {
        let model = if error > 0.0 {
            ErrorModel::TruncatedNormal { error }
        } else {
            ErrorModel::None
        };
        simulate(
            platform,
            s,
            ErrorInjector::new(model, seed),
            SimConfig {
                trace_mode: dls_sim::TraceMode::Full,
                ..Default::default()
            },
        )
        .unwrap()
    }

    #[test]
    fn conservation_and_validity() {
        let platform = het_platform();
        for error in [0.0, 0.2, 0.5, 1.2] {
            let mut s =
                HetRumr::new(&platform, 600.0, RumrConfig::with_known_error(error)).unwrap();
            let r = run(&platform, &mut s, error.min(0.5), 5);
            assert!(
                (r.completed_work() - 600.0).abs() < 1e-6,
                "error={error}: {}",
                r.completed_work()
            );
            assert!(r.trace.unwrap().validate(3).is_empty(), "error={error}");
        }
    }

    #[test]
    fn zero_error_is_pure_phase1() {
        let platform = het_platform();
        let mut rumr = HetRumr::new(&platform, 600.0, RumrConfig::with_known_error(0.0)).unwrap();
        assert_eq!(rumr.phase2_remaining(), 0.0);
        let mut umr = HetUmr::new(&platform, 600.0).unwrap();
        let a = run(&platform, &mut rumr, 0.0, 0);
        let b = run(&platform, &mut umr, 0.0, 0);
        assert_eq!(a.num_chunks, b.num_chunks);
        assert!((a.makespan - b.makespan).abs() < 1e-9);
    }

    #[test]
    fn large_error_is_pure_phase2() {
        let platform = het_platform();
        let mut rumr = HetRumr::new(&platform, 600.0, RumrConfig::with_known_error(1.0)).unwrap();
        assert!((rumr.phase2_remaining() - 600.0).abs() < 1e-9);
        let r = run(&platform, &mut rumr, 0.5, 1);
        assert!((r.completed_work() - 600.0).abs() < 1e-6);
    }

    #[test]
    fn phase2_chunks_scale_with_speed() {
        // First phase-2 pull by the fast worker should be larger than by
        // the slow one, in proportion to speed.
        let platform = het_platform();
        let cfg = RumrConfig::with_known_error(1.0); // pure phase 2
        let mut a = HetRumr::new(&platform, 600.0, cfg).unwrap();
        let views_all_hungry = vec![dls_sim::WorkerView::default(); 3];
        let view = SimView {
            time: 0.0,
            workers: &views_all_hungry,
        };
        // least_loaded_hungry with all equal picks worker 0 (speed 3).
        let d0 = a.next_dispatch(&view);
        let Decision::Dispatch {
            worker: w0,
            chunk: c0,
        } = d0
        else {
            panic!("expected dispatch")
        };
        assert_eq!(w0, 0);
        // 3/6 of 600/2 = 150.
        assert!((c0 - 150.0).abs() < 1e-9, "chunk {c0}");
    }

    #[test]
    fn beats_plain_het_umr_under_error() {
        let platform = het_platform();
        let error = 0.45;
        let reps = 25;
        let (mut rumr_total, mut umr_total) = (0.0, 0.0);
        for seed in 0..reps {
            let mut rumr =
                HetRumr::new(&platform, 600.0, RumrConfig::with_known_error(error)).unwrap();
            rumr_total += run(&platform, &mut rumr, error, seed).makespan;
            let mut umr = HetUmr::new(&platform, 600.0).unwrap();
            umr_total += run(&platform, &mut umr, error, seed).makespan;
        }
        assert!(
            rumr_total < umr_total,
            "RUMR-het {rumr_total} should beat UMR-het {umr_total} at error {error}"
        );
    }

    #[test]
    fn homogeneous_platform_works_too() {
        let platform = HomogeneousParams::table1(8, 1.5, 0.2, 0.1).build().unwrap();
        let mut s = HetRumr::new(&platform, 1000.0, RumrConfig::with_known_error(0.3)).unwrap();
        let r = run(&platform, &mut s, 0.3, 2);
        assert!((r.completed_work() - 1000.0).abs() < 1e-6);
    }

    #[test]
    fn invalid_workload_rejected() {
        let platform = het_platform();
        assert!(matches!(
            HetRumr::new(&platform, 0.0, RumrConfig::default()),
            Err(UmrError::InvalidWorkload { .. })
        ));
    }
}
