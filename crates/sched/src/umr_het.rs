//! Heterogeneous UMR extension.
//!
//! The RUMR paper evaluates homogeneous platforms only, but UMR itself (and
//! the library a practitioner would want) handles heterogeneous workers.
//! This module generalizes the uniform-round construction:
//!
//! Within round `j` of total size `R_j`, worker `i` receives
//! `chunk_{j,i} = S_i·(T_j − cLat_i)` so that **every worker computes for the
//! same time** `T_j = (R_j + C0)/ΣS`, where `C0 = Σ S_i·cLat_i`.
//!
//! The uniform-round condition — round `j`'s computation hides the dispatch
//! of round `j+1` to all workers — gives a linear recursion on round sizes:
//!
//! ```text
//! T_j = Σ_i [ nLat_i + chunk_{j+1,i}/B_i ]
//! ⇒ R_{j+1} = Θ·R_j + Η,   Θ = 1/C1,   C1 = Σ_i S_i/B_i,
//!   Η = [C0 − ΣS·(L − C2)]/C1 − C0,   L = Σ nLat_i,  C2 = Σ S_i·cLat_i/B_i
//! ```
//!
//! (for a homogeneous platform this reduces exactly to `θ = B/(N·S)` of
//! [`crate::umr`], which the tests assert). The round count is optimized by
//! integer scan against the makespan model
//!
//! ```text
//! F(M, R_0) = L + C1·T_0 − C2 + tLat_last + (W + M·C0)/ΣS
//! ```
//!
//! [`HetUmrSchedule::solve_with_selection`] additionally tries dropping
//! poorly-connected workers (the paper's "resource selection"): workers are
//! ordered by bandwidth and every prefix is solved; the best predicted
//! makespan wins.

use dls_sim::{Decision, Platform, Scheduler, SimView, WorkerSpec};

use crate::plan::{DispatchPlan, PlanReplayer};
use crate::umr::{UmrError, MAX_ROUNDS};

/// Aggregate platform constants used by the recursion.
#[derive(Debug, Clone, Copy)]
struct Consts {
    s_sum: f64,
    c0: f64,
    c1: f64,
    c2: f64,
    l: f64,
    max_clat: f64,
    tlat_last: f64,
}

impl Consts {
    fn of(workers: &[WorkerSpec]) -> Self {
        let s_sum = workers.iter().map(|w| w.speed).sum();
        let c0 = workers.iter().map(|w| w.speed * w.comp_latency).sum();
        let c1 = workers.iter().map(|w| w.speed / w.bandwidth).sum();
        let c2 = workers
            .iter()
            .map(|w| w.speed * w.comp_latency / w.bandwidth)
            .sum();
        let l = workers.iter().map(|w| w.net_latency).sum();
        let max_clat = workers
            .iter()
            .map(|w| w.comp_latency)
            .fold(0.0_f64, f64::max);
        let tlat_last = workers.last().map(|w| w.transfer_latency).unwrap_or(0.0);
        Consts {
            s_sum,
            c0,
            c1,
            c2,
            l,
            max_clat,
            tlat_last,
        }
    }

    fn theta(&self) -> f64 {
        1.0 / self.c1
    }

    fn eta(&self) -> f64 {
        (self.c0 - self.s_sum * (self.l - self.c2)) / self.c1 - self.c0
    }

    /// Equal per-round compute time for round size `r`.
    fn round_time(&self, r: f64) -> f64 {
        (r + self.c0) / self.s_sum
    }
}

/// A solved heterogeneous UMR schedule.
#[derive(Debug, Clone)]
pub struct HetUmrSchedule {
    /// Indices into the original platform, in dispatch order.
    worker_ids: Vec<usize>,
    workers: Vec<WorkerSpec>,
    /// Total size of each round.
    round_sizes: Vec<f64>,
    predicted_makespan: f64,
    w_total: f64,
}

impl HetUmrSchedule {
    /// Solve for all workers of `platform` in their given order.
    pub fn solve(platform: &Platform, w_total: f64) -> Result<Self, UmrError> {
        let ids: Vec<usize> = (0..platform.num_workers()).collect();
        Self::solve_subset(platform, &ids, w_total)
    }

    /// Solve using only the given workers, dispatched in the given order.
    pub fn solve_subset(
        platform: &Platform,
        worker_ids: &[usize],
        w_total: f64,
    ) -> Result<Self, UmrError> {
        if !w_total.is_finite() || w_total <= 0.0 {
            return Err(UmrError::InvalidWorkload { w_total });
        }
        if worker_ids.is_empty() {
            return Err(UmrError::NoFeasibleSchedule);
        }
        let workers: Vec<WorkerSpec> = worker_ids.iter().map(|&i| *platform.worker(i)).collect();
        let consts = Consts::of(&workers);
        let (m, r0) = Self::scan_best(&consts, w_total).ok_or(UmrError::NoFeasibleSchedule)?;
        let mut round_sizes = Self::rounds_from(&consts, r0, m);
        // Absorb the floating-point residual into the last round.
        let sum: f64 = round_sizes.iter().sum();
        if let Some(last) = round_sizes.last_mut() {
            *last += w_total - sum;
        }
        let predicted_makespan = Self::makespan(&consts, round_sizes[0], m, w_total);
        Ok(HetUmrSchedule {
            worker_ids: worker_ids.to_vec(),
            workers,
            round_sizes,
            predicted_makespan,
            w_total,
        })
    }

    /// Resource selection: sort workers by descending bandwidth (the master
    /// must be able to feed whoever it keeps), solve every prefix, return
    /// the schedule with the smallest predicted makespan.
    pub fn solve_with_selection(platform: &Platform, w_total: f64) -> Result<Self, UmrError> {
        let mut order: Vec<usize> = (0..platform.num_workers()).collect();
        order.sort_by(|&a, &b| {
            platform
                .worker(b)
                .bandwidth
                .partial_cmp(&platform.worker(a).bandwidth)
                .expect("finite bandwidth")
                .then(a.cmp(&b))
        });
        let mut best: Option<HetUmrSchedule> = None;
        for k in 1..=order.len() {
            if let Ok(s) = Self::solve_subset(platform, &order[..k], w_total) {
                if best
                    .as_ref()
                    .map(|b| s.predicted_makespan < b.predicted_makespan)
                    .unwrap_or(true)
                {
                    best = Some(s);
                }
            }
        }
        best.ok_or(UmrError::NoFeasibleSchedule)
    }

    fn r0_for(consts: &Consts, w_total: f64, m: f64) -> Option<f64> {
        let theta = consts.theta();
        let eta = consts.eta();
        let r0 = if (theta - 1.0).abs() < 1e-9 {
            (w_total - eta * m * (m - 1.0) / 2.0) / m
        } else {
            let h = eta / (1.0 - theta);
            let q = theta.powf(m);
            h + (w_total - m * h) * (theta - 1.0) / (q - 1.0)
        };
        r0.is_finite().then_some(r0)
    }

    fn rounds_from(consts: &Consts, r0: f64, m: usize) -> Vec<f64> {
        let theta = consts.theta();
        let eta = consts.eta();
        let mut rounds = Vec::with_capacity(m);
        let mut r = r0;
        for _ in 0..m {
            rounds.push(r);
            r = theta * r + eta;
        }
        rounds
    }

    fn feasible(consts: &Consts, rounds: &[f64], w_total: f64) -> bool {
        let floor = 1e-12 * w_total;
        rounds.iter().all(|&r| {
            // Every per-worker chunk S_i(T − cLat_i) must be positive:
            // the round time must exceed the largest computation latency.
            r.is_finite() && r > floor && consts.round_time(r) > consts.max_clat + 1e-15
        })
    }

    fn makespan(consts: &Consts, r0: f64, m: usize, w_total: f64) -> f64 {
        consts.l + consts.c1 * consts.round_time(r0) - consts.c2
            + consts.tlat_last
            + (w_total + m as f64 * consts.c0) / consts.s_sum
    }

    fn scan_best(consts: &Consts, w_total: f64) -> Option<(usize, f64)> {
        let mut best: Option<(usize, f64, f64)> = None;
        let mut stale = 0usize;
        for m in 1..=MAX_ROUNDS {
            let Some(r0) = Self::r0_for(consts, w_total, m as f64) else {
                continue;
            };
            let rounds = Self::rounds_from(consts, r0, m);
            if !Self::feasible(consts, &rounds, w_total) {
                if best.is_some() {
                    stale += 1;
                    if stale > 64 {
                        break;
                    }
                }
                continue;
            }
            let f = Self::makespan(consts, r0, m, w_total);
            match &mut best {
                Some((_, _, bf)) if f < *bf - 1e-12 => {
                    best = Some((m, r0, f));
                    stale = 0;
                }
                Some(_) => {
                    stale += 1;
                    if stale > 64 {
                        break;
                    }
                }
                None => best = Some((m, r0, f)),
            }
        }
        best.map(|(m, r0, _)| (m, r0))
    }

    /// Number of rounds.
    pub fn num_rounds(&self) -> usize {
        self.round_sizes.len()
    }

    /// Total size of each round.
    pub fn round_sizes(&self) -> &[f64] {
        &self.round_sizes
    }

    /// The worker ids used, in dispatch order.
    pub fn worker_ids(&self) -> &[usize] {
        &self.worker_ids
    }

    /// Predicted makespan.
    pub fn predicted_makespan(&self) -> f64 {
        self.predicted_makespan
    }

    /// Total workload covered.
    pub fn w_total(&self) -> f64 {
        self.w_total
    }

    /// Per-worker chunks for a round of size `r` (parallel to
    /// [`Self::worker_ids`]).
    pub fn round_chunks(&self, r: f64) -> Vec<f64> {
        let consts = Consts::of(&self.workers);
        let t = consts.round_time(r);
        self.workers
            .iter()
            .map(|w| w.speed * (t - w.comp_latency))
            .collect()
    }

    /// Materialize the dispatch plan.
    pub fn plan(&self) -> DispatchPlan {
        let mut sends = Vec::with_capacity(self.round_sizes.len() * self.worker_ids.len());
        for &r in &self.round_sizes {
            let chunks = self.round_chunks(r);
            for (&wid, chunk) in self.worker_ids.iter().zip(chunks) {
                sends.push((wid, chunk));
            }
        }
        DispatchPlan { sends }
    }
}

/// Heterogeneous UMR scheduler (eager plan replay).
#[derive(Debug, Clone)]
pub struct HetUmr {
    replayer: PlanReplayer,
    schedule: HetUmrSchedule,
}

impl HetUmr {
    /// Solve (with resource selection) and wrap a scheduler.
    pub fn new(platform: &Platform, w_total: f64) -> Result<Self, UmrError> {
        let schedule = HetUmrSchedule::solve_with_selection(platform, w_total)?;
        Ok(HetUmr {
            replayer: PlanReplayer::new(schedule.plan()),
            schedule,
        })
    }

    /// The underlying schedule.
    pub fn schedule(&self) -> &HetUmrSchedule {
        &self.schedule
    }
}

impl Scheduler for HetUmr {
    fn name(&self) -> String {
        "UMR-het".into()
    }

    fn next_dispatch(&mut self, _view: &SimView<'_>) -> Decision {
        self.replayer.next_decision()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::umr::{UmrInputs, UmrSchedule};
    use dls_sim::{simulate, ErrorInjector, ErrorModel, HomogeneousParams, Platform, SimConfig};

    fn het_platform() -> Platform {
        Platform::new(vec![
            WorkerSpec {
                speed: 2.0,
                bandwidth: 20.0,
                comp_latency: 0.2,
                net_latency: 0.1,
                transfer_latency: 0.0,
            },
            WorkerSpec {
                speed: 1.0,
                bandwidth: 15.0,
                comp_latency: 0.4,
                net_latency: 0.2,
                transfer_latency: 0.0,
            },
            WorkerSpec {
                speed: 0.5,
                bandwidth: 10.0,
                comp_latency: 0.1,
                net_latency: 0.1,
                transfer_latency: 0.0,
            },
        ])
        .unwrap()
    }

    #[test]
    fn reduces_to_homogeneous_umr() {
        let platform = HomogeneousParams::table1(10, 1.5, 0.4, 0.2)
            .build()
            .unwrap();
        let hom = UmrSchedule::solve(UmrInputs::from_platform(&platform, 1000.0).unwrap()).unwrap();
        let het = HetUmrSchedule::solve(&platform, 1000.0).unwrap();
        assert_eq!(hom.num_rounds(), het.num_rounds());
        assert!(
            (hom.predicted_makespan() - het.predicted_makespan()).abs()
                < 1e-6 * hom.predicted_makespan()
        );
        // Round sizes must match N·chunk_j.
        for (r_het, c_hom) in het.round_sizes().iter().zip(hom.round_chunks()) {
            assert!(
                (r_het - 10.0 * c_hom).abs() < 1e-6,
                "{r_het} vs {}",
                10.0 * c_hom
            );
        }
    }

    #[test]
    fn equal_compute_time_within_round() {
        let platform = het_platform();
        let s = HetUmrSchedule::solve(&platform, 300.0).unwrap();
        for &r in s.round_sizes() {
            let chunks = s.round_chunks(r);
            let times: Vec<f64> = chunks
                .iter()
                .zip(s.worker_ids())
                .map(|(&c, &i)| platform.worker(i).comp_time(c))
                .collect();
            for t in &times {
                assert!(
                    (t - times[0]).abs() < 1e-9,
                    "unequal round times: {times:?}"
                );
            }
        }
    }

    #[test]
    fn conservation() {
        let platform = het_platform();
        let s = HetUmrSchedule::solve(&platform, 300.0).unwrap();
        assert!((s.plan().total_work() - 300.0).abs() < 1e-6);
        let rounds_total: f64 = s.round_sizes().iter().sum();
        assert!((rounds_total - 300.0).abs() < 1e-6);
    }

    #[test]
    fn faster_workers_get_more_work() {
        let platform = het_platform();
        let s = HetUmrSchedule::solve(&platform, 300.0).unwrap();
        let chunks = s.round_chunks(s.round_sizes()[0]);
        // Worker 0 (S=2) must receive more than worker 2 (S=0.5).
        assert!(chunks[0] > chunks[2], "{chunks:?}");
    }

    #[test]
    fn simulated_matches_predicted_without_error() {
        let platform = het_platform();
        let mut sched = HetUmr::new(&platform, 300.0).unwrap();
        let predicted = sched.schedule().predicted_makespan();
        let r = simulate(
            &platform,
            &mut sched,
            ErrorInjector::new(ErrorModel::None, 0),
            SimConfig {
                trace_mode: dls_sim::TraceMode::Full,
                ..Default::default()
            },
        )
        .unwrap();
        assert!(
            (r.makespan - predicted).abs() < 1e-6 * predicted,
            "sim {} vs predicted {}",
            r.makespan,
            predicted
        );
        assert!(r.trace.unwrap().validate(3).is_empty());
    }

    #[test]
    fn selection_drops_starved_workers_when_bandwidth_is_scarce() {
        // A platform where the master cannot usefully feed everyone: one
        // well-connected fast worker plus many slow, badly-connected ones.
        let mut workers = vec![WorkerSpec {
            speed: 10.0,
            bandwidth: 100.0,
            comp_latency: 0.0,
            net_latency: 0.0,
            transfer_latency: 0.0,
        }];
        for _ in 0..6 {
            workers.push(WorkerSpec {
                speed: 10.0,
                bandwidth: 0.5,
                comp_latency: 0.0,
                net_latency: 2.0,
                transfer_latency: 0.0,
            });
        }
        let platform = Platform::new(workers).unwrap();
        let all = HetUmrSchedule::solve(&platform, 100.0);
        let sel = HetUmrSchedule::solve_with_selection(&platform, 100.0).unwrap();
        assert!(sel.worker_ids().len() < 7, "selection kept everyone");
        if let Ok(all) = all {
            assert!(sel.predicted_makespan() <= all.predicted_makespan() + 1e-9);
        }
    }

    #[test]
    fn selection_never_worse_on_balanced_platform() {
        let platform = het_platform();
        let plain = HetUmrSchedule::solve(&platform, 300.0).unwrap();
        let sel = HetUmrSchedule::solve_with_selection(&platform, 300.0).unwrap();
        assert!(sel.predicted_makespan() <= plain.predicted_makespan() + 1e-9);
    }

    #[test]
    fn invalid_inputs() {
        let platform = het_platform();
        assert!(matches!(
            HetUmrSchedule::solve(&platform, -1.0),
            Err(UmrError::InvalidWorkload { .. })
        ));
        assert!(matches!(
            HetUmrSchedule::solve_subset(&platform, &[], 100.0),
            Err(UmrError::NoFeasibleSchedule)
        ));
    }
}
