//! Classic loop self-scheduling policies: GSS and TSS.
//!
//! Factoring (ref \[14\] of the RUMR paper) and FSC (ref \[15\]) come from the
//! parallel-loop scheduling literature, which Hagerup '97 surveys and
//! compares experimentally. For completeness this module implements the two
//! other canonical members of that family, adapted to the master–worker
//! platform (pull-based dispatch, unit-floored chunks):
//!
//! * **GSS** — *guided self-scheduling* (Polychronopoulos & Kuck '87): a
//!   pulling worker receives `R/N` of the remaining work, giving an
//!   exponential decay with per-pull granularity (factoring's batch-free
//!   ancestor).
//! * **TSS** — *trapezoid self-scheduling* (Tzen & Ni '93): chunk sizes
//!   decrease *linearly* from `W/(2N)` to 1, which bounds the number of
//!   chunks while avoiding GSS's very large first chunks.

use dls_sim::{Decision, Platform, Scheduler, SimView};

use crate::factoring::UNIT_FLOOR;

/// Guided self-scheduling: `chunk = max(R/N, min_chunk)` per pull.
#[derive(Debug, Clone)]
pub struct Gss {
    n: usize,
    remaining: f64,
    min_chunk: f64,
    finished: bool,
}

impl Gss {
    /// Create GSS over `w_total` for the platform's worker count, with the
    /// unit floor as the minimum chunk.
    pub fn new(platform: &Platform, w_total: f64) -> Self {
        Self::with_min_chunk(w_total, platform.num_workers(), UNIT_FLOOR)
    }

    /// Fully parameterized constructor.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0` or the bounds are not finite/positive.
    pub fn with_min_chunk(w_total: f64, n: usize, min_chunk: f64) -> Self {
        assert!(n > 0, "need at least one worker");
        assert!(w_total.is_finite() && w_total >= 0.0);
        assert!(min_chunk.is_finite() && min_chunk > 0.0);
        Gss {
            n,
            remaining: w_total,
            min_chunk,
            finished: false,
        }
    }
}

impl Scheduler for Gss {
    fn name(&self) -> String {
        "GSS".into()
    }

    fn next_dispatch(&mut self, view: &SimView<'_>) -> Decision {
        if self.finished || self.remaining <= 0.0 {
            self.finished = true;
            return Decision::Finished;
        }
        let Some(worker) = view.least_loaded_hungry() else {
            return Decision::Wait;
        };
        let mut chunk = (self.remaining / self.n as f64).max(self.min_chunk);
        if chunk >= self.remaining {
            chunk = self.remaining;
        }
        self.remaining -= chunk;
        Decision::Dispatch { worker, chunk }
    }
}

/// Trapezoid self-scheduling: linearly decreasing chunks from `first` to
/// `last`.
#[derive(Debug, Clone)]
pub struct Tss {
    remaining: f64,
    next_chunk: f64,
    last_chunk: f64,
    step: f64,
    finished: bool,
}

impl Tss {
    /// The classic parameterization: first chunk `W/(2N)`, last chunk 1
    /// unit.
    pub fn new(platform: &Platform, w_total: f64) -> Self {
        let n = platform.num_workers().max(1);
        let first = (w_total / (2.0 * n as f64)).max(UNIT_FLOOR);
        Self::with_bounds(w_total, first, UNIT_FLOOR)
    }

    /// Explicit first/last chunk sizes. The number of chunks is
    /// `ceil(2W/(first+last))` and the decrement
    /// `(first − last)/(count − 1)`.
    ///
    /// # Panics
    ///
    /// Panics on non-finite inputs or `first < last` or `last <= 0`.
    pub fn with_bounds(w_total: f64, first: f64, last: f64) -> Self {
        assert!(w_total.is_finite() && w_total >= 0.0);
        assert!(last.is_finite() && last > 0.0);
        assert!(first.is_finite() && first >= last, "first must be >= last");
        let count = ((2.0 * w_total) / (first + last)).ceil().max(1.0);
        let step = if count > 1.0 {
            (first - last) / (count - 1.0)
        } else {
            0.0
        };
        Tss {
            remaining: w_total,
            next_chunk: first,
            last_chunk: last,
            step,
            finished: false,
        }
    }
}

impl Scheduler for Tss {
    fn name(&self) -> String {
        "TSS".into()
    }

    fn next_dispatch(&mut self, view: &SimView<'_>) -> Decision {
        if self.finished || self.remaining <= 0.0 {
            self.finished = true;
            return Decision::Finished;
        }
        let Some(worker) = view.least_loaded_hungry() else {
            return Decision::Wait;
        };
        let mut chunk = self.next_chunk.max(self.last_chunk);
        if chunk >= self.remaining {
            chunk = self.remaining;
        }
        self.remaining -= chunk;
        self.next_chunk -= self.step;
        Decision::Dispatch { worker, chunk }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dls_sim::{simulate, ErrorInjector, ErrorModel, HomogeneousParams, SimConfig};

    fn platform() -> Platform {
        HomogeneousParams::table1(5, 1.5, 0.1, 0.1).build().unwrap()
    }

    fn run(s: &mut dyn Scheduler, error: f64, seed: u64) -> dls_sim::SimResult {
        let p = platform();
        let model = if error > 0.0 {
            ErrorModel::TruncatedNormal { error }
        } else {
            ErrorModel::None
        };
        simulate(
            &p,
            s,
            ErrorInjector::new(model, seed),
            SimConfig {
                trace_mode: dls_sim::TraceMode::Full,
                ..Default::default()
            },
        )
        .unwrap()
    }

    #[test]
    fn gss_conserves_and_decays() {
        let mut gss = Gss::new(&platform(), 1000.0);
        let r = run(&mut gss, 0.3, 1);
        assert!((r.completed_work() - 1000.0).abs() < 1e-6);
        assert!(r.trace.unwrap().validate(5).is_empty());
        // First chunk is R/N = 200; far more chunks than one round.
        assert!(r.num_chunks > 10);
    }

    #[test]
    fn gss_first_chunk_is_r_over_n() {
        let mut gss = Gss::new(&platform(), 1000.0);
        let views = vec![dls_sim::WorkerView::default(); 5];
        let view = SimView {
            time: 0.0,
            workers: &views,
        };
        let Decision::Dispatch { chunk, .. } = gss.next_dispatch(&view) else {
            panic!("expected dispatch");
        };
        assert!((chunk - 200.0).abs() < 1e-9);
    }

    #[test]
    fn tss_linear_decrease() {
        let mut tss = Tss::with_bounds(100.0, 10.0, 2.0);
        let views = vec![dls_sim::WorkerView::default(); 4];
        let view = SimView {
            time: 0.0,
            workers: &views,
        };
        let mut chunks = Vec::new();
        loop {
            match tss.next_dispatch(&view) {
                Decision::Dispatch { chunk, .. } => chunks.push(chunk),
                Decision::Finished => break,
                other => panic!("unexpected decision: {other:?}"),
            }
        }
        let total: f64 = chunks.iter().sum();
        assert!((total - 100.0).abs() < 1e-9);
        // Differences are constant until the tail.
        let diffs: Vec<f64> = chunks.windows(2).map(|w| w[0] - w[1]).collect();
        for d in &diffs[..diffs.len().saturating_sub(1)] {
            assert!(
                (d - diffs[0]).abs() < 1e-9,
                "non-linear decrease: {diffs:?}"
            );
        }
        assert!((chunks[0] - 10.0).abs() < 1e-9);
    }

    #[test]
    fn tss_conserves_in_simulation() {
        let mut tss = Tss::new(&platform(), 1000.0);
        let r = run(&mut tss, 0.4, 7);
        assert!((r.completed_work() - 1000.0).abs() < 1e-6);
        assert!(r.trace.unwrap().validate(5).is_empty());
    }

    #[test]
    fn tiny_workloads() {
        let mut gss = Gss::with_min_chunk(0.5, 4, 1.0);
        let r = run(&mut gss, 0.0, 0);
        assert!((r.completed_work() - 0.5).abs() < 1e-9);
        assert_eq!(r.num_chunks, 1);

        let mut tss = Tss::with_bounds(0.5, 1.0, 1.0);
        let r = run(&mut tss, 0.0, 0);
        assert!((r.completed_work() - 0.5).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "first must be >= last")]
    fn tss_rejects_inverted_bounds() {
        let _ = Tss::with_bounds(100.0, 1.0, 5.0);
    }
}
