//! Adaptive RUMR: online prediction-error estimation.
//!
//! The paper's conclusion (§6) sketches the next step beyond RUMR: let the
//! scheduler "determine empirical performance prediction error
//! distributions … as the application runs" and use them "on-the-fly … to
//! make relevant scheduling decisions". This module implements that idea:
//!
//! * Phase 1 dispatches the **whole** workload with a UMR plan (no error
//!   estimate is needed up front), with RUMR's out-of-order rerouting.
//! * Every completed chunk yields one sample of the prediction ratio
//!   `X = predicted / effective` computation time; a Welford accumulator
//!   tracks the empirical error magnitude `ê = √(E[(X − 1)²])` — the
//!   maximum-likelihood fit of the paper's `N(1, error)` ratio model.
//! * Before each dispatch, once at least `min_samples` ratios have been
//!   observed, the scheduler checks the paper's phase-2 rule against the
//!   *remaining* workload: when the undispatched work drops to `ê·W_total`
//!   (and still amortizes one round of empty-chunk overhead), it abandons
//!   the rest of the plan and factors the remainder greedily, with the
//!   error-aware minimum chunk bound `(cLat + nLat·N)/ê`.
//!
//! With exact predictions every ratio is 1, `ê = 0`, the switch never
//! fires, and the schedule is exactly UMR — mirroring original RUMR's
//! zero-error behaviour without needing to be told the error is zero.

use dls_numerics::stats::OnlineStats;
use dls_sim::{Decision, Platform, Scheduler, SimView};

use crate::factoring::{phase_min_chunk_bound, FactoringSource, DEFAULT_FACTOR};
use crate::plan::{ChunkSource, PlanReplayer};
use crate::umr::{UmrError, UmrInputs, UmrSchedule};

/// Configuration for [`AdaptiveRumr`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AdaptiveConfig {
    /// Minimum completed-chunk samples before the estimate is trusted.
    /// Defaults to `2·N` (two full rounds of evidence).
    pub min_samples: Option<usize>,
    /// Factoring factor for the adaptive phase 2.
    pub factor: f64,
    /// Allow out-of-order dispatch while replaying the plan.
    pub out_of_order: bool,
}

impl Default for AdaptiveConfig {
    fn default() -> Self {
        AdaptiveConfig {
            min_samples: None,
            factor: DEFAULT_FACTOR,
            out_of_order: true,
        }
    }
}

/// RUMR with on-the-fly error estimation (no a-priori error input).
#[derive(Debug, Clone)]
pub struct AdaptiveRumr {
    n: usize,
    speed: f64,
    comp_latency: f64,
    net_latency: f64,
    w_total: f64,
    config: AdaptiveConfig,
    min_samples: usize,

    replayer: PlanReplayer,
    undispatched: f64,

    /// Per-worker (start time, chunk) of the computation in progress.
    compute_started: Vec<Option<(f64, f64)>>,
    /// Welford accumulator over `(ratio − 1)` so that
    /// `mean² + variance = E[(X − 1)²]`.
    ratio_stats: OnlineStats,

    phase2: Option<FactoringSource>,
    phase2_switch_time: Option<f64>,
    phase2_exhausted: bool,
}

impl AdaptiveRumr {
    /// Plan over a homogeneous platform.
    ///
    /// # Errors
    ///
    /// Propagates [`UmrError`] from the UMR planner.
    pub fn new(
        platform: &Platform,
        w_total: f64,
        config: AdaptiveConfig,
    ) -> Result<Self, UmrError> {
        let inputs = UmrInputs::from_platform(platform, w_total)?;
        let schedule = UmrSchedule::solve(inputs)?;
        let min_samples = config.min_samples.unwrap_or(2 * inputs.n);
        Ok(AdaptiveRumr {
            n: inputs.n,
            speed: inputs.speed,
            comp_latency: inputs.comp_latency,
            net_latency: inputs.net_latency,
            w_total,
            config,
            min_samples,
            replayer: PlanReplayer::new(schedule.plan()),
            undispatched: w_total,
            compute_started: vec![None; inputs.n],
            ratio_stats: OnlineStats::new(),
            phase2: None,
            phase2_switch_time: None,
            phase2_exhausted: false,
        })
    }

    /// The current empirical error estimate `ê = √(E[(X − 1)²])`, or `None`
    /// before `min_samples` chunks completed.
    pub fn estimated_error(&self) -> Option<f64> {
        if (self.ratio_stats.count() as usize) < self.min_samples {
            return None;
        }
        let m = self.ratio_stats.mean();
        Some((self.ratio_stats.variance() + m * m).sqrt())
    }

    /// Simulation time at which the scheduler switched to its factoring
    /// phase, if it did.
    pub fn switched_at(&self) -> Option<f64> {
        self.phase2_switch_time
    }

    /// Check the paper's phase-2 rule against the live estimate and switch
    /// if warranted.
    fn maybe_switch(&mut self, now: f64) {
        if self.phase2.is_some() || self.replayer.exhausted() {
            return;
        }
        let Some(e) = self.estimated_error() else {
            return;
        };
        if e <= 0.0 {
            return;
        }
        let target_w2 = (e * self.w_total).min(self.w_total);
        if self.undispatched > target_w2 {
            return; // Too early: keep riding the plan.
        }
        // Phase 2 must amortize one round of empty-chunk overhead.
        let round_overhead = self.comp_latency + self.net_latency * self.n as f64;
        if self.undispatched / self.n as f64 - round_overhead < -1e-12 {
            return;
        }
        let bound = phase_min_chunk_bound(
            self.undispatched,
            self.n,
            self.comp_latency,
            self.net_latency,
            Some(e),
        );
        self.phase2 = Some(FactoringSource::new(
            self.undispatched,
            self.n,
            self.config.factor,
            bound,
        ));
        self.phase2_switch_time = Some(now);
    }
}

impl Scheduler for AdaptiveRumr {
    fn name(&self) -> String {
        "RUMR-adaptive".into()
    }

    fn next_dispatch(&mut self, view: &SimView<'_>) -> Decision {
        self.maybe_switch(view.time);

        if let Some(source) = &mut self.phase2 {
            if self.phase2_exhausted {
                return Decision::Finished;
            }
            let Some(worker) = view.least_loaded_hungry() else {
                return Decision::Wait;
            };
            return match source.next_chunk() {
                Some(chunk) => {
                    self.undispatched -= chunk;
                    Decision::Dispatch { worker, chunk }
                }
                None => {
                    self.phase2_exhausted = true;
                    Decision::Finished
                }
            };
        }

        match self.replayer.peek() {
            Some((planned, chunk)) => {
                let worker = if !self.config.out_of_order || view.workers[planned].is_hungry() {
                    planned
                } else {
                    view.least_loaded_hungry().unwrap_or(planned)
                };
                self.replayer.take_next();
                self.undispatched -= chunk;
                Decision::Dispatch { worker, chunk }
            }
            None => Decision::Finished,
        }
    }

    fn on_compute_start(&mut self, worker: usize, chunk: f64, time: f64) {
        self.compute_started[worker] = Some((time, chunk));
    }

    fn on_compute_end(&mut self, worker: usize, chunk: f64, time: f64) {
        let Some((start, started_chunk)) = self.compute_started[worker].take() else {
            return;
        };
        debug_assert!((started_chunk - chunk).abs() < 1e-9);
        let actual = time - start;
        if actual <= 0.0 {
            return;
        }
        let predicted = self.comp_latency + chunk / self.speed;
        if predicted <= 0.0 {
            return;
        }
        // Accumulate effective/predicted − 1. The paper states the model as
        // predicted/effective ~ N(1, e); both directions agree to first
        // order in e, but effective/predicted avoids the heavy 1/X tail
        // that would otherwise inflate the estimate at large errors.
        let ratio = actual / predicted;
        self.ratio_stats.push(ratio - 1.0);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::umr::Umr;
    use dls_sim::{simulate, ErrorInjector, ErrorModel, HomogeneousParams, SimConfig};

    fn table1(n: usize, r: f64, clat: f64, nlat: f64) -> Platform {
        HomogeneousParams::table1(n, r, clat, nlat).build().unwrap()
    }

    fn run(
        platform: &Platform,
        scheduler: &mut dyn Scheduler,
        error: f64,
        seed: u64,
    ) -> dls_sim::SimResult {
        let model = if error > 0.0 {
            ErrorModel::TruncatedNormal { error }
        } else {
            ErrorModel::None
        };
        simulate(
            platform,
            scheduler,
            ErrorInjector::new(model, seed),
            SimConfig {
                trace_mode: dls_sim::TraceMode::Full,
                ..Default::default()
            },
        )
        .unwrap()
    }

    #[test]
    fn equals_umr_without_error() {
        let platform = table1(10, 1.5, 0.3, 0.2);
        let mut adaptive = AdaptiveRumr::new(&platform, 1000.0, AdaptiveConfig::default()).unwrap();
        let mut umr = Umr::new(&platform, 1000.0).unwrap();
        let a = run(&platform, &mut adaptive, 0.0, 0);
        let b = run(&platform, &mut umr, 0.0, 0);
        assert_eq!(a.num_chunks, b.num_chunks);
        assert!((a.makespan - b.makespan).abs() < 1e-9);
        assert!(adaptive.switched_at().is_none());
        // ê is measurably zero.
        assert!(adaptive.estimated_error().unwrap_or(1.0) < 1e-9);
    }

    #[test]
    fn estimates_error_magnitude() {
        let platform = table1(10, 1.5, 0.1, 0.1);
        let error = 0.3;
        let mut adaptive = AdaptiveRumr::new(&platform, 1000.0, AdaptiveConfig::default()).unwrap();
        let _ = run(&platform, &mut adaptive, error, 42);
        let e = adaptive.estimated_error().expect("enough samples");
        // X is 1/ratio of the multiplicative model; its std is ≈ error with
        // a fat-ratio correction. A loose window is all we need.
        assert!(
            (0.15..=0.6).contains(&e),
            "estimate {e} implausible for true error {error}"
        );
    }

    #[test]
    fn switches_to_phase2_under_error() {
        let platform = table1(10, 1.5, 0.1, 0.1);
        let mut adaptive = AdaptiveRumr::new(&platform, 1000.0, AdaptiveConfig::default()).unwrap();
        let result = run(&platform, &mut adaptive, 0.4, 7);
        assert!(
            adaptive.switched_at().is_some(),
            "expected an adaptive switch at error 0.4"
        );
        assert!((result.completed_work() - 1000.0).abs() < 1e-6);
        assert!(result.trace.unwrap().validate(10).is_empty());
    }

    #[test]
    fn conservation_across_error_range() {
        let platform = table1(8, 1.8, 0.4, 0.3);
        for error in [0.05, 0.2, 0.5] {
            let mut adaptive =
                AdaptiveRumr::new(&platform, 1000.0, AdaptiveConfig::default()).unwrap();
            let result = run(&platform, &mut adaptive, error, 11);
            assert!(
                (result.completed_work() - 1000.0).abs() < 1e-6,
                "error={error}"
            );
        }
    }

    #[test]
    fn competitive_with_known_error_rumr() {
        // The adaptive variant should land in the same performance
        // neighbourhood as RUMR-with-oracle-error (within 15 % on average).
        let platform = table1(16, 1.6, 0.2, 0.1);
        let error = 0.4;
        let reps = 20;
        let mut adaptive_total = 0.0;
        let mut oracle_total = 0.0;
        for seed in 0..reps {
            let mut adaptive =
                AdaptiveRumr::new(&platform, 1000.0, AdaptiveConfig::default()).unwrap();
            adaptive_total += run(&platform, &mut adaptive, error, seed).makespan;
            let mut oracle = crate::rumr::Rumr::new(
                &platform,
                1000.0,
                crate::rumr::RumrConfig::with_known_error(error),
            )
            .unwrap();
            oracle_total += run(&platform, &mut oracle, error, seed).makespan;
        }
        let ratio = adaptive_total / oracle_total;
        assert!(
            ratio < 1.15,
            "adaptive RUMR should be near the oracle: ratio {ratio}"
        );
    }

    #[test]
    fn min_samples_respected() {
        let platform = table1(4, 1.5, 0.1, 0.1);
        let cfg = AdaptiveConfig {
            min_samples: Some(1_000_000), // never enough evidence
            ..Default::default()
        };
        let mut adaptive = AdaptiveRumr::new(&platform, 1000.0, cfg).unwrap();
        let _ = run(&platform, &mut adaptive, 0.5, 3);
        assert!(adaptive.estimated_error().is_none());
        assert!(adaptive.switched_at().is_none());
    }
}
