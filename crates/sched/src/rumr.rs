//! RUMR — Robust Uniform Multi-Round scheduling (Yang & Casanova, HPDC'03).
//!
//! RUMR schedules the workload in **two consecutive phases**:
//!
//! * **Phase 1** (performance): a revised UMR over `W1 = W − W2`, with
//!   *increasing* chunk sizes for communication/computation overlap. The
//!   revision (§4.2(ii)): when the master's interface frees and some worker
//!   finished its work prematurely, the next planned chunk is rerouted to
//!   that hungry worker instead of its planned destination — the chunk-size
//!   sequence is preserved, destinations become demand-driven.
//! * **Phase 2** (robustness): Factoring over `W2`, with *decreasing*
//!   chunk sizes dispatched greedily to idle workers, which caps the
//!   absolute impact of prediction errors at the end of the run.
//!
//! Phase split (§4.2(i)), given an estimated prediction error `e`:
//!
//! * `e ≤ 0` → pure UMR (no phase 2);
//! * `e ≥ 1` → pure Factoring (no phase 1);
//! * otherwise `W2 = e·W`, **unless** the per-worker phase-2 work is below
//!   the overhead of dispatching one round of empty chunks,
//!   `W2/N < cLat + nLat·N`, in which case phase 2 is dropped;
//! * when `e` is unknown, a fixed 80 %/20 % split is used (the paper's
//!   §5.2.1 identifies 80 % in phase 1 as the best static choice).
//!
//! Phase-2 chunks are bounded below (§4.2(iii)) by `(cLat + nLat·N)/e` when
//! `e` is known and by `cLat + nLat·N` otherwise.

use dls_sim::{Decision, Platform, Scheduler, SimView};

use crate::factoring::{phase_min_chunk_bound, FactoringSource, DEFAULT_FACTOR};
use crate::plan::{ChunkSource, PlanReplayer};
use crate::umr::{UmrError, UmrInputs, UmrSchedule};

/// RUMR configuration knobs (defaults reproduce the paper's "original
/// RUMR").
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RumrConfig {
    /// Estimated prediction-error magnitude, when available. `None` selects
    /// the fixed 80/20 split.
    pub error_estimate: Option<f64>,
    /// Force a fixed phase-1 workload fraction (the Fig. 6 ablation:
    /// RUMR_50 … RUMR_90). Overrides the error-based split entirely.
    pub phase1_fraction: Option<f64>,
    /// Allow out-of-order chunk dispatching in phase 1 (§4.2(ii)). Disabled
    /// for the Fig. 7 ablation ("plain UMR in phase 1").
    pub out_of_order: bool,
    /// Factoring factor `f` for phase 2.
    pub factor: f64,
    /// Use the error-aware minimum chunk bound `(cLat + nLat·N)/error` when
    /// the error is known (§4.2(iii)); when false, always use the
    /// error-unaware `cLat + nLat·N` (ablation knob).
    pub error_aware_bound: bool,
}

impl Default for RumrConfig {
    fn default() -> Self {
        RumrConfig {
            error_estimate: None,
            phase1_fraction: None,
            out_of_order: true,
            factor: DEFAULT_FACTOR,
            error_aware_bound: true,
        }
    }
}

impl RumrConfig {
    /// The paper's primary configuration: error magnitude known.
    pub fn with_known_error(error: f64) -> Self {
        RumrConfig {
            error_estimate: Some(error),
            ..Default::default()
        }
    }

    /// Fixed-split variant RUMR_p (Fig. 6): fraction `p` of the workload in
    /// phase 1. The error estimate is still used for the phase-2 minimum
    /// chunk bound.
    pub fn with_fixed_fraction(p: f64, error: Option<f64>) -> Self {
        RumrConfig {
            error_estimate: error,
            phase1_fraction: Some(p),
            ..Default::default()
        }
    }
}

/// Fraction of the workload scheduled in phase 1 when the error magnitude
/// is unknown (§5.2.1: "80% in phase #1 seems like a good practical
/// choice").
pub const DEFAULT_PHASE1_FRACTION: f64 = 0.8;

/// How RUMR divides the workload between its two phases.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PhaseSplit {
    /// Workload scheduled by the (revised) UMR phase.
    pub w1: f64,
    /// Workload scheduled by the Factoring phase.
    pub w2: f64,
}

/// Compute the phase split of §4.2(i). `n`, `comp_latency`, `net_latency`
/// describe the (homogeneous) platform.
pub fn phase_split(
    w_total: f64,
    n: usize,
    comp_latency: f64,
    net_latency: f64,
    config: &RumrConfig,
) -> PhaseSplit {
    assert!(w_total.is_finite() && w_total > 0.0);
    if let Some(p) = config.phase1_fraction {
        let p = p.clamp(0.0, 1.0);
        return PhaseSplit {
            w1: p * w_total,
            w2: (1.0 - p) * w_total,
        };
    }
    match config.error_estimate {
        Some(e) if e <= 0.0 => PhaseSplit {
            w1: w_total,
            w2: 0.0,
        },
        Some(e) if e >= 1.0 => PhaseSplit {
            w1: 0.0,
            w2: w_total,
        },
        Some(e) => {
            let w2 = e * w_total;
            // Overhead of one round of empty chunks: cLat + nLat·N. If the
            // per-worker phase-2 share cannot amortize it, skip phase 2.
            let round_overhead = comp_latency + net_latency * n as f64;
            if w2 / (n as f64) < round_overhead {
                PhaseSplit {
                    w1: w_total,
                    w2: 0.0,
                }
            } else {
                PhaseSplit {
                    w1: w_total - w2,
                    w2,
                }
            }
        }
        None => PhaseSplit {
            w1: DEFAULT_PHASE1_FRACTION * w_total,
            w2: (1.0 - DEFAULT_PHASE1_FRACTION) * w_total,
        },
    }
}

/// The RUMR scheduler.
#[derive(Debug, Clone)]
pub struct Rumr {
    config: RumrConfig,
    split: PhaseSplit,
    phase1: Option<PlanReplayer>,
    phase1_schedule: Option<UmrSchedule>,
    phase2: Option<FactoringSource>,
    phase2_exhausted: bool,
}

impl Rumr {
    /// Build RUMR for a homogeneous platform and total workload.
    ///
    /// # Errors
    ///
    /// Propagates [`UmrError`] from the phase-1 solver (heterogeneous
    /// platform, invalid workload).
    pub fn new(platform: &Platform, w_total: f64, config: RumrConfig) -> Result<Self, UmrError> {
        // Validate via the UMR input extractor even when phase 1 ends up
        // empty, so configuration errors surface uniformly.
        let inputs = UmrInputs::from_platform(platform, w_total)?;
        let n = inputs.n;
        let split = phase_split(w_total, n, inputs.comp_latency, inputs.net_latency, &config);

        let (phase1, phase1_schedule) = if split.w1 > 0.0 {
            let schedule = UmrSchedule::solve(UmrInputs {
                w_total: split.w1,
                ..inputs
            })?;
            (Some(PlanReplayer::new(schedule.plan())), Some(schedule))
        } else {
            (None, None)
        };

        let phase2 = if split.w2 > 0.0 {
            let bound_error = if config.error_aware_bound {
                config.error_estimate
            } else {
                None
            };
            let bound = phase_min_chunk_bound(
                split.w2,
                n,
                inputs.comp_latency,
                inputs.net_latency,
                bound_error,
            );
            Some(FactoringSource::new(split.w2, n, config.factor, bound))
        } else {
            None
        };

        Ok(Rumr {
            config,
            split,
            phase1,
            phase1_schedule,
            phase2,
            phase2_exhausted: false,
        })
    }

    /// The workload division between the phases.
    pub fn split(&self) -> PhaseSplit {
        self.split
    }

    /// The phase-1 UMR schedule, when phase 1 is used.
    pub fn phase1_schedule(&self) -> Option<&UmrSchedule> {
        self.phase1_schedule.as_ref()
    }

    /// True when the configuration produced a non-empty phase 2.
    pub fn uses_phase2(&self) -> bool {
        self.phase2.is_some()
    }

    /// The configuration this scheduler was built with.
    pub fn config(&self) -> &RumrConfig {
        &self.config
    }

    /// Phase-1 destination selection: keep the planned worker when it is
    /// hungry itself (or nobody is); otherwise reroute to the least-loaded
    /// hungry worker. With exact predictions no worker is ever prematurely
    /// hungry, so this reduces to plain UMR — which is the paper's design
    /// intent and is asserted by tests.
    fn phase1_destination(&self, planned: usize, view: &SimView<'_>) -> usize {
        if !self.config.out_of_order {
            return planned;
        }
        if view.workers[planned].is_hungry() {
            return planned;
        }
        view.least_loaded_hungry().unwrap_or(planned)
    }
}

impl Scheduler for Rumr {
    fn name(&self) -> String {
        let mut name = String::from("RUMR");
        if let Some(p) = self.config.phase1_fraction {
            name.push_str(&format!("_{:.0}", p * 100.0));
        }
        if !self.config.out_of_order {
            name.push_str("-plain");
        }
        name
    }

    fn next_dispatch(&mut self, view: &SimView<'_>) -> Decision {
        // Phase 1: planned chunk sizes, demand-driven destinations.
        if let Some(replayer) = &mut self.phase1 {
            if let Some((planned, chunk)) = replayer.peek() {
                let worker = self.phase1_destination(planned, view);
                self.phase1
                    .as_mut()
                    .expect("phase1 present")
                    .take_next()
                    .expect("peeked send exists");
                return Decision::Dispatch { worker, chunk };
            }
        }
        // Phase 2: greedy factoring.
        if let Some(source) = &mut self.phase2 {
            if self.phase2_exhausted {
                return Decision::Finished;
            }
            let Some(worker) = view.least_loaded_hungry() else {
                return Decision::Wait;
            };
            return match source.next_chunk() {
                Some(chunk) => Decision::Dispatch { worker, chunk },
                None => {
                    self.phase2_exhausted = true;
                    Decision::Finished
                }
            };
        }
        Decision::Finished
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::factoring::Factoring;
    use crate::umr::Umr;
    use dls_sim::{simulate, ErrorInjector, ErrorModel, HomogeneousParams, SimConfig};

    fn table1(n: usize, r: f64, clat: f64, nlat: f64) -> dls_sim::Platform {
        HomogeneousParams::table1(n, r, clat, nlat).build().unwrap()
    }

    #[test]
    fn split_zero_error_is_pure_umr() {
        let cfg = RumrConfig::with_known_error(0.0);
        let s = phase_split(1000.0, 10, 0.3, 0.3, &cfg);
        assert_eq!(s.w1, 1000.0);
        assert_eq!(s.w2, 0.0);
    }

    #[test]
    fn split_large_error_is_pure_factoring() {
        let cfg = RumrConfig::with_known_error(1.0);
        let s = phase_split(1000.0, 10, 0.3, 0.3, &cfg);
        assert_eq!(s.w1, 0.0);
        assert_eq!(s.w2, 1000.0);
    }

    #[test]
    fn split_proportional_to_error() {
        let cfg = RumrConfig::with_known_error(0.3);
        let s = phase_split(1000.0, 10, 0.1, 0.1, &cfg);
        assert!((s.w2 - 300.0).abs() < 1e-9);
        assert!((s.w1 - 700.0).abs() < 1e-9);
    }

    #[test]
    fn split_threshold_drops_phase2() {
        // W2/N = e·W/N = 0.05·1000/10 = 5 < cLat + nLat·N = 0.5 + 0.9·10 = 9.5
        let cfg = RumrConfig::with_known_error(0.05);
        let s = phase_split(1000.0, 10, 0.5, 0.9, &cfg);
        assert_eq!(s.w2, 0.0);
        assert_eq!(s.w1, 1000.0);
        // Same error with negligible latencies: phase 2 kept.
        let s = phase_split(1000.0, 10, 0.01, 0.01, &cfg);
        assert!((s.w2 - 50.0).abs() < 1e-9);
    }

    #[test]
    fn split_unknown_error_uses_80_20() {
        let cfg = RumrConfig::default();
        let s = phase_split(1000.0, 10, 0.5, 0.9, &cfg);
        assert!((s.w1 - 800.0).abs() < 1e-9);
        assert!((s.w2 - 200.0).abs() < 1e-9);
    }

    #[test]
    fn split_fixed_fraction_override() {
        let cfg = RumrConfig::with_fixed_fraction(0.6, Some(0.4));
        let s = phase_split(1000.0, 10, 0.5, 0.9, &cfg);
        assert!((s.w1 - 600.0).abs() < 1e-9);
        assert!((s.w2 - 400.0).abs() < 1e-9);
    }

    #[test]
    fn rumr_equals_umr_at_zero_error() {
        for (n, r, clat, nlat) in [(10, 1.5, 0.4, 0.2), (20, 1.8, 0.3, 0.9)] {
            let platform = table1(n, r, clat, nlat);
            let mut rumr = Rumr::new(&platform, 1000.0, RumrConfig::with_known_error(0.0)).unwrap();
            assert!(!rumr.uses_phase2());
            let mut umr = Umr::new(&platform, 1000.0).unwrap();
            let run = |s: &mut dyn dls_sim::Scheduler| {
                simulate(
                    &platform,
                    s,
                    ErrorInjector::new(ErrorModel::None, 0),
                    SimConfig::default(),
                )
                .unwrap()
            };
            let a = run(&mut rumr);
            let b = run(&mut umr);
            assert_eq!(a.num_chunks, b.num_chunks);
            assert!(
                (a.makespan - b.makespan).abs() < 1e-9,
                "RUMR {} vs UMR {}",
                a.makespan,
                b.makespan
            );
        }
    }

    #[test]
    fn rumr_at_error_one_equals_factoring_with_matching_bound() {
        // e = 1 makes the error-aware bound equal the error-unaware one, so
        // RUMR degenerates to exactly the standalone Factoring scheduler.
        let platform = table1(10, 1.5, 0.2, 0.3);
        let seed = 1234;
        let mut rumr = Rumr::new(&platform, 1000.0, RumrConfig::with_known_error(1.0)).unwrap();
        assert!(rumr.uses_phase2());
        assert!(rumr.phase1_schedule().is_none());
        let mut fact = Factoring::new(&platform, 1000.0);
        let err = ErrorModel::TruncatedNormal { error: 0.4 };
        let a = simulate(
            &platform,
            &mut rumr,
            ErrorInjector::new(err, seed),
            SimConfig::default(),
        )
        .unwrap();
        let b = simulate(
            &platform,
            &mut fact,
            ErrorInjector::new(err, seed),
            SimConfig::default(),
        )
        .unwrap();
        assert_eq!(a.num_chunks, b.num_chunks);
        assert!((a.makespan - b.makespan).abs() < 1e-9);
    }

    #[test]
    fn phase_work_sums_to_total() {
        let platform = table1(10, 1.5, 0.1, 0.1);
        let rumr = Rumr::new(&platform, 1000.0, RumrConfig::with_known_error(0.3)).unwrap();
        let split = rumr.split();
        assert!((split.w1 + split.w2 - 1000.0).abs() < 1e-9);
        let phase1_work = rumr
            .phase1_schedule()
            .map(|s| s.plan().total_work())
            .unwrap_or(0.0);
        assert!((phase1_work - split.w1).abs() < 1e-6);
    }

    #[test]
    fn conservation_under_error() {
        let platform = table1(15, 1.6, 0.4, 0.6);
        for error in [0.1, 0.3, 0.5] {
            let mut rumr =
                Rumr::new(&platform, 1000.0, RumrConfig::with_known_error(error)).unwrap();
            let r = simulate(
                &platform,
                &mut rumr,
                ErrorInjector::new(ErrorModel::TruncatedNormal { error }, 42),
                SimConfig {
                    trace_mode: dls_sim::TraceMode::Full,
                    ..Default::default()
                },
            )
            .unwrap();
            assert!(
                (r.completed_work() - 1000.0).abs() < 1e-6,
                "error={error}: completed {}",
                r.completed_work()
            );
            assert!(r.trace.unwrap().validate(15).is_empty());
        }
    }

    #[test]
    fn plain_variant_disables_rerouting_and_still_works() {
        let platform = table1(10, 1.5, 0.2, 0.2);
        let mut cfg = RumrConfig::with_known_error(0.4);
        cfg.out_of_order = false;
        let mut rumr = Rumr::new(&platform, 1000.0, cfg).unwrap();
        assert!(rumr.name().contains("plain"));
        let r = simulate(
            &platform,
            &mut rumr,
            ErrorInjector::new(ErrorModel::TruncatedNormal { error: 0.4 }, 11),
            SimConfig::default(),
        )
        .unwrap();
        assert!((r.completed_work() - 1000.0).abs() < 1e-6);
    }

    #[test]
    fn fixed_fraction_names() {
        let platform = table1(10, 1.5, 0.2, 0.2);
        let rumr = Rumr::new(
            &platform,
            1000.0,
            RumrConfig::with_fixed_fraction(0.7, Some(0.2)),
        )
        .unwrap();
        assert_eq!(rumr.name(), "RUMR_70");
        let s = rumr.split();
        assert!((s.w1 - 700.0).abs() < 1e-9);
    }

    #[test]
    fn robustness_shape_rumr_beats_umr_at_high_error() {
        // The paper's headline: under large prediction errors RUMR's
        // two-phase schedule beats plain UMR on average.
        let platform = table1(20, 1.6, 0.2, 0.1);
        let error = 0.45;
        let mut rumr_total = 0.0;
        let mut umr_total = 0.0;
        let reps = 30;
        for seed in 0..reps {
            let model = ErrorModel::TruncatedNormal { error };
            let mut rumr =
                Rumr::new(&platform, 1000.0, RumrConfig::with_known_error(error)).unwrap();
            rumr_total += simulate(
                &platform,
                &mut rumr,
                ErrorInjector::new(model, seed),
                SimConfig::default(),
            )
            .unwrap()
            .makespan;
            let mut umr = Umr::new(&platform, 1000.0).unwrap();
            umr_total += simulate(
                &platform,
                &mut umr,
                ErrorInjector::new(model, seed),
                SimConfig::default(),
            )
            .unwrap()
            .makespan;
        }
        assert!(
            rumr_total < umr_total,
            "RUMR mean {} should beat UMR mean {}",
            rumr_total / reps as f64,
            umr_total / reps as f64
        );
    }
}
