//! Recovery-aware scheduling: a composable wrapper that survives faults.
//!
//! The paper's schedulers assume a reliable platform: once a chunk is
//! dispatched it will be computed. Under the fault model (crashed workers,
//! dropped links — see `dls_sim::faults`) that assumption breaks in two
//! ways: dispatched work can be *destroyed*, and a worker can silently stop
//! being a valid destination. [`Recovering`] retrofits any inner
//! [`Scheduler`] with both repairs:
//!
//! * **Re-queue lost work.** Every `on_chunk_lost` notification lands in a
//!   backlog that is re-sent as [`Decision::Redispatch`] chunks, sized with
//!   a factoring-style rule (each redispatch covers `1/factor` of the
//!   backlog per trusted worker, floored at `min_chunk`) so the recovery
//!   tail stays robust against further prediction error — the same
//!   reasoning RUMR applies to its phase 2.
//! * **Route around dead and freshly-recovered workers.** Dispatches the
//!   inner scheduler aims at a crashed worker are retargeted to the
//!   least-loaded trusted worker. A worker that just recovered is not
//!   trusted again immediately: it must sit out a backoff period that
//!   doubles (by default) with each failure, which keeps a flapping worker
//!   from repeatedly eating chunks.
//!
//! With no faults injected the wrapper is a strict pass-through: it makes
//! exactly the inner scheduler's decisions, so wrapping is free on the
//! reliable platform.

use dls_sim::{Decision, Scheduler, SimView};

const EPS: f64 = 1e-9;

/// Tuning knobs for [`Recovering`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RecoveryConfig {
    /// Backoff after a worker's first recovery before it is trusted with
    /// work again (s).
    pub initial_backoff: f64,
    /// Multiplier applied to the backoff on every subsequent failure of the
    /// same worker (exponential backoff).
    pub backoff_factor: f64,
    /// Factoring divisor for backlog redispatch: each redispatch covers
    /// `backlog / (factor * trusted_workers)`. Must exceed 1.
    pub factor: f64,
    /// Smallest redispatch chunk; the final sliver of backlog is sent
    /// whole rather than split below this.
    pub min_chunk: f64,
}

impl Default for RecoveryConfig {
    fn default() -> Self {
        RecoveryConfig {
            initial_backoff: 5.0,
            backoff_factor: 2.0,
            factor: 2.0,
            min_chunk: 1.0,
        }
    }
}

/// Wraps any scheduler with lost-work redispatch, dead-worker rerouting,
/// and post-recovery backoff. See the module docs.
#[derive(Debug)]
pub struct Recovering<S> {
    inner: S,
    config: RecoveryConfig,
    /// Lost workload units not yet re-sent.
    backlog: f64,
    /// Inner dispatch that could not be placed anywhere (all workers dead
    /// at the time); `(chunk, was_redispatch)`.
    stash: Option<(f64, bool)>,
    /// Per-worker failure count (sized lazily from the view).
    failures: Vec<u32>,
    /// Time before which a recovered worker is not trusted with new work.
    trust_after: Vec<f64>,
    inner_finished: bool,
}

impl<S: Scheduler> Recovering<S> {
    /// Wrap `inner` with the default [`RecoveryConfig`].
    pub fn new(inner: S) -> Self {
        Recovering::with_config(inner, RecoveryConfig::default())
    }

    /// Wrap `inner` with explicit tuning.
    ///
    /// # Panics
    ///
    /// Panics if `factor <= 1`, `min_chunk <= 0`, or the backoff parameters
    /// are negative or non-finite.
    pub fn with_config(inner: S, config: RecoveryConfig) -> Self {
        assert!(
            config.factor > 1.0 && config.factor.is_finite(),
            "factor must exceed 1"
        );
        assert!(
            config.min_chunk > 0.0 && config.min_chunk.is_finite(),
            "min_chunk must be positive"
        );
        assert!(
            config.initial_backoff >= 0.0 && config.initial_backoff.is_finite(),
            "initial_backoff must be finite and non-negative"
        );
        assert!(
            config.backoff_factor >= 1.0 && config.backoff_factor.is_finite(),
            "backoff_factor must be at least 1"
        );
        Recovering {
            inner,
            config,
            backlog: 0.0,
            stash: None,
            failures: Vec::new(),
            trust_after: Vec::new(),
            inner_finished: false,
        }
    }

    /// The wrapped scheduler.
    pub fn inner(&self) -> &S {
        &self.inner
    }

    /// Lost workload units awaiting redispatch.
    pub fn backlog(&self) -> f64 {
        self.backlog
    }

    fn ensure_sized(&mut self, n: usize) {
        if self.failures.len() < n {
            self.failures.resize(n, 0);
            self.trust_after.resize(n, 0.0);
        }
    }

    /// A worker is *trusted* when it is up and past its post-recovery
    /// backoff window.
    fn trusted(&self, view: &SimView<'_>, w: usize) -> bool {
        view.workers[w].alive && view.time >= self.trust_after[w] - EPS
    }

    /// Best alternative destination: least-loaded (by assigned work)
    /// trusted worker, falling back to any live worker when nobody is
    /// trusted (a backoff must not strand work on an otherwise-idle
    /// platform). `None` when every worker is down.
    fn best_target(&self, view: &SimView<'_>, require_hungry: bool) -> Option<usize> {
        let pick = |trusted_only: bool| {
            view.workers
                .iter()
                .enumerate()
                .filter(|&(w, v)| {
                    v.alive
                        && (!trusted_only || self.trusted(view, w))
                        && (!require_hungry || v.is_hungry())
                })
                .min_by(|(i, a), (j, b)| {
                    a.assigned_work
                        .partial_cmp(&b.assigned_work)
                        .expect("finite work totals")
                        .then(i.cmp(j))
                })
                .map(|(w, _)| w)
        };
        pick(true).or_else(|| {
            if self.no_trusted_worker(view) {
                pick(false)
            } else {
                None
            }
        })
    }

    fn no_trusted_worker(&self, view: &SimView<'_>) -> bool {
        (0..view.workers.len()).all(|w| !self.trusted(view, w))
    }

    /// Route an inner dispatch away from untrusted destinations.
    fn route(&mut self, view: &SimView<'_>, worker: usize, chunk: f64, redis: bool) -> Decision {
        let emit = |worker: usize| {
            if redis {
                Decision::Redispatch { worker, chunk }
            } else {
                Decision::Dispatch { worker, chunk }
            }
        };
        if worker < view.workers.len() && self.trusted(view, worker) {
            return emit(worker);
        }
        match self.best_target(view, false) {
            Some(alt) => emit(alt),
            None => {
                // Every worker is down: park the chunk and retry later.
                self.stash = Some((chunk, redis));
                Decision::Wait
            }
        }
    }

    /// Factoring-style chunk for the next backlog redispatch.
    fn backlog_chunk(&self, view: &SimView<'_>) -> f64 {
        let trusted = (0..view.workers.len())
            .filter(|&w| self.trusted(view, w))
            .count()
            .max(1);
        let ideal = self.backlog / (self.config.factor * trusted as f64);
        let chunk = ideal.max(self.config.min_chunk).min(self.backlog);
        // Don't leave a sliver smaller than min_chunk behind.
        if self.backlog - chunk < self.config.min_chunk {
            self.backlog
        } else {
            chunk
        }
    }
}

impl<S: Scheduler> Scheduler for Recovering<S> {
    fn name(&self) -> String {
        format!("recovering({})", self.inner.name())
    }

    fn next_dispatch(&mut self, view: &SimView<'_>) -> Decision {
        self.ensure_sized(view.workers.len());

        // 1. A previously unplaceable chunk gets first claim on capacity.
        if let Some((chunk, redis)) = self.stash.take() {
            let d = self.route(view, usize::MAX, chunk, redis);
            if d != Decision::Wait {
                return d;
            }
            // Still nowhere to go (route() re-stashed it).
            return Decision::Wait;
        }

        // 2. The inner scheduler's own plan, rerouted if needed.
        if !self.inner_finished {
            match self.inner.next_dispatch(view) {
                Decision::Dispatch { worker, chunk } => {
                    return self.route(view, worker, chunk, false)
                }
                Decision::Redispatch { worker, chunk } => {
                    return self.route(view, worker, chunk, true)
                }
                Decision::Finished => self.inner_finished = true,
                Decision::Wait => {
                    // Inner is waiting on its own logic; only preempt it
                    // with backlog work if a trusted worker sits idle.
                    if self.backlog > EPS {
                        if let Some(w) = self.best_target(view, true) {
                            let chunk = self.backlog_chunk(view);
                            self.backlog -= chunk;
                            return Decision::Redispatch { worker: w, chunk };
                        }
                    }
                    return Decision::Wait;
                }
            }
        }

        // 3. Inner is done: drain the backlog demand-driven.
        if self.backlog > EPS {
            if let Some(w) = self.best_target(view, true) {
                let chunk = self.backlog_chunk(view);
                self.backlog -= chunk;
                return Decision::Redispatch { worker: w, chunk };
            }
            // Workers busy or everyone down; the engine will ask again
            // after the next event (or end the run if nothing can happen).
            return Decision::Wait;
        }
        Decision::Finished
    }

    fn on_compute_start(&mut self, worker: usize, chunk: f64, time: f64) {
        self.inner.on_compute_start(worker, chunk, time);
    }

    fn on_compute_end(&mut self, worker: usize, chunk: f64, time: f64) {
        self.inner.on_compute_end(worker, chunk, time);
    }

    fn on_arrival(&mut self, worker: usize, chunk: f64, time: f64) {
        self.inner.on_arrival(worker, chunk, time);
    }

    fn on_worker_failed(&mut self, worker: usize, time: f64) {
        self.ensure_sized(worker + 1);
        self.failures[worker] += 1;
        self.inner.on_worker_failed(worker, time);
    }

    fn on_worker_recovered(&mut self, worker: usize, time: f64) {
        self.ensure_sized(worker + 1);
        // Exponential backoff in the number of failures so far.
        let n = self.failures[worker].saturating_sub(1);
        let backoff = self.config.initial_backoff * self.config.backoff_factor.powi(n as i32);
        self.trust_after[worker] = time + backoff;
        self.inner.on_worker_recovered(worker, time);
    }

    fn on_chunk_lost(&mut self, worker: usize, chunk: f64, time: f64) {
        self.backlog += chunk;
        self.inner.on_chunk_lost(worker, chunk, time);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dls_sim::WorkerView;

    /// Replays a fixed list of decisions.
    struct Scripted {
        decisions: Vec<Decision>,
        next: usize,
    }

    impl Scripted {
        fn new(decisions: Vec<Decision>) -> Self {
            Scripted { decisions, next: 0 }
        }
    }

    impl Scheduler for Scripted {
        fn name(&self) -> String {
            "scripted".into()
        }
        fn next_dispatch(&mut self, _view: &SimView<'_>) -> Decision {
            let d = self
                .decisions
                .get(self.next)
                .copied()
                .unwrap_or(Decision::Finished);
            self.next += 1;
            d
        }
    }

    fn idle_workers(n: usize) -> Vec<WorkerView> {
        vec![WorkerView::default(); n]
    }

    #[test]
    fn passthrough_without_faults() {
        let inner = Scripted::new(vec![
            Decision::Dispatch {
                worker: 1,
                chunk: 3.0,
            },
            Decision::Finished,
        ]);
        let mut r = Recovering::new(inner);
        let workers = idle_workers(2);
        let view = SimView {
            time: 0.0,
            workers: &workers,
        };
        assert_eq!(
            r.next_dispatch(&view),
            Decision::Dispatch {
                worker: 1,
                chunk: 3.0
            }
        );
        assert_eq!(r.next_dispatch(&view), Decision::Finished);
        assert_eq!(r.name(), "recovering(scripted)");
    }

    #[test]
    fn reroutes_away_from_dead_worker() {
        let inner = Scripted::new(vec![Decision::Dispatch {
            worker: 0,
            chunk: 4.0,
        }]);
        let mut r = Recovering::new(inner);
        let mut workers = idle_workers(3);
        workers[0].alive = false;
        workers[2].assigned_work = 1.0;
        let view = SimView {
            time: 0.0,
            workers: &workers,
        };
        // Least-loaded live worker is 1.
        assert_eq!(
            r.next_dispatch(&view),
            Decision::Dispatch {
                worker: 1,
                chunk: 4.0
            }
        );
    }

    #[test]
    fn stashes_when_everyone_is_down() {
        let inner = Scripted::new(vec![Decision::Dispatch {
            worker: 0,
            chunk: 4.0,
        }]);
        let mut r = Recovering::new(inner);
        let mut workers = idle_workers(2);
        workers[0].alive = false;
        workers[1].alive = false;
        let view = SimView {
            time: 0.0,
            workers: &workers,
        };
        assert_eq!(r.next_dispatch(&view), Decision::Wait);
        // Worker 1 comes back: the stashed chunk goes out first.
        let mut workers = idle_workers(2);
        workers[0].alive = false;
        let view = SimView {
            time: 1.0,
            workers: &workers,
        };
        assert_eq!(
            r.next_dispatch(&view),
            Decision::Dispatch {
                worker: 1,
                chunk: 4.0
            }
        );
    }

    #[test]
    fn drains_backlog_after_inner_finishes() {
        let mut r = Recovering::with_config(
            Scripted::new(vec![Decision::Finished]),
            RecoveryConfig {
                factor: 2.0,
                min_chunk: 1.0,
                ..Default::default()
            },
        );
        r.on_chunk_lost(0, 10.0, 5.0);
        let workers = idle_workers(2);
        let view = SimView {
            time: 6.0,
            workers: &workers,
        };
        let mut total = 0.0;
        loop {
            match r.next_dispatch(&view) {
                Decision::Redispatch { chunk, .. } => {
                    assert!(chunk >= 1.0 - 1e-12);
                    total += chunk;
                }
                Decision::Finished => break,
                other => panic!("unexpected decision: {other:?}"),
            }
        }
        assert!((total - 10.0).abs() < 1e-9);
        assert!(r.backlog() < 1e-9);
    }

    #[test]
    fn recovered_worker_sits_out_backoff() {
        let cfg = RecoveryConfig {
            initial_backoff: 10.0,
            backoff_factor: 2.0,
            ..Default::default()
        };
        let inner = Scripted::new(vec![
            Decision::Dispatch {
                worker: 0,
                chunk: 2.0,
            },
            Decision::Dispatch {
                worker: 0,
                chunk: 2.0,
            },
        ]);
        let mut r = Recovering::with_config(inner, cfg);
        r.on_worker_failed(0, 1.0);
        r.on_worker_recovered(0, 2.0); // trusted again at 12.0
        let workers = idle_workers(2);
        // At t=5 worker 0 is up but untrusted: rerouted to worker 1.
        let view = SimView {
            time: 5.0,
            workers: &workers,
        };
        assert_eq!(
            r.next_dispatch(&view),
            Decision::Dispatch {
                worker: 1,
                chunk: 2.0
            }
        );
        // Past the backoff it is trusted again.
        let view = SimView {
            time: 12.5,
            workers: &workers,
        };
        assert_eq!(
            r.next_dispatch(&view),
            Decision::Dispatch {
                worker: 0,
                chunk: 2.0
            }
        );
    }

    #[test]
    fn backoff_doubles_with_each_failure() {
        let cfg = RecoveryConfig {
            initial_backoff: 10.0,
            backoff_factor: 2.0,
            ..Default::default()
        };
        let mut r = Recovering::with_config(Scripted::new(vec![]), cfg);
        r.on_worker_failed(0, 1.0);
        r.on_worker_recovered(0, 2.0);
        assert!((r.trust_after[0] - 12.0).abs() < 1e-12);
        r.on_worker_failed(0, 20.0);
        r.on_worker_recovered(0, 21.0);
        assert!((r.trust_after[0] - 41.0).abs() < 1e-12);
    }

    #[test]
    fn backlog_preempts_inner_wait() {
        let inner = Scripted::new(vec![Decision::Wait]);
        let mut r = Recovering::new(inner);
        r.on_chunk_lost(1, 3.0, 0.0);
        let workers = idle_workers(2);
        let view = SimView {
            time: 1.0,
            workers: &workers,
        };
        match r.next_dispatch(&view) {
            Decision::Redispatch { chunk, .. } => assert!(chunk > 0.0),
            other => panic!("unexpected decision: {other:?}"),
        }
    }

    #[test]
    #[should_panic(expected = "factor must exceed 1")]
    fn bad_factor_rejected() {
        let _ = Recovering::with_config(
            Scripted::new(vec![]),
            RecoveryConfig {
                factor: 1.0,
                ..Default::default()
            },
        );
    }
}
