//! Recovery-aware scheduling: a composable wrapper that survives faults.
//!
//! The paper's schedulers assume a reliable platform: once a chunk is
//! dispatched it will be computed. Under the fault model (crashed workers,
//! dropped links — see `dls_sim::faults`) that assumption breaks in two
//! ways: dispatched work can be *destroyed*, and a worker can silently stop
//! being a valid destination. [`Recovering`] retrofits any inner
//! [`Scheduler`] with both repairs:
//!
//! * **Re-queue lost work.** Every `on_chunk_lost` notification lands in a
//!   backlog that is re-sent as [`Decision::Redispatch`] chunks, sized with
//!   a factoring-style rule (each redispatch covers `1/factor` of the
//!   backlog per trusted worker, floored at `min_chunk`) so the recovery
//!   tail stays robust against further prediction error — the same
//!   reasoning RUMR applies to its phase 2.
//! * **Route around dead and freshly-recovered workers.** Dispatches the
//!   inner scheduler aims at a crashed worker are retargeted to the
//!   least-loaded trusted worker. A worker that just recovered is not
//!   trusted again immediately: it must sit out a backoff period that
//!   doubles (by default) with each failure, which keeps a flapping worker
//!   from repeatedly eating chunks.
//!
//! With no faults injected the wrapper is a strict pass-through: it makes
//! exactly the inner scheduler's decisions, so wrapping is free on the
//! reliable platform.

use dls_sim::{Decision, Scheduler, SimView};

const EPS: f64 = 1e-9;

/// Tuning knobs for [`Recovering`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RecoveryConfig {
    /// Backoff after a worker's first recovery before it is trusted with
    /// work again (s).
    pub initial_backoff: f64,
    /// Multiplier applied to the backoff on every subsequent failure of the
    /// same worker (exponential backoff).
    pub backoff_factor: f64,
    /// Factoring divisor for backlog redispatch: each redispatch covers
    /// `backlog / (factor * trusted_workers)`. Must exceed 1.
    pub factor: f64,
    /// Smallest redispatch chunk; the final sliver of backlog is sent
    /// whole rather than split below this.
    pub min_chunk: f64,
    /// When set, a worker whose *observed* compute times exceed its
    /// declared predictions by more than this relative slack (over a
    /// window of [`RecoveryConfig::divergence_min_samples`] chunks) is
    /// treated like a recovered-from fault: it loses trust for one
    /// exponential-backoff period and new work is routed around it. Feed
    /// the declared rates via [`Recovering::with_declared_rates`].
    /// `None` (the default) disables the check entirely.
    pub divergence_threshold: Option<f64>,
    /// Completed chunks a worker must accumulate before the divergence
    /// check may fire (guards against judging on one noisy sample).
    pub divergence_min_samples: u32,
}

impl Default for RecoveryConfig {
    fn default() -> Self {
        RecoveryConfig {
            initial_backoff: 5.0,
            backoff_factor: 2.0,
            factor: 2.0,
            min_chunk: 1.0,
            divergence_threshold: None,
            divergence_min_samples: 3,
        }
    }
}

impl RecoveryConfig {
    /// Set the first post-recovery distrust period (builder style).
    pub fn with_initial_backoff(mut self, initial_backoff: f64) -> Self {
        self.initial_backoff = initial_backoff;
        self
    }

    /// Set the per-failure backoff multiplier (builder style).
    pub fn with_backoff_factor(mut self, backoff_factor: f64) -> Self {
        self.backoff_factor = backoff_factor;
        self
    }

    /// Enable divergence-triggered distrust: a worker running more than
    /// `threshold` (relative) slower than declared over a window of
    /// `min_samples` chunks is backed off like a flapping worker.
    pub fn with_divergence(mut self, threshold: f64, min_samples: u32) -> Self {
        self.divergence_threshold = Some(threshold);
        self.divergence_min_samples = min_samples;
        self
    }
}

/// Per-worker observation window for the divergence check: actual vs.
/// declared compute time of the chunks finished since the last reset.
#[derive(Debug, Clone, Copy, Default)]
struct RateWindow {
    /// When the chunk currently computing started.
    started: f64,
    /// Observed compute seconds in the window.
    obs_time: f64,
    /// Declared (predicted) compute seconds for the same chunks.
    decl_time: f64,
    /// Workload units finished in the window.
    obs_work: f64,
    /// Chunks finished in the window.
    samples: u32,
    /// Divergence triggers so far (not reset with the window).
    divergences: u32,
}

/// Wraps any scheduler with lost-work redispatch, dead-worker rerouting,
/// and post-recovery backoff. See the module docs.
#[derive(Debug)]
pub struct Recovering<S> {
    inner: S,
    config: RecoveryConfig,
    /// Lost workload units not yet re-sent.
    backlog: f64,
    /// Inner dispatch that could not be placed anywhere (all workers dead
    /// at the time); `(chunk, was_redispatch)`.
    stash: Option<(f64, bool)>,
    /// Per-worker failure count (sized lazily from the view).
    failures: Vec<u32>,
    /// Time before which a recovered worker is not trusted with new work.
    trust_after: Vec<f64>,
    /// Declared `(comp_latency, speed)` per worker; empty unless
    /// [`Recovering::with_declared_rates`] was called. The divergence
    /// check needs both to predict a chunk's declared compute time.
    declared: Vec<(f64, f64)>,
    /// Per-worker observation windows for the divergence check.
    windows: Vec<RateWindow>,
    inner_finished: bool,
}

impl<S: Scheduler> Recovering<S> {
    /// Wrap `inner` with the default [`RecoveryConfig`].
    pub fn new(inner: S) -> Self {
        Recovering::with_config(inner, RecoveryConfig::default())
    }

    /// Wrap `inner` with explicit tuning.
    ///
    /// # Panics
    ///
    /// Panics if `factor <= 1`, `min_chunk <= 0`, or the backoff parameters
    /// are negative or non-finite.
    pub fn with_config(inner: S, config: RecoveryConfig) -> Self {
        assert!(
            config.factor > 1.0 && config.factor.is_finite(),
            "factor must exceed 1"
        );
        assert!(
            config.min_chunk > 0.0 && config.min_chunk.is_finite(),
            "min_chunk must be positive"
        );
        assert!(
            config.initial_backoff >= 0.0 && config.initial_backoff.is_finite(),
            "initial_backoff must be finite and non-negative"
        );
        assert!(
            config.backoff_factor >= 1.0 && config.backoff_factor.is_finite(),
            "backoff_factor must be at least 1"
        );
        if let Some(t) = config.divergence_threshold {
            assert!(
                t > 0.0 && t.is_finite(),
                "divergence_threshold must be positive and finite"
            );
            assert!(
                config.divergence_min_samples >= 1,
                "divergence_min_samples must be at least 1"
            );
        }
        Recovering {
            inner,
            config,
            backlog: 0.0,
            stash: None,
            failures: Vec::new(),
            trust_after: Vec::new(),
            declared: Vec::new(),
            windows: Vec::new(),
            inner_finished: false,
        }
    }

    /// Supply the declared `(comp_latency, speed)` of every worker so the
    /// divergence check ([`RecoveryConfig::divergence_threshold`]) can
    /// predict what each chunk *should* have cost. Without this call the
    /// check never fires.
    pub fn with_declared_rates(mut self, declared: Vec<(f64, f64)>) -> Self {
        self.declared = declared;
        self
    }

    /// The wrapped scheduler.
    pub fn inner(&self) -> &S {
        &self.inner
    }

    /// Lost workload units awaiting redispatch.
    pub fn backlog(&self) -> f64 {
        self.backlog
    }

    /// Divergence triggers recorded against `worker` so far.
    pub fn divergences(&self, worker: usize) -> u32 {
        self.windows.get(worker).map_or(0, |w| w.divergences)
    }

    /// Observed compute rate of `worker` over its current observation
    /// window (units per second, latency amortized in), or `None` before
    /// any chunk finished. This is the "updated rate estimate" the wrapper
    /// acts on when declaring divergence.
    pub fn observed_rate(&self, worker: usize) -> Option<f64> {
        let w = self.windows.get(worker)?;
        (w.obs_time > 0.0).then(|| w.obs_work / w.obs_time)
    }

    fn ensure_sized(&mut self, n: usize) {
        if self.failures.len() < n {
            self.failures.resize(n, 0);
            self.trust_after.resize(n, 0.0);
        }
        if self.windows.len() < n {
            self.windows.resize(n, RateWindow::default());
        }
    }

    /// Exponential backoff for a worker's `failures`-th distrust event.
    fn backoff_for(&self, failures: u32) -> f64 {
        let n = failures.saturating_sub(1);
        self.config.initial_backoff * self.config.backoff_factor.powi(n as i32)
    }

    /// A worker is *trusted* when it is up and past its post-recovery
    /// backoff window.
    fn trusted(&self, view: &SimView<'_>, w: usize) -> bool {
        view.workers[w].alive && view.time >= self.trust_after[w] - EPS
    }

    /// Best alternative destination: least-loaded (by assigned work)
    /// trusted worker, falling back to any live worker when nobody is
    /// trusted (a backoff must not strand work on an otherwise-idle
    /// platform). `None` when every worker is down.
    fn best_target(&self, view: &SimView<'_>, require_hungry: bool) -> Option<usize> {
        let pick = |trusted_only: bool| {
            view.workers
                .iter()
                .enumerate()
                .filter(|&(w, v)| {
                    v.alive
                        && (!trusted_only || self.trusted(view, w))
                        && (!require_hungry || v.is_hungry())
                })
                .min_by(|(i, a), (j, b)| {
                    a.assigned_work
                        .partial_cmp(&b.assigned_work)
                        .expect("finite work totals")
                        .then(i.cmp(j))
                })
                .map(|(w, _)| w)
        };
        pick(true).or_else(|| {
            if self.no_trusted_worker(view) {
                pick(false)
            } else {
                None
            }
        })
    }

    fn no_trusted_worker(&self, view: &SimView<'_>) -> bool {
        (0..view.workers.len()).all(|w| !self.trusted(view, w))
    }

    /// Route an inner dispatch away from untrusted destinations.
    fn route(&mut self, view: &SimView<'_>, worker: usize, chunk: f64, redis: bool) -> Decision {
        let emit = |worker: usize| {
            if redis {
                Decision::Redispatch { worker, chunk }
            } else {
                Decision::Dispatch { worker, chunk }
            }
        };
        if worker < view.workers.len() && self.trusted(view, worker) {
            return emit(worker);
        }
        match self.best_target(view, false) {
            Some(alt) => emit(alt),
            None => {
                // Every worker is down: park the chunk and retry later.
                self.stash = Some((chunk, redis));
                Decision::Wait
            }
        }
    }

    /// Factoring-style chunk for the next backlog redispatch.
    fn backlog_chunk(&self, view: &SimView<'_>) -> f64 {
        let trusted = (0..view.workers.len())
            .filter(|&w| self.trusted(view, w))
            .count()
            .max(1);
        let ideal = self.backlog / (self.config.factor * trusted as f64);
        let chunk = ideal.max(self.config.min_chunk).min(self.backlog);
        // Don't leave a sliver smaller than min_chunk behind.
        if self.backlog - chunk < self.config.min_chunk {
            self.backlog
        } else {
            chunk
        }
    }
}

impl<S: Scheduler> Scheduler for Recovering<S> {
    fn name(&self) -> String {
        format!("recovering({})", self.inner.name())
    }

    fn next_dispatch(&mut self, view: &SimView<'_>) -> Decision {
        self.ensure_sized(view.workers.len());

        // 1. A previously unplaceable chunk gets first claim on capacity.
        if let Some((chunk, redis)) = self.stash.take() {
            let d = self.route(view, usize::MAX, chunk, redis);
            if d != Decision::Wait {
                return d;
            }
            // Still nowhere to go (route() re-stashed it).
            return Decision::Wait;
        }

        // 2. The inner scheduler's own plan, rerouted if needed.
        if !self.inner_finished {
            match self.inner.next_dispatch(view) {
                Decision::Dispatch { worker, chunk } => {
                    return self.route(view, worker, chunk, false)
                }
                Decision::Redispatch { worker, chunk } => {
                    return self.route(view, worker, chunk, true)
                }
                Decision::Finished => self.inner_finished = true,
                timed @ Decision::WaitUntil { .. } => {
                    // Inner wants a timed wake-up (multi-load layering);
                    // backlog work still preempts it on an idle trusted
                    // worker, otherwise pass the wake-up request through.
                    if self.backlog > EPS {
                        if let Some(w) = self.best_target(view, true) {
                            let chunk = self.backlog_chunk(view);
                            self.backlog -= chunk;
                            return Decision::Redispatch { worker: w, chunk };
                        }
                    }
                    return timed;
                }
                Decision::Wait => {
                    // Inner is waiting on its own logic; only preempt it
                    // with backlog work if a trusted worker sits idle.
                    if self.backlog > EPS {
                        if let Some(w) = self.best_target(view, true) {
                            let chunk = self.backlog_chunk(view);
                            self.backlog -= chunk;
                            return Decision::Redispatch { worker: w, chunk };
                        }
                    }
                    return Decision::Wait;
                }
            }
        }

        // 3. Inner is done: drain the backlog demand-driven.
        if self.backlog > EPS {
            if let Some(w) = self.best_target(view, true) {
                let chunk = self.backlog_chunk(view);
                self.backlog -= chunk;
                return Decision::Redispatch { worker: w, chunk };
            }
            // Workers busy or everyone down; the engine will ask again
            // after the next event (or end the run if nothing can happen).
            return Decision::Wait;
        }
        Decision::Finished
    }

    fn on_compute_start(&mut self, worker: usize, chunk: f64, time: f64) {
        if self.config.divergence_threshold.is_some() {
            self.ensure_sized(worker + 1);
            self.windows[worker].started = time;
        }
        self.inner.on_compute_start(worker, chunk, time);
    }

    fn on_compute_end(&mut self, worker: usize, chunk: f64, time: f64) {
        if let (Some(threshold), Some(&(clat, speed))) =
            (self.config.divergence_threshold, self.declared.get(worker))
        {
            self.ensure_sized(worker + 1);
            let w = &mut self.windows[worker];
            w.obs_time += (time - w.started).max(0.0);
            w.decl_time += clat + chunk / speed;
            w.obs_work += chunk;
            w.samples += 1;
            let diverged = w.samples >= self.config.divergence_min_samples
                && w.obs_time > w.decl_time * (1.0 + threshold);
            if diverged {
                // Same treatment as a fault: count it, distrust the worker
                // for one backoff period, start a fresh observation window
                // so recovery is judged on post-backoff behavior.
                *w = RateWindow {
                    divergences: w.divergences + 1,
                    ..RateWindow::default()
                };
                self.failures[worker] += 1;
                self.trust_after[worker] = time + self.backoff_for(self.failures[worker]);
            }
        }
        self.inner.on_compute_end(worker, chunk, time);
    }

    fn on_arrival(&mut self, worker: usize, chunk: f64, time: f64) {
        self.inner.on_arrival(worker, chunk, time);
    }

    fn on_worker_failed(&mut self, worker: usize, time: f64) {
        self.ensure_sized(worker + 1);
        self.failures[worker] += 1;
        self.inner.on_worker_failed(worker, time);
    }

    fn on_worker_recovered(&mut self, worker: usize, time: f64) {
        self.ensure_sized(worker + 1);
        // Exponential backoff in the number of failures so far.
        self.trust_after[worker] = time + self.backoff_for(self.failures[worker]);
        self.inner.on_worker_recovered(worker, time);
    }

    fn on_chunk_lost(&mut self, worker: usize, chunk: f64, time: f64) {
        self.backlog += chunk;
        self.inner.on_chunk_lost(worker, chunk, time);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dls_sim::WorkerView;

    /// Replays a fixed list of decisions.
    struct Scripted {
        decisions: Vec<Decision>,
        next: usize,
    }

    impl Scripted {
        fn new(decisions: Vec<Decision>) -> Self {
            Scripted { decisions, next: 0 }
        }
    }

    impl Scheduler for Scripted {
        fn name(&self) -> String {
            "scripted".into()
        }
        fn next_dispatch(&mut self, _view: &SimView<'_>) -> Decision {
            let d = self
                .decisions
                .get(self.next)
                .copied()
                .unwrap_or(Decision::Finished);
            self.next += 1;
            d
        }
    }

    fn idle_workers(n: usize) -> Vec<WorkerView> {
        vec![WorkerView::default(); n]
    }

    #[test]
    fn passthrough_without_faults() {
        let inner = Scripted::new(vec![
            Decision::Dispatch {
                worker: 1,
                chunk: 3.0,
            },
            Decision::Finished,
        ]);
        let mut r = Recovering::new(inner);
        let workers = idle_workers(2);
        let view = SimView {
            time: 0.0,
            workers: &workers,
        };
        assert_eq!(
            r.next_dispatch(&view),
            Decision::Dispatch {
                worker: 1,
                chunk: 3.0
            }
        );
        assert_eq!(r.next_dispatch(&view), Decision::Finished);
        assert_eq!(r.name(), "recovering(scripted)");
    }

    #[test]
    fn reroutes_away_from_dead_worker() {
        let inner = Scripted::new(vec![Decision::Dispatch {
            worker: 0,
            chunk: 4.0,
        }]);
        let mut r = Recovering::new(inner);
        let mut workers = idle_workers(3);
        workers[0].alive = false;
        workers[2].assigned_work = 1.0;
        let view = SimView {
            time: 0.0,
            workers: &workers,
        };
        // Least-loaded live worker is 1.
        assert_eq!(
            r.next_dispatch(&view),
            Decision::Dispatch {
                worker: 1,
                chunk: 4.0
            }
        );
    }

    #[test]
    fn stashes_when_everyone_is_down() {
        let inner = Scripted::new(vec![Decision::Dispatch {
            worker: 0,
            chunk: 4.0,
        }]);
        let mut r = Recovering::new(inner);
        let mut workers = idle_workers(2);
        workers[0].alive = false;
        workers[1].alive = false;
        let view = SimView {
            time: 0.0,
            workers: &workers,
        };
        assert_eq!(r.next_dispatch(&view), Decision::Wait);
        // Worker 1 comes back: the stashed chunk goes out first.
        let mut workers = idle_workers(2);
        workers[0].alive = false;
        let view = SimView {
            time: 1.0,
            workers: &workers,
        };
        assert_eq!(
            r.next_dispatch(&view),
            Decision::Dispatch {
                worker: 1,
                chunk: 4.0
            }
        );
    }

    #[test]
    fn drains_backlog_after_inner_finishes() {
        let mut r = Recovering::with_config(
            Scripted::new(vec![Decision::Finished]),
            RecoveryConfig {
                factor: 2.0,
                min_chunk: 1.0,
                ..Default::default()
            },
        );
        r.on_chunk_lost(0, 10.0, 5.0);
        let workers = idle_workers(2);
        let view = SimView {
            time: 6.0,
            workers: &workers,
        };
        let mut total = 0.0;
        loop {
            match r.next_dispatch(&view) {
                Decision::Redispatch { chunk, .. } => {
                    assert!(chunk >= 1.0 - 1e-12);
                    total += chunk;
                }
                Decision::Finished => break,
                other => panic!("unexpected decision: {other:?}"),
            }
        }
        assert!((total - 10.0).abs() < 1e-9);
        assert!(r.backlog() < 1e-9);
    }

    #[test]
    fn recovered_worker_sits_out_backoff() {
        let cfg = RecoveryConfig {
            initial_backoff: 10.0,
            backoff_factor: 2.0,
            ..Default::default()
        };
        let inner = Scripted::new(vec![
            Decision::Dispatch {
                worker: 0,
                chunk: 2.0,
            },
            Decision::Dispatch {
                worker: 0,
                chunk: 2.0,
            },
        ]);
        let mut r = Recovering::with_config(inner, cfg);
        r.on_worker_failed(0, 1.0);
        r.on_worker_recovered(0, 2.0); // trusted again at 12.0
        let workers = idle_workers(2);
        // At t=5 worker 0 is up but untrusted: rerouted to worker 1.
        let view = SimView {
            time: 5.0,
            workers: &workers,
        };
        assert_eq!(
            r.next_dispatch(&view),
            Decision::Dispatch {
                worker: 1,
                chunk: 2.0
            }
        );
        // Past the backoff it is trusted again.
        let view = SimView {
            time: 12.5,
            workers: &workers,
        };
        assert_eq!(
            r.next_dispatch(&view),
            Decision::Dispatch {
                worker: 0,
                chunk: 2.0
            }
        );
    }

    #[test]
    fn backoff_doubles_with_each_failure() {
        let cfg = RecoveryConfig {
            initial_backoff: 10.0,
            backoff_factor: 2.0,
            ..Default::default()
        };
        let mut r = Recovering::with_config(Scripted::new(vec![]), cfg);
        r.on_worker_failed(0, 1.0);
        r.on_worker_recovered(0, 2.0);
        assert!((r.trust_after[0] - 12.0).abs() < 1e-12);
        r.on_worker_failed(0, 20.0);
        r.on_worker_recovered(0, 21.0);
        assert!((r.trust_after[0] - 41.0).abs() < 1e-12);
    }

    #[test]
    fn backlog_preempts_inner_wait() {
        let inner = Scripted::new(vec![Decision::Wait]);
        let mut r = Recovering::new(inner);
        r.on_chunk_lost(1, 3.0, 0.0);
        let workers = idle_workers(2);
        let view = SimView {
            time: 1.0,
            workers: &workers,
        };
        match r.next_dispatch(&view) {
            Decision::Redispatch { chunk, .. } => assert!(chunk > 0.0),
            other => panic!("unexpected decision: {other:?}"),
        }
    }

    #[test]
    fn config_builder_sets_backoff_knobs() {
        let cfg = RecoveryConfig::default()
            .with_initial_backoff(7.5)
            .with_backoff_factor(3.0)
            .with_divergence(0.5, 2);
        assert_eq!(cfg.initial_backoff, 7.5);
        assert_eq!(cfg.backoff_factor, 3.0);
        assert_eq!(cfg.divergence_threshold, Some(0.5));
        assert_eq!(cfg.divergence_min_samples, 2);
    }

    #[test]
    fn divergence_distrusts_a_sandbagging_worker() {
        let cfg = RecoveryConfig::default()
            .with_initial_backoff(10.0)
            .with_divergence(0.5, 2);
        // Declared: no latency, speed 1 → a 4-unit chunk should take 4 s.
        let inner = Scripted::new(vec![
            Decision::Dispatch {
                worker: 0,
                chunk: 2.0,
            };
            4
        ]);
        let mut r =
            Recovering::with_config(inner, cfg).with_declared_rates(vec![(0.0, 1.0), (0.0, 1.0)]);

        // Worker 0 runs at a quarter of its declared speed: 4-unit chunks
        // take 16 s instead of 4 s. Two samples trip the 50 % threshold.
        r.on_compute_start(0, 4.0, 0.0);
        r.on_compute_end(0, 4.0, 16.0);
        assert_eq!(r.divergences(0), 0, "one sample must not be enough");
        r.on_compute_start(0, 4.0, 16.0);
        r.on_compute_end(0, 4.0, 32.0);
        assert_eq!(r.divergences(0), 1);

        // Distrusted: the inner plan aimed at worker 0 reroutes to 1
        // until the backoff (32 + 10) expires.
        let workers = idle_workers(2);
        let view = SimView {
            time: 33.0,
            workers: &workers,
        };
        assert_eq!(
            r.next_dispatch(&view),
            Decision::Dispatch {
                worker: 1,
                chunk: 2.0
            }
        );
        let view = SimView {
            time: 42.5,
            workers: &workers,
        };
        assert_eq!(
            r.next_dispatch(&view),
            Decision::Dispatch {
                worker: 0,
                chunk: 2.0
            }
        );
    }

    #[test]
    fn honest_worker_never_trips_divergence() {
        let cfg = RecoveryConfig::default().with_divergence(0.5, 2);
        let mut r = Recovering::with_config(Scripted::new(vec![]), cfg)
            .with_declared_rates(vec![(0.1, 2.0)]);
        for i in 0..10 {
            let t0 = i as f64 * 2.2;
            r.on_compute_start(0, 4.0, t0);
            // Declared cost: 0.1 + 4/2 = 2.1 s; observed 2.2 s is within
            // the 50 % slack.
            r.on_compute_end(0, 4.0, t0 + 2.2);
        }
        assert_eq!(r.divergences(0), 0);
        let rate = r.observed_rate(0).unwrap();
        assert!((rate - 4.0 / 2.2).abs() < 1e-12);
    }

    #[test]
    fn divergence_without_declared_rates_is_inert() {
        let cfg = RecoveryConfig::default().with_divergence(0.5, 1);
        let mut r = Recovering::with_config(Scripted::new(vec![]), cfg);
        r.on_compute_start(0, 4.0, 0.0);
        r.on_compute_end(0, 4.0, 1000.0);
        assert_eq!(r.divergences(0), 0);
    }

    #[test]
    #[should_panic(expected = "divergence_threshold must be positive")]
    fn bad_divergence_threshold_rejected() {
        let _ = Recovering::with_config(
            Scripted::new(vec![]),
            RecoveryConfig::default().with_divergence(0.0, 3),
        );
    }

    #[test]
    #[should_panic(expected = "factor must exceed 1")]
    fn bad_factor_rejected() {
        let _ = Recovering::with_config(
            Scripted::new(vec![]),
            RecoveryConfig {
                factor: 1.0,
                ..Default::default()
            },
        );
    }
}
