//! Multi-load arbitration: many divisible loads sharing one master.
//!
//! The paper schedules a single load on a dedicated platform; a scheduler
//! *service* juggles several at once. [`MultiLoadScheduler`] is a
//! meta-scheduler over the unchanged engine: it holds one inner single-load
//! [`Scheduler`] per job (any planner in this crate) and arbitrates which
//! job may use the master's serial interface at each decision point,
//! according to a [`MultiPolicy`]:
//!
//! * **FIFO-exclusive** — jobs run strictly one after another in set
//!   order; job `k` dispatches nothing until jobs `0..k` are fully
//!   accounted. The baseline batch discipline (and, with a single job,
//!   a strict pass-through — the whole multi-load layer reproduces the
//!   single-load run bit for bit).
//! * **Round-robin** — released, unfinished jobs take turns: after a
//!   job dispatches one chunk, the next decision point starts from the
//!   following job.
//! * **Fair-share** — at every decision point the released job with the
//!   smallest *dispatched fraction* (`dispatched / size`) goes first, so
//!   small jobs are not starved behind big ones (ties break toward the
//!   lower job index, keeping runs deterministic).
//!
//! The wrapper also keeps the job-attributed books the engine cannot:
//! which job each dispatched chunk belongs to (per-worker FIFO pipeline
//! mirrors, valid on the serial master), per-job dispatched / completed /
//! lost sums, first-dispatch and settle times. These feed the per-job
//! metrics and the `MultiJobChecker` audit downstream.
//!
//! Inner schedulers are consulted with the *global* platform view; each
//! plans its own load and tracks its own remaining work, exactly as in a
//! single-load run. Between releases the wrapper returns
//! [`Decision::WaitUntil`], so a gap with no in-flight work does not
//! deadlock the engine.

use dls_sim::{Decision, Scheduler, SimView};

use std::collections::VecDeque;

/// Release-time comparison slack.
const RELEASE_EPS: f64 = 1e-9;
/// Relative slack for "all dispatched work accounted" per job.
const WORK_EPS: f64 = 1e-9;

/// How the shared master is arbitrated across concurrent jobs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MultiPolicy {
    /// Strict batch: jobs run one after another in set order.
    FifoExclusive,
    /// Released unfinished jobs take turns, one chunk each.
    RoundRobin,
    /// The released job with the smallest dispatched fraction goes first.
    FairShare,
}

impl MultiPolicy {
    /// All policies, for sweeps.
    pub const ALL: [MultiPolicy; 3] = [
        MultiPolicy::FifoExclusive,
        MultiPolicy::RoundRobin,
        MultiPolicy::FairShare,
    ];

    /// Stable identifier used in CSV output and the service API.
    pub fn label(&self) -> &'static str {
        match self {
            MultiPolicy::FifoExclusive => "fifo",
            MultiPolicy::RoundRobin => "round_robin",
            MultiPolicy::FairShare => "fair_share",
        }
    }

    /// Parse a [`MultiPolicy::label`] back into a policy.
    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "fifo" => Some(MultiPolicy::FifoExclusive),
            "round_robin" => Some(MultiPolicy::RoundRobin),
            "fair_share" => Some(MultiPolicy::FairShare),
            _ => None,
        }
    }
}

/// One job-attributed dispatch, in master dispatch order. Because the
/// master is serial, this order equals the trace's `SendStart` order,
/// which is what lets the audit layer job-tag the master-occupation
/// intervals.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct JobDispatch {
    /// Job index in the submitted set.
    pub job: usize,
    /// Simulation time of the dispatch decision.
    pub time: f64,
    /// Destination worker.
    pub worker: usize,
    /// Chunk size in workload units.
    pub chunk: f64,
    /// True for recovery re-sends ([`Decision::Redispatch`]).
    pub redispatch: bool,
}

/// One job's end-of-run accounting, reported by
/// [`MultiLoadScheduler::reports`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct JobReport {
    /// Release time of the job.
    pub release: f64,
    /// Total workload units of the job.
    pub size: f64,
    /// Workload units dispatched on the job's behalf (redispatches
    /// included).
    pub dispatched: f64,
    /// Workload units whose computation completed.
    pub completed: f64,
    /// Workload units destroyed by faults.
    pub lost: f64,
    /// Time of the job's first dispatch, `None` if nothing was sent.
    pub first_dispatch: Option<f64>,
    /// Time the job *settled*: its inner scheduler had nothing left to
    /// dispatch and every dispatched unit was accounted (completed or
    /// lost). For a fault-free run this is the job's completion time;
    /// under faults without recovery a job settles under-completed
    /// (`completed < size`), which the metrics layer reports as
    /// not-completed.
    pub settled: Option<f64>,
}

/// Per-job state inside the arbiter.
struct JobSlot {
    release: f64,
    size: f64,
    inner: Box<dyn Scheduler>,
    /// The inner scheduler returned [`Decision::Finished`] (everything
    /// dispatched). Reset by a chunk loss so recovery-aware inners are
    /// consulted again, mirroring the engine's own `finished` reset.
    inner_finished: bool,
    dispatched: f64,
    completed: f64,
    lost: f64,
    first_dispatch: Option<f64>,
    settled: Option<f64>,
}

impl JobSlot {
    fn outstanding(&self) -> f64 {
        self.dispatched - self.completed - self.lost
    }

    fn is_settled(&self) -> bool {
        self.settled.is_some()
    }
}

/// Meta-scheduler arbitrating one platform across concurrent jobs.
/// See the module docs for the model and policies.
pub struct MultiLoadScheduler {
    policy: MultiPolicy,
    jobs: Vec<JobSlot>,
    /// Round-robin resume point.
    cursor: usize,
    /// Per-worker FIFO mirror of chunks dispatched but not yet arrived:
    /// `(job, chunk)`. Transfers to one worker deliver in dispatch order
    /// on the serial master, so callback attribution is a front-pop.
    in_transit: Vec<VecDeque<(usize, f64)>>,
    /// Per-worker FIFO mirror of arrived-but-not-started chunks.
    queued: Vec<VecDeque<(usize, f64)>>,
    /// Per-worker currently-computing chunk.
    computing: Vec<Option<(usize, f64)>>,
    /// Job-attributed dispatch log in master order (audit input).
    log: Vec<JobDispatch>,
    /// Earliest wake-up requested by an inner's own `WaitUntil` during
    /// the current decision point.
    wake_hint: Option<f64>,
    /// Reusable candidate ordering for the fair-share policy.
    order_buf: Vec<usize>,
}

impl MultiLoadScheduler {
    /// An arbiter with no jobs; add them with
    /// [`MultiLoadScheduler::push_job`].
    pub fn new(policy: MultiPolicy) -> Self {
        MultiLoadScheduler {
            policy,
            jobs: Vec::new(),
            cursor: 0,
            in_transit: Vec::new(),
            queued: Vec::new(),
            computing: Vec::new(),
            log: Vec::new(),
            wake_hint: None,
            order_buf: Vec::new(),
        }
    }

    /// Add a job: `size` workload units released at `release`, scheduled
    /// by `inner` (which must have been planned for exactly `size` units
    /// on the shared platform). Jobs are indexed in insertion order;
    /// FIFO-exclusive serves them in that order.
    ///
    /// # Panics
    ///
    /// Panics if `release` is not finite and non-negative or `size` is
    /// not finite and positive.
    pub fn push_job(&mut self, release: f64, size: f64, inner: Box<dyn Scheduler>) {
        assert!(
            release.is_finite() && release >= 0.0,
            "release must be finite and non-negative"
        );
        assert!(size.is_finite() && size > 0.0, "size must be positive");
        self.jobs.push(JobSlot {
            release,
            size,
            inner,
            inner_finished: false,
            dispatched: 0.0,
            completed: 0.0,
            lost: 0.0,
            first_dispatch: None,
            settled: None,
        });
    }

    /// Builder-style [`MultiLoadScheduler::push_job`].
    pub fn with_job(mut self, release: f64, size: f64, inner: Box<dyn Scheduler>) -> Self {
        self.push_job(release, size, inner);
        self
    }

    /// The arbitration policy.
    pub fn policy(&self) -> MultiPolicy {
        self.policy
    }

    /// Number of jobs.
    pub fn num_jobs(&self) -> usize {
        self.jobs.len()
    }

    /// Per-job accounting, in job order. Meaningful after the run.
    pub fn reports(&self) -> Vec<JobReport> {
        self.jobs
            .iter()
            .map(|s| JobReport {
                release: s.release,
                size: s.size,
                dispatched: s.dispatched,
                completed: s.completed,
                lost: s.lost,
                first_dispatch: s.first_dispatch,
                settled: s.settled,
            })
            .collect()
    }

    /// The job-attributed dispatch log, in master dispatch order.
    pub fn dispatch_log(&self) -> &[JobDispatch] {
        &self.log
    }

    fn ensure_sized(&mut self, n: usize) {
        while self.in_transit.len() < n {
            self.in_transit.push(VecDeque::new());
            self.queued.push(VecDeque::new());
            self.computing.push(None);
        }
    }

    fn maybe_settle(&mut self, j: usize, time: f64) {
        let s = &mut self.jobs[j];
        if s.settled.is_none() && s.inner_finished && s.outstanding() <= WORK_EPS * s.size.max(1.0)
        {
            s.settled = Some(time);
        }
    }

    fn note_dispatch(&mut self, j: usize, time: f64, worker: usize, chunk: f64, redispatch: bool) {
        self.ensure_sized(worker + 1);
        let s = &mut self.jobs[j];
        s.dispatched += chunk;
        s.first_dispatch.get_or_insert(time);
        self.in_transit[worker].push_back((j, chunk));
        self.log.push(JobDispatch {
            job: j,
            time,
            worker,
            chunk,
            redispatch,
        });
    }

    /// Ask job `j`'s inner scheduler for an action. `Some` is a dispatch
    /// to forward to the engine (recorded in the job's books); `None`
    /// means the inner waits or finished (state updated accordingly).
    fn consult(&mut self, j: usize, view: &SimView<'_>) -> Option<Decision> {
        match self.jobs[j].inner.next_dispatch(view) {
            Decision::Dispatch { worker, chunk } => {
                self.note_dispatch(j, view.time, worker, chunk, false);
                Some(Decision::Dispatch { worker, chunk })
            }
            Decision::Redispatch { worker, chunk } => {
                self.note_dispatch(j, view.time, worker, chunk, true);
                Some(Decision::Redispatch { worker, chunk })
            }
            Decision::Finished => {
                self.jobs[j].inner_finished = true;
                self.maybe_settle(j, view.time);
                None
            }
            Decision::Wait => None,
            Decision::WaitUntil { time } => {
                self.wake_hint = Some(match self.wake_hint {
                    Some(t) => t.min(time),
                    None => time,
                });
                None
            }
        }
    }

    /// Nothing dispatched this decision point: finish, sleep until the
    /// next release (or an inner's requested wake-up), or wait for the
    /// next event.
    fn fallback(&self, now: f64) -> Decision {
        if self.jobs.iter().all(JobSlot::is_settled) {
            return Decision::Finished;
        }
        let next_release = self
            .jobs
            .iter()
            .filter(|s| !s.is_settled() && s.release > now + RELEASE_EPS)
            .map(|s| s.release)
            .fold(f64::INFINITY, f64::min);
        let wake = match self.wake_hint {
            Some(t) => t.min(next_release),
            None => next_release,
        };
        if wake.is_finite() {
            Decision::WaitUntil { time: wake }
        } else {
            Decision::Wait
        }
    }

    fn dispatch_fifo(&mut self, view: &SimView<'_>) -> Decision {
        let now = view.time;
        let mut j = 0;
        while j < self.jobs.len() {
            if self.jobs[j].is_settled() {
                j += 1;
                continue;
            }
            if self.jobs[j].release > now + RELEASE_EPS {
                // Every earlier job is settled and this one hasn't
                // arrived: sleep until it does.
                return Decision::WaitUntil {
                    time: self.jobs[j].release,
                };
            }
            if !self.jobs[j].inner_finished {
                if let Some(d) = self.consult(j, view) {
                    return d;
                }
            }
            if self.jobs[j].is_settled() {
                // Settled on this very consultation (inner finished with
                // everything already accounted): admit the next job now.
                j += 1;
                continue;
            }
            // Head job is waiting on events or fully dispatched;
            // FIFO-exclusive admits nobody behind it.
            return self.head_wait();
        }
        Decision::Finished
    }

    /// The FIFO head is unfinished: wait, honoring an inner's requested
    /// wake-up if one was recorded this decision point.
    fn head_wait(&self) -> Decision {
        match self.wake_hint {
            Some(t) => Decision::WaitUntil { time: t },
            None => Decision::Wait,
        }
    }

    fn dispatch_round_robin(&mut self, view: &SimView<'_>) -> Decision {
        let now = view.time;
        let n = self.jobs.len();
        for off in 0..n {
            let j = (self.cursor + off) % n;
            let s = &self.jobs[j];
            if s.is_settled() || s.inner_finished || s.release > now + RELEASE_EPS {
                continue;
            }
            if let Some(d) = self.consult(j, view) {
                self.cursor = (j + 1) % n;
                return d;
            }
        }
        self.fallback(now)
    }

    fn dispatch_fair_share(&mut self, view: &SimView<'_>) -> Decision {
        let now = view.time;
        let mut order = std::mem::take(&mut self.order_buf);
        order.clear();
        order.extend((0..self.jobs.len()).filter(|&j| {
            let s = &self.jobs[j];
            !s.is_settled() && !s.inner_finished && s.release <= now + RELEASE_EPS
        }));
        // Least dispatched fraction first; ties toward the lower index.
        order.sort_by(|&a, &b| {
            let fa = self.jobs[a].dispatched / self.jobs[a].size;
            let fb = self.jobs[b].dispatched / self.jobs[b].size;
            fa.partial_cmp(&fb)
                .expect("dispatched fractions are finite")
                .then(a.cmp(&b))
        });
        let mut decision = None;
        for &j in &order {
            if let Some(d) = self.consult(j, view) {
                decision = Some(d);
                break;
            }
        }
        self.order_buf = order;
        decision.unwrap_or_else(|| self.fallback(now))
    }
}

impl Scheduler for MultiLoadScheduler {
    fn name(&self) -> String {
        format!("multi-{}[{} jobs]", self.policy.label(), self.jobs.len())
    }

    fn next_dispatch(&mut self, view: &SimView<'_>) -> Decision {
        self.ensure_sized(view.workers.len());
        self.wake_hint = None;
        match self.policy {
            MultiPolicy::FifoExclusive => self.dispatch_fifo(view),
            MultiPolicy::RoundRobin => self.dispatch_round_robin(view),
            MultiPolicy::FairShare => self.dispatch_fair_share(view),
        }
    }

    fn on_arrival(&mut self, worker: usize, chunk: f64, time: f64) {
        self.ensure_sized(worker + 1);
        if let Some((j, _)) = self.in_transit[worker].pop_front() {
            self.queued[worker].push_back((j, chunk));
            self.jobs[j].inner.on_arrival(worker, chunk, time);
        }
    }

    fn on_compute_start(&mut self, worker: usize, chunk: f64, time: f64) {
        self.ensure_sized(worker + 1);
        if let Some((j, _)) = self.queued[worker].pop_front() {
            self.computing[worker] = Some((j, chunk));
            self.jobs[j].inner.on_compute_start(worker, chunk, time);
        }
    }

    fn on_compute_end(&mut self, worker: usize, chunk: f64, time: f64) {
        self.ensure_sized(worker + 1);
        if let Some((j, _)) = self.computing[worker].take() {
            self.jobs[j].completed += chunk;
            self.jobs[j].inner.on_compute_end(worker, chunk, time);
            self.maybe_settle(j, time);
        }
    }

    fn on_worker_failed(&mut self, worker: usize, time: f64) {
        for s in &mut self.jobs {
            s.inner.on_worker_failed(worker, time);
        }
    }

    fn on_worker_recovered(&mut self, worker: usize, time: f64) {
        for s in &mut self.jobs {
            s.inner.on_worker_recovered(worker, time);
        }
    }

    fn on_chunk_lost(&mut self, worker: usize, chunk: f64, time: f64) {
        self.ensure_sized(worker + 1);
        // Attribute the loss to the pipeline stage holding a matching
        // chunk: computing, then queued, then in transit — the reverse of
        // dispatch order, matching how a crash empties a worker.
        let j = if let Some((j, c)) = self.computing[worker] {
            if (c - chunk).abs() <= WORK_EPS * chunk.max(1.0) {
                self.computing[worker] = None;
                Some(j)
            } else {
                None
            }
        } else {
            None
        };
        let j = j.or_else(|| {
            Self::take_matching(&mut self.queued[worker], chunk)
                .or_else(|| Self::take_matching(&mut self.in_transit[worker], chunk))
        });
        if let Some(j) = j {
            let s = &mut self.jobs[j];
            s.lost += chunk;
            // Recovery-aware inners re-queue the loss and must be
            // consulted again even if they had already finished —
            // mirror the engine's own `finished` reset.
            s.inner_finished = false;
            s.inner.on_chunk_lost(worker, chunk, time);
        }
    }
}

impl MultiLoadScheduler {
    /// Remove and return the job of the first entry whose chunk size
    /// matches, front to back.
    fn take_matching(mirror: &mut VecDeque<(usize, f64)>, chunk: f64) -> Option<usize> {
        let pos = mirror
            .iter()
            .position(|&(_, c)| (c - chunk).abs() <= WORK_EPS * chunk.max(1.0))?;
        mirror.remove(pos).map(|(j, _)| j)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn policy_labels_round_trip() {
        for p in MultiPolicy::ALL {
            assert_eq!(MultiPolicy::parse(p.label()), Some(p));
        }
        assert_eq!(MultiPolicy::parse("nope"), None);
    }

    /// Inner that dispatches its whole load in one chunk to worker 0.
    struct OneShot {
        remaining: Option<f64>,
    }

    impl Scheduler for OneShot {
        fn name(&self) -> String {
            "one-shot".into()
        }
        fn next_dispatch(&mut self, _view: &SimView<'_>) -> Decision {
            match self.remaining.take() {
                Some(chunk) => Decision::Dispatch { worker: 0, chunk },
                None => Decision::Finished,
            }
        }
    }

    fn one_shot(size: f64) -> Box<dyn Scheduler> {
        Box::new(OneShot {
            remaining: Some(size),
        })
    }

    fn idle_view(workers: &[dls_sim::WorkerView], time: f64) -> SimView<'_> {
        SimView { time, workers }
    }

    #[test]
    fn fifo_sleeps_until_release() {
        let mut m = MultiLoadScheduler::new(MultiPolicy::FifoExclusive).with_job(
            5.0,
            100.0,
            one_shot(100.0),
        );
        let workers = vec![dls_sim::WorkerView::default()];
        let d = m.next_dispatch(&idle_view(&workers, 0.0));
        assert_eq!(d, Decision::WaitUntil { time: 5.0 });
        let d = m.next_dispatch(&idle_view(&workers, 5.0));
        assert_eq!(
            d,
            Decision::Dispatch {
                worker: 0,
                chunk: 100.0
            }
        );
    }

    #[test]
    fn fifo_excludes_later_jobs_until_head_settles() {
        let mut m = MultiLoadScheduler::new(MultiPolicy::FifoExclusive)
            .with_job(0.0, 100.0, one_shot(100.0))
            .with_job(0.0, 50.0, one_shot(50.0));
        let workers = vec![dls_sim::WorkerView::default()];
        let view = idle_view(&workers, 0.0);
        assert_eq!(
            m.next_dispatch(&view),
            Decision::Dispatch {
                worker: 0,
                chunk: 100.0
            }
        );
        // Head has dispatched everything but not completed: job 1 waits.
        assert_eq!(m.next_dispatch(&view), Decision::Wait);
        // Drive job 0's chunk through its lifecycle.
        m.on_arrival(0, 100.0, 1.0);
        m.on_compute_start(0, 100.0, 1.0);
        m.on_compute_end(0, 100.0, 2.0);
        let view = idle_view(&workers, 2.0);
        assert_eq!(
            m.next_dispatch(&view),
            Decision::Dispatch {
                worker: 0,
                chunk: 50.0
            }
        );
        let reports = m.reports();
        assert_eq!(reports[0].settled, Some(2.0));
        assert!((reports[0].completed - 100.0).abs() < 1e-12);
        assert_eq!(reports[1].settled, None);
        assert_eq!(m.dispatch_log().len(), 2);
        assert_eq!(m.dispatch_log()[0].job, 0);
        assert_eq!(m.dispatch_log()[1].job, 1);
    }

    #[test]
    fn round_robin_alternates_jobs() {
        /// Dispatches unit chunks forever (until told to stop asking).
        struct Units {
            left: u32,
        }
        impl Scheduler for Units {
            fn name(&self) -> String {
                "units".into()
            }
            fn next_dispatch(&mut self, _view: &SimView<'_>) -> Decision {
                if self.left == 0 {
                    return Decision::Finished;
                }
                self.left -= 1;
                Decision::Dispatch {
                    worker: 0,
                    chunk: 1.0,
                }
            }
        }
        let mut m = MultiLoadScheduler::new(MultiPolicy::RoundRobin)
            .with_job(0.0, 2.0, Box::new(Units { left: 2 }))
            .with_job(0.0, 2.0, Box::new(Units { left: 2 }));
        let workers = vec![dls_sim::WorkerView::default()];
        let view = idle_view(&workers, 0.0);
        for _ in 0..4 {
            assert!(matches!(m.next_dispatch(&view), Decision::Dispatch { .. }));
        }
        let log = m.dispatch_log();
        let owners: Vec<usize> = log.iter().map(|d| d.job).collect();
        assert_eq!(owners, vec![0, 1, 0, 1]);
    }

    #[test]
    fn fair_share_prefers_least_served_fraction() {
        let mut m = MultiLoadScheduler::new(MultiPolicy::FairShare)
            .with_job(0.0, 100.0, one_shot(100.0))
            .with_job(0.0, 10.0, one_shot(10.0));
        let workers = vec![dls_sim::WorkerView::default()];
        let view = idle_view(&workers, 0.0);
        // Both at fraction 0: tie toward job 0. After job 0 dispatches
        // its whole load (fraction 1), job 1 (fraction 0) goes next.
        assert_eq!(
            m.next_dispatch(&view),
            Decision::Dispatch {
                worker: 0,
                chunk: 100.0
            }
        );
        assert_eq!(
            m.next_dispatch(&view),
            Decision::Dispatch {
                worker: 0,
                chunk: 10.0
            }
        );
        assert_eq!(m.dispatch_log()[1].job, 1);
    }

    #[test]
    fn chunk_loss_reopens_the_job() {
        let mut m = MultiLoadScheduler::new(MultiPolicy::FifoExclusive).with_job(
            0.0,
            100.0,
            one_shot(100.0),
        );
        let workers = vec![dls_sim::WorkerView::default()];
        let view = idle_view(&workers, 0.0);
        assert!(matches!(m.next_dispatch(&view), Decision::Dispatch { .. }));
        // Mark the inner finished.
        assert_eq!(m.next_dispatch(&view), Decision::Wait);
        // Lose the in-transit chunk: the job settles under-completed
        // (plain inner, no recovery) once the inner re-confirms Finished.
        m.on_chunk_lost(0, 100.0, 1.0);
        let r = &m.reports()[0];
        assert!((r.lost - 100.0).abs() < 1e-12);
        assert_eq!(r.settled, None);
        // Next consult: inner says Finished again; everything accounted.
        assert_eq!(
            m.next_dispatch(&idle_view(&workers, 1.5)),
            Decision::Finished
        );
        assert_eq!(m.reports()[0].settled, Some(1.5));
        assert!((m.reports()[0].completed - 0.0).abs() < 1e-12);
    }
}
