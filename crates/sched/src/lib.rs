//! Divisible-load scheduling algorithms.
//!
//! This crate implements every scheduler that appears in the RUMR paper's
//! evaluation (plus reference baselines), all as online policies over the
//! [`dls_sim`] engine:
//!
//! | Module | Algorithm | Chunk sizes | Dispatch |
//! |---|---|---|---|
//! | [`umr`] | UMR (Yang & Casanova '03) | increasing | precalculated, eager |
//! | [`rumr`] | **RUMR** (this paper) | increasing, then decreasing | planned + demand-driven |
//! | [`mi`] | Multi-installment (Bharadwaj et al.) | increasing | precalculated, eager |
//! | [`factoring`] | Factoring (Hummel '92) | decreasing | greedy pull |
//! | [`fsc`] | Fixed-size chunking (Kruskal–Weiss / Hagerup '97) | constant | greedy pull |
//! | [`baselines`] | equal static split, unit self-scheduling | constant | eager / pull |
//! | [`umr_het`] | heterogeneous UMR extension | increasing | precalculated, eager |
//! | [`adaptive`] | adaptive RUMR (online error estimation, the paper's §6) | increasing, then decreasing | planned + measured switch |
//! | [`recovery`] | fault-recovery wrapper over any of the above | factoring-style redispatch | reactive |
//! | [`multi`] | multi-load arbitration (FIFO / round-robin / fair-share) over any of the above | per-job inner policy | meta-scheduler |
//!
//! Shared plumbing (precalculated-plan replay, pull-based dispatching) lives
//! in [`plan`].

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod adaptive;
pub mod baselines;
pub mod factoring;
pub mod fsc;
pub mod loop_sched;
pub mod mi;
pub mod multi;
pub mod one_round;
pub mod oracle;
pub mod plan;
pub mod recovery;
pub mod rumr;
pub mod rumr_het;
pub mod umr;
pub mod umr_het;

pub use adaptive::{AdaptiveConfig, AdaptiveRumr};
pub use baselines::{EqualSingleRound, UnitSelfScheduling};
pub use factoring::{
    min_chunk_bound, phase_min_chunk_bound, Factoring, FactoringSource, DEFAULT_FACTOR, UNIT_FLOOR,
};
pub use fsc::{fsc_chunk_size, Fsc};
pub use loop_sched::{Gss, Tss};
pub use mi::{MiError, MiSchedule, MultiInstallment};
pub use multi::{JobDispatch, JobReport, MultiLoadScheduler, MultiPolicy};
pub use one_round::{OneRound, OneRoundSchedule};
pub use oracle::{
    FactoringOracle, HetUmrOracle, MiOracle, OneRoundOracle, Oracle, Prediction, RoundTiming,
    RumrOracle, UmrOracle, EXACT_REL_TOL, LOWER_BOUND_REL_TOL,
};
pub use plan::{ChunkSource, DispatchPlan, PlanReplayer, PullDispatcher};
pub use recovery::{Recovering, RecoveryConfig};
pub use rumr::{phase_split, PhaseSplit, Rumr, RumrConfig, DEFAULT_PHASE1_FRACTION};
pub use rumr_het::HetRumr;
pub use umr::{SolverPath, Umr, UmrError, UmrInputs, UmrSchedule, MAX_ROUNDS};
pub use umr_het::{HetUmr, HetUmrSchedule};
