//! MI-x — the "multi-installment" algorithm (Bharadwaj, Ghose, Mani &
//! Robertazzi, ch. 10), the increasing-chunks competitor in the RUMR paper.
//!
//! MI divides the workload into `x` installments of `N` chunks. Its planning
//! model is *latency-free*: transfer time is `chunk/B` and computation time
//! is `chunk/S`, nothing else. Chunk sizes are determined by requiring that
//!
//! 1. **no worker idles between installments** — the computation of chunk
//!    `(j, i)` exactly covers the master's transmission of the rest of
//!    installment `j` plus installment `j+1` up to and including worker `i`:
//!
//!    ```text
//!    c(j,i)/S = [ Σ_{k>i} c(j,k) + Σ_{k≤i} c(j+1,k) ] / B
//!    ```
//!
//! 2. **all workers finish the last installment simultaneously**:
//!
//!    ```text
//!    c(x−1,i)/S = c(x−1,i+1)/B + c(x−1,i+1)/S
//!    ```
//!
//! 3. **the chunks cover the workload**: `Σ c(j,i) = W`.
//!
//! That is an `xN × xN` dense linear system, solved here with the in-house
//! LU decomposition. Unlike UMR, MI offers no principled way to choose `x`
//! (a limitation the paper stresses), so the evaluation instantiates
//! MI-1 … MI-4. Because MI plans with zero latencies but executes on a
//! platform that has them, its simulated makespan degrades as `nLat`/`cLat`
//! grow — exactly the effect the paper reports.

use dls_numerics::linalg::{LinAlgError, Matrix};
use dls_sim::{Decision, Platform, Scheduler, SimView};

use crate::plan::{DispatchPlan, PlanReplayer};

/// Errors from the MI planner.
#[derive(Debug, Clone, PartialEq)]
pub enum MiError {
    /// MI's closed-form model requires a homogeneous platform.
    NotHomogeneous,
    /// Workload must be finite and strictly positive.
    InvalidWorkload {
        /// The offending value.
        w_total: f64,
    },
    /// `x` must be at least 1.
    ZeroInstallments,
    /// The no-idle system is singular or produced non-positive chunks; the
    /// requested installment count is infeasible on this platform.
    Infeasible {
        /// The installment count that failed.
        installments: usize,
    },
}

impl std::fmt::Display for MiError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MiError::NotHomogeneous => write!(f, "MI requires a homogeneous platform"),
            MiError::InvalidWorkload { w_total } => write!(f, "invalid workload {w_total}"),
            MiError::ZeroInstallments => write!(f, "installment count must be >= 1"),
            MiError::Infeasible { installments } => {
                write!(f, "MI-{installments} is infeasible on this platform")
            }
        }
    }
}

impl std::error::Error for MiError {}

impl From<LinAlgError> for MiError {
    fn from(_: LinAlgError) -> Self {
        MiError::Infeasible { installments: 0 }
    }
}

/// A solved multi-installment schedule.
#[derive(Debug, Clone, PartialEq)]
pub struct MiSchedule {
    n: usize,
    installments: usize,
    /// `chunks[j][i]`: chunk for worker `i` in installment `j`.
    chunks: Vec<Vec<f64>>,
    predicted_makespan: f64,
}

impl MiSchedule {
    /// Plan MI-`x` for a homogeneous platform.
    ///
    /// # Errors
    ///
    /// See [`MiError`]; in particular [`MiError::Infeasible`] when the
    /// no-idle conditions force non-positive chunks.
    pub fn solve(platform: &Platform, w_total: f64, installments: usize) -> Result<Self, MiError> {
        if !platform.is_homogeneous() {
            return Err(MiError::NotHomogeneous);
        }
        if !w_total.is_finite() || w_total <= 0.0 {
            return Err(MiError::InvalidWorkload { w_total });
        }
        if installments == 0 {
            return Err(MiError::ZeroInstallments);
        }
        let n = platform.num_workers();
        let s = platform.worker(0).speed;
        let b = platform.worker(0).bandwidth;
        let x = installments;
        let dim = x * n;
        let idx = |j: usize, i: usize| j * n + i;

        let mut a = Matrix::zeros(dim, dim);
        let mut rhs = vec![0.0; dim];
        let mut row = 0;

        // No-idle conditions for installments 0..x-1.
        for j in 0..x.saturating_sub(1) {
            for i in 0..n {
                a[(row, idx(j, i))] += 1.0 / s;
                for k in (i + 1)..n {
                    a[(row, idx(j, k))] -= 1.0 / b;
                }
                for k in 0..=i {
                    a[(row, idx(j + 1, k))] -= 1.0 / b;
                }
                row += 1;
            }
        }
        // Equal finish in the last installment.
        for i in 0..n.saturating_sub(1) {
            a[(row, idx(x - 1, i))] += 1.0 / s;
            a[(row, idx(x - 1, i + 1))] -= 1.0 / b + 1.0 / s;
            row += 1;
        }
        // Total workload.
        for u in 0..dim {
            a[(row, u)] = 1.0;
        }
        rhs[row] = w_total;
        row += 1;
        debug_assert_eq!(row, dim);

        let solution = a
            .solve(&rhs)
            .map_err(|_| MiError::Infeasible { installments: x })?;
        if solution.iter().any(|&c| !c.is_finite() || c <= 0.0) {
            return Err(MiError::Infeasible { installments: x });
        }
        debug_assert!(
            a.residual_inf(&solution, &rhs).unwrap_or(f64::INFINITY) < 1e-6 * w_total.max(1.0),
            "MI linear system residual too large"
        );

        let chunks: Vec<Vec<f64>> = (0..x)
            .map(|j| (0..n).map(|i| solution[idx(j, i)]).collect())
            .collect();

        // Under the latency-free model worker 0 receives its first chunk at
        // c(0,0)/B and computes continuously; all workers finish together.
        let predicted_makespan =
            chunks[0][0] / b + chunks.iter().map(|round| round[0] / s).sum::<f64>();

        Ok(MiSchedule {
            n,
            installments: x,
            chunks,
            predicted_makespan,
        })
    }

    /// Plan MI-`x`, decrementing `x` until a feasible installment count is
    /// found (MI-1 always is). Returns the schedule actually used.
    pub fn solve_with_fallback(
        platform: &Platform,
        w_total: f64,
        installments: usize,
    ) -> Result<Self, MiError> {
        if installments == 0 {
            return Err(MiError::ZeroInstallments);
        }
        let mut last_err = MiError::ZeroInstallments;
        for x in (1..=installments).rev() {
            match Self::solve(platform, w_total, x) {
                Ok(s) => return Ok(s),
                Err(e @ MiError::Infeasible { .. }) => last_err = e,
                Err(e) => return Err(e),
            }
        }
        Err(last_err)
    }

    /// Number of installments actually planned.
    pub fn installments(&self) -> usize {
        self.installments
    }

    /// Chunk matrix: `chunks()[j][i]` for installment `j`, worker `i`.
    pub fn chunks(&self) -> &[Vec<f64>] {
        &self.chunks
    }

    /// Predicted makespan under MI's own latency-free model.
    pub fn predicted_makespan(&self) -> f64 {
        self.predicted_makespan
    }

    /// Dispatch plan: installments in order, workers `0..n` within each.
    pub fn plan(&self) -> DispatchPlan {
        let mut sends = Vec::with_capacity(self.installments * self.n);
        for round in &self.chunks {
            for (worker, &chunk) in round.iter().enumerate() {
                sends.push((worker, chunk));
            }
        }
        DispatchPlan { sends }
    }
}

/// The MI-x scheduler: eager replay of the installment plan.
#[derive(Debug, Clone)]
pub struct MultiInstallment {
    replayer: PlanReplayer,
    schedule: MiSchedule,
}

impl MultiInstallment {
    /// Plan and wrap MI-`installments` (with feasibility fallback).
    pub fn new(platform: &Platform, w_total: f64, installments: usize) -> Result<Self, MiError> {
        let schedule = MiSchedule::solve_with_fallback(platform, w_total, installments)?;
        Ok(MultiInstallment {
            replayer: PlanReplayer::new(schedule.plan()),
            schedule,
        })
    }

    /// The underlying schedule.
    pub fn schedule(&self) -> &MiSchedule {
        &self.schedule
    }
}

impl Scheduler for MultiInstallment {
    fn name(&self) -> String {
        format!("MI-{}", self.schedule.installments)
    }

    fn next_dispatch(&mut self, _view: &SimView<'_>) -> Decision {
        self.replayer.next_decision()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dls_sim::{
        simulate, ErrorInjector, ErrorModel, HomogeneousParams, Platform, SimConfig, WorkerSpec,
    };

    fn latency_free(n: usize, s: f64, b: f64) -> Platform {
        Platform::homogeneous(
            n,
            WorkerSpec {
                speed: s,
                bandwidth: b,
                comp_latency: 0.0,
                net_latency: 0.0,
                transfer_latency: 0.0,
            },
        )
        .unwrap()
    }

    #[test]
    fn mi1_is_geometric() {
        // Single installment: c_{i+1} = c_i · B/(B+S).
        let p = latency_free(4, 1.0, 3.0);
        let s = MiSchedule::solve(&p, 100.0, 1).unwrap();
        let c = &s.chunks()[0];
        let q = 3.0 / (3.0 + 1.0);
        for i in 0..3 {
            assert!(
                (c[i + 1] - c[i] * q).abs() < 1e-9,
                "geometric ratio violated: {c:?}"
            );
        }
        let total: f64 = c.iter().sum();
        assert!((total - 100.0).abs() < 1e-9);
    }

    #[test]
    fn chunks_positive_and_conserved_on_table1_grid() {
        for n in [10usize, 20, 50] {
            for r in [1.2, 1.6, 2.0] {
                for x in 1..=4 {
                    let p = HomogeneousParams::table1(n, r, 0.0, 0.0).build().unwrap();
                    let s = MiSchedule::solve(&p, 1000.0, x)
                        .unwrap_or_else(|e| panic!("n={n} r={r} x={x}: {e}"));
                    let total: f64 = s.chunks().iter().flatten().sum();
                    assert!((total - 1000.0).abs() < 1e-6, "n={n} r={r} x={x}");
                    assert!((s.plan().total_work() - 1000.0).abs() < 1e-6);
                }
            }
        }
    }

    #[test]
    fn simulated_matches_predicted_on_latency_free_platform() {
        // MI's model is exact when latencies are truly zero: the simulated
        // makespan must equal the planner's prediction.
        for x in 1..=4 {
            let p = latency_free(6, 1.0, 9.0);
            let mut mi = MultiInstallment::new(&p, 500.0, x).unwrap();
            let predicted = mi.schedule().predicted_makespan();
            let r = simulate(
                &p,
                &mut mi,
                ErrorInjector::new(ErrorModel::None, 0),
                SimConfig {
                    trace_mode: dls_sim::TraceMode::Full,
                    ..Default::default()
                },
            )
            .unwrap();
            assert!(
                (r.makespan - predicted).abs() < 1e-6 * predicted,
                "x={x}: sim {} vs predicted {}",
                r.makespan,
                predicted
            );
            assert!(r.trace.unwrap().validate(6).is_empty());
        }
    }

    #[test]
    fn more_installments_help_without_latency() {
        // With zero latencies, more installments always shorten the predicted
        // makespan (better pipeline startup).
        let p = latency_free(8, 1.0, 12.0);
        let mut prev = f64::INFINITY;
        for x in 1..=4 {
            let s = MiSchedule::solve(&p, 1000.0, x).unwrap();
            assert!(
                s.predicted_makespan() < prev,
                "x={x} did not improve: {} vs {}",
                s.predicted_makespan(),
                prev
            );
            prev = s.predicted_makespan();
        }
    }

    #[test]
    fn latency_hurts_simulated_mi() {
        // The same plan executed on a platform with latencies takes longer
        // than MI predicted — the core weakness the paper exploits.
        let with_lat = HomogeneousParams::table1(10, 1.5, 0.5, 0.5)
            .build()
            .unwrap();
        let mut mi = MultiInstallment::new(&with_lat, 1000.0, 3).unwrap();
        let predicted = mi.schedule().predicted_makespan();
        let r = simulate(
            &with_lat,
            &mut mi,
            ErrorInjector::new(ErrorModel::None, 0),
            SimConfig::default(),
        )
        .unwrap();
        assert!(
            r.makespan > predicted + 1.0,
            "sim {} should exceed latency-free prediction {}",
            r.makespan,
            predicted
        );
    }

    #[test]
    fn fallback_reaches_mi1() {
        let p = latency_free(4, 1.0, 4.0);
        // Even if higher x were infeasible, fallback must return something.
        let s = MiSchedule::solve_with_fallback(&p, 100.0, 4).unwrap();
        assert!(s.installments() >= 1 && s.installments() <= 4);
    }

    #[test]
    fn input_validation() {
        let p = latency_free(4, 1.0, 4.0);
        assert!(matches!(
            MiSchedule::solve(&p, -5.0, 2),
            Err(MiError::InvalidWorkload { .. })
        ));
        assert!(matches!(
            MiSchedule::solve(&p, 100.0, 0),
            Err(MiError::ZeroInstallments)
        ));

        let mut w2 = *p.worker(0);
        w2.speed = 9.0;
        let het = Platform::new(vec![*p.worker(0), w2]).unwrap();
        assert!(matches!(
            MiSchedule::solve(&het, 100.0, 2),
            Err(MiError::NotHomogeneous)
        ));
    }

    #[test]
    fn scheduler_name_reflects_installments() {
        let p = latency_free(4, 1.0, 4.0);
        let mi = MultiInstallment::new(&p, 100.0, 3).unwrap();
        assert_eq!(mi.name(), format!("MI-{}", mi.schedule().installments()));
    }

    #[test]
    fn error_display() {
        for e in [
            MiError::NotHomogeneous,
            MiError::InvalidWorkload { w_total: -1.0 },
            MiError::ZeroInstallments,
            MiError::Infeasible { installments: 3 },
        ] {
            assert!(!format!("{e}").is_empty());
        }
    }
}
