//! FSC — Fixed-Size Chunking (Kruskal & Weiss; the "optimized
//! self-scheduling" variant evaluated by Hagerup '97 and referenced in the
//! RUMR paper, which reports it "performs worse than Factoring in most of
//! our experiments").
//!
//! FSC dispatches equal chunks greedily (pull-based). The chunk size trades
//! the per-chunk overhead `h` against the variance of chunk execution
//! times; the Kruskal–Weiss formula is
//!
//! ```text
//! chunk = ( √2 · W · h / (σ · N · √(ln N)) )^(2/3)
//! ```
//!
//! with `W` the remaining work, `N` the worker count, `σ` the standard
//! deviation of a chunk's unit execution time, and `h` the per-chunk
//! overhead. In this suite's platform terms `h = cLat + nLat` (the
//! latencies paid per chunk) and `σ = error / S`. When `σ = 0` or `N = 1`
//! the formula degenerates; FSC then uses one round of `W/N` chunks.

use dls_sim::{Decision, Platform, Scheduler, SimView};

use crate::factoring::UNIT_FLOOR;
use crate::plan::{equal_chunks, ListSource, PullDispatcher};

/// Compute the Kruskal–Weiss fixed chunk size, clamped to
/// `[UNIT_FLOOR, w_total/n]`.
pub fn fsc_chunk_size(w_total: f64, n: usize, overhead: f64, sigma: f64) -> f64 {
    assert!(w_total > 0.0 && n > 0);
    let upper = w_total / n as f64;
    if sigma <= 0.0 || n < 2 || overhead <= 0.0 {
        return upper.max(UNIT_FLOOR);
    }
    let ln_n = (n as f64).ln();
    let raw =
        (2.0_f64.sqrt() * w_total * overhead / (sigma * n as f64 * ln_n.sqrt())).powf(2.0 / 3.0);
    raw.clamp(UNIT_FLOOR, upper.max(UNIT_FLOOR))
}

/// The FSC scheduler: equal fixed-size chunks, pull-based dispatch.
#[derive(Debug, Clone)]
pub struct Fsc {
    dispatcher: PullDispatcher<ListSource>,
    chunk: f64,
}

impl Fsc {
    /// Build FSC for a (homogeneous) platform. `error` is the predicted
    /// error magnitude used as the unit-time standard deviation; pass 0 or
    /// a negative value when unknown (degenerates to one round of `W/N`).
    ///
    /// Latency parameters are taken from worker 0.
    pub fn new(platform: &Platform, w_total: f64, error: f64) -> Self {
        let n = platform.num_workers();
        let w0 = platform.worker(0);
        let overhead = w0.comp_latency + w0.net_latency;
        let sigma = error.max(0.0) / w0.speed;
        let chunk = fsc_chunk_size(w_total, n, overhead, sigma);
        Fsc {
            dispatcher: PullDispatcher::new(ListSource::new(equal_chunks(w_total, chunk))),
            chunk,
        }
    }

    /// The fixed chunk size in use.
    pub fn chunk_size(&self) -> f64 {
        self.chunk
    }
}

impl Scheduler for Fsc {
    fn name(&self) -> String {
        "FSC".into()
    }

    fn next_dispatch(&mut self, view: &SimView<'_>) -> Decision {
        self.dispatcher.next_decision(view)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dls_sim::{simulate, ErrorInjector, ErrorModel, HomogeneousParams, SimConfig};

    #[test]
    fn degenerate_cases_use_single_round() {
        // No variance information: one chunk per worker.
        assert!((fsc_chunk_size(1000.0, 10, 0.5, 0.0) - 100.0).abs() < 1e-12);
        // Single worker.
        assert!((fsc_chunk_size(1000.0, 1, 0.5, 0.3) - 1000.0).abs() < 1e-12);
        // Zero overhead.
        assert!((fsc_chunk_size(1000.0, 10, 0.0, 0.3) - 100.0).abs() < 1e-12);
    }

    #[test]
    fn formula_value() {
        // chunk = (√2·1000·0.5 / (0.3·10·√ln10))^(2/3)
        let w = 1000.0;
        let h = 0.5;
        let sigma = 0.3;
        let n = 10.0_f64;
        let expected = (2.0_f64.sqrt() * w * h / (sigma * n * (n.ln()).sqrt())).powf(2.0 / 3.0);
        let got = fsc_chunk_size(w, 10, h, sigma);
        assert!((got - expected).abs() < 1e-9, "{got} vs {expected}");
        assert!(got < 100.0, "must be below one-round size");
    }

    #[test]
    fn chunk_shrinks_with_error() {
        let lo = fsc_chunk_size(1000.0, 10, 0.5, 0.1);
        let hi = fsc_chunk_size(1000.0, 10, 0.5, 0.5);
        assert!(hi < lo, "larger σ must give smaller chunks ({hi} vs {lo})");
    }

    #[test]
    fn clamped_to_unit_floor() {
        let c = fsc_chunk_size(10.0, 50, 1e-6, 100.0);
        assert_eq!(c, UNIT_FLOOR);
    }

    #[test]
    fn simulation_conserves_workload() {
        let platform = HomogeneousParams::table1(10, 1.5, 0.3, 0.4)
            .build()
            .unwrap();
        let mut fsc = Fsc::new(&platform, 1000.0, 0.3);
        assert!(fsc.chunk_size() > 0.0);
        let r = simulate(
            &platform,
            &mut fsc,
            ErrorInjector::new(ErrorModel::TruncatedNormal { error: 0.3 }, 5),
            SimConfig {
                trace_mode: dls_sim::TraceMode::Full,
                ..Default::default()
            },
        )
        .unwrap();
        assert!((r.completed_work() - 1000.0).abs() < 1e-6);
        assert!(r.trace.unwrap().validate(10).is_empty());
    }

    #[test]
    fn zero_error_is_one_round() {
        let platform = HomogeneousParams::table1(8, 1.5, 0.3, 0.4).build().unwrap();
        let mut fsc = Fsc::new(&platform, 1000.0, 0.0);
        assert!((fsc.chunk_size() - 125.0).abs() < 1e-9);
        let r = simulate(
            &platform,
            &mut fsc,
            ErrorInjector::new(ErrorModel::None, 0),
            SimConfig::default(),
        )
        .unwrap();
        assert_eq!(r.num_chunks, 8);
    }
}
