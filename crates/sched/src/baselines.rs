//! Simple baseline schedulers.
//!
//! These are not competitors from the paper's tables but are useful
//! reference points for the examples and tests:
//!
//! * [`EqualSingleRound`] — the naive static schedule: one round of equal
//!   `W/N` chunks, dispatched eagerly. No overlap tuning, no robustness.
//! * [`UnitSelfScheduling`] — classic self-scheduling at the workload's
//!   minimal unit granularity: maximally robust, maximal overhead. This is
//!   the degenerate end of the robustness spectrum that Factoring and FSC
//!   were invented to tame.

use dls_sim::{Decision, Platform, Scheduler, SimView};

use crate::plan::{equal_chunks, DispatchPlan, ListSource, PlanReplayer, PullDispatcher};

/// One round of equal chunks, sent eagerly to workers `0..N`.
#[derive(Debug, Clone)]
pub struct EqualSingleRound {
    replayer: PlanReplayer,
}

impl EqualSingleRound {
    /// Split `w_total` evenly across the platform's workers.
    pub fn new(platform: &Platform, w_total: f64) -> Self {
        let n = platform.num_workers();
        let chunk = w_total / n as f64;
        let sends = (0..n).map(|w| (w, chunk)).collect();
        EqualSingleRound {
            replayer: PlanReplayer::new(DispatchPlan { sends }),
        }
    }
}

impl Scheduler for EqualSingleRound {
    fn name(&self) -> String {
        "EqualStatic".into()
    }

    fn next_dispatch(&mut self, _view: &SimView<'_>) -> Decision {
        self.replayer.next_decision()
    }
}

/// Pull-based self-scheduling with chunks of the given unit size (1 unit by
/// default — one sequence, one block of pixels, ... in the paper's terms).
#[derive(Debug, Clone)]
pub struct UnitSelfScheduling {
    dispatcher: PullDispatcher<ListSource>,
    unit: f64,
}

impl UnitSelfScheduling {
    /// Self-schedule `w_total` in single-unit chunks.
    pub fn new(w_total: f64) -> Self {
        Self::with_unit(w_total, 1.0)
    }

    /// Self-schedule with a custom unit size.
    ///
    /// # Panics
    ///
    /// Panics if `unit` is not finite and positive.
    pub fn with_unit(w_total: f64, unit: f64) -> Self {
        assert!(unit.is_finite() && unit > 0.0, "unit must be positive");
        UnitSelfScheduling {
            dispatcher: PullDispatcher::new(ListSource::new(equal_chunks(w_total, unit))),
            unit,
        }
    }

    /// The unit chunk size.
    pub fn unit(&self) -> f64 {
        self.unit
    }
}

impl Scheduler for UnitSelfScheduling {
    fn name(&self) -> String {
        "SelfSched".into()
    }

    fn next_dispatch(&mut self, view: &SimView<'_>) -> Decision {
        self.dispatcher.next_decision(view)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dls_sim::{simulate, ErrorInjector, ErrorModel, HomogeneousParams, SimConfig};

    #[test]
    fn equal_static_one_round() {
        let platform = HomogeneousParams::table1(5, 1.5, 0.1, 0.1).build().unwrap();
        let mut s = EqualSingleRound::new(&platform, 1000.0);
        let r = simulate(
            &platform,
            &mut s,
            ErrorInjector::new(ErrorModel::None, 0),
            SimConfig {
                trace_mode: dls_sim::TraceMode::Full,
                ..Default::default()
            },
        )
        .unwrap();
        assert_eq!(r.num_chunks, 5);
        for w in &r.per_worker_work {
            assert!((w - 200.0).abs() < 1e-9);
        }
        assert!(r.trace.unwrap().validate(5).is_empty());
    }

    #[test]
    fn self_scheduling_unit_chunks() {
        let platform = HomogeneousParams::table1(4, 1.5, 0.0, 0.0).build().unwrap();
        let mut s = UnitSelfScheduling::new(100.0);
        assert_eq!(s.unit(), 1.0);
        let r = simulate(
            &platform,
            &mut s,
            ErrorInjector::new(ErrorModel::TruncatedNormal { error: 0.5 }, 9),
            SimConfig::default(),
        )
        .unwrap();
        assert_eq!(r.num_chunks, 100);
        assert!((r.completed_work() - 100.0).abs() < 1e-9);
    }

    #[test]
    fn self_scheduling_custom_unit() {
        let platform = HomogeneousParams::table1(4, 1.5, 0.1, 0.1).build().unwrap();
        let mut s = UnitSelfScheduling::with_unit(100.0, 10.0);
        let r = simulate(
            &platform,
            &mut s,
            ErrorInjector::new(ErrorModel::None, 0),
            SimConfig::default(),
        )
        .unwrap();
        assert_eq!(r.num_chunks, 10);
    }

    #[test]
    #[should_panic(expected = "unit")]
    fn rejects_zero_unit() {
        let _ = UnitSelfScheduling::with_unit(10.0, 0.0);
    }

    #[test]
    fn equal_static_fragile_under_error() {
        // A slow worker drags the whole static schedule; self-scheduling
        // absorbs it. Averaged over seeds, self-scheduling should win on a
        // latency-free platform with large errors.
        let platform = HomogeneousParams::table1(5, 2.0, 0.0, 0.0).build().unwrap();
        let (mut static_total, mut selfs_total) = (0.0, 0.0);
        for seed in 0..20 {
            let model = ErrorModel::TruncatedNormal { error: 0.5 };
            let mut st = EqualSingleRound::new(&platform, 500.0);
            static_total += simulate(
                &platform,
                &mut st,
                ErrorInjector::new(model, seed),
                SimConfig::default(),
            )
            .unwrap()
            .makespan;
            let mut ss = UnitSelfScheduling::with_unit(500.0, 5.0);
            selfs_total += simulate(
                &platform,
                &mut ss,
                ErrorInjector::new(model, seed),
                SimConfig::default(),
            )
            .unwrap()
            .makespan;
        }
        assert!(
            selfs_total < static_total,
            "self-scheduling {selfs_total} vs static {static_total}"
        );
    }
}
