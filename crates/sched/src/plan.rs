//! Shared dispatch plumbing: precalculated plans and pull-based sources.
//!
//! The paper's algorithms fall into two families:
//!
//! * **Precalculated** (UMR, multi-installment, single-round baselines):
//!   a fixed `(worker, chunk)` sequence computed before execution and sent
//!   "fire-and-forget" — the master pushes the next planned chunk as soon as
//!   its interface frees. [`PlanReplayer`] implements this.
//! * **Pull-based / self-scheduling** (Factoring, FSC, RUMR's phase 2):
//!   chunk sizes come from a [`ChunkSource`]; a chunk is only sent when some
//!   worker is *hungry* (idle with nothing queued or in flight), which is
//!   exactly why these algorithms pay latency on every chunk and achieve
//!   poor communication/computation overlap — the behaviour the paper's
//!   phase 1 exists to avoid. [`PullDispatcher`] implements this.

use dls_sim::{Decision, SimView};

/// A precalculated dispatch sequence.
#[derive(Debug, Clone, PartialEq)]
pub struct DispatchPlan {
    /// `(worker, chunk)` pairs in dispatch order.
    pub sends: Vec<(usize, f64)>,
}

impl DispatchPlan {
    /// Total workload covered by the plan.
    pub fn total_work(&self) -> f64 {
        self.sends.iter().map(|&(_, c)| c).sum()
    }

    /// Number of planned chunks.
    pub fn len(&self) -> usize {
        self.sends.len()
    }

    /// True when the plan contains no sends.
    pub fn is_empty(&self) -> bool {
        self.sends.is_empty()
    }
}

/// Eagerly replays a [`DispatchPlan`]: every time the master's link frees,
/// the next planned chunk is sent to its planned destination.
#[derive(Debug, Clone)]
pub struct PlanReplayer {
    plan: DispatchPlan,
    next: usize,
}

impl PlanReplayer {
    /// Wrap a plan for replay.
    pub fn new(plan: DispatchPlan) -> Self {
        PlanReplayer { plan, next: 0 }
    }

    /// Next decision: the next planned dispatch, or `Finished`.
    pub fn next_decision(&mut self) -> Decision {
        match self.plan.sends.get(self.next) {
            Some(&(worker, chunk)) => {
                self.next += 1;
                Decision::Dispatch { worker, chunk }
            }
            None => Decision::Finished,
        }
    }

    /// Peek at the next planned send without consuming it.
    pub fn peek(&self) -> Option<(usize, f64)> {
        self.plan.sends.get(self.next).copied()
    }

    /// Consume the next planned send, if any (used by RUMR's out-of-order
    /// rerouting, which keeps the chunk-size sequence but overrides the
    /// destination).
    pub fn take_next(&mut self) -> Option<(usize, f64)> {
        let send = self.peek()?;
        self.next += 1;
        Some(send)
    }

    /// True once every planned chunk has been dispatched.
    pub fn exhausted(&self) -> bool {
        self.next >= self.plan.sends.len()
    }

    /// The underlying plan.
    pub fn plan(&self) -> &DispatchPlan {
        &self.plan
    }
}

/// Produces successive chunk sizes for pull-based dispatching.
pub trait ChunkSource {
    /// The next chunk size, or `None` when the workload is exhausted.
    /// Implementations must return finite, strictly positive sizes.
    fn next_chunk(&mut self) -> Option<f64>;
}

/// Pull-based dispatcher: sends the source's next chunk to the least-loaded
/// hungry worker; waits when nobody is hungry.
#[derive(Debug, Clone)]
pub struct PullDispatcher<S> {
    source: S,
    exhausted: bool,
}

impl<S: ChunkSource> PullDispatcher<S> {
    /// Wrap a chunk source.
    pub fn new(source: S) -> Self {
        PullDispatcher {
            source,
            exhausted: false,
        }
    }

    /// Next decision given the live view.
    pub fn next_decision(&mut self, view: &SimView<'_>) -> Decision {
        if self.exhausted {
            return Decision::Finished;
        }
        let Some(worker) = view.least_loaded_hungry() else {
            return Decision::Wait;
        };
        match self.source.next_chunk() {
            Some(chunk) => Decision::Dispatch { worker, chunk },
            None => {
                self.exhausted = true;
                Decision::Finished
            }
        }
    }

    /// Access the wrapped source.
    pub fn source(&self) -> &S {
        &self.source
    }
}

/// A [`ChunkSource`] over a fixed list of chunk sizes (used by FSC and in
/// tests).
#[derive(Debug, Clone)]
pub struct ListSource {
    chunks: Vec<f64>,
    next: usize,
}

impl ListSource {
    /// Create a source yielding `chunks` in order.
    pub fn new(chunks: Vec<f64>) -> Self {
        ListSource { chunks, next: 0 }
    }
}

impl ChunkSource for ListSource {
    fn next_chunk(&mut self) -> Option<f64> {
        let c = self.chunks.get(self.next).copied();
        if c.is_some() {
            self.next += 1;
        }
        c
    }
}

/// Split `total` into chunks of `size` with a final remainder chunk.
///
/// Remainders smaller than `size * REMAINDER_MERGE_FRACTION` are merged into
/// the previous chunk instead of being dispatched separately — sending a
/// near-empty chunk costs full latency for no work.
pub fn equal_chunks(total: f64, size: f64) -> Vec<f64> {
    assert!(total >= 0.0 && size > 0.0);
    const REMAINDER_MERGE_FRACTION: f64 = 1e-9;
    let mut chunks = Vec::new();
    let mut remaining = total;
    while remaining > size {
        chunks.push(size);
        remaining -= size;
    }
    if remaining > 0.0 {
        if remaining < size * REMAINDER_MERGE_FRACTION && !chunks.is_empty() {
            let last = chunks.last_mut().expect("non-empty");
            *last += remaining;
        } else {
            chunks.push(remaining);
        }
    }
    chunks
}

#[cfg(test)]
mod tests {
    use super::*;
    use dls_sim::WorkerView;

    fn hungry_view(workers: &[WorkerView]) -> SimView<'_> {
        SimView { time: 0.0, workers }
    }

    #[test]
    fn plan_accounting() {
        let plan = DispatchPlan {
            sends: vec![(0, 2.0), (1, 3.0)],
        };
        assert_eq!(plan.len(), 2);
        assert!(!plan.is_empty());
        assert!((plan.total_work() - 5.0).abs() < 1e-12);
    }

    #[test]
    fn replayer_replays_in_order() {
        let plan = DispatchPlan {
            sends: vec![(0, 1.0), (1, 2.0)],
        };
        let mut r = PlanReplayer::new(plan);
        assert_eq!(r.peek(), Some((0, 1.0)));
        assert_eq!(
            r.next_decision(),
            Decision::Dispatch {
                worker: 0,
                chunk: 1.0
            }
        );
        assert_eq!(
            r.next_decision(),
            Decision::Dispatch {
                worker: 1,
                chunk: 2.0
            }
        );
        assert!(r.exhausted());
        assert_eq!(r.next_decision(), Decision::Finished);
    }

    #[test]
    fn replayer_take_next() {
        let plan = DispatchPlan {
            sends: vec![(3, 7.0)],
        };
        let mut r = PlanReplayer::new(plan);
        assert_eq!(r.take_next(), Some((3, 7.0)));
        assert_eq!(r.take_next(), None);
    }

    #[test]
    fn pull_waits_without_hungry_worker() {
        let mut d = PullDispatcher::new(ListSource::new(vec![1.0]));
        let busy = [WorkerView {
            computing: true,
            ..Default::default()
        }];
        assert_eq!(d.next_decision(&hungry_view(&busy)), Decision::Wait);
        let idle = [WorkerView::default()];
        assert_eq!(
            d.next_decision(&hungry_view(&idle)),
            Decision::Dispatch {
                worker: 0,
                chunk: 1.0
            }
        );
        assert_eq!(d.next_decision(&hungry_view(&idle)), Decision::Finished);
        // Stays finished.
        assert_eq!(d.next_decision(&hungry_view(&idle)), Decision::Finished);
    }

    #[test]
    fn pull_prefers_least_loaded() {
        let mut d = PullDispatcher::new(ListSource::new(vec![1.0]));
        let workers = [
            WorkerView {
                assigned_work: 9.0,
                ..Default::default()
            },
            WorkerView {
                assigned_work: 1.0,
                ..Default::default()
            },
        ];
        assert_eq!(
            d.next_decision(&hungry_view(&workers)),
            Decision::Dispatch {
                worker: 1,
                chunk: 1.0
            }
        );
    }

    #[test]
    fn equal_chunks_splits() {
        let c = equal_chunks(10.0, 3.0);
        assert_eq!(c.len(), 4);
        assert!((c.iter().sum::<f64>() - 10.0).abs() < 1e-12);
        assert!((c[3] - 1.0).abs() < 1e-12);

        let c = equal_chunks(9.0, 3.0);
        assert_eq!(c.len(), 3);

        assert!(equal_chunks(0.0, 3.0).is_empty());
    }

    #[test]
    fn equal_chunks_merges_dust() {
        // 10 + 1e-12 would leave a dust chunk; it must be merged.
        let c = equal_chunks(10.0 + 1e-12, 5.0);
        assert_eq!(c.len(), 2);
        assert!((c.iter().sum::<f64>() - (10.0 + 1e-12)).abs() < 1e-9);
    }
}
