//! Analytic oracles: each planner's closed-form predictions behind one
//! trait, for conformance auditing.
//!
//! The precalculated planners in this crate are all derived from explicit
//! timing models — UMR's Eq. 13/16 makespan, MI's linear system, the
//! one-round equal-finish solution, factoring's batch accounting, RUMR's
//! phase split. The simulator implements the *same* platform semantics
//! independently, so the analytic values double as an executable
//! specification: on an error-free reliable platform the simulated makespan
//! must reproduce an exact model to float accuracy, can never beat a
//! relaxed (lower-bound) model, and every plan must account for exactly the
//! workload it was given.
//!
//! [`Oracle`] packages those predictions uniformly:
//!
//! * [`Oracle::planned_work`] — the workload the plan accounts for
//!   (always `W`; a plan that loses or invents work is a planner bug);
//! * [`Oracle::makespan`] — the model's makespan [`Prediction`], tagged
//!   with its contract ([`Prediction::Exact`] / [`Prediction::LowerBound`] /
//!   [`Prediction::Unavailable`]) and tolerance;
//! * [`Oracle::round_timeline`] — per-round dispatch/finish instants
//!   ([`RoundTiming`]) where the model pins them (UMR's serial dispatch
//!   rounds, MI's installment finish times, the one-round common finish).
//!
//! The audit harness (`dls-experiments`, `audit` bin) compares these
//! against error-free simulation runs; see `docs/AUDIT.md`.

use dls_sim::Platform;

use crate::factoring::{min_chunk_bound, phase_min_chunk_bound, FactoringSource, DEFAULT_FACTOR};
use crate::mi::MiSchedule;
use crate::one_round::OneRoundSchedule;
use crate::plan::ChunkSource;
use crate::rumr::{PhaseSplit, Rumr};
use crate::umr::UmrSchedule;
use crate::umr_het::HetUmrSchedule;

/// Relative tolerance for models that are exact on an error-free run.
/// Matches the planner test suites: event times are sums of dozens of
/// perturbation-free durations, so only rounding noise separates the DES
/// from the closed form.
pub const EXACT_REL_TOL: f64 = 1e-6;

/// Relative slack allowed when checking a lower bound: a simulated makespan
/// may undercut the bound by at most this fraction (floating-point
/// accumulation only — any real undercut means the model or the engine is
/// wrong).
pub const LOWER_BOUND_REL_TOL: f64 = 1e-9;

/// A planner's closed-form makespan claim, tagged with its contract.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Prediction {
    /// The model is exact on an error-free reliable platform: the simulated
    /// makespan must match within `rel_tol` (relative).
    Exact {
        /// Predicted makespan (s).
        makespan: f64,
        /// Allowed relative deviation of an error-free simulation.
        rel_tol: f64,
    },
    /// The model relaxes some cost (e.g. MI's latency-free linear system):
    /// an error-free simulation can never finish earlier than `makespan`
    /// by more than `rel_tol` (relative), but may finish later.
    LowerBound {
        /// Model makespan (s); a floor on the simulated value.
        makespan: f64,
        /// Allowed relative undercut (floating-point slack).
        rel_tol: f64,
    },
    /// The planner has no closed-form makespan (dynamic self-scheduling
    /// families); only work accounting is checkable.
    Unavailable,
}

impl Prediction {
    /// The model's makespan value, if it makes one.
    pub fn makespan(&self) -> Option<f64> {
        match *self {
            Prediction::Exact { makespan, .. } | Prediction::LowerBound { makespan, .. } => {
                Some(makespan)
            }
            Prediction::Unavailable => None,
        }
    }

    /// Relative residual of a simulated error-free makespan against this
    /// prediction: `|sim − pred| / pred` for an exact model, the relative
    /// undercut `max(0, (pred − sim) / pred)` for a lower bound, `None`
    /// when no model exists. A residual within [`Prediction::tolerance`]
    /// is conforming.
    pub fn residual(&self, simulated: f64) -> Option<f64> {
        match *self {
            Prediction::Exact { makespan, .. } => {
                Some((simulated - makespan).abs() / makespan.abs().max(f64::MIN_POSITIVE))
            }
            Prediction::LowerBound { makespan, .. } => {
                Some(((makespan - simulated) / makespan.abs().max(f64::MIN_POSITIVE)).max(0.0))
            }
            Prediction::Unavailable => None,
        }
    }

    /// The residual tolerance stated by the model, if it makes a claim.
    pub fn tolerance(&self) -> Option<f64> {
        match *self {
            Prediction::Exact { rel_tol, .. } | Prediction::LowerBound { rel_tol, .. } => {
                Some(rel_tol)
            }
            Prediction::Unavailable => None,
        }
    }

    /// True when `simulated` conforms to the prediction (vacuously true for
    /// [`Prediction::Unavailable`]).
    pub fn within(&self, simulated: f64) -> bool {
        match (self.residual(simulated), self.tolerance()) {
            (Some(r), Some(t)) => r <= t,
            _ => true,
        }
    }
}

/// Closed-form dispatch/finish instants of one planning round, on an
/// error-free reliable platform with serial master sends.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RoundTiming {
    /// Round (or installment) index, 0-based.
    pub round: usize,
    /// Per-worker chunk size this round (first worker's chunk where sizes
    /// differ within the round).
    pub chunk: f64,
    /// Instant the master starts sending the round's first chunk.
    pub dispatch_start: f64,
    /// Instant the master finishes pushing the round's last chunk.
    pub dispatch_end: f64,
    /// Compute-end instant of the first-served worker for this round.
    pub first_finish: f64,
    /// Compute-end instant of the last-served worker for this round. For
    /// the final round this equals the predicted makespan.
    pub last_finish: f64,
}

/// A planner's closed-form predictions, uniformly packaged for the audit
/// harness. See the module docs for the contract of each method.
pub trait Oracle {
    /// Short planner name for reports (`"UMR"`, `"MI"`, …).
    fn name(&self) -> &'static str;

    /// Total workload units the plan accounts for. Must equal the `W`
    /// the planner was given (up to float accumulation): a plan may never
    /// lose or invent work.
    fn planned_work(&self) -> f64;

    /// The model's makespan claim for an error-free reliable run.
    fn makespan(&self) -> Prediction;

    /// Per-round dispatch/finish instants where the model pins them;
    /// `None` for planners whose model fixes only the aggregate makespan.
    fn round_timeline(&self) -> Option<Vec<RoundTiming>> {
        None
    }
}

// ---------------------------------------------------------------------------
// UMR
// ---------------------------------------------------------------------------

/// Oracle over a solved [`UmrSchedule`]: the paper's Eq. 13/16 makespan and
/// the serial dispatch/finish timeline its derivation assumes.
#[derive(Debug, Clone)]
pub struct UmrOracle {
    schedule: UmrSchedule,
}

impl UmrOracle {
    /// Wrap a solved schedule.
    pub fn new(schedule: UmrSchedule) -> Self {
        UmrOracle { schedule }
    }

    /// The wrapped schedule.
    pub fn schedule(&self) -> &UmrSchedule {
        &self.schedule
    }
}

impl Oracle for UmrOracle {
    fn name(&self) -> &'static str {
        "UMR"
    }

    fn planned_work(&self) -> f64 {
        let inputs = self.schedule.inputs();
        inputs.n as f64 * self.schedule.round_chunks().iter().sum::<f64>()
    }

    fn makespan(&self) -> Prediction {
        Prediction::Exact {
            makespan: self.schedule.predicted_makespan(),
            rel_tol: EXACT_REL_TOL,
        }
    }

    /// UMR's no-idle timeline: the master spends `N·(nLat + c_j/B)` per
    /// round back-to-back; worker `i` receives its round-0 chunk after
    /// `(i+1)·(nLat + c_0/B) + tLat` and then computes without idling, so
    /// its round-`j` compute end is that arrival plus
    /// `Σ_{k≤j} (cLat + c_k/S)`. The last worker's final-round finish is
    /// exactly Eq. 16's makespan.
    fn round_timeline(&self) -> Option<Vec<RoundTiming>> {
        let inputs = *self.schedule.inputs();
        let chunks = self.schedule.round_chunks();
        let n = inputs.n as f64;
        let mut timeline = Vec::with_capacity(chunks.len());
        let mut dispatch_start = 0.0;
        let first_arrival = |c0: f64| inputs.net_latency + c0 / inputs.bandwidth;
        let mut compute_done = 0.0; // Σ_{k≤j} (cLat + c_k/S)
        for (j, &c) in chunks.iter().enumerate() {
            let dispatch_end = dispatch_start + n * (inputs.net_latency + c / inputs.bandwidth);
            compute_done += inputs.comp_latency + c / inputs.speed;
            let base = first_arrival(chunks[0]) + inputs.transfer_latency + compute_done;
            timeline.push(RoundTiming {
                round: j,
                chunk: c,
                dispatch_start,
                dispatch_end,
                first_finish: base,
                last_finish: base + (n - 1.0) * first_arrival(chunks[0]),
            });
            dispatch_start = dispatch_end;
        }
        Some(timeline)
    }
}

// ---------------------------------------------------------------------------
// Heterogeneous UMR
// ---------------------------------------------------------------------------

/// Oracle over a solved [`HetUmrSchedule`]: the heterogeneous round
/// recursion's predicted makespan (exact on an error-free run) and the
/// plan's work accounting, including workers dropped by resource selection.
#[derive(Debug, Clone)]
pub struct HetUmrOracle {
    schedule: HetUmrSchedule,
}

impl HetUmrOracle {
    /// Wrap a solved schedule.
    pub fn new(schedule: HetUmrSchedule) -> Self {
        HetUmrOracle { schedule }
    }

    /// The wrapped schedule.
    pub fn schedule(&self) -> &HetUmrSchedule {
        &self.schedule
    }
}

impl Oracle for HetUmrOracle {
    fn name(&self) -> &'static str {
        "UMR-het"
    }

    fn planned_work(&self) -> f64 {
        self.schedule.w_total()
    }

    fn makespan(&self) -> Prediction {
        Prediction::Exact {
            makespan: self.schedule.predicted_makespan(),
            rel_tol: EXACT_REL_TOL,
        }
    }
}

// ---------------------------------------------------------------------------
// Multi-installment
// ---------------------------------------------------------------------------

/// Oracle over a solved [`MiSchedule`].
///
/// MI's linear system ignores all three latencies, so its makespan is
/// [`Prediction::Exact`] only on a latency-free platform; with any latency
/// it is a strict [`Prediction::LowerBound`] — the gap between the two is
/// precisely the overhead the RUMR paper's critique of MI quantifies.
#[derive(Debug, Clone)]
pub struct MiOracle {
    schedule: MiSchedule,
    bandwidth: f64,
    speed: f64,
    latency_free: bool,
}

impl MiOracle {
    /// Wrap a solved schedule together with the (homogeneous) platform
    /// rates its linear system was built from.
    pub fn new(schedule: MiSchedule, platform: &Platform) -> Self {
        let w0 = platform.worker(0);
        let latency_free =
            w0.comp_latency == 0.0 && w0.net_latency == 0.0 && w0.transfer_latency == 0.0;
        MiOracle {
            schedule,
            bandwidth: w0.bandwidth,
            speed: w0.speed,
            latency_free,
        }
    }

    /// The wrapped schedule.
    pub fn schedule(&self) -> &MiSchedule {
        &self.schedule
    }
}

impl Oracle for MiOracle {
    fn name(&self) -> &'static str {
        "MI"
    }

    fn planned_work(&self) -> f64 {
        self.schedule
            .chunks()
            .iter()
            .map(|inst| inst.iter().sum::<f64>())
            .sum()
    }

    fn makespan(&self) -> Prediction {
        let makespan = self.schedule.predicted_makespan();
        if self.latency_free {
            Prediction::Exact {
                makespan,
                rel_tol: EXACT_REL_TOL,
            }
        } else {
            Prediction::LowerBound {
                makespan,
                rel_tol: LOWER_BOUND_REL_TOL,
            }
        }
    }

    /// MI's installment finish times from the linear system: worker 0
    /// receives its installment-0 chunk after `c_{0,0}/B`, computes every
    /// installment back-to-back (the no-idle constraint), and the
    /// equal-finish constraint makes each installment's finish common to
    /// all workers. Only pinned on a latency-free platform, where the
    /// system is the true model.
    fn round_timeline(&self) -> Option<Vec<RoundTiming>> {
        if !self.latency_free {
            return None;
        }
        let chunks = self.schedule.chunks();
        let mut timeline = Vec::with_capacity(chunks.len());
        let mut dispatch_start = 0.0;
        let mut finish = chunks[0][0] / self.bandwidth;
        for (j, inst) in chunks.iter().enumerate() {
            let dispatch_end = dispatch_start + inst.iter().sum::<f64>() / self.bandwidth;
            finish += inst[0] / self.speed;
            timeline.push(RoundTiming {
                round: j,
                chunk: inst[0],
                dispatch_start,
                dispatch_end,
                first_finish: finish,
                last_finish: finish,
            });
            dispatch_start = dispatch_end;
        }
        Some(timeline)
    }
}

// ---------------------------------------------------------------------------
// One round
// ---------------------------------------------------------------------------

/// Oracle over a solved [`OneRoundSchedule`]: the latency-aware equal-finish
/// single round (exact on an error-free run).
#[derive(Debug, Clone)]
pub struct OneRoundOracle {
    schedule: OneRoundSchedule,
}

impl OneRoundOracle {
    /// Wrap a solved schedule.
    pub fn new(schedule: OneRoundSchedule) -> Self {
        OneRoundOracle { schedule }
    }

    /// The wrapped schedule.
    pub fn schedule(&self) -> &OneRoundSchedule {
        &self.schedule
    }
}

impl Oracle for OneRoundOracle {
    fn name(&self) -> &'static str {
        "OneRound"
    }

    fn planned_work(&self) -> f64 {
        self.schedule.chunks().iter().sum()
    }

    fn makespan(&self) -> Prediction {
        Prediction::Exact {
            makespan: self.schedule.predicted_makespan(),
            rel_tol: EXACT_REL_TOL,
        }
    }
}

// ---------------------------------------------------------------------------
// Factoring
// ---------------------------------------------------------------------------

/// Oracle over the factoring chunk sequence: no closed-form makespan (the
/// whole point of factoring is dynamic assignment), but the sequence's
/// accounting is fully determined — the oracle drains a fresh
/// [`FactoringSource`] at construction and records its totals.
#[derive(Debug, Clone)]
pub struct FactoringOracle {
    total: f64,
    num_chunks: usize,
    smallest: f64,
}

impl FactoringOracle {
    /// Build from explicit factoring parameters (see
    /// [`FactoringSource::new`]).
    pub fn new(w_total: f64, n: usize, factor: f64, min_chunk: f64) -> Self {
        let mut source = FactoringSource::new(w_total, n, factor, min_chunk);
        let mut total = 0.0;
        let mut num_chunks = 0usize;
        let mut smallest = f64::INFINITY;
        while let Some(c) = source.next_chunk() {
            total += c;
            num_chunks += 1;
            smallest = smallest.min(c);
        }
        FactoringOracle {
            total,
            num_chunks,
            smallest,
        }
    }

    /// Mirror [`crate::factoring::Factoring::new`]'s parameter choice:
    /// classic `f = 2` with the error-unaware minimum chunk bound.
    pub fn from_platform(platform: &Platform, w_total: f64) -> Self {
        let n = platform.num_workers();
        let w0 = platform.worker(0);
        let bound = min_chunk_bound(n, w0.comp_latency, w0.net_latency, None);
        FactoringOracle::new(w_total, n, DEFAULT_FACTOR, bound)
    }

    /// Number of chunks the sequence emits.
    pub fn num_chunks(&self) -> usize {
        self.num_chunks
    }

    /// Smallest emitted chunk (infinite for an empty sequence).
    pub fn smallest_chunk(&self) -> f64 {
        self.smallest
    }
}

impl Oracle for FactoringOracle {
    fn name(&self) -> &'static str {
        "Factoring"
    }

    fn planned_work(&self) -> f64 {
        self.total
    }

    fn makespan(&self) -> Prediction {
        Prediction::Unavailable
    }
}

// ---------------------------------------------------------------------------
// RUMR
// ---------------------------------------------------------------------------

/// Oracle over RUMR's two-phase composition: the §4.2(i) phase split
/// (`w1 + w2 = W`), phase 1's UMR oracle over `w1` (when phase 1 exists),
/// and the phase-2 factoring accounting over `w2`. No end-to-end makespan —
/// phase 2 is dynamic by design — so the prediction is
/// [`Prediction::Unavailable`] and the value of this oracle is its
/// accounting: the two phases must cover exactly `W` between them.
#[derive(Debug, Clone)]
pub struct RumrOracle {
    split: PhaseSplit,
    phase1: Option<UmrOracle>,
    phase2: Option<FactoringOracle>,
}

impl RumrOracle {
    /// Build from a planned [`Rumr`] scheduler and the factoring parameters
    /// of its phase 2 (mirroring [`Rumr::new`]).
    pub fn new(rumr: &Rumr, platform: &Platform) -> Self {
        let split = rumr.split();
        let phase1 = rumr.phase1_schedule().cloned().map(UmrOracle::new);
        let phase2 = rumr.uses_phase2().then(|| {
            let n = platform.num_workers();
            let w0 = platform.worker(0);
            let config = rumr.config();
            let bound_error = if config.error_aware_bound {
                config.error_estimate
            } else {
                None
            };
            let bound =
                phase_min_chunk_bound(split.w2, n, w0.comp_latency, w0.net_latency, bound_error);
            FactoringOracle::new(split.w2, n, config.factor, bound)
        });
        RumrOracle {
            split,
            phase1,
            phase2,
        }
    }

    /// The §4.2(i) phase split.
    pub fn split(&self) -> PhaseSplit {
        self.split
    }

    /// Phase 1's UMR oracle over `w1`, when phase 1 is non-empty.
    pub fn phase1(&self) -> Option<&UmrOracle> {
        self.phase1.as_ref()
    }

    /// Phase 2's factoring accounting over `w2`, when phase 2 is non-empty.
    pub fn phase2(&self) -> Option<&FactoringOracle> {
        self.phase2.as_ref()
    }
}

impl Oracle for RumrOracle {
    fn name(&self) -> &'static str {
        "RUMR"
    }

    /// `w1 + w2` — by the split's construction this must equal `W`, and by
    /// phase-plan construction phase 1's rounds must sum to `w1` and
    /// phase 2's chunks to `w2` (both are also checked individually by the
    /// audit harness through [`RumrOracle::phase1`] / [`RumrOracle::phase2`]).
    fn planned_work(&self) -> f64 {
        self.split.w1 + self.split.w2
    }

    fn makespan(&self) -> Prediction {
        Prediction::Unavailable
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mi::MultiInstallment;
    use crate::one_round::OneRound;
    use crate::rumr::RumrConfig;
    use crate::umr::{Umr, UmrInputs};
    use dls_sim::HomogeneousParams;

    fn platform(n: usize, clat: f64, nlat: f64) -> Platform {
        HomogeneousParams::table1(n, 1.5, clat, nlat)
            .build()
            .unwrap()
    }

    #[test]
    fn umr_timeline_is_consistent_with_eq16() {
        let p = platform(8, 0.3, 0.2);
        let umr = Umr::new(&p, 1000.0).unwrap();
        let oracle = UmrOracle::new(umr.schedule().clone());
        assert!((oracle.planned_work() - 1000.0).abs() < 1e-6 * 1000.0);
        let timeline = oracle.round_timeline().unwrap();
        assert_eq!(timeline.len(), umr.schedule().num_rounds());
        // Rounds tile the master's time line.
        for pair in timeline.windows(2) {
            assert!((pair[0].dispatch_end - pair[1].dispatch_start).abs() < 1e-9);
            assert!(pair[0].first_finish < pair[1].first_finish);
        }
        // The last worker's final-round finish IS Eq. 16's makespan.
        let last = timeline.last().unwrap();
        let predicted = umr.schedule().predicted_makespan();
        assert!(
            (last.last_finish - predicted).abs() < 1e-9 * predicted,
            "timeline end {} vs Eq.16 {predicted}",
            last.last_finish
        );
        assert!(matches!(oracle.makespan(), Prediction::Exact { .. }));
    }

    #[test]
    fn umr_timeline_matches_plan_chunks() {
        let p = platform(5, 0.2, 0.1);
        let umr = Umr::new(&p, 600.0).unwrap();
        let oracle = UmrOracle::new(umr.schedule().clone());
        let timeline = oracle.round_timeline().unwrap();
        for (t, &c) in timeline.iter().zip(umr.schedule().round_chunks()) {
            assert_eq!(t.chunk, c);
        }
    }

    #[test]
    fn mi_oracle_latency_contract() {
        // Latency-free: exact, with a pinned installment timeline.
        let free = platform(6, 0.0, 0.0);
        let mi = MultiInstallment::new(&free, 900.0, 3).unwrap();
        let oracle = MiOracle::new(mi.schedule().clone(), &free);
        assert!((oracle.planned_work() - 900.0).abs() < 1e-6 * 900.0);
        assert!(matches!(oracle.makespan(), Prediction::Exact { .. }));
        let timeline = oracle.round_timeline().unwrap();
        assert_eq!(timeline.len(), 3);
        let predicted = mi.schedule().predicted_makespan();
        assert!((timeline.last().unwrap().last_finish - predicted).abs() < 1e-9 * predicted);

        // With latencies the linear system is only a lower bound, and the
        // timeline is withdrawn.
        let laggy = platform(6, 0.3, 0.2);
        let mi = MultiInstallment::new(&laggy, 900.0, 3).unwrap();
        let oracle = MiOracle::new(mi.schedule().clone(), &laggy);
        assert!(matches!(oracle.makespan(), Prediction::LowerBound { .. }));
        assert!(oracle.round_timeline().is_none());
    }

    #[test]
    fn one_round_oracle_accounts_for_everything() {
        let p = platform(7, 0.4, 0.3);
        let one = OneRound::new(&p, 500.0).unwrap();
        let oracle = OneRoundOracle::new(one.schedule().clone());
        assert!((oracle.planned_work() - 500.0).abs() < 1e-6 * 500.0);
        let Prediction::Exact { makespan, .. } = oracle.makespan() else {
            panic!("one-round model is exact");
        };
        assert!(makespan > 0.0);
    }

    #[test]
    fn factoring_oracle_accounting() {
        let p = platform(10, 0.3, 0.2);
        let oracle = FactoringOracle::from_platform(&p, 1000.0);
        assert!((oracle.planned_work() - 1000.0).abs() < 1e-6 * 1000.0);
        assert!(oracle.num_chunks() > 10);
        assert!(oracle.smallest_chunk() > 0.0);
        assert_eq!(oracle.makespan(), Prediction::Unavailable);
    }

    #[test]
    fn rumr_oracle_phases_cover_the_workload() {
        let p = platform(12, 0.3, 0.2);
        let rumr = Rumr::new(&p, 1000.0, RumrConfig::with_known_error(0.3)).unwrap();
        let oracle = RumrOracle::new(&rumr, &p);
        assert!((oracle.planned_work() - 1000.0).abs() < 1e-6 * 1000.0);
        // Phase 1 rounds sum to w1; phase 2 chunks sum to w2.
        let split = oracle.split();
        let p1 = oracle.phase1().expect("w1 > 0 at error 0.3");
        assert!((p1.planned_work() - split.w1).abs() < 1e-6 * split.w1.max(1.0));
        let p2 = oracle.phase2().expect("w2 > 0 at error 0.3");
        assert!((p2.planned_work() - split.w2).abs() < 1e-6 * split.w2.max(1.0));
        assert_eq!(oracle.makespan(), Prediction::Unavailable);
    }

    #[test]
    fn rumr_oracle_mirrors_a_tiny_error_phase_two() {
        // Regression for the serialized-tail cliff: with a 4 % error
        // estimate and a forced 50/50 split on a latency-heavy platform,
        // the uncapped error-aware bound (215 units) would emit 2 chunks of
        // 250 for phase 2 — 18 of 20 workers idle. The capped bound spreads
        // the phase over every worker, and the oracle mirrors the
        // scheduler's actual source.
        let p = platform(20, 0.6, 0.4);
        let config = RumrConfig::with_fixed_fraction(0.5, Some(0.04));
        let rumr = Rumr::new(&p, 1000.0, config).unwrap();
        let oracle = RumrOracle::new(&rumr, &p);
        let p2 = oracle.phase2().expect("fixed split forces a phase 2");
        assert!((p2.planned_work() - 500.0).abs() < 1e-9);
        assert_eq!(p2.num_chunks(), 20, "phase 2 must reach every worker");
        assert!(p2.smallest_chunk() >= 25.0 - 1e-9);
    }

    #[test]
    fn prediction_residual_semantics() {
        let exact = Prediction::Exact {
            makespan: 100.0,
            rel_tol: 1e-6,
        };
        assert!(exact.within(100.00001));
        assert!(!exact.within(100.1));
        assert!((exact.residual(101.0).unwrap() - 0.01).abs() < 1e-12);

        let bound = Prediction::LowerBound {
            makespan: 100.0,
            rel_tol: 1e-9,
        };
        assert!(bound.within(150.0), "later than the bound is fine");
        assert!(!bound.within(99.0), "beating the bound is a violation");
        assert_eq!(bound.residual(150.0), Some(0.0));

        assert!(Prediction::Unavailable.within(42.0));
        assert_eq!(Prediction::Unavailable.residual(42.0), None);
        assert_eq!(Prediction::Unavailable.tolerance(), None);
        assert_eq!(Prediction::Unavailable.makespan(), None);
    }

    #[test]
    fn umr_error_free_simulation_lands_on_the_timeline() {
        // The oracle timeline is not just self-consistent — the DES hits
        // it. Worker 0's j-th ComputeEnd must equal first_finish[j]; the
        // last worker's must equal last_finish[j].
        use dls_sim::{simulate, ErrorInjector, ErrorModel, SimConfig, TraceEvent, TraceMode};
        let p = platform(6, 0.3, 0.2);
        let mut umr = Umr::new(&p, 800.0).unwrap();
        let oracle = UmrOracle::new(umr.schedule().clone());
        let timeline = oracle.round_timeline().unwrap();
        let r = simulate(
            &p,
            &mut umr,
            ErrorInjector::new(ErrorModel::None, 0),
            SimConfig {
                trace_mode: TraceMode::Full,
                ..Default::default()
            },
        )
        .unwrap();
        let trace = r.trace.unwrap();
        let ends = |worker: usize| -> Vec<f64> {
            trace
                .events()
                .iter()
                .filter_map(|e| match *e {
                    TraceEvent::ComputeEnd {
                        worker: w, time, ..
                    } if w == worker => Some(time),
                    _ => None,
                })
                .collect()
        };
        let first = ends(0);
        let last = ends(5);
        assert_eq!(first.len(), timeline.len());
        assert_eq!(last.len(), timeline.len());
        for (j, t) in timeline.iter().enumerate() {
            assert!(
                (first[j] - t.first_finish).abs() < 1e-6 * t.first_finish,
                "round {j}: worker 0 finished at {} vs predicted {}",
                first[j],
                t.first_finish
            );
            assert!(
                (last[j] - t.last_finish).abs() < 1e-6 * t.last_finish,
                "round {j}: last worker finished at {} vs predicted {}",
                last[j],
                t.last_finish
            );
        }
    }

    #[test]
    fn oracle_prediction_matches_solver_even_near_theta_one() {
        // The oracle inherits the expm1-stabilized chunk0; a near-θ=1
        // platform must still produce a finite, positive, exact-tagged
        // prediction.
        let inputs = UmrInputs {
            n: 4,
            speed: 1.0,
            bandwidth: 4.0 * (1.0 + 1e-9),
            comp_latency: 0.4,
            net_latency: 0.05,
            transfer_latency: 0.0,
            w_total: 1000.0,
        };
        let schedule = UmrSchedule::solve_with_selection(inputs).unwrap();
        let oracle = UmrOracle::new(schedule);
        let Prediction::Exact { makespan, .. } = oracle.makespan() else {
            panic!("UMR model is exact");
        };
        assert!(makespan.is_finite() && makespan > 0.0);
        assert!((oracle.planned_work() - 1000.0).abs() < 1e-6 * 1000.0);
    }
}
