//! Factoring — robust self-scheduling with decreasing chunks (Hummel '92).
//!
//! Factoring dispatches the workload in *batches* of `N` equal chunks; each
//! batch covers a fixed fraction `1/f` of the remaining workload (`f = 2` in
//! classic factoring), so chunk sizes decrease geometrically:
//!
//! ```text
//! chunk(batch) = remaining / (f·N),   remaining ← remaining·(1 − 1/f)
//! ```
//!
//! Chunks are handed out greedily — a chunk is sent only when a worker is
//! idle — which makes the schedule self-correcting under prediction errors
//! but pays the full communication latency on every chunk (no
//! communication/computation overlap, the weakness the RUMR paper's phase 1
//! addresses).
//!
//! Because chunk sizes decrease geometrically they must be bounded below;
//! per Hagerup '97 (and §4.2(iii) of the RUMR paper) the bound is the
//! overhead of dispatching one round of empty chunks, `cLat + nLat·N`,
//! divided by `error` when the error magnitude is known. The workload's
//! minimal computation unit (1 "unit" in Table 1 terms) is a hard floor.

use dls_sim::{Decision, Platform, Scheduler, SimView};

use crate::plan::{ChunkSource, PullDispatcher};

/// Default factor `f`: each batch covers half the remaining work.
pub const DEFAULT_FACTOR: f64 = 2.0;

/// Hard floor on chunk sizes: the workload's minimal computation unit
/// (1 unit in the paper's Table 1; e.g. one sequence or one pixel block).
pub const UNIT_FLOOR: f64 = 1.0;

/// Compute the minimum chunk bound of §4.2(iii).
///
/// * `error` known and positive: `(cLat + nLat·N) / error`
/// * `error` unknown (or zero): `cLat + nLat·N`
///
/// Both are floored at [`UNIT_FLOOR`] so the chunk sequence terminates even
/// on zero-latency platforms.
pub fn min_chunk_bound(n: usize, comp_latency: f64, net_latency: f64, error: Option<f64>) -> f64 {
    let base = comp_latency + net_latency * n as f64;
    let bound = match error {
        Some(e) if e > 0.0 => base / e,
        _ => base,
    };
    bound.max(UNIT_FLOOR)
}

/// Minimum chunk bound for a factoring *phase* over `w_phase` units:
/// [`min_chunk_bound`] capped at the per-worker share `w_phase / N`.
///
/// The error-aware bound divides the round overhead by the error magnitude,
/// so it grows without limit as the estimate shrinks — and a bound above
/// the per-worker share would force the phase onto fewer than `N` workers
/// (the factoring source honors its bound even in the final balanced
/// round). Keeping every worker busy through the tail is the phase's whole
/// purpose, so the per-worker share caps the bound; [`UNIT_FLOOR`] still
/// floors it.
pub fn phase_min_chunk_bound(
    w_phase: f64,
    n: usize,
    comp_latency: f64,
    net_latency: f64,
    error: Option<f64>,
) -> f64 {
    min_chunk_bound(n, comp_latency, net_latency, error)
        .min(w_phase / n as f64)
        .max(UNIT_FLOOR)
}

/// Generates the factoring chunk sequence over a given workload.
#[derive(Debug, Clone)]
pub struct FactoringSource {
    n: usize,
    factor: f64,
    min_chunk: f64,
    remaining: f64,
    batch_left: usize,
    batch_chunk: f64,
}

impl FactoringSource {
    /// Create a source over `w_total` units for `n` workers.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`, `factor <= 1`, or `w_total`/`min_chunk` are not
    /// finite and non-negative/positive respectively.
    pub fn new(w_total: f64, n: usize, factor: f64, min_chunk: f64) -> Self {
        assert!(n > 0, "need at least one worker");
        assert!(factor > 1.0 && factor.is_finite(), "factor must exceed 1");
        assert!(w_total.is_finite() && w_total >= 0.0);
        assert!(min_chunk.is_finite() && min_chunk > 0.0);
        FactoringSource {
            n,
            factor,
            min_chunk,
            remaining: w_total,
            batch_left: 0,
            batch_chunk: 0.0,
        }
    }

    /// Remaining undispatched workload.
    pub fn remaining(&self) -> f64 {
        self.remaining + self.batch_left as f64 * self.batch_chunk
    }

    fn start_batch(&mut self) {
        debug_assert!(self.batch_left == 0);
        if self.remaining <= 0.0 {
            return;
        }
        let n = self.n as f64;
        let ideal = self.remaining / (self.factor * n);
        if ideal >= self.min_chunk {
            // Regular factoring batch: N chunks covering 1/f of the rest.
            self.batch_chunk = ideal;
            self.batch_left = self.n;
            self.remaining -= ideal * n;
        } else if self.remaining > n * self.min_chunk {
            // The geometric decrease has bottomed out but plenty of work
            // remains: dispatch constant batches at the minimum bound.
            self.batch_chunk = self.min_chunk;
            self.batch_left = self.n;
            self.remaining -= self.min_chunk * n;
        } else {
            // Final round: spread the remainder evenly over the workers
            // (leaving N−1 workers idle while one processes the whole tail
            // would defeat phase 2's purpose; the phase-split threshold
            // guarantees the per-worker share amortizes its dispatch
            // overhead). The split respects the configured minimum bound —
            // not just the unit floor — so tail chunks still amortize their
            // dispatch overhead; only a residual smaller than the bound
            // itself goes out as a single undersized chunk.
            let floor = self.min_chunk.max(UNIT_FLOOR);
            let count = (self.remaining / floor).floor().clamp(1.0, n) as usize;
            self.batch_chunk = self.remaining / count as f64;
            self.batch_left = count;
            self.remaining = 0.0;
        }
    }
}

impl ChunkSource for FactoringSource {
    fn next_chunk(&mut self) -> Option<f64> {
        if self.batch_left == 0 {
            self.start_batch();
        }
        if self.batch_left == 0 {
            return None;
        }
        self.batch_left -= 1;
        Some(self.batch_chunk)
    }
}

/// The Factoring scheduler: pull-based dispatch of the factoring sequence.
#[derive(Debug, Clone)]
pub struct Factoring {
    dispatcher: PullDispatcher<FactoringSource>,
}

impl Factoring {
    /// Classic factoring (`f = 2`) over a platform, with the error-unaware
    /// minimum chunk bound `cLat + nLat·N` (the algorithm predates error
    /// estimation; see [`min_chunk_bound`]).
    ///
    /// Latency parameters are taken from worker 0, which is exact for the
    /// homogeneous platforms of the paper's evaluation.
    pub fn new(platform: &Platform, w_total: f64) -> Self {
        let n = platform.num_workers();
        let w0 = platform.worker(0);
        let bound = min_chunk_bound(n, w0.comp_latency, w0.net_latency, None);
        Self::with_parameters(w_total, n, DEFAULT_FACTOR, bound)
    }

    /// Fully parameterized construction (factor, explicit minimum chunk).
    pub fn with_parameters(w_total: f64, n: usize, factor: f64, min_chunk: f64) -> Self {
        Factoring {
            dispatcher: PullDispatcher::new(FactoringSource::new(w_total, n, factor, min_chunk)),
        }
    }
}

impl Scheduler for Factoring {
    fn name(&self) -> String {
        "Factoring".into()
    }

    fn next_dispatch(&mut self, view: &SimView<'_>) -> Decision {
        self.dispatcher.next_decision(view)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dls_sim::{simulate, ErrorInjector, ErrorModel, HomogeneousParams, SimConfig};

    fn collect(mut s: FactoringSource) -> Vec<f64> {
        let mut v = Vec::new();
        while let Some(c) = s.next_chunk() {
            v.push(c);
            assert!(v.len() < 100_000, "source does not terminate");
        }
        v
    }

    #[test]
    fn halving_batches() {
        let chunks = collect(FactoringSource::new(1000.0, 5, 2.0, 1.0));
        // First batch: 5 chunks of 1000/(2·5) = 100.
        assert_eq!(&chunks[..5], &[100.0; 5]);
        // Second batch: 5 chunks of 500/(2·5) = 50.
        assert_eq!(&chunks[5..10], &[50.0; 5]);
        // Conservation.
        let total: f64 = chunks.iter().sum();
        assert!((total - 1000.0).abs() < 1e-9);
    }

    #[test]
    fn chunks_never_below_min_and_decreasing() {
        let chunks = collect(FactoringSource::new(1000.0, 4, 2.0, 7.0));
        let total: f64 = chunks.iter().sum();
        assert!((total - 1000.0).abs() < 1e-9);
        for w in chunks.windows(2) {
            assert!(
                w[1] <= w[0] + 1e-12,
                "chunk sequence must be non-increasing"
            );
        }
        // Every chunk respects the bound except, at most, a final residual
        // smaller than the bound itself (here the 3.25-unit tail).
        let (last, body) = chunks.split_last().unwrap();
        for &c in body {
            assert!(c >= 7.0 - 1e-9, "chunk {c} below bound");
        }
        assert!(*last > 0.0);
        assert!(*last < 7.0, "this workload leaves a sub-bound residual");
    }

    #[test]
    fn final_round_respects_min_chunk_above_unit_floor() {
        // Regression: the final-round spread used UNIT_FLOOR as its divisor,
        // so a 27-unit tail over 4 workers with min_chunk = 7 was split into
        // 4 chunks of 6.75 — all below the configured bound. The split must
        // use the bound itself: 3 chunks of 9.
        let chunks = collect(FactoringSource::new(27.0, 4, 2.0, 7.0));
        let total: f64 = chunks.iter().sum();
        assert!((total - 27.0).abs() < 1e-9);
        assert_eq!(chunks.len(), 3);
        for &c in &chunks {
            assert!(c >= 7.0, "chunk {c} below the configured minimum bound");
        }
    }

    #[test]
    fn unit_floor_guarantees_termination() {
        // Zero latencies: without the unit floor the sequence would never
        // terminate.
        let chunks = collect(FactoringSource::new(100.0, 3, 2.0, UNIT_FLOOR));
        let total: f64 = chunks.iter().sum();
        assert!((total - 100.0).abs() < 1e-9);
        assert!(chunks.len() <= 200);
    }

    #[test]
    fn min_chunk_bound_rules() {
        // Unknown error: cLat + nLat·N.
        assert!((min_chunk_bound(10, 0.5, 0.3, None) - 3.5).abs() < 1e-12);
        // Known error: divided by error.
        assert!((min_chunk_bound(10, 0.5, 0.3, Some(0.5)) - 7.0).abs() < 1e-12);
        // Unit floor.
        assert_eq!(min_chunk_bound(10, 0.0, 0.0, None), UNIT_FLOOR);
        assert_eq!(min_chunk_bound(10, 0.0, 0.0, Some(0.3)), UNIT_FLOOR);
        // Zero error treated as unknown.
        assert!((min_chunk_bound(4, 1.0, 1.0, Some(0.0)) - 5.0).abs() < 1e-12);
    }

    #[test]
    fn phase_bound_is_capped_at_the_per_worker_share() {
        // Regression: a 4 % error estimate on a latency-heavy 20-worker
        // platform gives an error-aware bound of (0.6 + 0.4·20)/0.04 = 215
        // units. Over a 500-unit phase that bound (now honored by the final
        // round) would collapse the phase onto 2 workers; the cap keeps all
        // 20 busy.
        let bound = phase_min_chunk_bound(500.0, 20, 0.6, 0.4, Some(0.04));
        assert!((bound - 25.0).abs() < 1e-12, "got {bound}");
        let chunks = collect(FactoringSource::new(500.0, 20, 2.0, bound));
        assert_eq!(chunks.len(), 20, "phase must spread over every worker");
        // When the uncapped bound already fits, nothing changes.
        assert!(
            (phase_min_chunk_bound(1000.0, 10, 0.5, 0.3, None) - 3.5).abs() < 1e-12,
            "small bounds pass through"
        );
        // The unit floor still applies to vanishing phases.
        assert_eq!(phase_min_chunk_bound(0.5, 8, 0.0, 0.0, None), UNIT_FLOOR);
    }

    #[test]
    fn tiny_workload_single_chunk() {
        let chunks = collect(FactoringSource::new(0.5, 8, 2.0, 1.0));
        assert_eq!(chunks.len(), 1);
        assert!((chunks[0] - 0.5).abs() < 1e-12);
        assert!(collect(FactoringSource::new(0.0, 8, 2.0, 1.0)).is_empty());
    }

    #[test]
    fn remaining_tracks_dispatch() {
        let mut s = FactoringSource::new(100.0, 2, 2.0, 1.0);
        assert!((s.remaining() - 100.0).abs() < 1e-12);
        let c = s.next_chunk().unwrap();
        assert!((s.remaining() - (100.0 - c)).abs() < 1e-9);
    }

    #[test]
    fn simulation_conserves_workload() {
        let platform = HomogeneousParams::table1(10, 1.5, 0.2, 0.3)
            .build()
            .unwrap();
        let mut f = Factoring::new(&platform, 1000.0);
        let r = simulate(
            &platform,
            &mut f,
            ErrorInjector::new(ErrorModel::TruncatedNormal { error: 0.3 }, 7),
            SimConfig {
                trace_mode: dls_sim::TraceMode::Full,
                ..Default::default()
            },
        )
        .unwrap();
        assert!((r.dispatched_work - 1000.0).abs() < 1e-6);
        assert!((r.completed_work() - 1000.0).abs() < 1e-6);
        assert!(r.trace.unwrap().validate(10).is_empty());
    }

    #[test]
    fn greedy_rebalances_under_error() {
        // With large errors, factoring should spread work unevenly (slow
        // workers get less) — completed work per worker must still sum to W.
        let platform = HomogeneousParams::table1(5, 1.5, 0.1, 0.1).build().unwrap();
        let mut f = Factoring::new(&platform, 1000.0);
        let r = simulate(
            &platform,
            &mut f,
            ErrorInjector::new(ErrorModel::TruncatedNormal { error: 0.5 }, 3),
            SimConfig::default(),
        )
        .unwrap();
        assert!((r.completed_work() - 1000.0).abs() < 1e-6);
        let spread = r
            .per_worker_work
            .iter()
            .fold((f64::INFINITY, f64::NEG_INFINITY), |(lo, hi), &w| {
                (lo.min(w), hi.max(w))
            });
        assert!(spread.1 > spread.0, "expected uneven division under error");
    }

    #[test]
    #[should_panic(expected = "factor")]
    fn rejects_factor_one() {
        let _ = FactoringSource::new(10.0, 2, 1.0, 1.0);
    }
}
