//! Algorithm selection: a serializable-ish enum naming every scheduler in
//! the suite, with a uniform factory.
//!
//! The experiment harness, examples and benches all pick algorithms through
//! [`SchedulerKind`], so a simulation run is fully described by
//! (platform, workload, error model, kind, seed).

use std::fmt;

use dls_sched::{
    AdaptiveConfig, AdaptiveRumr, EqualSingleRound, Factoring, FactoringOracle, Fsc, Gss, HetRumr,
    HetUmr, HetUmrOracle, MiError, MiOracle, MultiInstallment, OneRound, OneRoundOracle, Oracle,
    Rumr, RumrConfig, RumrOracle, Tss, Umr, UmrError, UmrOracle, UnitSelfScheduling,
};
use dls_sim::{Platform, Scheduler};

/// Every scheduling algorithm available in the suite.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum SchedulerKind {
    /// RUMR (the paper's contribution) with the given configuration.
    Rumr(RumrConfig),
    /// Plain UMR (phase-1 algorithm alone).
    Umr,
    /// Multi-installment with `x` installments (MI-x).
    Mi {
        /// Number of installments `x`.
        installments: usize,
    },
    /// Factoring (Hummel '92), error-unaware minimum chunk bound.
    Factoring,
    /// Fixed-size chunking with the given error estimate for its chunk-size
    /// formula.
    Fsc {
        /// Estimated error magnitude (σ of unit execution time).
        error: f64,
    },
    /// One round of equal static chunks.
    EqualStatic,
    /// Unit-granularity self-scheduling.
    SelfScheduling {
        /// Chunk size in workload units.
        unit: f64,
    },
    /// Heterogeneous UMR with resource selection.
    HetUmr,
    /// Adaptive RUMR: estimates the error online (no a-priori estimate) and
    /// switches to its factoring phase when the measurements warrant it —
    /// the paper's §6 future-work design.
    AdaptiveRumr,
    /// Heterogeneous RUMR: the two-phase robust scheduler on heterogeneous
    /// platforms (speed-weighted phase-2 factoring).
    HetRumr(RumrConfig),
    /// Latency-aware optimal single round (Rosenberg '01 style).
    OneRound,
    /// Guided self-scheduling (Polychronopoulos & Kuck '87).
    Gss,
    /// Trapezoid self-scheduling (Tzen & Ni '93).
    Tss,
}

impl SchedulerKind {
    /// The paper's original RUMR with a known error magnitude.
    pub fn rumr_known_error(error: f64) -> Self {
        SchedulerKind::Rumr(RumrConfig::with_known_error(error))
    }

    /// The fixed-split ablation variant RUMR_p (Fig. 6).
    pub fn rumr_fixed_fraction(p: f64, error: Option<f64>) -> Self {
        SchedulerKind::Rumr(RumrConfig::with_fixed_fraction(p, error))
    }

    /// The in-order phase-1 ablation variant (Fig. 7).
    pub fn rumr_plain_phase1(error: f64) -> Self {
        let mut cfg = RumrConfig::with_known_error(error);
        cfg.out_of_order = false;
        SchedulerKind::Rumr(cfg)
    }

    /// Display label used in tables and reports.
    pub fn label(&self) -> String {
        match self {
            SchedulerKind::Rumr(cfg) => {
                let mut s = String::from("RUMR");
                if let Some(p) = cfg.phase1_fraction {
                    s.push_str(&format!("_{:.0}", p * 100.0));
                }
                if !cfg.out_of_order {
                    s.push_str("-plain");
                }
                s
            }
            SchedulerKind::Umr => "UMR".into(),
            SchedulerKind::Mi { installments } => format!("MI-{installments}"),
            SchedulerKind::Factoring => "Factoring".into(),
            SchedulerKind::Fsc { .. } => "FSC".into(),
            SchedulerKind::EqualStatic => "EqualStatic".into(),
            SchedulerKind::SelfScheduling { .. } => "SelfSched".into(),
            SchedulerKind::HetUmr => "UMR-het".into(),
            SchedulerKind::AdaptiveRumr => "RUMR-adaptive".into(),
            SchedulerKind::HetRumr(_) => "RUMR-het".into(),
            SchedulerKind::OneRound => "OneRound".into(),
            SchedulerKind::Gss => "GSS".into(),
            SchedulerKind::Tss => "TSS".into(),
        }
    }

    /// Instantiate the scheduler for a platform and workload.
    ///
    /// # Errors
    ///
    /// [`BuildError`] when the algorithm's planner rejects the inputs (e.g.
    /// homogeneous-only algorithms on a heterogeneous platform).
    pub fn build(
        &self,
        platform: &Platform,
        w_total: f64,
    ) -> Result<Box<dyn Scheduler>, BuildError> {
        Ok(self.prototype(platform, w_total)?.into_inner())
    }

    /// Uniform upfront refusal of inputs no planner can accept. Some
    /// planners historically `panic!`ed on these (the pull-based ones
    /// assert rather than solve), so without this gate the failure mode
    /// depended on the kind; now every kind refuses the same way, with a
    /// typed [`PlanError`].
    fn validate(&self, w_total: f64) -> Result<(), PlanError> {
        if !w_total.is_finite() || w_total <= 0.0 {
            return Err(PlanError::InvalidWorkload { w_total });
        }
        match *self {
            SchedulerKind::SelfScheduling { unit } if !unit.is_finite() || unit <= 0.0 => {
                Err(PlanError::InvalidParameter {
                    param: "unit",
                    value: unit,
                })
            }
            SchedulerKind::Fsc { error } if !error.is_finite() || error < 0.0 => {
                Err(PlanError::InvalidParameter {
                    param: "error",
                    value: error,
                })
            }
            _ => Ok(()),
        }
    }

    /// Build a reusable [`SchedulerPrototype`]: the planner runs once, and
    /// [`SchedulerPrototype::fresh`] stamps out initial-state schedulers by
    /// cloning. For precalculated algorithms (UMR, RUMR, MI, heterogeneous
    /// variants) this removes the per-repetition solve from repetition
    /// loops; the clones behave bit-identically to [`SchedulerKind::build`].
    ///
    /// # Errors
    ///
    /// Same as [`SchedulerKind::build`].
    pub fn prototype(
        &self,
        platform: &Platform,
        w_total: f64,
    ) -> Result<SchedulerPrototype, BuildError> {
        self.validate(w_total)?;
        let proto: Box<dyn CloneScheduler> = match *self {
            SchedulerKind::Rumr(cfg) => Box::new(Rumr::new(platform, w_total, cfg)?),
            SchedulerKind::Umr => Box::new(Umr::new(platform, w_total)?),
            SchedulerKind::Mi { installments } => {
                Box::new(MultiInstallment::new(platform, w_total, installments)?)
            }
            SchedulerKind::Factoring => Box::new(Factoring::new(platform, w_total)),
            SchedulerKind::Fsc { error } => Box::new(Fsc::new(platform, w_total, error)),
            SchedulerKind::EqualStatic => Box::new(EqualSingleRound::new(platform, w_total)),
            SchedulerKind::SelfScheduling { unit } => {
                Box::new(UnitSelfScheduling::with_unit(w_total, unit))
            }
            SchedulerKind::HetUmr => Box::new(HetUmr::new(platform, w_total)?),
            SchedulerKind::AdaptiveRumr => Box::new(AdaptiveRumr::new(
                platform,
                w_total,
                AdaptiveConfig::default(),
            )?),
            SchedulerKind::HetRumr(cfg) => Box::new(HetRumr::new(platform, w_total, cfg)?),
            SchedulerKind::OneRound => Box::new(OneRound::new(platform, w_total)?),
            SchedulerKind::Gss => Box::new(Gss::new(platform, w_total)),
            SchedulerKind::Tss => Box::new(Tss::new(platform, w_total)),
        };
        Ok(SchedulerPrototype { proto })
    }

    /// Build the analytic [`Oracle`] for this algorithm on the given
    /// platform and workload, running the *same* planner the scheduler
    /// itself uses so oracle and scheduler agree by construction.
    ///
    /// Returns `Ok(None)` for algorithms without a checkable closed form
    /// (FSC, the equal/self-scheduling baselines, adaptive and
    /// heterogeneous RUMR, GSS, TSS).
    ///
    /// # Errors
    ///
    /// [`BuildError`] when the planner rejects the inputs, exactly as
    /// [`SchedulerKind::build`] would.
    pub fn oracle(
        &self,
        platform: &Platform,
        w_total: f64,
    ) -> Result<Option<Box<dyn Oracle>>, BuildError> {
        self.validate(w_total)?;
        Ok(match *self {
            SchedulerKind::Umr => {
                let umr = Umr::new(platform, w_total)?;
                Some(Box::new(UmrOracle::new(umr.schedule().clone())))
            }
            SchedulerKind::Rumr(cfg) => {
                let rumr = Rumr::new(platform, w_total, cfg)?;
                Some(Box::new(RumrOracle::new(&rumr, platform)))
            }
            SchedulerKind::Mi { installments } => {
                let mi = MultiInstallment::new(platform, w_total, installments)?;
                Some(Box::new(MiOracle::new(mi.schedule().clone(), platform)))
            }
            SchedulerKind::Factoring => {
                Some(Box::new(FactoringOracle::from_platform(platform, w_total)))
            }
            SchedulerKind::HetUmr => {
                let het = HetUmr::new(platform, w_total)?;
                Some(Box::new(HetUmrOracle::new(het.schedule().clone())))
            }
            SchedulerKind::OneRound => {
                let one = OneRound::new(platform, w_total)?;
                Some(Box::new(OneRoundOracle::new(one.schedule().clone())))
            }
            SchedulerKind::Fsc { .. }
            | SchedulerKind::EqualStatic
            | SchedulerKind::SelfScheduling { .. }
            | SchedulerKind::AdaptiveRumr
            | SchedulerKind::HetRumr(_)
            | SchedulerKind::Gss
            | SchedulerKind::Tss => None,
        })
    }
}

/// Object-safe cloning bridge: lets a boxed prototype produce fresh
/// `Box<dyn Scheduler>` copies without exposing `Clone` on the public
/// [`Scheduler`] trait.
trait CloneScheduler: Scheduler + Send + Sync {
    fn clone_scheduler(&self) -> Box<dyn Scheduler>;
    fn clone_prototype(&self) -> Box<dyn CloneScheduler>;
    fn into_scheduler(self: Box<Self>) -> Box<dyn Scheduler>;
}

impl<T: Scheduler + Clone + Send + Sync + 'static> CloneScheduler for T {
    fn clone_scheduler(&self) -> Box<dyn Scheduler> {
        Box::new(self.clone())
    }

    fn clone_prototype(&self) -> Box<dyn CloneScheduler> {
        Box::new(self.clone())
    }

    fn into_scheduler(self: Box<Self>) -> Box<dyn Scheduler> {
        self
    }
}

/// A pre-planned scheduler in its initial state. Created by
/// [`SchedulerKind::prototype`]; every [`SchedulerPrototype::fresh`] call
/// clones it, so the (possibly expensive) planning work is paid once per
/// (platform, workload, kind) instead of once per run.
pub struct SchedulerPrototype {
    proto: Box<dyn CloneScheduler>,
}

impl SchedulerPrototype {
    /// A fresh scheduler in the prototype's initial state.
    pub fn fresh(&self) -> Box<dyn Scheduler> {
        self.proto.clone_scheduler()
    }

    /// Consume the prototype, yielding its scheduler directly (no clone).
    pub fn into_inner(self) -> Box<dyn Scheduler> {
        self.proto.into_scheduler()
    }
}

impl Clone for SchedulerPrototype {
    fn clone(&self) -> Self {
        SchedulerPrototype {
            proto: self.proto.clone_prototype(),
        }
    }
}

impl fmt::Debug for SchedulerPrototype {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "SchedulerPrototype({})", self.proto.name())
    }
}

impl fmt::Display for SchedulerKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.label())
    }
}

/// A typed refusal shared by every scheduler kind: the inputs are invalid
/// regardless of which planner runs. Historically some pull-based planners
/// `panic!`ed on these while the solver-based ones returned errors; the
/// uniform upfront check makes refusal the contract for all kinds.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum PlanError {
    /// The total workload is non-finite or non-positive.
    InvalidWorkload {
        /// The offending workload.
        w_total: f64,
    },
    /// A kind-specific numeric parameter is out of range.
    InvalidParameter {
        /// Name of the offending parameter (e.g. `"unit"`).
        param: &'static str,
        /// The offending value.
        value: f64,
    },
}

impl fmt::Display for PlanError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PlanError::InvalidWorkload { w_total } => {
                write!(f, "workload {w_total} must be finite and positive")
            }
            PlanError::InvalidParameter { param, value } => {
                write!(f, "parameter {param} = {value} is out of range")
            }
        }
    }
}

impl std::error::Error for PlanError {}

/// A scheduler could not be constructed for the given inputs.
#[derive(Debug, Clone, PartialEq)]
pub enum BuildError {
    /// Error from the UMR/RUMR planners.
    Umr(UmrError),
    /// Error from the multi-installment planner.
    Mi(MiError),
    /// Uniform upfront refusal (invalid workload or parameter), before
    /// any planner runs.
    Plan(PlanError),
}

impl fmt::Display for BuildError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BuildError::Umr(e) => write!(f, "UMR planner: {e}"),
            BuildError::Mi(e) => write!(f, "MI planner: {e}"),
            BuildError::Plan(e) => write!(f, "invalid plan inputs: {e}"),
        }
    }
}

impl std::error::Error for BuildError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            BuildError::Umr(e) => Some(e),
            BuildError::Mi(e) => Some(e),
            BuildError::Plan(e) => Some(e),
        }
    }
}

impl From<UmrError> for BuildError {
    fn from(e: UmrError) -> Self {
        BuildError::Umr(e)
    }
}

impl From<MiError> for BuildError {
    fn from(e: MiError) -> Self {
        BuildError::Mi(e)
    }
}

impl From<PlanError> for BuildError {
    fn from(e: PlanError) -> Self {
        BuildError::Plan(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dls_sim::HomogeneousParams;

    fn platform() -> Platform {
        HomogeneousParams::table1(8, 1.5, 0.2, 0.2).build().unwrap()
    }

    #[test]
    fn every_kind_builds_on_table1_platform() {
        let p = platform();
        let kinds = [
            SchedulerKind::rumr_known_error(0.3),
            SchedulerKind::Umr,
            SchedulerKind::Mi { installments: 3 },
            SchedulerKind::Factoring,
            SchedulerKind::Fsc { error: 0.3 },
            SchedulerKind::EqualStatic,
            SchedulerKind::SelfScheduling { unit: 10.0 },
            SchedulerKind::HetUmr,
            SchedulerKind::AdaptiveRumr,
            SchedulerKind::HetRumr(RumrConfig::with_known_error(0.3)),
            SchedulerKind::OneRound,
            SchedulerKind::Gss,
            SchedulerKind::Tss,
        ];
        for kind in kinds {
            let s = kind
                .build(&p, 1000.0)
                .unwrap_or_else(|e| panic!("{kind}: {e}"));
            assert!(!s.name().is_empty());
        }
    }

    #[test]
    fn labels() {
        assert_eq!(SchedulerKind::Umr.label(), "UMR");
        assert_eq!(SchedulerKind::Mi { installments: 2 }.label(), "MI-2");
        assert_eq!(SchedulerKind::rumr_known_error(0.3).label(), "RUMR");
        assert_eq!(
            SchedulerKind::rumr_fixed_fraction(0.8, None).label(),
            "RUMR_80"
        );
        assert_eq!(SchedulerKind::rumr_plain_phase1(0.2).label(), "RUMR-plain");
        assert_eq!(format!("{}", SchedulerKind::Factoring), "Factoring");
    }

    #[test]
    fn oracles_agree_with_their_planners() {
        let p = platform();
        // Closed-form kinds: oracle exists and accounts for the workload.
        let closed = [
            SchedulerKind::Umr,
            SchedulerKind::rumr_known_error(0.3),
            SchedulerKind::Mi { installments: 3 },
            SchedulerKind::Factoring,
            SchedulerKind::HetUmr,
            SchedulerKind::OneRound,
        ];
        for kind in closed {
            let oracle = kind
                .oracle(&p, 1000.0)
                .unwrap_or_else(|e| panic!("{kind}: {e}"))
                .unwrap_or_else(|| panic!("{kind}: expected an oracle"));
            assert!(
                (oracle.planned_work() - 1000.0).abs() < 1e-6 * 1000.0,
                "{kind}: planned {} vs 1000",
                oracle.planned_work()
            );
        }
        // Dynamic kinds: no oracle, but no error either.
        for kind in [
            SchedulerKind::Fsc { error: 0.3 },
            SchedulerKind::Gss,
            SchedulerKind::Tss,
            SchedulerKind::AdaptiveRumr,
        ] {
            assert!(kind.oracle(&p, 1000.0).unwrap().is_none(), "{kind}");
        }
        // Planner failures surface as BuildError, same as build().
        assert!(SchedulerKind::Umr.oracle(&p, -1.0).is_err());
    }

    #[test]
    fn build_errors_propagate() {
        let p = platform();
        // Invalid workloads are refused uniformly, before any planner
        // runs, for every kind.
        let e = match SchedulerKind::Umr.build(&p, -1.0) {
            Err(e) => e,
            Ok(_) => panic!("expected a build error"),
        };
        assert!(matches!(
            e,
            BuildError::Plan(PlanError::InvalidWorkload { .. })
        ));
        assert!(!format!("{e}").is_empty());

        let e = match (SchedulerKind::Mi { installments: 0 }).build(&p, 100.0) {
            Err(e) => e,
            Ok(_) => panic!("expected a build error"),
        };
        assert!(matches!(e, BuildError::Mi(MiError::ZeroInstallments)));
    }

    #[test]
    fn invalid_parameters_are_refused_not_panicked() {
        let p = platform();
        let e = match (SchedulerKind::SelfScheduling { unit: 0.0 }).build(&p, 100.0) {
            Err(e) => e,
            Ok(_) => panic!("expected a build error"),
        };
        assert!(matches!(
            e,
            BuildError::Plan(PlanError::InvalidParameter { param: "unit", .. })
        ));
        let e = match (SchedulerKind::Fsc { error: f64::NAN }).build(&p, 100.0) {
            Err(e) => e,
            Ok(_) => panic!("expected a build error"),
        };
        assert!(matches!(
            e,
            BuildError::Plan(PlanError::InvalidParameter { param: "error", .. })
        ));
        // Oracles share the same gate.
        assert!(SchedulerKind::Factoring.oracle(&p, f64::INFINITY).is_err());
    }
}
