//! Multi-load runs: several divisible loads arbitrated on one scenario.
//!
//! This is the multi-load counterpart of [`RunSpec`](crate::RunSpec): a
//! [`MultiRunSpec`] names the jobs (release, size, per-job scheduler kind,
//! optional per-job recovery), the arbitration [`MultiPolicy`], a seed and
//! an engine configuration; [`Scenario::execute_jobs`] builds one inner
//! scheduler per job, arbitrates them through a
//! [`MultiLoadScheduler`](dls_sched::MultiLoadScheduler), and returns the
//! engine result together with per-job [`JobMetrics`], a
//! [`FairnessSummary`], and the job-level audit findings from
//! [`MultiJobChecker`] (per-job work conservation, release-time
//! compliance, cross-job master exclusivity).
//!
//! The execution path deliberately mirrors the single-load one — same
//! error injector construction, same `simulate` entry — so a
//! [`MultiRunSpec::from_job_set`] with a single job released at 0 is
//! bit-identical to the corresponding [`RunSpec`](crate::RunSpec) run.

use dls_sched::{MultiLoadScheduler, MultiPolicy, Recovering, RecoveryConfig};
use dls_sim::invariants::{InvariantFinding, JobLedgerEntry, MultiJobChecker};
use dls_sim::jobs::JobSet;
use dls_sim::metrics::{FairnessSummary, JobMetrics};
use dls_sim::trace::TraceEvent;
use dls_sim::{simulate, SimConfig, SimResult, TraceMode};

use crate::kind::{BuildError, PlanError, SchedulerKind};
use crate::scenario::{RunError, Scenario};

/// One job of a [`MultiRunSpec`].
#[derive(Debug, Clone, PartialEq)]
pub struct MultiJob {
    /// Simulation time the job becomes available for dispatch.
    pub release: f64,
    /// Total workload units.
    pub size: f64,
    /// Scheduling algorithm planning this job's chunks.
    pub kind: SchedulerKind,
    /// Optional per-job fault-recovery wrapper.
    pub recovery: Option<RecoveryConfig>,
}

impl MultiJob {
    /// A job of `size` units released at `release`, scheduled by `kind`,
    /// no recovery wrapper.
    pub fn new(release: f64, size: f64, kind: SchedulerKind) -> Self {
        MultiJob {
            release,
            size,
            kind,
            recovery: None,
        }
    }

    /// Wrap this job's scheduler in the fault-recovery layer.
    pub fn recovering(mut self, recovery: RecoveryConfig) -> Self {
        self.recovery = Some(recovery);
        self
    }
}

/// A complete multi-load run description: jobs × policy × seed × engine
/// configuration. Build with [`MultiRunSpec::new`] +
/// [`MultiRunSpec::job`], or [`MultiRunSpec::from_job_set`].
#[derive(Debug, Clone, PartialEq)]
pub struct MultiRunSpec {
    /// The jobs, in submission order (FIFO-exclusive serves this order).
    pub jobs: Vec<MultiJob>,
    /// Arbitration policy for the shared master.
    pub policy: MultiPolicy,
    /// RNG seed for the scenario's error injector.
    pub seed: u64,
    /// Engine configuration. `max_concurrent_sends` must stay 1: the
    /// job-attribution mirrors assume the paper's serial master.
    pub config: SimConfig,
}

impl MultiRunSpec {
    /// An empty spec with the given policy, seed 0 and the default engine
    /// configuration.
    pub fn new(policy: MultiPolicy) -> Self {
        MultiRunSpec {
            jobs: Vec::new(),
            policy,
            seed: 0,
            config: SimConfig::default(),
        }
    }

    /// Every job of `set` scheduled by the same `kind` under `policy`.
    pub fn from_job_set(set: &JobSet, kind: SchedulerKind, policy: MultiPolicy) -> Self {
        let mut spec = MultiRunSpec::new(policy);
        for j in set.jobs() {
            spec.jobs.push(MultiJob::new(j.release, j.size, kind));
        }
        spec
    }

    /// Append a job (builder style).
    pub fn job(mut self, job: MultiJob) -> Self {
        self.jobs.push(job);
        self
    }

    /// Set the base seed.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Replace the engine configuration.
    pub fn config(mut self, config: SimConfig) -> Self {
        self.config = config;
        self
    }

    /// Set the observability level of the run.
    pub fn trace_mode(mut self, mode: TraceMode) -> Self {
        self.config.trace_mode = mode;
        self
    }

    /// Set the pending-event queue backend.
    pub fn queue(mut self, backend: dls_sim::QueueBackend) -> Self {
        self.config.queue_backend = backend;
        self
    }

    /// Set the fault model.
    pub fn faults(mut self, faults: dls_sim::FaultModel) -> Self {
        self.config.faults = faults;
        self
    }

    /// Set the declared-vs-realized speed model.
    pub fn speeds(mut self, speeds: dls_sim::SpeedModel) -> Self {
        self.config.speeds = speeds;
        self
    }

    /// Total workload across jobs.
    pub fn total_work(&self) -> f64 {
        self.jobs.iter().map(|j| j.size).sum()
    }

    /// Typed upfront validation: at least one job, valid releases and
    /// sizes, serial master.
    fn validate(&self) -> Result<(), PlanError> {
        if self.jobs.is_empty() {
            return Err(PlanError::InvalidParameter {
                param: "jobs",
                value: 0.0,
            });
        }
        if self.config.max_concurrent_sends != 1 {
            return Err(PlanError::InvalidParameter {
                param: "max_concurrent_sends",
                value: self.config.max_concurrent_sends as f64,
            });
        }
        for j in &self.jobs {
            if !j.release.is_finite() || j.release < 0.0 {
                return Err(PlanError::InvalidParameter {
                    param: "release",
                    value: j.release,
                });
            }
            if !j.size.is_finite() || j.size <= 0.0 {
                return Err(PlanError::InvalidWorkload { w_total: j.size });
            }
        }
        Ok(())
    }
}

/// Everything a multi-load run produced.
#[derive(Debug, Clone)]
pub struct MultiRunResult {
    /// The raw engine result (global makespan, chunk counts, trace,
    /// engine-level audit findings, …).
    pub sim: SimResult,
    /// Per-job completion metrics, in job order.
    pub jobs: Vec<JobMetrics>,
    /// Cross-job fairness summary (max/mean stretch, Jain's index).
    pub fairness: FairnessSummary,
    /// Job-level audit findings from [`MultiJobChecker`]: per-job work
    /// conservation, release-time compliance, and — when a full trace was
    /// recorded — cross-job master exclusivity. Empty = clean.
    pub job_audit: Vec<InvariantFinding>,
}

impl MultiRunResult {
    /// Engine-level plus job-level audit finding count.
    pub fn total_audit_findings(&self) -> usize {
        self.sim.audit.as_deref().map_or(0, <[_]>::len) + self.job_audit.len()
    }
}

/// Relative tolerance for "this job's completed work covers its size".
const COMPLETION_REL_TOL: f64 = 1e-6;

impl Scenario {
    /// Run a multi-load simulation on this scenario's platform and error
    /// model. The scenario's `w_total` is ignored — each job carries its
    /// own size; everything else (platform, error model, cost profile,
    /// temporal noise) applies exactly as in single-load runs.
    ///
    /// # Errors
    ///
    /// [`RunError::Build`] for invalid specs (no jobs, non-serial master,
    /// bad release/size, a kind that rejects the platform);
    /// [`RunError::Sim`] when the engine fails.
    pub fn execute_jobs(&self, spec: &MultiRunSpec) -> Result<MultiRunResult, RunError> {
        spec.validate().map_err(BuildError::from)?;

        let mut multi = MultiLoadScheduler::new(spec.policy);
        for j in &spec.jobs {
            let inner = j.kind.build(&self.platform, j.size)?;
            match j.recovery {
                Some(rc) => {
                    let wrapped = Recovering::with_config(inner, rc).with_declared_rates(
                        crate::scenario::divergence_rates(&self.platform, &rc),
                    );
                    multi.push_job(j.release, j.size, Box::new(wrapped));
                }
                None => multi.push_job(j.release, j.size, inner),
            }
        }

        let sim = simulate(
            &self.platform,
            &mut multi,
            self.injector(spec.seed),
            spec.config.clone(),
        )?;

        let reports = multi.reports();
        let jobs: Vec<JobMetrics> = reports
            .iter()
            .enumerate()
            .map(|(i, r)| {
                let lower_bound = self.platform.makespan_lower_bound(r.size);
                let completed_fully = r.completed >= r.size * (1.0 - COMPLETION_REL_TOL);
                let completion = r.settled.filter(|_| completed_fully);
                let response = completion.map(|c| c - r.release);
                JobMetrics {
                    job: i,
                    release: r.release,
                    size: r.size,
                    first_dispatch: r.first_dispatch,
                    completion,
                    response,
                    stretch: response.map(|t| t / lower_bound),
                    lower_bound,
                    dispatched: r.dispatched,
                    completed: r.completed,
                    lost: r.lost,
                }
            })
            .collect();
        let fairness = FairnessSummary::from_jobs(&jobs);

        // Job-level audit: dispatches straight from the arbiter's log;
        // master-occupation intervals job-tagged by zipping the trace's
        // SendStart/SendEnd pairs with the log (the master is serial, so
        // the k-th SendStart is the k-th logged dispatch).
        let mut checker = MultiJobChecker::new(reports.iter().map(|r| r.release).collect());
        for d in multi.dispatch_log() {
            checker.observe_dispatch(d.job, d.time, d.chunk);
        }
        if let Some(trace) = &sim.trace {
            let mut k = 0usize;
            let mut open: Option<f64> = None;
            for e in trace.events() {
                match *e {
                    TraceEvent::SendStart { time, .. } => open = Some(time),
                    TraceEvent::SendEnd { time, .. } => {
                        if let (Some(start), Some(d)) = (open.take(), multi.dispatch_log().get(k)) {
                            checker.observe_send_interval(d.job, start, time);
                        }
                        k += 1;
                    }
                    _ => {}
                }
            }
        }
        let ledgers: Vec<JobLedgerEntry> = reports
            .iter()
            .map(|r| JobLedgerEntry {
                dispatched: r.dispatched,
                completed: r.completed,
                lost: r.lost,
            })
            .collect();
        let scale = spec.total_work().max(1.0);
        let gave_up = sim.outstanding_work.abs() > 1e-6 * scale;
        let job_audit = checker.finalize(&ledgers, gave_up);

        Ok(MultiRunResult {
            sim,
            jobs,
            fairness,
            job_audit,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dls_sim::jobs::JobSpec;

    fn scenario() -> Scenario {
        Scenario::table1(6, 1.5, 0.2, 0.2, 0.2)
    }

    fn audited(mut config: SimConfig) -> SimConfig {
        config.audit = true;
        config.trace_mode = TraceMode::Full;
        config
    }

    #[test]
    fn spec_validation_is_typed() {
        let s = scenario();
        let empty = MultiRunSpec::new(MultiPolicy::FifoExclusive);
        assert!(matches!(
            s.execute_jobs(&empty),
            Err(RunError::Build(BuildError::Plan(_)))
        ));

        let bad_release = MultiRunSpec::new(MultiPolicy::FifoExclusive).job(MultiJob::new(
            -1.0,
            100.0,
            SchedulerKind::Factoring,
        ));
        assert!(matches!(
            s.execute_jobs(&bad_release),
            Err(RunError::Build(BuildError::Plan(
                PlanError::InvalidParameter {
                    param: "release",
                    ..
                }
            )))
        ));

        let mut concurrent = MultiRunSpec::new(MultiPolicy::FifoExclusive).job(MultiJob::new(
            0.0,
            100.0,
            SchedulerKind::Factoring,
        ));
        concurrent.config.max_concurrent_sends = 2;
        assert!(matches!(
            s.execute_jobs(&concurrent),
            Err(RunError::Build(BuildError::Plan(
                PlanError::InvalidParameter {
                    param: "max_concurrent_sends",
                    ..
                }
            )))
        ));
    }

    #[test]
    fn three_jobs_complete_with_clean_audit() {
        let s = scenario();
        for policy in MultiPolicy::ALL {
            let spec = MultiRunSpec::new(policy)
                .job(MultiJob::new(0.0, 400.0, SchedulerKind::Factoring))
                .job(MultiJob::new(30.0, 200.0, SchedulerKind::Factoring))
                .job(MultiJob::new(60.0, 100.0, SchedulerKind::Factoring))
                .seed(7)
                .config(audited(SimConfig::default()));
            let r = s.execute_jobs(&spec).unwrap_or_else(|e| {
                panic!("{}: {e}", policy.label());
            });
            assert_eq!(r.jobs.len(), 3);
            assert!(r.job_audit.is_empty(), "{:?}", r.job_audit);
            assert_eq!(r.sim.audit.as_deref(), Some(&[][..]));
            for j in &r.jobs {
                assert!(
                    (j.completed - j.size).abs() < 1e-6 * j.size,
                    "job {} under-completed: {} of {}",
                    j.job,
                    j.completed,
                    j.size
                );
                let response = j.response.expect("job completed");
                assert!(
                    response >= j.lower_bound - 1e-9,
                    "job {} response {response} beats the analytic bound {}",
                    j.job,
                    j.lower_bound
                );
                assert!(j.stretch.unwrap() >= 1.0 - 1e-9);
                assert!(j.completion.unwrap() >= j.release);
            }
            assert_eq!(r.fairness.completed_jobs, 3);
            assert!(r.fairness.jain_index > 0.0 && r.fairness.jain_index <= 1.0 + 1e-12);
            // The global makespan dominates the oracle-style set bound.
            let set = JobSet::new(
                spec.jobs
                    .iter()
                    .map(|j| JobSpec::new(j.release, j.size))
                    .collect(),
            )
            .unwrap();
            assert!(r.sim.makespan >= set.makespan_lower_bound(&s.platform) - 1e-9);
        }
    }

    #[test]
    fn staggered_release_respects_release_times() {
        let s = scenario();
        let spec = MultiRunSpec::new(MultiPolicy::RoundRobin)
            .job(MultiJob::new(0.0, 100.0, SchedulerKind::Factoring))
            .job(MultiJob::new(200.0, 100.0, SchedulerKind::Factoring))
            .config(audited(SimConfig::default()));
        let r = s.execute_jobs(&spec).unwrap();
        assert!(r.job_audit.is_empty(), "{:?}", r.job_audit);
        // Job 1 cannot start before its release, even on an idle platform.
        assert!(r.jobs[1].first_dispatch.unwrap() >= 200.0 - 1e-9);
        // The idle gap between job 0's end and job 1's release must not
        // deadlock (this exercises Decision::WaitUntil + Event::Timer).
        assert!(r.sim.makespan > 200.0);
    }
}
