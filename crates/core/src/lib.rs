//! # rumr — Robust scheduling for divisible workloads
//!
//! A production-quality Rust implementation of **RUMR** (Robust Uniform
//! Multi-Round, Yang & Casanova, HPDC 2003), together with every algorithm
//! and substrate its evaluation depends on:
//!
//! * a discrete-event master–worker platform simulator with the paper's
//!   latency model and prediction-error injection ([`dls_sim`], re-exported
//!   as [`sim`]);
//! * UMR, RUMR, multi-installment (MI-x), Factoring, FSC and baseline
//!   schedulers ([`dls_sched`], re-exported as [`sched`]);
//! * a uniform experiment API: [`Scenario`] × [`SchedulerKind`] × seed.
//!
//! # Quickstart
//!
//! ```
//! use rumr::{RunSpec, Scenario, SchedulerKind};
//!
//! // 20 workers, B = 1.8·N, cLat = 0.3 s, nLat = 0.1 s, 25 % prediction error.
//! let scenario = Scenario::table1(20, 1.8, 0.3, 0.1, 0.25);
//!
//! let rumr = scenario
//!     .execute(&RunSpec::new(SchedulerKind::rumr_known_error(0.25)).seed(42))
//!     .unwrap();
//! let umr = scenario.execute(&RunSpec::new(SchedulerKind::Umr).seed(42)).unwrap();
//!
//! println!("RUMR: {:.2} s, UMR: {:.2} s", rumr.makespan, umr.makespan);
//! assert!(rumr.makespan > 0.0 && umr.makespan > 0.0);
//! ```
//!
//! Deterministic, model-conforming runs of schedulers with an exact
//! analytic oracle can skip the simulation entirely — see
//! [`FastPath`](fastpath::FastPath):
//!
//! ```
//! use rumr::{FastPath, RunSpec, Scenario, SchedulerKind};
//!
//! let scenario = Scenario::table1(20, 1.8, 0.3, 0.1, 0.0); // error-free
//! let spec = RunSpec::new(SchedulerKind::Umr);
//! let decision = FastPath::resolve(&scenario, &spec).unwrap();
//! let answer = decision.analytic().expect("UMR's oracle is exact");
//! let engine = scenario.execute(&spec).unwrap();
//! assert!(answer.agrees_with(engine.makespan));
//! ```
//!
//! # Picking an algorithm
//!
//! * Predictions reliable (`error ≈ 0`): [`SchedulerKind::Umr`] — optimal
//!   multi-round overlap, automatically chosen round count.
//! * Predictions noisy, magnitude known: `SchedulerKind::rumr_known_error`
//!   — UMR's overlap for the bulk of the workload, factoring for the tail.
//! * Magnitude unknown: `SchedulerKind::Rumr(RumrConfig::default())` — the
//!   80/20 split the paper's §5.2.1 recommends.
//! * No predictions at all: [`SchedulerKind::Factoring`].

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod fastpath;
pub mod kind;
pub mod multirun;
pub mod scenario;

pub use fastpath::{FastPath, FastPathAnswer, FastPathDecision, FastPathMiss};
pub use kind::{BuildError, PlanError, SchedulerKind, SchedulerPrototype};
pub use multirun::{MultiJob, MultiRunResult, MultiRunSpec};
pub use scenario::{RobustnessReport, RunError, RunSpec, Scenario, ScenarioRunner};

pub use dls_sched as sched;
pub use dls_sched::{
    MultiLoadScheduler, MultiPolicy, Oracle, Prediction, Recovering, RecoveryConfig, RoundTiming,
    RumrConfig, UmrInputs, UmrSchedule,
};
pub use dls_sim as sim;
pub use dls_sim::{
    ErrorModel, EventCounts, FairnessSummary, FaultModel, FaultPlan, HomogeneousParams, JobMetrics,
    JobSet, JobSetError, JobSpec, MetricsSummary, Platform, PlatformError, PoissonFaults,
    QueueBackend, RealizedSpeeds, RepColumns, SimConfig, SimResult, SpeedModel, TraceMetrics,
    TraceMode, WorkerSpec,
};
