//! Scenario definition and simulation entry points.
//!
//! A [`Scenario`] bundles everything that defines one experimental setting —
//! platform, workload, and error model — so a single run is fully determined
//! by (scenario, algorithm, seed). This is the API the experiment harness,
//! the examples and downstream users drive.
//!
//! All execution flows through one unified request type, [`RunSpec`]: build
//! a spec once (scheduler kind, seed, engine configuration, optional fault
//! recovery, optional pre-planned prototype) and hand it to
//! [`Scenario::execute`] for a one-shot run, [`ScenarioRunner::execute`]
//! for allocation-free repetition loops, or
//! [`ScenarioRunner::execute_batch`] to run a whole repetition batch
//! through one engine pass into reused [`RepColumns`] buffers.
//!
//! The legacy `run_*` helpers are retired behind the default-off
//! `legacy-api` cargo feature: they remain thin forwarding wrappers over
//! the same code path (bit-identical, as the feature-gated equivalence
//! tests pin), but new code must build a [`RunSpec`].

use dls_sched::recovery::{Recovering, RecoveryConfig};
use dls_sim::{
    simulate, CostProfile, Engine, ErrorInjector, ErrorModel, FaultModel, Platform, QueueBackend,
    RepColumns, Scheduler, SimConfig, SimError, SimResult, SpeedModel, TraceMode, WorkerSpec,
};

use crate::kind::{BuildError, SchedulerKind, SchedulerPrototype};

/// A complete, self-contained description of what to run: which scheduler,
/// under which engine configuration, from which seed, for how many
/// repetitions, with or without fault recovery.
///
/// Built fluently:
///
/// ```
/// use rumr::{RunSpec, Scenario, SchedulerKind};
/// use rumr::sim::TraceMode;
///
/// let scenario = Scenario::table1(10, 1.5, 0.2, 0.2, 0.3);
/// let spec = RunSpec::new(SchedulerKind::rumr_known_error(0.3))
///     .seed(42)
///     .trace_mode(TraceMode::MetricsOnly);
/// let result = scenario.execute(&spec).unwrap();
/// assert!(result.makespan > 0.0);
/// ```
///
/// A spec with a [`SchedulerPrototype`] attached
/// ([`RunSpec::with_prototype`]) stamps out pre-planned schedulers instead
/// of re-running the planner per execution; results are bit-identical
/// either way. Equality ([`PartialEq`]) deliberately ignores the prototype:
/// it is derived planning state for `kind` on some platform, not part of
/// the request's identity.
#[derive(Debug, Clone)]
pub struct RunSpec {
    /// Scheduling algorithm to run.
    pub kind: SchedulerKind,
    /// Base RNG seed; repetition `i` runs with `seed + i`.
    pub seed: u64,
    /// Number of seeded repetitions for [`Scenario::execute_mean`]
    /// (single-run entry points use only `seed`). Must be ≥ 1.
    pub reps: u64,
    /// Engine configuration (trace mode, fault model, queue backend, …).
    pub config: SimConfig,
    /// When set, the scheduler is wrapped in the fault-recovery layer
    /// ([`Recovering`]) with this policy.
    pub recovery: Option<RecoveryConfig>,
    /// Optional pre-planned scheduler (see [`SchedulerKind::prototype`]):
    /// executions clone it instead of re-running the planner.
    pub prototype: Option<SchedulerPrototype>,
}

impl RunSpec {
    /// A spec for `kind` with seed 0, one repetition, the default engine
    /// configuration, no recovery and no prototype.
    pub fn new(kind: SchedulerKind) -> Self {
        RunSpec {
            kind,
            seed: 0,
            reps: 1,
            config: SimConfig::default(),
            recovery: None,
            prototype: None,
        }
    }

    /// Set the base seed.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Set the repetition count (seeds `seed..seed + reps`).
    ///
    /// # Panics
    ///
    /// Panics if `reps == 0`.
    pub fn reps(mut self, reps: u64) -> Self {
        assert!(reps > 0, "need at least one repetition");
        self.reps = reps;
        self
    }

    /// Replace the whole engine configuration.
    pub fn config(mut self, config: SimConfig) -> Self {
        self.config = config;
        self
    }

    /// Set the observability level of the run.
    pub fn trace_mode(mut self, mode: TraceMode) -> Self {
        self.config.trace_mode = mode;
        self
    }

    /// Set the pending-event queue backend.
    pub fn queue(mut self, backend: QueueBackend) -> Self {
        self.config.queue_backend = backend;
        self
    }

    /// Set the runaway-scheduler event limit.
    pub fn max_events(mut self, max_events: u64) -> Self {
        self.config.max_events = max_events;
        self
    }

    /// Set the fault model.
    pub fn faults(mut self, faults: FaultModel) -> Self {
        self.config.faults = faults;
        self
    }

    /// Set the declared-vs-realized speed model: the engine executes at
    /// the realized rates while the scheduler keeps planning on the
    /// declared platform. [`SpeedModel::Declared`] (the default) is a
    /// strict no-op.
    pub fn speeds(mut self, speeds: SpeedModel) -> Self {
        self.config.speeds = speeds;
        self
    }

    /// Wrap the scheduler in the fault-recovery layer with this policy.
    pub fn recovering(mut self, recovery: RecoveryConfig) -> Self {
        self.recovery = Some(recovery);
        self
    }

    /// Attach a pre-planned prototype; executions clone it instead of
    /// re-running the planner. The prototype must have been planned for
    /// the same `kind` and the platform/workload the spec will run on.
    pub fn with_prototype(mut self, prototype: SchedulerPrototype) -> Self {
        self.prototype = Some(prototype);
        self
    }

    /// The repetition seeds, `seed..seed + reps`.
    pub fn seeds(&self) -> std::ops::Range<u64> {
        self.seed..self.seed + self.reps
    }

    /// A fresh scheduler instance for this spec: a clone of the attached
    /// prototype when present, otherwise a new build of `kind`.
    pub fn instantiate(
        &self,
        platform: &Platform,
        w_total: f64,
    ) -> Result<Box<dyn Scheduler>, BuildError> {
        match &self.prototype {
            Some(proto) => Ok(proto.fresh()),
            None => self.kind.build(platform, w_total),
        }
    }
}

impl PartialEq for RunSpec {
    /// Request identity: everything except the (derived) prototype.
    fn eq(&self, other: &Self) -> bool {
        self.kind == other.kind
            && self.seed == other.seed
            && self.reps == other.reps
            && self.config == other.config
            && self.recovery == other.recovery
    }
}

/// How much a run lost to planning on declared rather than realized rates
/// (speed-robust scheduling's price of non-clairvoyance).
///
/// Produced by [`Scenario::robustness`]. The *clairvoyant* reference is
/// the better of (a) a twin run whose planner saw the realized platform
/// and (b) the realized run itself — the realized execution is one
/// schedule a clairvoyant planner could have emitted, so taking the min
/// makes `ratio ≥ 1` hold by construction (up to float noise) even when
/// the replanning twin happens to do worse.
#[derive(Debug, Clone, PartialEq)]
pub struct RobustnessReport {
    /// Makespan of the run that planned on declared rates but executed at
    /// realized ones.
    pub realized_makespan: f64,
    /// Best clairvoyant twin makespan (same seed, planner fed the
    /// realized platform): the minimum over the same-kind twin and a
    /// heterogeneity-aware [`SchedulerKind::HetUmr`] twin, skipping twins
    /// that cannot be built on the realized platform (e.g.
    /// homogeneous-only UMR after a heterogeneous revelation). `None`
    /// when no twin builds at all.
    pub replanned_makespan: Option<f64>,
    /// The clairvoyant reference: `min(replanned, realized)`.
    pub clairvoyant_makespan: f64,
    /// Robustness ratio `realized / clairvoyant` (≥ 1).
    pub ratio: f64,
    /// Analytic makespan lower bound of the *realized* platform
    /// ([`Platform::makespan_lower_bound`]): no error-free schedule,
    /// clairvoyant or not, can beat it. A noisy run can land below it
    /// when prediction errors happen to speed chunks up.
    pub analytic_lower_bound: f64,
}

/// One experimental setting: platform + workload + error model.
#[derive(Debug, Clone)]
pub struct Scenario {
    /// The computing platform.
    pub platform: Platform,
    /// Total divisible workload, in units.
    pub w_total: f64,
    /// Prediction-error model applied during execution.
    pub error_model: ErrorModel,
    /// Optional trace-driven cost profile: computation times are scaled by
    /// the actual per-unit costs of the chunk's range (§6's "traces from
    /// real applications"), with `error_model` acting as platform noise on
    /// top. `None` uses the pure distribution model of the paper's
    /// evaluation.
    pub cost_profile: Option<CostProfile>,
    /// Optional temporally correlated per-worker load noise (tests the
    /// paper's §4.1 stationarity assumption). `None` keeps errors i.i.d.
    pub temporal_noise: Option<dls_sim::TemporalNoise>,
}

impl Scenario {
    /// A scenario on the paper's Table 1 homogeneous grid: `N = n` workers,
    /// `S = 1`, `B = ratio·n`, `W = 1000`, `tLat = 0`, truncated-normal
    /// errors of the given magnitude.
    pub fn table1(n: usize, ratio: f64, comp_latency: f64, net_latency: f64, error: f64) -> Self {
        let platform = dls_sim::HomogeneousParams::table1(n, ratio, comp_latency, net_latency)
            .build()
            .expect("Table 1 parameters are valid");
        Scenario {
            platform,
            w_total: 1000.0,
            error_model: if error > 0.0 {
                ErrorModel::TruncatedNormal { error }
            } else {
                ErrorModel::None
            },
            cost_profile: None,
            temporal_noise: None,
        }
    }

    /// A pinned heterogeneous star platform: worker speeds, link rates and
    /// latencies vary deterministically with the worker index (no RNG), so
    /// runs on it are bit-for-bit reproducible. Used by the benchmark
    /// snapshot suite and the golden-value regression tests.
    pub fn heterogeneous_demo(n: usize, error: f64) -> Self {
        assert!(n >= 1, "need at least one worker");
        let workers = (0..n)
            .map(|i| {
                let f = i as f64 / n as f64;
                WorkerSpec {
                    speed: 0.6 + 1.2 * f,
                    bandwidth: 1.5 * n as f64 * (0.5 + f),
                    comp_latency: 0.1 + 0.2 * f,
                    net_latency: 0.1,
                    transfer_latency: 0.0,
                }
            })
            .collect();
        let platform = Platform::new(workers).expect("demo platform is valid");
        Scenario {
            platform,
            w_total: 1000.0,
            error_model: if error > 0.0 {
                ErrorModel::TruncatedNormal { error }
            } else {
                ErrorModel::None
            },
            cost_profile: None,
            temporal_noise: None,
        }
    }

    /// The error magnitude of the scenario's error model.
    pub fn error(&self) -> f64 {
        self.error_model.magnitude()
    }

    /// A reusable runner over this scenario: one [`Engine`] whose buffers
    /// (event heap, ledger, worker queues, view snapshot) persist across
    /// runs, so repetition loops stop paying per-run allocation. Used by
    /// the sweep harness; results are bit-identical to
    /// [`Scenario::execute`].
    pub fn runner(&self, config: SimConfig) -> ScenarioRunner<'_> {
        let engine = Engine::new(
            &self.platform,
            ErrorInjector::new(ErrorModel::None, 0),
            config.clone(),
        );
        ScenarioRunner {
            scenario: self,
            engine,
            config,
        }
    }

    /// Run one simulation as described by `spec` (the unified entry point).
    ///
    /// Builds a fresh engine; for repetition loops prefer
    /// [`ScenarioRunner::execute`], which reuses one. Results are
    /// bit-identical between the two.
    pub fn execute(&self, spec: &RunSpec) -> Result<SimResult, RunError> {
        let mut scheduler = spec.instantiate(&self.platform, self.w_total)?;
        match spec.recovery {
            Some(recovery) => {
                let mut wrapped = Recovering::with_config(scheduler, recovery)
                    .with_declared_rates(divergence_rates(&self.platform, &recovery));
                Ok(simulate(
                    &self.platform,
                    &mut wrapped,
                    self.injector(spec.seed),
                    spec.config.clone(),
                )?)
            }
            None => Ok(simulate(
                &self.platform,
                scheduler.as_mut(),
                self.injector(spec.seed),
                spec.config.clone(),
            )?),
        }
    }

    /// Mean makespan over the spec's repetitions (seeds
    /// [`RunSpec::seeds`]), via one reused engine.
    ///
    /// # Panics
    ///
    /// Panics if `spec.reps == 0`.
    pub fn execute_mean(&self, spec: &RunSpec) -> Result<f64, RunError> {
        assert!(spec.reps > 0, "need at least one repetition");
        let mut runner = self.runner(spec.config.clone());
        let mut cols = RepColumns::new();
        runner.execute_batch(spec, &mut cols)?;
        Ok(cols.mean_makespan())
    }

    /// Run the spec's whole repetition batch (seeds [`RunSpec::seeds`])
    /// through one engine pass and return the results as column buffers —
    /// see [`ScenarioRunner::execute_batch`], which this wraps with a
    /// fresh runner and fresh columns.
    pub fn execute_batch(&self, spec: &RunSpec) -> Result<RepColumns, RunError> {
        let mut runner = self.runner(spec.config.clone());
        let mut cols = RepColumns::with_capacity(spec.reps as usize, self.platform.num_workers());
        runner.execute_batch(spec, &mut cols)?;
        Ok(cols)
    }

    /// Measure how much `spec`'s run at `seed` lost to planning blind:
    /// re-run with the planner fed the *realized* platform of
    /// `spec.config.speeds` (same seed, same error model, same faults and
    /// recovery policy — only the plan-time knowledge changes) and compare
    /// makespans.
    ///
    /// Two clairvoyant twins compete for the reference: the same scheduler
    /// kind replanned on realized rates, and a [`SchedulerKind::HetUmr`]
    /// twin. The second matters because most of the paper's planners are
    /// homogeneous (they either refuse to build on a heterogeneous
    /// realized platform, or size chunks without looking at per-worker
    /// speeds, reproducing the blind plan exactly) — without a
    /// heterogeneity-aware twin the reference would degenerate to the
    /// realized makespan itself and every ratio would read 1. The realized
    /// run is itself clairvoyant-achievable, so the reference is the
    /// minimum of both twins and `realized_makespan`, which keeps the
    /// ratio ≥ 1 by construction.
    ///
    /// `realized_makespan` is the makespan the caller already obtained by
    /// executing `spec` at `seed`. Returns `None` when the spec's speed
    /// model is [`SpeedModel::Declared`] — there is nothing to reveal, so
    /// no robustness question to ask.
    ///
    /// The attached prototype (if any) is dropped for the twins: it was
    /// planned against declared rates, and the twins' whole point is to
    /// plan against realized ones.
    pub fn robustness(
        &self,
        spec: &RunSpec,
        seed: u64,
        realized_makespan: f64,
    ) -> Option<RobustnessReport> {
        let speeds = spec.config.speeds;
        if !speeds.is_active() {
            return None;
        }
        let platform = speeds
            .realized_platform(&self.platform)
            .expect("realized factors are floored, so the platform stays valid");
        let analytic_lower_bound = platform.makespan_lower_bound(self.w_total);
        let clairvoyant = Scenario {
            platform,
            ..self.clone()
        };
        let mut twin = spec.clone().seed(seed).reps(1).speeds(SpeedModel::Declared);
        twin.prototype = None;
        let mut het_twin = twin.clone();
        het_twin.kind = SchedulerKind::HetUmr;
        let replanned_makespan = [twin, het_twin]
            .iter()
            .filter_map(|t| clairvoyant.execute(t).ok())
            .map(|r| r.makespan)
            .fold(None, |best: Option<f64>, m| {
                Some(best.map_or(m, |b| b.min(m)))
            });
        let clairvoyant_makespan = match replanned_makespan {
            Some(m) => m.min(realized_makespan),
            None => realized_makespan,
        };
        let ratio = if clairvoyant_makespan > 0.0 {
            realized_makespan / clairvoyant_makespan
        } else {
            1.0
        };
        Some(RobustnessReport {
            realized_makespan,
            replanned_makespan,
            clairvoyant_makespan,
            ratio,
            analytic_lower_bound,
        })
    }

    /// Run one simulation.
    ///
    /// Legacy wrapper over [`Scenario::execute`] (bit-identical), kept
    /// only under the `legacy-api` feature; build a [`RunSpec`] instead.
    #[cfg(feature = "legacy-api")]
    pub fn run(&self, kind: &SchedulerKind, seed: u64) -> Result<SimResult, RunError> {
        self.execute(&RunSpec::new(*kind).seed(seed))
    }

    /// Run one simulation and record the full event trace.
    ///
    /// Legacy wrapper over [`Scenario::execute`] (bit-identical), kept
    /// only under the `legacy-api` feature; prefer
    /// `RunSpec::new(kind).trace_mode(TraceMode::Full)`.
    #[cfg(feature = "legacy-api")]
    pub fn run_traced(&self, kind: &SchedulerKind, seed: u64) -> Result<SimResult, RunError> {
        self.execute(&RunSpec::new(*kind).seed(seed).trace_mode(TraceMode::Full))
    }

    /// Run under the concurrent-transfer extension: up to `max_sends`
    /// simultaneous master transfers sharing `uplink_capacity` (units/s)
    /// max-min fairly. `max_sends = 1` is the paper's serial model.
    ///
    /// Legacy wrapper over [`Scenario::execute`] (bit-identical), kept
    /// only under the `legacy-api` feature; prefer a [`RunSpec`] with the
    /// fields set on its `config`.
    #[cfg(feature = "legacy-api")]
    pub fn run_concurrent(
        &self,
        kind: &SchedulerKind,
        seed: u64,
        max_sends: usize,
        uplink_capacity: Option<f64>,
    ) -> Result<SimResult, RunError> {
        self.execute(&RunSpec::new(*kind).seed(seed).config(SimConfig {
            max_concurrent_sends: max_sends,
            uplink_capacity,
            ..Default::default()
        }))
    }

    /// Run under a fault model (worker crashes, link drops — see
    /// `dls_sim::faults`). The scheduler is used as-is; plain schedulers
    /// lose the destroyed work and under-complete. Wrap with
    /// [`Scenario::run_recovering`] for full completion.
    ///
    /// Legacy wrapper over [`Scenario::execute`] (bit-identical), kept
    /// only under the `legacy-api` feature; prefer
    /// `RunSpec::new(kind).faults(faults)`.
    #[cfg(feature = "legacy-api")]
    pub fn run_with_faults(
        &self,
        kind: &SchedulerKind,
        seed: u64,
        faults: FaultModel,
    ) -> Result<SimResult, RunError> {
        self.execute(&RunSpec::new(*kind).seed(seed).faults(faults))
    }

    /// Run with the scheduler wrapped in the fault-recovery layer
    /// (`dls_sched::recovery::Recovering`): lost work is redispatched and
    /// dispatches are routed around dead workers. Pass the fault model via
    /// `config.faults`.
    ///
    /// Legacy wrapper over [`Scenario::execute`] (bit-identical), kept
    /// only under the `legacy-api` feature; prefer
    /// `RunSpec::new(kind).config(config).recovering(recovery)`.
    #[cfg(feature = "legacy-api")]
    pub fn run_recovering(
        &self,
        kind: &SchedulerKind,
        seed: u64,
        config: SimConfig,
        recovery: RecoveryConfig,
    ) -> Result<SimResult, RunError> {
        self.execute(
            &RunSpec::new(*kind)
                .seed(seed)
                .config(config)
                .recovering(recovery),
        )
    }

    /// Run with an explicit engine configuration.
    ///
    /// Legacy wrapper over [`Scenario::execute`] (bit-identical), kept
    /// only under the `legacy-api` feature; prefer
    /// `RunSpec::new(kind).config(config)`.
    #[cfg(feature = "legacy-api")]
    pub fn run_with_config(
        &self,
        kind: &SchedulerKind,
        seed: u64,
        config: SimConfig,
    ) -> Result<SimResult, RunError> {
        self.execute(&RunSpec::new(*kind).seed(seed).config(config))
    }

    /// The scenario's seeded error injector.
    pub(crate) fn injector(&self, seed: u64) -> ErrorInjector {
        let mut injector = match &self.cost_profile {
            Some(profile) => ErrorInjector::with_profile(self.error_model, seed, profile.clone()),
            None => ErrorInjector::new(self.error_model, seed),
        };
        if let Some(noise) = self.temporal_noise {
            injector = injector.with_temporal_noise(noise);
        }
        injector
    }

    /// Mean makespan of `kind` over `reps` seeded repetitions
    /// (seeds `seed_base..seed_base + reps`).
    ///
    /// Legacy wrapper over [`Scenario::execute_mean`] (bit-identical),
    /// kept only under the `legacy-api` feature; prefer
    /// `RunSpec::new(kind).seed(seed_base).reps(reps)`.
    #[cfg(feature = "legacy-api")]
    pub fn mean_makespan(
        &self,
        kind: &SchedulerKind,
        seed_base: u64,
        reps: u64,
    ) -> Result<f64, RunError> {
        self.execute_mean(&RunSpec::new(*kind).seed(seed_base).reps(reps))
    }
}

/// Repeated-run handle created by [`Scenario::runner`]. Holds one engine
/// and resets it between runs instead of rebuilding it, eliminating
/// per-repetition allocation in sweep and benchmark loops.
pub struct ScenarioRunner<'a> {
    scenario: &'a Scenario,
    engine: Engine<'a>,
    config: SimConfig,
}

impl ScenarioRunner<'_> {
    /// Run one simulation as described by `spec`, reusing the engine's
    /// buffers (the unified entry point; bit-identical to
    /// [`Scenario::execute`]).
    ///
    /// The engine is rebuilt only when `spec.config` differs from the
    /// configuration of the previous run, so homogeneous repetition loops
    /// stay allocation-free.
    pub fn execute(&mut self, spec: &RunSpec) -> Result<SimResult, RunError> {
        self.execute_at(spec, spec.seed)
    }

    /// [`ScenarioRunner::execute`] with the seed overridden — the
    /// sequential repetition-loop primitive (one scheduler instantiation
    /// and one engine pass per call). Prefer
    /// [`ScenarioRunner::execute_batch`] for whole batches.
    pub fn execute_at(&mut self, spec: &RunSpec, seed: u64) -> Result<SimResult, RunError> {
        self.ensure_config(spec);
        let scheduler = spec.instantiate(&self.scenario.platform, self.scenario.w_total)?;
        self.run_pieces(scheduler, seed, spec.recovery)
    }

    /// Run the spec's whole repetition batch (seeds [`RunSpec::seeds`])
    /// through one engine pass, appending one column row per repetition to
    /// `cols`.
    ///
    /// Two structural savings over calling [`ScenarioRunner::execute`] in
    /// a loop, with bit-identical results (pinned by the batch-equivalence
    /// tests):
    ///
    /// * the planner runs **once per batch** — repetitions stamp out
    ///   clones of one prototype (the spec's own, when attached) instead
    ///   of re-planning per seed;
    /// * per-repetition result vectors land in the reused, batch-sized
    ///   [`RepColumns`] buffers instead of fresh allocations
    ///   ([`Engine::run_reusing_into`]).
    ///
    /// `cols` may already hold rows (batches append), as long as they are
    /// for the same worker count.
    pub fn execute_batch(&mut self, spec: &RunSpec, cols: &mut RepColumns) -> Result<(), RunError> {
        self.ensure_config(spec);
        let planned;
        let proto = match &spec.prototype {
            Some(p) => p,
            None => {
                planned = spec
                    .kind
                    .prototype(&self.scenario.platform, self.scenario.w_total)?;
                &planned
            }
        };
        cols.reserve(spec.reps as usize, self.scenario.platform.num_workers());
        for seed in spec.seeds() {
            self.engine.reset(self.scenario.injector(seed));
            let mut scheduler = proto.fresh();
            match spec.recovery {
                Some(rc) => {
                    let mut wrapped = Recovering::with_config(scheduler, rc)
                        .with_declared_rates(divergence_rates(&self.scenario.platform, &rc));
                    self.engine.run_reusing_into(&mut wrapped, cols)?;
                }
                None => self.engine.run_reusing_into(scheduler.as_mut(), cols)?,
            }
        }
        Ok(())
    }

    /// Rebuild the engine when `spec.config` differs from the previous
    /// run's configuration (homogeneous repetition loops stay
    /// allocation-free).
    fn ensure_config(&mut self, spec: &RunSpec) {
        if spec.config != self.config {
            self.config = spec.config.clone();
            let scenario = self.scenario;
            self.engine = Engine::new(
                &scenario.platform,
                ErrorInjector::new(ErrorModel::None, 0),
                spec.config.clone(),
            );
        }
    }

    /// Shared execution tail: reset the engine to `seed`, optionally wrap
    /// the scheduler in the recovery layer, run. Every public entry point
    /// of the runner funnels through here.
    fn run_pieces(
        &mut self,
        mut scheduler: Box<dyn Scheduler>,
        seed: u64,
        recovery: Option<RecoveryConfig>,
    ) -> Result<SimResult, RunError> {
        self.engine.reset(self.scenario.injector(seed));
        match recovery {
            Some(rc) => {
                let mut wrapped = Recovering::with_config(scheduler, rc)
                    .with_declared_rates(divergence_rates(&self.scenario.platform, &rc));
                Ok(self.engine.run_reusing(&mut wrapped)?)
            }
            None => Ok(self.engine.run_reusing(scheduler.as_mut())?),
        }
    }

    /// Run one simulation, reusing the engine's buffers.
    ///
    /// Legacy wrapper over [`ScenarioRunner::execute`] (bit-identical),
    /// kept only under the `legacy-api` feature; build a [`RunSpec`]
    /// instead.
    #[cfg(feature = "legacy-api")]
    pub fn run(&mut self, kind: &SchedulerKind, seed: u64) -> Result<SimResult, RunError> {
        let scheduler = kind.build(&self.scenario.platform, self.scenario.w_total)?;
        self.run_pieces(scheduler, seed, None)
    }

    /// Pre-plan a scheduler for this runner's scenario (see
    /// [`SchedulerKind::prototype`]). Pair with
    /// [`RunSpec::with_prototype`] (or [`ScenarioRunner::run_prototype`])
    /// in repetition loops to pay the planner cost once instead of per run.
    pub fn prototype(&self, kind: &SchedulerKind) -> Result<SchedulerPrototype, RunError> {
        Ok(kind.prototype(&self.scenario.platform, self.scenario.w_total)?)
    }

    /// Run one simulation from a pre-planned prototype, reusing the
    /// engine's buffers.
    ///
    /// Legacy wrapper over [`ScenarioRunner::execute`] (bit-identical),
    /// kept only under the `legacy-api` feature; prefer
    /// `RunSpec::with_prototype`.
    #[cfg(feature = "legacy-api")]
    pub fn run_prototype(
        &mut self,
        proto: &SchedulerPrototype,
        seed: u64,
    ) -> Result<SimResult, RunError> {
        self.run_pieces(proto.fresh(), seed, None)
    }

    /// Run one simulation with the scheduler wrapped in the fault-recovery
    /// layer, reusing the engine's buffers.
    ///
    /// Legacy wrapper over [`ScenarioRunner::execute`] (bit-identical),
    /// kept only under the `legacy-api` feature; prefer
    /// `RunSpec::recovering`.
    #[cfg(feature = "legacy-api")]
    pub fn run_recovering(
        &mut self,
        kind: &SchedulerKind,
        seed: u64,
        recovery: RecoveryConfig,
    ) -> Result<SimResult, RunError> {
        let scheduler = kind.build(&self.scenario.platform, self.scenario.w_total)?;
        self.run_pieces(scheduler, seed, Some(recovery))
    }

    /// Run one simulation from a pre-planned prototype wrapped in the
    /// fault-recovery layer, reusing the engine's buffers.
    ///
    /// Legacy wrapper over [`ScenarioRunner::execute`] (bit-identical),
    /// kept only under the `legacy-api` feature; prefer
    /// `RunSpec::with_prototype` + `RunSpec::recovering`.
    #[cfg(feature = "legacy-api")]
    pub fn run_recovering_prototype(
        &mut self,
        proto: &SchedulerPrototype,
        seed: u64,
        recovery: RecoveryConfig,
    ) -> Result<SimResult, RunError> {
        self.run_pieces(proto.fresh(), seed, Some(recovery))
    }

    /// The scenario this runner simulates.
    pub fn scenario(&self) -> &Scenario {
        self.scenario
    }

    /// Current event-queue storage footprint (see
    /// [`Engine::debug_queue_capacity`]). Test instrumentation only.
    #[doc(hidden)]
    pub fn debug_queue_capacity(&self) -> usize {
        self.engine.debug_queue_capacity()
    }
}

/// Declared per-worker `(comp_latency, speed)` for the recovery layer's
/// divergence check — empty (and free) when the check is disabled.
pub(crate) fn divergence_rates(platform: &Platform, recovery: &RecoveryConfig) -> Vec<(f64, f64)> {
    if recovery.divergence_threshold.is_some() {
        platform
            .workers()
            .iter()
            .map(|w| (w.comp_latency, w.speed))
            .collect()
    } else {
        Vec::new()
    }
}

/// Error running a scenario.
#[derive(Debug, Clone, PartialEq)]
pub enum RunError {
    /// The scheduler could not be constructed.
    Build(BuildError),
    /// The simulation failed (scheduler bug surfaced by the engine).
    Sim(SimError),
}

impl std::fmt::Display for RunError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RunError::Build(e) => write!(f, "build: {e}"),
            RunError::Sim(e) => write!(f, "simulation: {e}"),
        }
    }
}

impl std::error::Error for RunError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            RunError::Build(e) => Some(e),
            RunError::Sim(e) => Some(e),
        }
    }
}

impl From<BuildError> for RunError {
    fn from(e: BuildError) -> Self {
        RunError::Build(e)
    }
}

impl From<SimError> for RunError {
    fn from(e: SimError) -> Self {
        RunError::Sim(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_scenario_shape() {
        let s = Scenario::table1(20, 1.8, 0.3, 0.9, 0.2);
        assert_eq!(s.platform.num_workers(), 20);
        assert!((s.platform.worker(0).bandwidth - 36.0).abs() < 1e-12);
        assert_eq!(s.w_total, 1000.0);
        assert!((s.error() - 0.2).abs() < 1e-12);

        let exact = Scenario::table1(10, 1.5, 0.1, 0.1, 0.0);
        assert_eq!(exact.error_model, ErrorModel::None);
    }

    #[test]
    fn run_and_determinism() {
        let s = Scenario::table1(10, 1.5, 0.2, 0.2, 0.3);
        let kind = SchedulerKind::rumr_known_error(0.3);
        let a = s.execute(&RunSpec::new(kind).seed(7)).unwrap();
        let b = s.execute(&RunSpec::new(kind).seed(7)).unwrap();
        assert_eq!(a.makespan, b.makespan);
        let c = s.execute(&RunSpec::new(kind).seed(8)).unwrap();
        assert_ne!(a.makespan, c.makespan);
        assert!((a.completed_work() - 1000.0).abs() < 1e-6);
    }

    #[test]
    fn traced_run_validates() {
        let s = Scenario::table1(8, 1.4, 0.1, 0.3, 0.25);
        let spec = RunSpec::new(SchedulerKind::Factoring)
            .seed(1)
            .trace_mode(TraceMode::Full);
        let r = s.execute(&spec).unwrap();
        let trace = r.trace.expect("trace recorded");
        assert!(trace.validate(8).is_empty());
    }

    #[test]
    fn mean_makespan_averages() {
        let s = Scenario::table1(5, 1.5, 0.1, 0.1, 0.4);
        let kind = SchedulerKind::Factoring;
        let mean = s.execute_mean(&RunSpec::new(kind).reps(5)).unwrap();
        let manual: f64 = (0..5)
            .map(|seed| s.execute(&RunSpec::new(kind).seed(seed)).unwrap().makespan)
            .sum::<f64>()
            / 5.0;
        assert!((mean - manual).abs() < 1e-12);
    }

    #[test]
    fn concurrency_helps_on_latency_bound_platform() {
        let s = Scenario::table1(10, 1.5, 0.2, 0.8, 0.2);
        let kind = SchedulerKind::Factoring;
        let capacity = Some(s.platform.worker(0).bandwidth);
        let at_sends = |max_sends: usize| {
            let spec = RunSpec::new(kind).seed(3).config(SimConfig {
                max_concurrent_sends: max_sends,
                uplink_capacity: capacity,
                ..Default::default()
            });
            s.execute(&spec).unwrap().makespan
        };
        let serial = at_sends(1);
        let conc = at_sends(4);
        assert!(
            conc < serial,
            "4 concurrent sends should beat serial at nLat = 0.8: {conc} vs {serial}"
        );
    }

    #[test]
    fn output_ratio_through_scenario_config() {
        let s = Scenario::table1(6, 1.5, 0.1, 0.1, 0.0);
        let cfg = SimConfig {
            output_ratio: 0.5,
            ..Default::default()
        };
        let r = s
            .execute(&RunSpec::new(SchedulerKind::Umr).config(cfg))
            .unwrap();
        assert!((r.returned_work - 500.0).abs() < 1e-6);
        let base = s.execute(&RunSpec::new(SchedulerKind::Umr)).unwrap();
        assert!(r.makespan > base.makespan);
    }

    #[test]
    fn temporal_noise_through_scenario() {
        use dls_sim::TemporalNoise;
        let mut s = Scenario::table1(8, 1.5, 0.1, 0.1, 0.0);
        s.temporal_noise = Some(TemporalNoise {
            rho: 0.9,
            sigma: 0.4,
        });
        let spec = RunSpec::new(SchedulerKind::Factoring).seed(1);
        let a = s.execute(&spec).unwrap();
        let b = s.execute(&spec).unwrap();
        assert_eq!(a.makespan, b.makespan, "temporal noise must be seeded");
        let mut plain = s.clone();
        plain.temporal_noise = None;
        let c = plain.execute(&spec).unwrap();
        assert_ne!(a.makespan, c.makespan);
        assert!((a.completed_work() - 1000.0).abs() < 1e-6);
    }

    #[test]
    fn recovery_completes_what_plain_loses() {
        use dls_sim::FaultPlan;
        // Crash-stop worker 2 mid-run. Raw UMR keeps feeding the corpse
        // and loses its work; the recovery wrapper redispatches every lost
        // unit and still finishes the whole workload.
        let s = Scenario::table1(6, 1.5, 0.2, 0.2, 0.0);
        let faults = FaultModel::Plan(FaultPlan::new().crash(60.0, 2));
        let raw = s
            .execute(
                &RunSpec::new(SchedulerKind::Umr)
                    .seed(1)
                    .faults(faults.clone()),
            )
            .unwrap();
        assert!(raw.lost_work > 0.0, "crash at t=60 must destroy work");
        assert!(raw.completed_work() < 1000.0 - 1e-6);

        let cfg = SimConfig {
            faults,
            trace_mode: TraceMode::Full,
            ..Default::default()
        };
        let rec = s
            .execute(
                &RunSpec::new(SchedulerKind::rumr_known_error(0.0))
                    .seed(1)
                    .config(cfg)
                    .recovering(RecoveryConfig::default()),
            )
            .unwrap();
        assert!(
            (rec.completed_work() - 1000.0).abs() < 1e-6,
            "recovering RUMR must complete everything: {}",
            rec.completed_work()
        );
        assert!(rec.redispatched_work > 0.0);
        assert!(rec.conservation_residual().abs() < 1e-6);
        assert!(rec.trace.unwrap().validate(6).is_empty());
    }

    #[test]
    fn fault_free_recovering_run_matches_plain() {
        // With no faults the wrapper is a strict pass-through.
        let s = Scenario::table1(10, 1.5, 0.2, 0.2, 0.3);
        let kind = SchedulerKind::rumr_known_error(0.3);
        let plain = s.execute(&RunSpec::new(kind).seed(42)).unwrap();
        let wrapped = s
            .execute(
                &RunSpec::new(kind)
                    .seed(42)
                    .recovering(RecoveryConfig::default()),
            )
            .unwrap();
        assert_eq!(plain.makespan.to_bits(), wrapped.makespan.to_bits());
        assert_eq!(plain.num_chunks, wrapped.num_chunks);
    }

    #[test]
    fn errors_are_reported() {
        let s = Scenario::table1(5, 1.5, 0.1, 0.1, 0.0);
        let bad = Scenario { w_total: -3.0, ..s };
        let e = bad.execute(&RunSpec::new(SchedulerKind::Umr)).unwrap_err();
        assert!(matches!(e, RunError::Build(_)));
        assert!(!format!("{e}").is_empty());
    }

    /// Field-by-field bit-identity of the batched pass against the
    /// sequential repetition loop, across noisy, faulty-recovering and
    /// metered configurations.
    #[test]
    fn batch_matches_sequential_bit_for_bit() {
        use dls_sim::FaultPlan;
        let noisy = Scenario::table1(8, 1.5, 0.2, 0.2, 0.3);
        let faulty_cfg = SimConfig {
            faults: FaultModel::Plan(FaultPlan::new().crash(40.0, 2)),
            trace_mode: TraceMode::MetricsOnly,
            audit: true,
            ..Default::default()
        };
        let specs = [
            RunSpec::new(SchedulerKind::rumr_known_error(0.3))
                .seed(5)
                .reps(4),
            RunSpec::new(SchedulerKind::Factoring)
                .seed(9)
                .reps(3)
                .trace_mode(TraceMode::MetricsOnly),
            RunSpec::new(SchedulerKind::rumr_known_error(0.3))
                .seed(2)
                .reps(3)
                .config(faulty_cfg)
                .recovering(RecoveryConfig::default()),
        ];
        for spec in &specs {
            let cols = noisy.execute_batch(spec).unwrap();
            assert_eq!(cols.len(), spec.reps as usize);
            let mut runner = noisy.runner(spec.config.clone());
            for (i, seed) in spec.seeds().enumerate() {
                let seq = runner.execute_at(spec, seed).unwrap();
                assert_eq!(seq.makespan.to_bits(), cols.makespan[i].to_bits());
                assert_eq!(seq.num_chunks, cols.num_chunks[i]);
                assert_eq!(
                    seq.dispatched_work.to_bits(),
                    cols.dispatched_work[i].to_bits()
                );
                assert_eq!(seq.events, cols.events[i]);
                assert_eq!(seq.lost_work.to_bits(), cols.lost_work[i].to_bits());
                assert_eq!(seq.lost_chunks, cols.lost_chunks[i]);
                assert_eq!(
                    seq.completed_work().to_bits(),
                    cols.completed_work[i].to_bits()
                );
                assert_eq!(seq.per_worker_work, cols.per_worker_work_of(i));
                assert_eq!(seq.per_worker_busy, cols.per_worker_busy_of(i));
                assert_eq!(seq.lost_ranges, cols.lost_ranges_of(i));
                assert_eq!(
                    seq.metrics.map(|m| m.trace_events),
                    cols.metrics[i].as_ref().map(|m| m.trace_events)
                );
                assert_eq!(
                    seq.audit.map(|a| a.len()),
                    cols.audit[i].as_ref().map(|a| a.len())
                );
            }
        }
    }

    /// A reused column batch keeps its allocations across `clear`:
    /// the second batch of the same shape must not grow any buffer.
    #[test]
    fn batch_buffers_are_reused_across_batches() {
        let s = Scenario::table1(6, 1.5, 0.1, 0.1, 0.2);
        let spec = RunSpec::new(SchedulerKind::Factoring).seed(1).reps(5);
        let mut runner = s.runner(spec.config.clone());
        let mut cols = RepColumns::with_capacity(5, 6);
        runner.execute_batch(&spec, &mut cols).unwrap();
        let caps = (
            cols.makespan.capacity(),
            cols.per_worker_work.capacity(),
            cols.per_worker_busy.capacity(),
            cols.events.capacity(),
        );
        cols.clear();
        runner.execute_batch(&spec, &mut cols).unwrap();
        assert_eq!(cols.len(), 5);
        assert_eq!(
            caps,
            (
                cols.makespan.capacity(),
                cols.per_worker_work.capacity(),
                cols.per_worker_busy.capacity(),
                cols.events.capacity(),
            ),
            "warm batch must not reallocate its columns"
        );
    }

    #[test]
    fn runspec_builder_and_equality() {
        let spec = RunSpec::new(SchedulerKind::Umr)
            .seed(9)
            .reps(4)
            .trace_mode(TraceMode::MetricsOnly);
        assert_eq!(spec.seeds(), 9..13);

        // Equality ignores the prototype.
        let s = Scenario::table1(5, 1.5, 0.1, 0.1, 0.0);
        let proto = SchedulerKind::Umr
            .prototype(&s.platform, s.w_total)
            .unwrap();
        let with_proto = spec.clone().with_prototype(proto);
        assert_eq!(spec, with_proto);
        assert_ne!(spec, spec.clone().seed(10));
    }

    #[cfg(feature = "legacy-api")]
    #[test]
    fn execute_matches_legacy_wrappers() {
        let s = Scenario::table1(10, 1.5, 0.2, 0.2, 0.3);
        let kind = SchedulerKind::rumr_known_error(0.3);
        let legacy = s.run(&kind, 7).unwrap();
        let spec = RunSpec::new(kind).seed(7);
        let unified = s.execute(&spec).unwrap();
        assert_eq!(legacy.makespan.to_bits(), unified.makespan.to_bits());
        assert_eq!(legacy.num_chunks, unified.num_chunks);

        // Prototype-backed execution is bit-identical too.
        let proto = kind.prototype(&s.platform, s.w_total).unwrap();
        let via_proto = s.execute(&spec.clone().with_prototype(proto)).unwrap();
        assert_eq!(legacy.makespan.to_bits(), via_proto.makespan.to_bits());
    }

    #[test]
    fn robustness_none_without_revelation() {
        let s = Scenario::table1(6, 1.5, 0.1, 0.1, 0.2);
        let spec = RunSpec::new(SchedulerKind::Factoring).seed(3);
        let r = s.execute(&spec).unwrap();
        assert!(s.robustness(&spec, 3, r.makespan).is_none());
    }

    #[test]
    fn robustness_ratio_at_least_one_under_adversary() {
        let s = Scenario::heterogeneous_demo(8, 0.2);
        let spec = RunSpec::new(SchedulerKind::Factoring)
            .seed(5)
            .speeds(SpeedModel::Adversarial {
                fraction: 0.25,
                slowdown: 2.0,
            });
        let realized = s.execute(&spec).unwrap();
        let report = s.robustness(&spec, 5, realized.makespan).unwrap();
        assert!(report.ratio >= 1.0 - 1e-9, "ratio {}", report.ratio);
        assert!(report.clairvoyant_makespan <= realized.makespan + 1e-12);
        assert!(report.analytic_lower_bound <= report.clairvoyant_makespan + 1e-9);
        assert!(report.replanned_makespan.is_some());

        // Degrading the fastest workers must actually hurt: the realized
        // run is slower than the trusting-regime run on declared rates.
        let trusting = s
            .execute(&spec.clone().speeds(SpeedModel::Declared))
            .unwrap();
        assert!(realized.makespan > trusting.makespan);
    }

    #[test]
    fn robustness_het_twin_rescues_homogeneous_planners() {
        // UMR demands a homogeneous platform, so its same-kind twin
        // cannot be built after a heterogeneous revelation — the
        // HetUmr twin must step in as the clairvoyant reference, and it
        // must expose that the blind run genuinely lost time.
        let s = Scenario::table1(8, 1.5, 0.2, 0.2, 0.0);
        let spec = RunSpec::new(SchedulerKind::Umr)
            .seed(1)
            .speeds(SpeedModel::Adversarial {
                fraction: 0.5,
                slowdown: 2.0,
            });
        let realized = s.execute(&spec).unwrap();
        let report = s.robustness(&spec, 1, realized.makespan).unwrap();
        let replanned = report.replanned_makespan.expect("HetUmr twin builds");
        assert!(replanned < realized.makespan);
        assert!(report.ratio > 1.0, "ratio {}", report.ratio);
        assert_eq!(report.clairvoyant_makespan, replanned);
    }

    #[test]
    fn declared_speed_model_is_bit_identical_to_default() {
        let s = Scenario::heterogeneous_demo(10, 0.3);
        let kind = SchedulerKind::Factoring;
        let base = s.execute(&RunSpec::new(kind).seed(11)).unwrap();
        let gated = s
            .execute(&RunSpec::new(kind).seed(11).speeds(SpeedModel::Declared))
            .unwrap();
        assert_eq!(base.makespan.to_bits(), gated.makespan.to_bits());
        assert_eq!(base.num_chunks, gated.num_chunks);
    }

    #[test]
    fn runner_execute_rebuilds_engine_on_config_change() {
        let s = Scenario::table1(6, 1.5, 0.1, 0.1, 0.2);
        let kind = SchedulerKind::Factoring;
        let mut runner = s.runner(SimConfig::default());
        let plain = runner.execute(&RunSpec::new(kind).seed(3)).unwrap();
        assert!(plain.metrics.is_none());

        // Same runner, different config: engine must be rebuilt with
        // metrics enabled, and results must match a fresh scenario run.
        let spec = RunSpec::new(kind)
            .seed(3)
            .trace_mode(TraceMode::MetricsOnly);
        let metered = runner.execute(&spec).unwrap();
        assert!(metered.metrics.is_some());
        assert_eq!(plain.makespan.to_bits(), metered.makespan.to_bits());

        let fresh = s.execute(&spec).unwrap();
        assert_eq!(metered.makespan.to_bits(), fresh.makespan.to_bits());
    }
}
