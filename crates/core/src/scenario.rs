//! Scenario definition and simulation entry points.
//!
//! A [`Scenario`] bundles everything that defines one experimental setting —
//! platform, workload, and error model — so a single run is fully determined
//! by (scenario, algorithm, seed). This is the API the experiment harness,
//! the examples and downstream users drive.

use dls_sched::recovery::{Recovering, RecoveryConfig};
use dls_sim::{
    simulate, CostProfile, Engine, ErrorInjector, ErrorModel, FaultModel, Platform, SimConfig,
    SimError, SimResult, TraceMode, WorkerSpec,
};

use crate::kind::{BuildError, SchedulerKind, SchedulerPrototype};

/// One experimental setting: platform + workload + error model.
#[derive(Debug, Clone)]
pub struct Scenario {
    /// The computing platform.
    pub platform: Platform,
    /// Total divisible workload, in units.
    pub w_total: f64,
    /// Prediction-error model applied during execution.
    pub error_model: ErrorModel,
    /// Optional trace-driven cost profile: computation times are scaled by
    /// the actual per-unit costs of the chunk's range (§6's "traces from
    /// real applications"), with `error_model` acting as platform noise on
    /// top. `None` uses the pure distribution model of the paper's
    /// evaluation.
    pub cost_profile: Option<CostProfile>,
    /// Optional temporally correlated per-worker load noise (tests the
    /// paper's §4.1 stationarity assumption). `None` keeps errors i.i.d.
    pub temporal_noise: Option<dls_sim::TemporalNoise>,
}

impl Scenario {
    /// A scenario on the paper's Table 1 homogeneous grid: `N = n` workers,
    /// `S = 1`, `B = ratio·n`, `W = 1000`, `tLat = 0`, truncated-normal
    /// errors of the given magnitude.
    pub fn table1(n: usize, ratio: f64, comp_latency: f64, net_latency: f64, error: f64) -> Self {
        let platform = dls_sim::HomogeneousParams::table1(n, ratio, comp_latency, net_latency)
            .build()
            .expect("Table 1 parameters are valid");
        Scenario {
            platform,
            w_total: 1000.0,
            error_model: if error > 0.0 {
                ErrorModel::TruncatedNormal { error }
            } else {
                ErrorModel::None
            },
            cost_profile: None,
            temporal_noise: None,
        }
    }

    /// A pinned heterogeneous star platform: worker speeds, link rates and
    /// latencies vary deterministically with the worker index (no RNG), so
    /// runs on it are bit-for-bit reproducible. Used by the benchmark
    /// snapshot suite and the golden-value regression tests.
    pub fn heterogeneous_demo(n: usize, error: f64) -> Self {
        assert!(n >= 1, "need at least one worker");
        let workers = (0..n)
            .map(|i| {
                let f = i as f64 / n as f64;
                WorkerSpec {
                    speed: 0.6 + 1.2 * f,
                    bandwidth: 1.5 * n as f64 * (0.5 + f),
                    comp_latency: 0.1 + 0.2 * f,
                    net_latency: 0.1,
                    transfer_latency: 0.0,
                }
            })
            .collect();
        let platform = Platform::new(workers).expect("demo platform is valid");
        Scenario {
            platform,
            w_total: 1000.0,
            error_model: if error > 0.0 {
                ErrorModel::TruncatedNormal { error }
            } else {
                ErrorModel::None
            },
            cost_profile: None,
            temporal_noise: None,
        }
    }

    /// The error magnitude of the scenario's error model.
    pub fn error(&self) -> f64 {
        self.error_model.magnitude()
    }

    /// A reusable runner over this scenario: one [`Engine`] whose buffers
    /// (event heap, ledger, worker queues, view snapshot) persist across
    /// runs, so repetition loops stop paying per-run allocation. Used by
    /// the sweep harness; results are bit-identical to [`Scenario::run`].
    pub fn runner(&self, config: SimConfig) -> ScenarioRunner<'_> {
        let engine = Engine::new(
            &self.platform,
            ErrorInjector::new(ErrorModel::None, 0),
            config,
        );
        ScenarioRunner {
            scenario: self,
            engine,
        }
    }

    /// Run one simulation.
    pub fn run(&self, kind: &SchedulerKind, seed: u64) -> Result<SimResult, RunError> {
        self.run_with_config(kind, seed, SimConfig::default())
    }

    /// Run one simulation and record the full event trace.
    pub fn run_traced(&self, kind: &SchedulerKind, seed: u64) -> Result<SimResult, RunError> {
        self.run_with_config(
            kind,
            seed,
            SimConfig {
                trace_mode: TraceMode::Full,
                ..Default::default()
            },
        )
    }

    /// Run under the concurrent-transfer extension: up to `max_sends`
    /// simultaneous master transfers sharing `uplink_capacity` (units/s)
    /// max-min fairly. `max_sends = 1` is the paper's serial model.
    pub fn run_concurrent(
        &self,
        kind: &SchedulerKind,
        seed: u64,
        max_sends: usize,
        uplink_capacity: Option<f64>,
    ) -> Result<SimResult, RunError> {
        self.run_with_config(
            kind,
            seed,
            SimConfig {
                max_concurrent_sends: max_sends,
                uplink_capacity,
                ..Default::default()
            },
        )
    }

    /// Run under a fault model (worker crashes, link drops — see
    /// `dls_sim::faults`). The scheduler is used as-is; plain schedulers
    /// lose the destroyed work and under-complete. Wrap with
    /// [`Scenario::run_recovering`] for full completion.
    pub fn run_with_faults(
        &self,
        kind: &SchedulerKind,
        seed: u64,
        faults: FaultModel,
    ) -> Result<SimResult, RunError> {
        self.run_with_config(
            kind,
            seed,
            SimConfig {
                faults,
                ..Default::default()
            },
        )
    }

    /// Run with the scheduler wrapped in the fault-recovery layer
    /// (`dls_sched::recovery::Recovering`): lost work is redispatched and
    /// dispatches are routed around dead workers. Pass the fault model via
    /// `config.faults`.
    pub fn run_recovering(
        &self,
        kind: &SchedulerKind,
        seed: u64,
        config: SimConfig,
        recovery: RecoveryConfig,
    ) -> Result<SimResult, RunError> {
        let scheduler = kind.build(&self.platform, self.w_total)?;
        let mut wrapped = Recovering::with_config(scheduler, recovery);
        Ok(simulate(
            &self.platform,
            &mut wrapped,
            self.injector(seed),
            config,
        )?)
    }

    /// Run with an explicit engine configuration.
    pub fn run_with_config(
        &self,
        kind: &SchedulerKind,
        seed: u64,
        config: SimConfig,
    ) -> Result<SimResult, RunError> {
        let mut scheduler = kind.build(&self.platform, self.w_total)?;
        Ok(simulate(
            &self.platform,
            scheduler.as_mut(),
            self.injector(seed),
            config,
        )?)
    }

    /// The scenario's seeded error injector.
    fn injector(&self, seed: u64) -> ErrorInjector {
        let mut injector = match &self.cost_profile {
            Some(profile) => ErrorInjector::with_profile(self.error_model, seed, profile.clone()),
            None => ErrorInjector::new(self.error_model, seed),
        };
        if let Some(noise) = self.temporal_noise {
            injector = injector.with_temporal_noise(noise);
        }
        injector
    }

    /// Mean makespan of `kind` over `reps` seeded repetitions
    /// (seeds `seed_base..seed_base + reps`).
    pub fn mean_makespan(
        &self,
        kind: &SchedulerKind,
        seed_base: u64,
        reps: u64,
    ) -> Result<f64, RunError> {
        assert!(reps > 0, "need at least one repetition");
        let mut total = 0.0;
        for rep in 0..reps {
            total += self.run(kind, seed_base + rep)?.makespan;
        }
        Ok(total / reps as f64)
    }
}

/// Repeated-run handle created by [`Scenario::runner`]. Holds one engine
/// and resets it between runs instead of rebuilding it, eliminating
/// per-repetition allocation in sweep and benchmark loops.
pub struct ScenarioRunner<'a> {
    scenario: &'a Scenario,
    engine: Engine<'a>,
}

impl ScenarioRunner<'_> {
    /// Run one simulation, reusing the engine's buffers. Bit-identical to
    /// [`Scenario::run_with_config`] with the runner's configuration.
    pub fn run(&mut self, kind: &SchedulerKind, seed: u64) -> Result<SimResult, RunError> {
        let mut scheduler = kind.build(&self.scenario.platform, self.scenario.w_total)?;
        self.engine.reset(self.scenario.injector(seed));
        Ok(self.engine.run_reusing(scheduler.as_mut())?)
    }

    /// Pre-plan a scheduler for this runner's scenario (see
    /// [`SchedulerKind::prototype`]). Pair with
    /// [`ScenarioRunner::run_prototype`] in repetition loops to pay the
    /// planner cost once instead of per run.
    pub fn prototype(&self, kind: &SchedulerKind) -> Result<SchedulerPrototype, RunError> {
        Ok(kind.prototype(&self.scenario.platform, self.scenario.w_total)?)
    }

    /// Run one simulation from a pre-planned prototype, reusing the
    /// engine's buffers. Bit-identical to [`ScenarioRunner::run`] with the
    /// prototype's kind.
    pub fn run_prototype(
        &mut self,
        proto: &SchedulerPrototype,
        seed: u64,
    ) -> Result<SimResult, RunError> {
        let mut scheduler = proto.fresh();
        self.engine.reset(self.scenario.injector(seed));
        Ok(self.engine.run_reusing(scheduler.as_mut())?)
    }

    /// Run one simulation with the scheduler wrapped in the fault-recovery
    /// layer, reusing the engine's buffers. Bit-identical to
    /// [`Scenario::run_recovering`] with the runner's configuration.
    pub fn run_recovering(
        &mut self,
        kind: &SchedulerKind,
        seed: u64,
        recovery: RecoveryConfig,
    ) -> Result<SimResult, RunError> {
        let scheduler = kind.build(&self.scenario.platform, self.scenario.w_total)?;
        let mut wrapped = Recovering::with_config(scheduler, recovery);
        self.engine.reset(self.scenario.injector(seed));
        Ok(self.engine.run_reusing(&mut wrapped)?)
    }

    /// Run one simulation from a pre-planned prototype wrapped in the
    /// fault-recovery layer, reusing the engine's buffers. Bit-identical to
    /// [`ScenarioRunner::run_recovering`] with the prototype's kind, but
    /// pays the planner cost once (at [`ScenarioRunner::prototype`] time)
    /// instead of per repetition.
    pub fn run_recovering_prototype(
        &mut self,
        proto: &SchedulerPrototype,
        seed: u64,
        recovery: RecoveryConfig,
    ) -> Result<SimResult, RunError> {
        let mut wrapped = Recovering::with_config(proto.fresh(), recovery);
        self.engine.reset(self.scenario.injector(seed));
        Ok(self.engine.run_reusing(&mut wrapped)?)
    }

    /// The scenario this runner simulates.
    pub fn scenario(&self) -> &Scenario {
        self.scenario
    }

    /// Current event-queue storage footprint (see
    /// [`Engine::debug_queue_capacity`]). Test instrumentation only.
    #[doc(hidden)]
    pub fn debug_queue_capacity(&self) -> usize {
        self.engine.debug_queue_capacity()
    }
}

/// Error running a scenario.
#[derive(Debug, Clone, PartialEq)]
pub enum RunError {
    /// The scheduler could not be constructed.
    Build(BuildError),
    /// The simulation failed (scheduler bug surfaced by the engine).
    Sim(SimError),
}

impl std::fmt::Display for RunError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RunError::Build(e) => write!(f, "build: {e}"),
            RunError::Sim(e) => write!(f, "simulation: {e}"),
        }
    }
}

impl std::error::Error for RunError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            RunError::Build(e) => Some(e),
            RunError::Sim(e) => Some(e),
        }
    }
}

impl From<BuildError> for RunError {
    fn from(e: BuildError) -> Self {
        RunError::Build(e)
    }
}

impl From<SimError> for RunError {
    fn from(e: SimError) -> Self {
        RunError::Sim(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_scenario_shape() {
        let s = Scenario::table1(20, 1.8, 0.3, 0.9, 0.2);
        assert_eq!(s.platform.num_workers(), 20);
        assert!((s.platform.worker(0).bandwidth - 36.0).abs() < 1e-12);
        assert_eq!(s.w_total, 1000.0);
        assert!((s.error() - 0.2).abs() < 1e-12);

        let exact = Scenario::table1(10, 1.5, 0.1, 0.1, 0.0);
        assert_eq!(exact.error_model, ErrorModel::None);
    }

    #[test]
    fn run_and_determinism() {
        let s = Scenario::table1(10, 1.5, 0.2, 0.2, 0.3);
        let kind = SchedulerKind::rumr_known_error(0.3);
        let a = s.run(&kind, 7).unwrap();
        let b = s.run(&kind, 7).unwrap();
        assert_eq!(a.makespan, b.makespan);
        let c = s.run(&kind, 8).unwrap();
        assert_ne!(a.makespan, c.makespan);
        assert!((a.completed_work() - 1000.0).abs() < 1e-6);
    }

    #[test]
    fn traced_run_validates() {
        let s = Scenario::table1(8, 1.4, 0.1, 0.3, 0.25);
        let r = s.run_traced(&SchedulerKind::Factoring, 1).unwrap();
        let trace = r.trace.expect("trace recorded");
        assert!(trace.validate(8).is_empty());
    }

    #[test]
    fn mean_makespan_averages() {
        let s = Scenario::table1(5, 1.5, 0.1, 0.1, 0.4);
        let kind = SchedulerKind::Factoring;
        let mean = s.mean_makespan(&kind, 0, 5).unwrap();
        let manual: f64 = (0..5)
            .map(|seed| s.run(&kind, seed).unwrap().makespan)
            .sum::<f64>()
            / 5.0;
        assert!((mean - manual).abs() < 1e-12);
    }

    #[test]
    fn concurrency_helps_on_latency_bound_platform() {
        let s = Scenario::table1(10, 1.5, 0.2, 0.8, 0.2);
        let kind = SchedulerKind::Factoring;
        let capacity = Some(s.platform.worker(0).bandwidth);
        let serial = s.run_concurrent(&kind, 3, 1, capacity).unwrap().makespan;
        let conc = s.run_concurrent(&kind, 3, 4, capacity).unwrap().makespan;
        assert!(
            conc < serial,
            "4 concurrent sends should beat serial at nLat = 0.8: {conc} vs {serial}"
        );
    }

    #[test]
    fn output_ratio_through_scenario_config() {
        let s = Scenario::table1(6, 1.5, 0.1, 0.1, 0.0);
        let cfg = SimConfig {
            output_ratio: 0.5,
            ..Default::default()
        };
        let r = s.run_with_config(&SchedulerKind::Umr, 0, cfg).unwrap();
        assert!((r.returned_work - 500.0).abs() < 1e-6);
        let base = s.run(&SchedulerKind::Umr, 0).unwrap();
        assert!(r.makespan > base.makespan);
    }

    #[test]
    fn temporal_noise_through_scenario() {
        use dls_sim::TemporalNoise;
        let mut s = Scenario::table1(8, 1.5, 0.1, 0.1, 0.0);
        s.temporal_noise = Some(TemporalNoise {
            rho: 0.9,
            sigma: 0.4,
        });
        let a = s.run(&SchedulerKind::Factoring, 1).unwrap();
        let b = s.run(&SchedulerKind::Factoring, 1).unwrap();
        assert_eq!(a.makespan, b.makespan, "temporal noise must be seeded");
        let mut plain = s.clone();
        plain.temporal_noise = None;
        let c = plain.run(&SchedulerKind::Factoring, 1).unwrap();
        assert_ne!(a.makespan, c.makespan);
        assert!((a.completed_work() - 1000.0).abs() < 1e-6);
    }

    #[test]
    fn recovery_completes_what_plain_loses() {
        use dls_sim::FaultPlan;
        // Crash-stop worker 2 mid-run. Raw UMR keeps feeding the corpse
        // and loses its work; the recovery wrapper redispatches every lost
        // unit and still finishes the whole workload.
        let s = Scenario::table1(6, 1.5, 0.2, 0.2, 0.0);
        let faults = FaultModel::Plan(FaultPlan::new().crash(60.0, 2));
        let raw = s
            .run_with_faults(&SchedulerKind::Umr, 1, faults.clone())
            .unwrap();
        assert!(raw.lost_work > 0.0, "crash at t=60 must destroy work");
        assert!(raw.completed_work() < 1000.0 - 1e-6);

        let cfg = SimConfig {
            faults,
            trace_mode: TraceMode::Full,
            ..Default::default()
        };
        let rec = s
            .run_recovering(
                &SchedulerKind::rumr_known_error(0.0),
                1,
                cfg,
                RecoveryConfig::default(),
            )
            .unwrap();
        assert!(
            (rec.completed_work() - 1000.0).abs() < 1e-6,
            "recovering RUMR must complete everything: {}",
            rec.completed_work()
        );
        assert!(rec.redispatched_work > 0.0);
        assert!(rec.conservation_residual().abs() < 1e-6);
        assert!(rec.trace.unwrap().validate(6).is_empty());
    }

    #[test]
    fn fault_free_recovering_run_matches_plain() {
        // With no faults the wrapper is a strict pass-through.
        let s = Scenario::table1(10, 1.5, 0.2, 0.2, 0.3);
        let kind = SchedulerKind::rumr_known_error(0.3);
        let plain = s.run(&kind, 42).unwrap();
        let wrapped = s
            .run_recovering(&kind, 42, SimConfig::default(), RecoveryConfig::default())
            .unwrap();
        assert_eq!(plain.makespan.to_bits(), wrapped.makespan.to_bits());
        assert_eq!(plain.num_chunks, wrapped.num_chunks);
    }

    #[test]
    fn errors_are_reported() {
        let s = Scenario::table1(5, 1.5, 0.1, 0.1, 0.0);
        let bad = Scenario { w_total: -3.0, ..s };
        let e = bad.run(&SchedulerKind::Umr, 0).unwrap_err();
        assert!(matches!(e, RunError::Build(_)));
        assert!(!format!("{e}").is_empty());
    }
}
