//! Analytic fast path: answer eligible runs from the oracle closed forms.
//!
//! RUMR's multi-round analysis gives closed-form makespans, and the
//! oracles of [`SchedulerKind::oracle`] reproduce them to
//! [`dls_sched::oracle::EXACT_REL_TOL`]. When a run is *deterministic and
//! model-conforming* — no prediction errors, no faults, declared speeds,
//! the paper's serial-send transport — an [`Prediction::Exact`] oracle
//! already knows the engine's answer, so the discrete-event simulation is
//! pure overhead. [`FastPath::resolve`] encodes exactly that eligibility
//! gate and returns the analytic answer, or the precise reason the engine
//! must run instead.
//!
//! The service layer routes `/plan` and eligible `/simulate` requests
//! through this resolver and cross-checks a configurable sample of
//! analytic answers against a real engine run (the *sampled DES audit*);
//! [`FastPath::audit_due`] is the deterministic sampling decision, and
//! [`FastPathAnswer::agrees_with`] the comparison, both kept here so the
//! tests pin them without a running server.

use dls_sched::{Prediction, RoundTiming};
use dls_sim::ErrorModel;

use crate::kind::{BuildError, SchedulerKind};
use crate::scenario::{RunSpec, Scenario};

/// Why the analytic fast path declined a run and deferred to the engine.
///
/// Every variant names the first eligibility condition that failed; the
/// service surfaces it in logs/metrics rather than in response bodies (the
/// engine fallback is transparent to clients).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FastPathMiss {
    /// The scenario applies prediction errors; only the engine knows how
    /// the perturbed run unfolds.
    PredictionErrors,
    /// A fault model is active.
    Faults,
    /// A speed-revelation model is active (realized ≠ declared rates).
    RevealedSpeeds,
    /// A trace-driven cost profile replaces the analytic cost model.
    CostProfile,
    /// Temporally correlated noise is configured.
    TemporalNoise,
    /// The fault-recovery wrapper is requested; its backoff behaviour is
    /// engine-defined even on a fault-free run.
    Recovery,
    /// The transport deviates from the paper's serial-send, input-only
    /// model the closed forms assume (concurrent sends, shared uplink, or
    /// output returns).
    NonDefaultTransport,
    /// The scheduler kind has no oracle at all.
    NoOracle,
    /// The oracle exists but claims only a lower bound, not an exact
    /// makespan (e.g. MI with latencies, RUMR's accounting oracle).
    InexactOracle,
}

impl std::fmt::Display for FastPathMiss {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            FastPathMiss::PredictionErrors => "prediction errors active",
            FastPathMiss::Faults => "fault model active",
            FastPathMiss::RevealedSpeeds => "speed revelation active",
            FastPathMiss::CostProfile => "trace-driven cost profile",
            FastPathMiss::TemporalNoise => "temporal noise active",
            FastPathMiss::Recovery => "recovery wrapper requested",
            FastPathMiss::NonDefaultTransport => "non-default transport model",
            FastPathMiss::NoOracle => "scheduler has no oracle",
            FastPathMiss::InexactOracle => "oracle prediction is not exact",
        })
    }
}

/// The resolver's verdict: answer analytically, or run the engine (and
/// why).
#[derive(Debug, Clone)]
pub enum FastPathDecision {
    /// The closed form answers this run.
    Analytic(FastPathAnswer),
    /// The engine must run; the payload is the first failed condition.
    Engine(FastPathMiss),
}

impl FastPathDecision {
    /// The analytic answer, if the fast path took the run.
    pub fn analytic(&self) -> Option<&FastPathAnswer> {
        match self {
            FastPathDecision::Analytic(a) => Some(a),
            FastPathDecision::Engine(_) => None,
        }
    }
}

/// An analytic answer produced without running the engine.
#[derive(Debug, Clone)]
pub struct FastPathAnswer {
    /// The oracle's short planner name (`"UMR"`, `"UMR-het"`, …).
    pub oracle: &'static str,
    /// The exact-makespan claim ([`Prediction::Exact`] by construction).
    pub prediction: Prediction,
    /// Closed-form makespan (the `makespan` of `prediction`).
    pub makespan: f64,
    /// Total workload units the plan accounts for.
    pub planned_work: f64,
    /// Per-round dispatch/finish instants where the model pins them.
    pub rounds: Option<Vec<RoundTiming>>,
}

impl FastPathAnswer {
    /// Does an engine-simulated makespan confirm this answer? True when
    /// the simulated value lies within the oracle's stated relative
    /// tolerance — the sampled-DES-audit acceptance test.
    pub fn agrees_with(&self, simulated_makespan: f64) -> bool {
        self.prediction.within(simulated_makespan)
    }

    /// Relative residual `|simulated − analytic| / analytic` of an engine
    /// cross-check (see [`Prediction::residual`]).
    pub fn residual(&self, simulated_makespan: f64) -> f64 {
        self.prediction
            .residual(simulated_makespan)
            .expect("an Exact prediction always has a residual")
    }
}

/// The analytic fast-path resolver (stateless; all methods are
/// associated functions).
#[derive(Debug, Clone, Copy, Default)]
pub struct FastPath;

impl FastPath {
    /// Check every eligibility condition *except* oracle availability:
    /// `Ok(())` when the run is deterministic and model-conforming, the
    /// first failed condition otherwise. Order is fixed (scenario checks,
    /// then spec checks) so misses are stable across calls.
    pub fn eligibility(scenario: &Scenario, spec: &RunSpec) -> Result<(), FastPathMiss> {
        if scenario.error_model != ErrorModel::None {
            return Err(FastPathMiss::PredictionErrors);
        }
        if scenario.cost_profile.is_some() {
            return Err(FastPathMiss::CostProfile);
        }
        if scenario.temporal_noise.is_some() {
            return Err(FastPathMiss::TemporalNoise);
        }
        if spec.config.faults.is_active() {
            return Err(FastPathMiss::Faults);
        }
        if spec.config.speeds.is_active() {
            return Err(FastPathMiss::RevealedSpeeds);
        }
        if spec.recovery.is_some() {
            return Err(FastPathMiss::Recovery);
        }
        if spec.config.max_concurrent_sends != 1
            || spec.config.uplink_capacity.is_some()
            || spec.config.output_ratio != 0.0
        {
            return Err(FastPathMiss::NonDefaultTransport);
        }
        Ok(())
    }

    /// Resolve a run: the analytic answer when every eligibility condition
    /// holds and the scheduler's oracle makes an exact claim, otherwise
    /// the engine verdict with the first failed condition.
    ///
    /// # Errors
    ///
    /// [`BuildError`] when the scheduler kind rejects the workload or its
    /// parameters — the same rejection [`SchedulerKind::build`] would
    /// produce, so invalid requests fail identically on both paths.
    pub fn resolve(scenario: &Scenario, spec: &RunSpec) -> Result<FastPathDecision, BuildError> {
        Self::resolve_kind(scenario, spec, spec.kind)
    }

    /// [`FastPath::resolve`] with the scheduler kind given explicitly
    /// (used when the spec is synthesized, e.g. `/plan` requests).
    pub fn resolve_kind(
        scenario: &Scenario,
        spec: &RunSpec,
        kind: SchedulerKind,
    ) -> Result<FastPathDecision, BuildError> {
        if let Err(miss) = Self::eligibility(scenario, spec) {
            // Invalid requests must fail identically on both paths, so
            // run the same validation gate the builders share before
            // declining.
            kind.oracle(&scenario.platform, scenario.w_total)?;
            return Ok(FastPathDecision::Engine(miss));
        }
        let Some(oracle) = kind.oracle(&scenario.platform, scenario.w_total)? else {
            return Ok(FastPathDecision::Engine(FastPathMiss::NoOracle));
        };
        let prediction = oracle.makespan();
        let Prediction::Exact { makespan, .. } = prediction else {
            return Ok(FastPathDecision::Engine(FastPathMiss::InexactOracle));
        };
        Ok(FastPathDecision::Analytic(FastPathAnswer {
            oracle: oracle.name(),
            prediction,
            makespan,
            planned_work: oracle.planned_work(),
            rounds: oracle.round_timeline(),
        }))
    }

    /// Deterministic sampling decision for the DES audit: should the
    /// answer keyed by `key` be cross-checked at a sampling rate of
    /// `pct` percent? Hashes the key (FNV-1a) so the decision is a pure
    /// function of the request — identical requests are always either
    /// both audited or both not, preserving response determinism — while
    /// distinct requests spread uniformly over the percentage buckets.
    /// `pct >= 100` audits everything, `0` nothing.
    pub fn audit_due(key: &str, pct: u32) -> bool {
        if pct >= 100 {
            return true;
        }
        if pct == 0 {
            return false;
        }
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in key.as_bytes() {
            h ^= u64::from(*b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        (h % 100) < u64::from(pct)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dls_sim::{FaultModel, FaultPlan, SimConfig, SpeedModel};

    fn exact_scenario() -> Scenario {
        Scenario::table1(10, 1.5, 0.2, 0.1, 0.0)
    }

    #[test]
    fn umr_resolves_analytically_and_matches_engine() {
        let s = exact_scenario();
        let spec = RunSpec::new(SchedulerKind::Umr);
        let decision = FastPath::resolve(&s, &spec).unwrap();
        let answer = decision.analytic().expect("UMR is exact");
        assert_eq!(answer.oracle, "UMR");
        assert!(answer.rounds.is_some(), "UMR pins its round timeline");
        let engine = s.execute(&spec).unwrap();
        assert!(
            answer.agrees_with(engine.makespan),
            "analytic {} vs engine {} (residual {})",
            answer.makespan,
            engine.makespan,
            answer.residual(engine.makespan)
        );
    }

    #[test]
    fn misses_name_the_first_failed_condition() {
        let spec = RunSpec::new(SchedulerKind::Umr);
        let noisy = Scenario::table1(10, 1.5, 0.2, 0.1, 0.3);
        assert_eq!(
            FastPath::eligibility(&noisy, &spec),
            Err(FastPathMiss::PredictionErrors)
        );

        let s = exact_scenario();
        let faulty = spec
            .clone()
            .faults(FaultModel::Plan(FaultPlan::new().crash(10.0, 1)));
        assert_eq!(
            FastPath::eligibility(&s, &faulty),
            Err(FastPathMiss::Faults)
        );
        matches_miss(&s, &faulty, FastPathMiss::Faults);

        let revealed = spec.clone().speeds(SpeedModel::Adversarial {
            fraction: 0.5,
            slowdown: 2.0,
        });
        matches_miss(&s, &revealed, FastPathMiss::RevealedSpeeds);

        let recovering = spec.clone().recovering(Default::default());
        matches_miss(&s, &recovering, FastPathMiss::Recovery);

        let concurrent = spec.clone().config(SimConfig {
            max_concurrent_sends: 4,
            ..Default::default()
        });
        matches_miss(&s, &concurrent, FastPathMiss::NonDefaultTransport);

        // No oracle at all → engine, even though the run is deterministic.
        let no_oracle = RunSpec::new(SchedulerKind::EqualStatic);
        matches_miss(&s, &no_oracle, FastPathMiss::NoOracle);

        // An oracle that only lower-bounds (MI with latencies) → engine.
        let mi = RunSpec::new(SchedulerKind::Mi { installments: 3 });
        matches_miss(&s, &mi, FastPathMiss::InexactOracle);
    }

    fn matches_miss(s: &Scenario, spec: &RunSpec, want: FastPathMiss) {
        match FastPath::resolve(s, spec).unwrap() {
            FastPathDecision::Engine(miss) => assert_eq!(miss, want),
            FastPathDecision::Analytic(_) => panic!("expected engine verdict {want:?}"),
        }
    }

    #[test]
    fn invalid_workload_fails_identically_on_both_paths() {
        let mut s = exact_scenario();
        s.w_total = -1.0;
        let spec = RunSpec::new(SchedulerKind::Umr);
        assert!(FastPath::resolve(&s, &spec).is_err());
        // Ineligible runs still surface the build rejection, not a miss.
        let mut noisy = Scenario::table1(10, 1.5, 0.2, 0.1, 0.3);
        noisy.w_total = -1.0;
        assert!(FastPath::resolve(&noisy, &spec).is_err());
    }

    #[test]
    fn audit_sampling_is_deterministic_and_bounded() {
        assert!(FastPath::audit_due("anything", 100));
        assert!(FastPath::audit_due("anything", 250));
        assert!(!FastPath::audit_due("anything", 0));
        // Deterministic: the same key always lands in the same bucket.
        for key in ["a", "b", "request-body-42"] {
            assert_eq!(FastPath::audit_due(key, 50), FastPath::audit_due(key, 50));
        }
        // Monotone in pct: once sampled at p, sampled at every p' > p.
        for i in 0..64 {
            let key = format!("req-{i}");
            let mut prev = false;
            for pct in [1, 10, 25, 50, 75, 99, 100] {
                let now = FastPath::audit_due(&key, pct);
                assert!(now || !prev, "sampling must be monotone in pct");
                prev = now;
            }
        }
        // Roughly uniform: at 50% a few thousand keys split near half.
        let hits = (0..4000)
            .filter(|i| FastPath::audit_due(&format!("key-{i}"), 50))
            .count();
        assert!((1600..=2400).contains(&hits), "50% sampled {hits}/4000");
    }
}
