//! Offline stand-in for the `rand` crate (0.8 API subset).
//!
//! The build environment vendors no registry crates, so this workspace ships
//! the small slice of `rand` it actually uses: [`rngs::StdRng`],
//! [`SeedableRng::seed_from_u64`], and the [`Rng`] extension methods
//! `gen::<f64>()` / `gen_range(..)`. The generator is xoshiro256** seeded via
//! SplitMix64 — deterministic across platforms and runs, which is all the
//! simulation layer requires (every stochastic quantity in this repo is
//! derived from an explicit seed).
//!
//! The stream differs from upstream `rand`'s ChaCha12-based `StdRng`, so
//! absolute simulation outputs are not comparable with builds against the
//! real crate; relative results and all invariants are unaffected.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::ops::{Range, RangeInclusive};

/// Core trait: a source of uniformly distributed 64-bit words.
pub trait RngCore {
    /// Next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// Next 32 uniformly random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }

    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
}

/// Types that can be sampled uniformly from all their values ("standard"
/// distribution in upstream terms).
pub trait Standard: Sized {
    /// Draw one value from `rng`.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 random mantissa bits -> uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Ranges that can produce a uniform sample of `T`.
pub trait SampleRange<T> {
    /// Draw one value in the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl SampleRange<f64> for Range<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        let u = f64::sample(rng);
        self.start + u * (self.end - self.start)
    }
}

impl SampleRange<f64> for RangeInclusive<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "cannot sample empty range");
        // Inclusive via 53-bit grid over [lo, hi].
        let u = (rng.next_u64() >> 11) as f64 / ((1u64 << 53) - 1) as f64;
        lo + u * (hi - lo)
    }
}

/// Unbiased-enough bounded sampling via 128-bit widening multiply.
fn bounded_u64<R: RngCore + ?Sized>(rng: &mut R, span: u64) -> u64 {
    debug_assert!(span > 0);
    ((rng.next_u64() as u128 * span as u128) >> 64) as u64
}

macro_rules! impl_int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u64;
                self.start.wrapping_add(bounded_u64(rng, span) as $t)
            }
        }

        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                if span > u64::MAX as u128 {
                    return u64::sample(rng) as $t;
                }
                lo.wrapping_add(bounded_u64(rng, span as u64) as $t)
            }
        }
    )*};
}

impl_int_sample_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Extension methods over any [`RngCore`], mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Sample a value from the standard (full-range / unit-interval)
    /// distribution of `T`.
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// Sample uniformly from a range.
    fn gen_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T {
        range.sample_single(self)
    }

    /// Bernoulli draw with probability `p` of `true`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "probability out of range");
        f64::sample(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// RNGs constructible from seeds.
pub trait SeedableRng: Sized {
    /// Build a generator from a 64-bit seed (deterministic expansion).
    fn seed_from_u64(seed: u64) -> Self;
}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard deterministic generator: xoshiro256**.
    ///
    /// Not the upstream ChaCha12 `StdRng` — see the crate docs. Statistical
    /// quality is far beyond what makespan simulation can detect.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion, the reference seeding procedure for
            // xoshiro generators.
            let mut x = seed;
            let mut next = move || {
                x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            let s = [next(), next(), next(), next()];
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn deterministic_across_instances() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(StdRng::seed_from_u64(42).next_u64(), c.next_u64());
    }

    #[test]
    fn unit_interval_samples() {
        let mut r = StdRng::seed_from_u64(7);
        let mut sum = 0.0;
        for _ in 0..10_000 {
            let x: f64 = r.gen();
            assert!((0.0..1.0).contains(&x));
            sum += x;
        }
        let mean = sum / 10_000.0;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut r = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let x = r.gen_range(3.0..9.0);
            assert!((3.0..9.0).contains(&x));
            let k = r.gen_range(5usize..17);
            assert!((5..17).contains(&k));
            let m = r.gen_range(1u32..=6);
            assert!((1..=6).contains(&m));
        }
        // Inclusive integer ranges hit both endpoints.
        let mut hit_lo = false;
        let mut hit_hi = false;
        for _ in 0..1000 {
            match r.gen_range(0u8..=3) {
                0 => hit_lo = true,
                3 => hit_hi = true,
                _ => {}
            }
        }
        assert!(hit_lo && hit_hi);
    }

    #[test]
    fn works_through_dyn_like_generics() {
        fn draw<R: super::Rng + ?Sized>(rng: &mut R) -> f64 {
            rng.gen::<f64>()
        }
        let mut r = StdRng::seed_from_u64(9);
        let x = draw(&mut r);
        assert!((0.0..1.0).contains(&x));
    }
}
